"""Quickstart: ask the paper's three competency questions and print the answers.

Run with::

    python examples/quickstart.py

This reproduces Section V of the paper end to end: the Food Explanation
Ontology is built, the food knowledge graph is loaded, the user/system
scenario is assembled and reasoned over, and the three competency
questions (contextual, contrastive, counterfactual) are answered both as
SPARQL result tables and as natural-language sentences.
"""

from repro import ExplanationEngine, paper_context, paper_user


def main() -> None:
    engine = ExplanationEngine()
    user, context = paper_user(), paper_context()

    print("User profile:", user.summary())
    print("System context:", context.summary())
    print()

    questions = [
        "Why should I eat Cauliflower Potato Curry?",
        "Why should I eat Butternut Squash Soup over Broccoli Cheddar Soup?",
        "What if I was pregnant?",
    ]
    for text in questions:
        explanation = engine.ask(text, user, context)
        print("=" * 72)
        print("Q:", text)
        print(f"[{explanation.explanation_type} explanation]")
        print("A:", explanation.text)
        print()
        print("Evidence:")
        for item in explanation.items:
            print("  -", item.describe())
        print()


if __name__ == "__main__":
    main()
