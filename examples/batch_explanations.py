"""Batched, multi-user explanation serving with :class:`ExplanationService`.

Run with::

    PYTHONPATH=src python examples/batch_explanations.py

The example plays a small burst of interactive traffic: three personas,
a working set of questions with repeats, plus one question answered under
every explanation type.  One warmed service handles everything — the
prepared-query cache, the fingerprint-keyed closure cache and the scenario
cache do the amortisation — and the final stats show how little work was
actually repeated.  Compare with examples/quickstart.py, which builds one
engine for one user.
"""

from repro import ExplanationRequest, ExplanationService

#: (persona, question) traffic with the repeats a real session mix produces.
TRAFFIC = [
    ("paper", "Why should I eat Cauliflower Potato Curry?"),
    ("pregnant_user", "What if I was pregnant?"),
    ("paper", "Why should I eat Cauliflower Potato Curry?"),
    ("diabetic_user", "Why should I eat Lentil Soup?"),
    ("pregnant_user", "What if I was pregnant?"),
    ("paper", "Why should I eat Butternut Squash Soup over Broccoli Cheddar Soup?"),
]


def main() -> None:
    service = ExplanationService().warm()

    # --- batched requests across personas --------------------------------
    print("=" * 72)
    print(f"Serving a batch of {len(TRAFFIC)} requests")
    print("=" * 72)
    responses = service.ask_batch(TRAFFIC)
    for (persona_key, _), response in zip(TRAFFIC, responses):
        cached = " (scenario cached)" if response.scenario_cache_hit else ""
        print(f"\n[{persona_key} | {response.explanation.explanation_type}"
              f" | {response.elapsed_seconds * 1000:.0f} ms{cached}]")
        print(f"Q: {response.request.question}")
        print(f"A: {response.explanation.text}")

    # --- one question, every explanation type ----------------------------
    print()
    print("=" * 72)
    print("One question under all nine explanation types (one shared scenario)")
    print("=" * 72)
    request = ExplanationRequest(
        question="Why should I eat Cauliflower Potato Curry?", persona="paper")
    for name, response in sorted(service.explain_all_types(request).items()):
        print(f"\n[{name}]")
        print(response.explanation.text or "(no supporting evidence)")

    # --- sessions: follow-up questions ride the same profile -------------
    print()
    print("=" * 72)
    print("Session-based follow-ups")
    print("=" * 72)
    session = service.open_persona_session("pregnant_user")
    for question in ("What if I was pregnant?", "Why should I eat Spinach Frittata?"):
        response = service.ask(question, session_id=session.session_id)
        print(f"\n[{session.session_id}] Q: {question}")
        print(f"A: {response.explanation.text}")
    print(f"\nsession summary: {session.summary()}")

    print()
    print("=" * 72)
    print("Service statistics")
    print("=" * 72)
    print(service.stats().to_text())


if __name__ == "__main__":
    main()
