"""Counterfactual meal planning: how recommendations change with health conditions.

Run with::

    python examples/whatif_meal_planner.py

For each health condition modelled in FEO this example answers the
counterfactual question "What if I was <condition>?" (which foods become
forbidden or recommended), then re-runs the Health Coach with the
condition actually applied and shows how the top recommendations shift —
the kind of interactive, conversational use the paper positions FEO for.
"""

from repro import ExplanationEngine, paper_context, paper_user
from repro.ontology.feo import HEALTH_CONDITIONS


def main() -> None:
    engine = ExplanationEngine()
    user, context = paper_user(), paper_context()

    baseline = [r.recipe for r in engine.recommender.recommend(user, context, top_k=3)]
    print(f"Baseline top recommendations for {user.name}: {baseline}")
    print()

    for condition in sorted(HEALTH_CONDITIONS):
        explanation = engine.counterfactual_condition(condition, user, context)
        forbidden = sorted({item.subject for item in explanation.items_with_role("forbidden")})
        recommended = sorted({item.subject for item in explanation.items_with_role("recommended")})

        shifted_user = user.with_condition(condition)
        shifted = [r.recipe for r in engine.recommender.recommend(shifted_user, context, top_k=3)]

        print("=" * 72)
        print(f"What if I was {condition.replace('_', ' ')}?")
        print("  counterfactual explanation:", explanation.text)
        print(f"  foods that would be discouraged: {forbidden[:6]}")
        print(f"  foods that would be encouraged:  {recommended[:6]}")
        print(f"  top recommendations would become: {shifted}")
        changed = [recipe for recipe in baseline if recipe not in shifted]
        if changed:
            print(f"  (dropped from the baseline menu: {changed})")
        print()


if __name__ == "__main__":
    main()
