"""A personalised Health Coach session with explanations for every suggestion.

Run with::

    python examples/health_coach_session.py [persona]

where ``persona`` is one of the built-in personas (default: ``pregnant_user``).
This is the consumer-facing scenario the paper motivates: a recommender
(our Health Coach substitute) produces a ranked menu, and FEO explains
each suggestion with contextual, scientific and trace-based explanations,
plus a contrastive explanation against the runner-up.
"""

import sys

from repro import ExplanationEngine
from repro.core.questions import ContrastiveQuestion, WhyQuestion
from repro.users import PERSONAS, persona


def main(persona_key: str = "pregnant_user") -> None:
    user, context = persona(persona_key)
    engine = ExplanationEngine()

    print(f"Persona: {persona_key} ({user.name})")
    print("Profile:", user.summary())
    print("Context:", context.summary())
    print()

    recommendations = engine.recommender.recommend(user, context, top_k=3)
    if not recommendations:
        print("No recipe satisfies this user's hard constraints.")
        return

    for recommendation in recommendations:
        print("=" * 72)
        print(f"#{recommendation.rank}  {recommendation.recipe}  (score {recommendation.score:.2f})")
        question = WhyQuestion(text=f"Why should I eat {recommendation.recipe}?",
                               recipe=recommendation.recipe)
        scenario = engine.build_scenario(question, user, context, recommendation=recommendation)

        for explanation_type in ("contextual", "scientific", "trace_based"):
            explanation = engine.explain(question, user, context,
                                         explanation_type=explanation_type,
                                         recommendation=recommendation,
                                         scenario=scenario)
            print(f"\n[{explanation_type}]")
            print(" ", explanation.text)

        print()

    top, runner_up = recommendations[0], recommendations[1]
    contrast = ContrastiveQuestion(
        text=f"Why was {top.recipe} recommended over {runner_up.recipe}?",
        primary=top.recipe, secondary=runner_up.recipe)
    explanation = engine.explain(contrast, user, context, explanation_type="contrastive")
    print("=" * 72)
    print(f"Q: {contrast.text}")
    print("A:", explanation.text)


if __name__ == "__main__":
    key = sys.argv[1] if len(sys.argv) > 1 else "pregnant_user"
    if key not in PERSONAS:
        raise SystemExit(f"Unknown persona {key!r}; choose one of {PERSONAS}")
    main(key)
