"""Inspect the Food Explanation Ontology: Figures 1 and 2 plus a Turtle export.

Run with::

    python examples/ontology_inspection.py [output.ttl]

Prints the subclass tree under ``feo:Characteristic`` (Figure 1 of the
paper), the property lattice around ``isCharacteristicOf`` /
``isOpposedBy`` / ``hasCharacteristic`` (Figure 2), the reasoner's run
statistics, and optionally writes the full ontology + knowledge graph to a
Turtle file that can be loaded into any other triple store.
"""

import sys

from repro.core.queries import property_lattice_query
from repro.evaluation import ontology_metrics
from repro.foodkg import build_core_catalog, load_catalog
from repro.ontology import feo
from repro.ontology.feo import build_combined_ontology
from repro.owl import ClassHierarchy, Reasoner, render_tree


def main(output_path: str = "") -> None:
    graph = build_combined_ontology()
    load_catalog(build_core_catalog(), graph)

    print("Ontology + FoodKG metrics (asserted):")
    for key, value in ontology_metrics(graph).as_dict().items():
        print(f"  {key}: {value}")
    print()

    reasoner = Reasoner(graph)
    inferred = reasoner.run()
    report = reasoner.report
    print(f"Reasoning: {report.input_triples} asserted -> {len(inferred)} closed "
          f"(+{report.inferred_triples}) in {report.iterations} iterations, "
          f"{report.elapsed_seconds:.2f}s")
    print("Rule firings:", dict(sorted(report.rule_firings.items(), key=lambda kv: -kv[1])))
    print()

    print("Figure 1 — subclasses of feo:Characteristic:")
    hierarchy = ClassHierarchy(inferred)
    print(render_tree(hierarchy.tree(feo.Characteristic), inferred.namespace_manager))
    print()

    print("Figure 2 — the property lattice:")
    result = inferred.query(property_lattice_query())
    print(result.to_table(inferred.namespace_manager))
    print()

    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            handle.write(graph.serialize("turtle"))
        print(f"Wrote the asserted ontology + knowledge graph to {output_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "")
