"""Experiment E10: service-layer throughput on repeated/batched workloads.

The ROADMAP's north star is serving heavy multi-user traffic against one
ontology.  This benchmark quantifies what the service layer buys over the
naive pattern the seed code implied (construct an engine, ask, throw it
away): the prepared-query cache, the fingerprint-keyed closure cache and
the scenario cache together must make a repeated-query workload at least
5x faster than per-request engine construction (the ISSUE acceptance
criterion; in practice the gap is one to two orders of magnitude).
"""

from __future__ import annotations

import time

import pytest

from repro.core.engine import ExplanationEngine
from repro.core.queries import contextual_query, evaluate_contextual
from repro.service import ExplanationRequest, ExplanationService
from repro.sparql import query as sparql_query
from repro.users.personas import persona

#: A repeated-query workload: two distinct (persona, question) requests, each
#: arriving 8 times — the interactive-traffic shape the service targets
#: (many users re-asking a small working set of questions).
_UNIQUE_REQUESTS = [
    ("paper", "Why should I eat Cauliflower Potato Curry?"),
    ("pregnant_user", "What if I was pregnant?"),
]
_WORKLOAD = _UNIQUE_REQUESTS * 8


def _naive_loop(workload) -> float:
    """The seed's usage pattern: a fresh engine per request, no sharing."""
    start = time.perf_counter()
    for persona_key, question in workload:
        user, context = persona(persona_key)
        engine = ExplanationEngine()
        engine.ask(question, user, context)
    return time.perf_counter() - start


def _service_batch(workload) -> float:
    """The served pattern: one warmed service answering the same workload."""
    service = ExplanationService().warm()
    start = time.perf_counter()
    service.explain_batch([
        ExplanationRequest(question=question, persona=persona_key)
        for persona_key, question in workload
    ])
    return time.perf_counter() - start


def test_service_is_5x_faster_than_per_request_engines():
    """Acceptance criterion: >= 5x speedup on the repeated-query workload."""
    naive_seconds = _naive_loop(_WORKLOAD)
    service_seconds = _service_batch(_WORKLOAD)
    speedup = naive_seconds / service_seconds
    print(f"\nnaive loop: {naive_seconds:.2f}s, service batch: {service_seconds:.2f}s "
          f"-> speedup {speedup:.1f}x over {len(_WORKLOAD)} requests")
    assert speedup >= 5.0, (
        f"service must be >=5x faster than per-request engine construction, "
        f"got {speedup:.1f}x"
    )


def test_batch_amortises_scenario_construction():
    """Repeats in one batch hit the scenario cache; uniques miss exactly once."""
    service = ExplanationService().warm()
    responses = service.explain_batch([
        ExplanationRequest(question=question, persona=persona_key)
        for persona_key, question in _WORKLOAD
    ])
    unique = {(persona_key, question) for persona_key, question in _WORKLOAD}
    stats = service.stats()
    assert stats.scenario_cache_misses == len(unique)
    assert stats.scenario_cache_hits == len(_WORKLOAD) - len(unique)
    # Cached repeats must serve the same answer.
    by_question = {}
    for response in responses:
        text = by_question.setdefault(response.request.question, response.explanation.text)
        assert response.explanation.text == text


def test_repeated_ask_hits_closure_cache(benchmark, engine, user, context):
    """The steady-state request path (all caches warm), measured."""
    service = ExplanationService(engine=engine).warm()
    question = "Why should I eat Cauliflower Potato Curry?"
    service.ask(question, user=user, context=context)  # prime every layer

    response = benchmark(service.ask, question, user=user, context=context)

    assert response.scenario_cache_hit
    assert "Autumn" in [item.subject for item in response.explanation.items]


def test_prepared_query_beats_reparsing(benchmark, cq1_scenario):
    """Listing 1 via the prepared cache vs. parse-per-call, same rows."""
    graph, question_iri = cq1_scenario.inferred, cq1_scenario.question_iri
    fresh = sparql_query(graph, contextual_query(question_iri, match_ecosystem=True))
    evaluate_contextual(graph, question_iri, match_ecosystem=True)  # warm the cache

    result = benchmark(evaluate_contextual, graph, question_iri, True)

    assert sorted(tuple(r) for r in result) == sorted(tuple(r) for r in fresh)
