"""Experiment E7 (Listing 2): the contrastive-explanation competency question.

Reproduces Listing 2 — "Why should I eat Butternut Squash Soup over a
Broccoli Cheddar Soup?" — and its result table (fact: feo:Autumn /
feo:SeasonCharacteristic; foil: feo:Broccoli / AllergicFoodCharacteristic).
"""

from __future__ import annotations

from repro.core.generators import ContrastiveExplanationGenerator
from repro.core.queries import contrastive_query
from repro.sparql import prepare


def test_listing2_query_result(benchmark, cq2_scenario):
    prepared = prepare(contrastive_query(cq2_scenario.question_iri),
                       cq2_scenario.inferred.namespace_manager)

    result = benchmark(prepared.evaluate, cq2_scenario.inferred)

    print("\nListing 2 — contrastive explanation query result")
    print(result.to_table(cq2_scenario.inferred.namespace_manager))

    fact_pairs = {(row["factA"].local_name(), row["factType"].local_name()) for row in result}
    foil_pairs = {(row["foilB"].local_name(), row["foilType"].local_name()) for row in result}
    # The two rows of the paper's result table.
    assert ("Autumn", "SeasonCharacteristic") in fact_pairs
    assert ("Broccoli", "AllergicFoodCharacteristic") in foil_pairs
    # Knowledge-internal types are filtered out, exactly as in the paper's query.
    assert all(fact_type != "IngredientCharacteristic" for _, fact_type in fact_pairs)
    assert all(foil_type != "IngredientCharacteristic" for _, foil_type in foil_pairs)


def test_listing2_full_explanation_generation(benchmark, cq2_scenario):
    generator = ContrastiveExplanationGenerator()

    explanation = benchmark(generator.generate, cq2_scenario)

    print("\nListing 2 — rendered contrastive explanation")
    print(" ", explanation.text)
    facts = {item.subject for item in explanation.items_with_role("fact")}
    foils = {item.subject for item in explanation.items_with_role("foil")}
    assert "Autumn" in facts
    assert "Broccoli" in foils
    assert "allergic to Broccoli" in explanation.text
