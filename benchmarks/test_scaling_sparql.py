"""Experiment E9b (ablation): SPARQL query cost vs. knowledge-graph size.

Measures the three competency-question queries over reasoned scenario
graphs built from increasingly large synthetic catalogues, plus the cost
split between parsing and evaluation (prepared vs. unprepared queries).
The paper stresses that its queries stay simple; this ablation shows they
also stay cheap as the knowledge graph grows.

The planner gates quantify the cost-based query planner
(:mod:`repro.sparql.planner`): an adversarially-ordered competency-style
query must run ≥ 5× faster planned than naive, and the paper's
well-ordered listings must not regress (≤ 1.1× naive).  Each gate appends
its measurements to ``BENCH_sparql.json`` (CI uploads it as an artifact).
"""

from __future__ import annotations

import json
import os

import pytest

from conftest import best_of, scaled

from repro.core.engine import ExplanationEngine
from repro.core.queries import (
    PREFIXES,
    contextual_query,
    contextual_template,
    contrastive_template,
    counterfactual_template,
)
from repro.core.questions import ContrastiveQuestion, WhatIfConditionQuestion, WhyQuestion
from repro.foodkg import generate_catalog
from repro.sparql import parse_query, prepare
from repro.users.personas import paper_context, paper_user


def _scenario_for_scale(extra_recipes: int):
    catalog = generate_catalog(extra_ingredients=extra_recipes // 3, extra_recipes=extra_recipes)
    engine = ExplanationEngine(catalog=catalog)
    question = WhyQuestion(text="Why should I eat Cauliflower Potato Curry?",
                           recipe="Cauliflower Potato Curry")
    return engine.build_scenario(question, paper_user(), paper_context())


def _record_bench(key: str, payload: dict) -> None:
    """Merge one gate's measurements into the BENCH_sparql.json summary."""
    path = os.environ.get("REPRO_BENCH_SPARQL_OUT", "BENCH_sparql.json")
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


@pytest.mark.parametrize("extra_recipes", [0, 100, 300],
                         ids=["core", "core+100recipes", "core+300recipes"])
def test_contextual_query_scaling(benchmark, extra_recipes):
    scenario = _scenario_for_scale(extra_recipes)
    prepared = prepare(contextual_query(scenario.question_iri),
                       scenario.inferred.namespace_manager)

    result = benchmark(prepared.evaluate, scenario.inferred)

    pairs = {(row["characteristic"].local_name(), row["classes"].local_name()) for row in result}
    print(f"\ncontextual query over {len(scenario.inferred)} triples -> {len(pairs)} rows")
    # The paper's expected row must survive at every scale.
    assert ("Autumn", "SeasonCharacteristic") in pairs


def test_query_parse_cost(benchmark, cq1_scenario):
    query_text = contextual_query(cq1_scenario.question_iri)

    algebra = benchmark(parse_query, query_text, cq1_scenario.inferred.namespace_manager)
    assert algebra is not None


def test_prepared_query_amortises_parsing(benchmark, cq1_scenario):
    query_text = contextual_query(cq1_scenario.question_iri)
    prepared = prepare(query_text, cq1_scenario.inferred.namespace_manager)

    def run_five_times():
        return [len(list(prepared.evaluate(cq1_scenario.inferred))) for _ in range(5)]

    counts = benchmark(run_five_times)
    assert len(set(counts)) == 1


# ---------------------------------------------------------------------------
# Planner gates
# ---------------------------------------------------------------------------
#: The contextual competency question with its triple patterns ordered
#: worst-first: the unselective ``?characteristic a ?classes`` join space
#: opens the query and two cartesian patterns follow, so the naive
#: left-to-right evaluator carries |types| x |system| x |user| intermediate
#: rows before anything selective runs.  The planner must recover the
#: selective order (start from the bound ?question) from the indexes.
ADVERSARIAL_CONTEXTUAL = PREFIXES + """
SELECT DISTINCT ?characteristic ?classes
WHERE {
  ?characteristic a ?classes .
  ?systemChar a feo:SystemCharacteristic .
  ?userChar a feo:UserCharacteristic .
  ?classes rdfs:subClassOf feo:Characteristic .
  FILTER ( ?characteristic = ?systemChar || ?characteristic = ?userChar ) .
  FILTER NOT EXISTS { ?classes rdfs:subClassOf eo:knowledge } .
  ?characteristic feo:isInternal false .
  ?parameter feo:hasCharacteristic ?characteristic .
  ?question feo:hasParameter ?parameter .
}
"""


def test_planner_speedup_on_adversarial_order():
    """Planned evaluation must be ≥ 5× faster than naive on a bad ordering."""
    scenario = _scenario_for_scale(scaled(120))
    graph = scenario.inferred
    prepared = prepare(ADVERSARIAL_CONTEXTUAL, graph.namespace_manager)
    bindings = {"question": scenario.question_iri}
    prepared.evaluate(graph, bindings)  # compile + warm the plan

    planned_best, planned_result = best_of(3, lambda: prepared.evaluate(graph, bindings))
    naive_best, naive_result = best_of(2, lambda: prepared.evaluate_naive(graph, bindings))

    planned_rows = sorted(tuple(str(v) for v in row) for row in planned_result)
    naive_rows = sorted(tuple(str(v) for v in row) for row in naive_result)
    assert planned_rows == naive_rows and planned_rows

    speedup = naive_best / planned_best
    print(f"\nadversarial contextual over {len(graph)} triples: "
          f"naive {naive_best:.4f}s, planned {planned_best:.4f}s -> {speedup:.1f}x")
    _record_bench("adversarial_contextual", {
        "triples": len(graph),
        "rows": len(planned_rows),
        "naive_seconds": naive_best,
        "planned_seconds": planned_best,
        "speedup": round(speedup, 2),
    })
    assert speedup >= 5.0, (
        f"planner speedup {speedup:.1f}x below the 5x gate "
        f"(naive {naive_best:.4f}s, planned {planned_best:.4f}s)"
    )


def _listing_cases():
    return [
        ("listing1_contextual", contextual_template(),
         WhyQuestion(text="Why should I eat Cauliflower Potato Curry?",
                     recipe="Cauliflower Potato Curry")),
        ("listing2_contrastive", contrastive_template(),
         ContrastiveQuestion(
             text="Why should I eat Butternut Squash Soup over a Broccoli Cheddar Soup?",
             primary="Butternut Squash Soup", secondary="Broccoli Cheddar Soup")),
        ("listing3_counterfactual", counterfactual_template(),
         WhatIfConditionQuestion(text="What if I was pregnant?", condition="pregnancy")),
    ]


@pytest.mark.parametrize("name,template,question",
                         _listing_cases(),
                         ids=[case[0] for case in _listing_cases()])
def test_planner_no_regression_on_paper_listings(name, template, question,
                                                 engine, user, context):
    """The already-well-ordered paper listings must not regress (≤ 1.1× naive)."""
    scenario = engine.build_scenario(question, user, context)
    graph = scenario.inferred
    prepared = prepare(template, graph.namespace_manager)
    bindings = {"question": scenario.question_iri}
    prepared.evaluate(graph, bindings)  # compile + warm the plan

    def planned_five():
        for _ in range(5):
            prepared.evaluate(graph, bindings)

    def naive_five():
        for _ in range(5):
            prepared.evaluate_naive(graph, bindings)

    planned_best, _ = best_of(5, planned_five)
    naive_best, _ = best_of(5, naive_five)

    planned_rows = sorted(tuple(str(v) for v in row)
                          for row in prepared.evaluate(graph, bindings))
    naive_rows = sorted(tuple(str(v) for v in row)
                        for row in prepared.evaluate_naive(graph, bindings))
    assert planned_rows == naive_rows

    ratio = planned_best / naive_best
    print(f"\n{name}: naive {naive_best:.4f}s, planned {planned_best:.4f}s "
          f"-> ratio {ratio:.2f}")
    _record_bench(name, {
        "triples": len(graph),
        "rows": len(planned_rows),
        "naive_seconds": naive_best,
        "planned_seconds": planned_best,
        "planned_over_naive": round(ratio, 3),
    })
    assert ratio <= 1.1, (
        f"{name}: planned evaluation regressed to {ratio:.2f}x naive "
        f"(naive {naive_best:.4f}s, planned {planned_best:.4f}s)"
    )
