"""Experiment E9b (ablation): SPARQL query cost vs. knowledge-graph size.

Measures the three competency-question queries over reasoned scenario
graphs built from increasingly large synthetic catalogues, plus the cost
split between parsing and evaluation (prepared vs. unprepared queries).
The paper stresses that its queries stay simple; this ablation shows they
also stay cheap as the knowledge graph grows.
"""

from __future__ import annotations

import pytest

from repro.core.engine import ExplanationEngine
from repro.core.queries import contextual_query
from repro.core.questions import WhyQuestion
from repro.foodkg import generate_catalog
from repro.sparql import parse_query, prepare
from repro.users.personas import paper_context, paper_user


def _scenario_for_scale(extra_recipes: int):
    catalog = generate_catalog(extra_ingredients=extra_recipes // 3, extra_recipes=extra_recipes)
    engine = ExplanationEngine(catalog=catalog)
    question = WhyQuestion(text="Why should I eat Cauliflower Potato Curry?",
                           recipe="Cauliflower Potato Curry")
    return engine.build_scenario(question, paper_user(), paper_context())


@pytest.mark.parametrize("extra_recipes", [0, 100, 300],
                         ids=["core", "core+100recipes", "core+300recipes"])
def test_contextual_query_scaling(benchmark, extra_recipes):
    scenario = _scenario_for_scale(extra_recipes)
    prepared = prepare(contextual_query(scenario.question_iri),
                       scenario.inferred.namespace_manager)

    result = benchmark(prepared.evaluate, scenario.inferred)

    pairs = {(row["characteristic"].local_name(), row["classes"].local_name()) for row in result}
    print(f"\ncontextual query over {len(scenario.inferred)} triples -> {len(pairs)} rows")
    # The paper's expected row must survive at every scale.
    assert ("Autumn", "SeasonCharacteristic") in pairs


def test_query_parse_cost(benchmark, cq1_scenario):
    query_text = contextual_query(cq1_scenario.question_iri)

    algebra = benchmark(parse_query, query_text, cq1_scenario.inferred.namespace_manager)
    assert algebra is not None


def test_prepared_query_amortises_parsing(benchmark, cq1_scenario):
    query_text = contextual_query(cq1_scenario.question_iri)
    prepared = prepare(query_text, cq1_scenario.inferred.namespace_manager)

    def run_five_times():
        return [len(list(prepared.evaluate(cq1_scenario.inferred))) for _ in range(5)]

    counts = benchmark(run_five_times)
    assert len(set(counts)) == 1
