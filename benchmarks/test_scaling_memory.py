"""Storage-engine gates: dictionary encoding vs. term-tuple storage.

Two acceptance gates for the encoded triple store:

* **Peak memory** — building the synthetic scaling fixture into the
  dictionary-encoded :class:`~repro.rdf.graph.Graph` must allocate at
  least 30% less peak memory (tracemalloc) than a term-tuple baseline
  store using the pre-encoding layout (term-keyed SPO/POS/OSP indexes and
  a set of term tuples).  The fixture constructs a *fresh* term object per
  position, the way parsers and the FoodKG loader do: the baseline
  retains every copy, the encoded store interns one canonical term per
  distinct value and keeps compact ``(int, int, int)`` tuples.
* **Closure speed** — the encoded reasoner (:meth:`Reasoner.run`) must
  materialise the scaling knowledge graph at least 2x faster than the
  term-object engine it replaced (kept as :meth:`Reasoner.run_term`),
  producing an identical closure.

Both measurements land in ``BENCH_memory.json`` (CI uploads it as an
artifact next to ``BENCH_sparql.json``).
"""

from __future__ import annotations

import gc
import json
import os
import tracemalloc
from typing import Dict, Set, Tuple

from conftest import best_of, build_kg, scaled

from repro.owl import Reasoner
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal

_FOOD = "http://purl.org/heals/food/"
_KB = "http://idea.rpi.edu/heals/kb/"


def _record_bench(key: str, payload: dict) -> None:
    """Merge one gate's measurements into the BENCH_memory.json summary."""
    path = os.environ.get("REPRO_BENCH_MEMORY_OUT", "BENCH_memory.json")
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


class TermTupleStore:
    """The pre-encoding storage layout: term tuples and term-keyed indexes.

    A minimal reconstruction of what ``Graph`` stored before dictionary
    encoding — the baseline fixture the memory gate compares against.
    """

    def __init__(self) -> None:
        self._triples: Set[Tuple] = set()
        self._spo: Dict = {}
        self._pos: Dict = {}
        self._osp: Dict = {}
        self._pred_counts: Dict = {}

    def add(self, triple: Tuple) -> None:
        if triple in self._triples:
            return
        s, p, o = triple
        self._triples.add(triple)
        self._pred_counts[p] = self._pred_counts.get(p, 0) + 1
        self._spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)

    def __len__(self) -> int:
        return len(self._triples)


def _fixture_triples(scale: int):
    """Synthetic KG triples with freshly-constructed terms per *position*.

    Shaped like the FoodKG loader's output: each recipe links a handful of
    ingredients from a shared pool, carries a type, a label and a numeric
    nutrient literal, with realistic FoodKG-length IRIs.  Every position
    of every statement constructs a *new* term object even when its value
    repeats — exactly what the N-Triples/Turtle parsers and the catalog
    loader produce — so the baseline retains one copy per statement while
    the encoded store interns one canonical term per distinct value.
    """

    def recipe_iri(index: int) -> IRI:
        return IRI(f"{_KB}recipe/scaling-benchmark-recipe-{index:05d}")

    links_per_recipe = 8
    ingredient_pool = 40 + scale // 25
    for recipe_index in range(scale):
        yield (recipe_iri(recipe_index),
               IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
               IRI(_FOOD + "Recipe"))
        yield (recipe_iri(recipe_index),
               IRI("http://www.w3.org/2000/01/rdf-schema#label"),
               Literal(f"Scaling Recipe {recipe_index}"))
        yield (recipe_iri(recipe_index), IRI(_FOOD + "hasCookTime"),
               Literal(recipe_index % 120))
        for link in range(links_per_recipe):
            pool_slot = (recipe_index * links_per_recipe + link) % ingredient_pool
            yield (recipe_iri(recipe_index), IRI(_FOOD + "hasIngredient"),
                   IRI(f"{_KB}usda#scaling-benchmark-ingredient-"
                       f"{pool_slot:04d}-with-descriptive-usda-style-suffix"))


def _traced_build(builder):
    """(peak_bytes, retained_bytes, store) for one store-building callable."""
    gc.collect()
    tracemalloc.start()
    store = builder()
    retained, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, retained, store


def test_encoded_store_peak_memory_is_30pct_smaller():
    """Gate: >=30% peak-memory reduction vs. the term-tuple baseline."""
    scale = scaled(3000)

    def build_baseline():
        store = TermTupleStore()
        for triple in _fixture_triples(scale):
            store.add(triple)
        return store

    def build_encoded():
        graph = Graph(bind_defaults=False)
        graph.addN(_fixture_triples(scale))
        return graph

    baseline_peak, baseline_retained, baseline = _traced_build(build_baseline)
    encoded_peak, encoded_retained, encoded = _traced_build(build_encoded)

    assert len(encoded) == len(baseline), "stores diverged on the same fixture"
    reduction = 1.0 - encoded_peak / baseline_peak
    retained_reduction = 1.0 - encoded_retained / baseline_retained
    print(f"\nstorage fixture ({len(encoded)} triples): "
          f"baseline peak={baseline_peak / 1e6:.1f}MB "
          f"encoded peak={encoded_peak / 1e6:.1f}MB "
          f"-> {reduction:.0%} less (retained: {retained_reduction:.0%} less, "
          f"{len(encoded.dictionary)} interned terms)")
    _record_bench("storage_peak_memory", {
        "triples": len(encoded),
        "interned_terms": len(encoded.dictionary),
        "baseline_peak_bytes": baseline_peak,
        "encoded_peak_bytes": encoded_peak,
        "baseline_retained_bytes": baseline_retained,
        "encoded_retained_bytes": encoded_retained,
        "peak_reduction": round(reduction, 4),
        "retained_reduction": round(retained_reduction, 4),
    })
    assert reduction >= 0.30, (
        f"encoded storage must cut peak memory by >=30%, got {reduction:.0%}"
    )


def test_encoded_reasoner_closure_is_2x_faster_than_term_engine():
    """Gate: >=2x on the closure hot path vs. the term-object run()."""
    _, graph = build_kg(extra_recipes=scaled(100), extra_ingredients=scaled(50))

    term_seconds, term_closure = best_of(3, lambda: Reasoner(graph).run_term())
    encoded_seconds, encoded_closure = best_of(3, lambda: Reasoner(graph).run())

    assert encoded_closure == term_closure, (
        "encoded closure diverged from the term-engine closure")
    speedup = term_seconds / encoded_seconds
    print(f"\nclosure hot path: term engine={term_seconds * 1000:.1f}ms "
          f"encoded={encoded_seconds * 1000:.1f}ms -> {speedup:.1f}x "
          f"(asserted={len(graph)}, closed={len(encoded_closure)})")
    _record_bench("reasoner_closure_speedup", {
        "asserted_triples": len(graph),
        "closed_triples": len(encoded_closure),
        "term_engine_seconds": round(term_seconds, 6),
        "encoded_seconds": round(encoded_seconds, 6),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 2.0, (
        f"encoded closure must be >=2x faster than the term engine, "
        f"got {speedup:.1f}x"
    )
