"""Experiment E4 (Figure 3): the fact / foil decision matrix.

Figure 3 defines which characteristics at the parameter × ecosystem
intersection count as facts, foils or neither.  This benchmark regenerates
the full decision matrix from the pure classification function and also
checks the concrete instances the paper's contrastive example produces
(autumn as a fact, the broccoli allergy as a foil) in the reasoned
scenario graph.
"""

from __future__ import annotations

from repro.core.facts_foils import annotate_facts_and_foils, classify_characteristic, fact_foil_matrix
from repro.ontology import eo, feo
from repro.owl import Reasoner
from repro.rdf.namespace import FOODKG
from repro.rdf.terms import IRI

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


def test_fig3_decision_matrix(benchmark):
    rows = benchmark(fact_foil_matrix)

    print("\nFigure 3 — fact/foil classification matrix")
    header = f"{'supports':<10} {'opposes':<9} {'present':<9} {'opposed-by':<11} verdict"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{str(row['supports_parameter']):<10} {str(row['opposes_parameter']):<9} "
              f"{str(row['present_in_ecosystem']):<9} {str(row['opposed_by_ecosystem']):<11} "
              f"{row['verdict']}")

    # The four canonical cells of the figure.
    assert classify_characteristic(True, True) == "fact"
    assert classify_characteristic(True, False) == "foil"
    assert classify_characteristic(False, True, opposes_parameter=True) == "foil"
    assert classify_characteristic(False, False, opposes_parameter=True) == "neither"
    verdicts = {row["verdict"] for row in rows}
    assert verdicts == {"fact", "foil", "neither"}


def test_fig3_reasoned_instances_match_matrix(benchmark, cq2_scenario, engine, user, context):
    inferred = cq2_scenario.inferred

    # The paper's own example instances.
    assert (feo.SEASONS["autumn"], _RDF_TYPE, eo.Fact) in inferred
    assert (IRI(FOODKG.Broccoli), _RDF_TYPE, eo.Foil) in inferred

    # Measure the closed-world annotation pass on a freshly reasoned graph.
    from repro.core.questions import ContrastiveQuestion
    question = ContrastiveQuestion(text="Why A over B?", primary="Butternut Squash Soup",
                                   secondary="Broccoli Cheddar Soup")

    def annotate_fresh():
        scenario = engine.builder.build(question, user, context, run_reasoner=False)
        graph = Reasoner(scenario.asserted).run()
        return annotate_facts_and_foils(graph, scenario.ecosystem_iri)

    added = benchmark.pedantic(annotate_fresh, rounds=1, iterations=1)
    print(f"\nclosed-world annotation added: {added}")
    assert added["foils"] >= 1
