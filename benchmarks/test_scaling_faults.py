"""Fault-tolerance gate: seeded chaos against the sharded serving fleet.

The robustness claim the serving layer makes is *differential*: under
injected worker crashes, latency spikes and transient query errors the
fleet may slow down, but it must never return a wrong answer, never hang
a request, and must recover to within 2x of its fault-free tail latency
once the faults stop.  This gate measures exactly that, with the
deterministic seeded injector from :mod:`repro.testing.faults`:

1. **Oracle phase** — a fault-free serial service answers every tenant
   once; those texts are the ground truth every later answer is compared
   against.  The warm closures are persisted with
   :func:`repro.storage.save_snapshot` (the atomic-write path), and a
   deliberately *torn* second save must leave that snapshot byte-intact.
2. **Fault-free baseline** — the fleet cold-starts from the snapshot and
   serves the mixed-tenant workload cleanly; client-side p99 recorded.
3. **Chaos phase** — the same fleet, same workload, with seeded worker
   crashes, latency spikes and transient query errors active.  Clients
   are well-behaved: they honour ``Retry-After`` on 503-family errors
   instead of hot-looping.  Every request must eventually succeed with
   the oracle's exact text; the watchdog must restore the full worker
   complement.
4. **Breaker phase** — a dense burst of injected failures at one
   tenant's home shard must open its circuit breaker (fast typed
   rejections, no queue pile-up), and the shard must close again via a
   half-open probe once the faults stop.
5. **Recovery phase** — injection disabled again; client-side p99 must
   land within ``RECOVERY_P99_FACTOR``x of the fault-free baseline.

Injection is off by default (``faults.ACTIVE is None``) and the hooks
are single pointer checks, so the fault machinery adds no measurable
overhead to ``BENCH_concurrent`` — that gate's >=3x throughput floor is
what enforces the no-regression budget.  Updates are deliberately absent
here (they are never retried internally; the chaos unit suite covers
them) — this gate drives idempotent asks, where transparent retry is
sound.

Measurements land in ``BENCH_faults.json`` (CI uploads it as an artifact
next to ``BENCH_concurrent.json``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import replace

import pytest
from conftest import BENCH_SCALE, build_kg, scaled

from repro.core.engine import ExplanationEngine
from repro.core.questions import parse_question
from repro.core.scenario import ScenarioBuilder
from repro.owl import MaterializationCache
from repro.service import (
    DeadlineExceededError,
    ExplanationService,
    ShardedExplanationService,
    UnavailableError,
)
from repro.storage import ClosureEntry, load_snapshot, save_snapshot
from repro.testing import faults
from repro.testing.faults import Fault, FaultInjector, InjectedFault, injected
from repro.users.personas import paper_context, paper_user

QUESTION = "Why should I eat Cauliflower Potato Curry?"

#: Fixed-size KG: sets the per-request reasoning cost (the thing crashes
#: interrupt and retries re-pay); the smoke scale shrinks traffic volume.
KG_EXTRA_RECIPES = 120
KG_EXTRA_INGREDIENTS = 60

NUM_SHARDS = 4
WORKERS_PER_SHARD = 2
QUEUE_SIZE = 32
CLIENT_THREADS = 6
TENANTS = max(8, scaled(24))
#: Requests per measured phase (baseline / chaos / recovery).
PHASE_REQUESTS = max(48, scaled(300))
#: One seed drives the injector, the breaker jitter and the retry jitter.
SEED = 1337
#: Chaos mix: worker crashes kill a thread mid-request (salvaged +
#: restarted), latency spikes stretch the query path, transient errors
#: exercise the internal idempotent-ask retry.
CRASH_PROB = 0.04
SPIKE_PROB = 0.08
SPIKE_MS = 40.0
ERROR_PROB = 0.03
REQUEST_TIMEOUT = 10.0
#: Per-request client retry budget (chaos clients back off, not hot-loop).
CLIENT_RETRY_BUDGET = 30.0
#: Recovered tail must land within this factor of the fault-free tail.
RECOVERY_P99_FACTOR = 2.0
#: Noise floor for the tail comparison: sub-50ms p99s on a loaded CI
#: runner are scheduler jitter, not serving-layer regressions.
P99_FLOOR_SECONDS = 0.05
#: A phase that has not finished in this long has hung requests.
PHASE_WALL_LIMIT = 240.0


def _record_bench(key: str, payload: dict) -> None:
    """Merge one gate's measurements into the BENCH_faults.json summary."""
    path = os.environ.get("REPRO_BENCH_FAULTS_OUT", "BENCH_faults.json")
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


def _tenants(count):
    base = paper_user()
    return [replace(base, identifier=f"fault-tenant-{n:04d}", name=f"Tenant {n}")
            for n in range(count)]


def _p99(samples):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]


def _drive(fleet, tenants, context, requests, clients=CLIENT_THREADS):
    """Run ``requests`` asks through well-behaved retrying clients.

    Returns ``(latencies, answers, failures, retries, hung)`` where
    ``latencies`` are per-request client-side seconds (first attempt to
    final success), ``answers`` maps request index to
    ``(tenant_id, text)``, ``failures`` collects requests that exhausted
    their retry budget, ``retries`` counts backoff-and-retry events, and
    ``hung`` lists client threads still alive after the wall limit.
    """
    lock = threading.Lock()
    latencies, answers, failures = [], {}, []
    retry_count = [0]

    def client(slot):
        for n in range(slot, requests, clients):
            tenant = tenants[n % len(tenants)]
            budget = time.monotonic() + CLIENT_RETRY_BUDGET
            started = time.perf_counter()
            while True:
                try:
                    response = fleet.ask(QUESTION, user=tenant, context=context,
                                         timeout=REQUEST_TIMEOUT)
                except UnavailableError as exc:
                    if time.monotonic() >= budget:
                        with lock:
                            failures.append((n, exc))
                        break
                    # Honour the server's backoff hint instead of hot-looping.
                    time.sleep(min(exc.retry_after or 0.05, 0.5))
                    with lock:
                        retry_count[0] += 1
                except DeadlineExceededError as exc:
                    if time.monotonic() >= budget:
                        with lock:
                            failures.append((n, exc))
                        break
                    with lock:
                        retry_count[0] += 1
                else:
                    elapsed = time.perf_counter() - started
                    with lock:
                        latencies.append(elapsed)
                        answers[n] = (tenant.identifier, response.explanation.text)
                    break

    threads = [threading.Thread(target=client, args=(slot,), daemon=True)
               for slot in range(clients)]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + PHASE_WALL_LIMIT
    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()))
    hung = [thread.name for thread in threads if thread.is_alive()]
    return latencies, answers, failures, retry_count[0], hung


def _check_phase(name, oracle, latencies, answers, failures, hung, expected):
    assert not hung, f"{name}: client threads hung: {hung}"
    assert not failures, f"{name}: requests exhausted retries: {failures[:3]}"
    assert len(answers) == expected, \
        f"{name}: {expected - len(answers)} requests vanished"
    wrong = [n for n, (tenant_id, text) in answers.items()
             if text != oracle[tenant_id]]
    assert not wrong, \
        f"{name}: {len(wrong)} answers diverged from the fault-free oracle " \
        f"(first: request {wrong[0]})"
    assert len(latencies) == expected


def test_fleet_serves_correctly_under_seeded_chaos(tmp_path):
    assert faults.ACTIVE is None, \
        "fault injection must be off by default (zero-overhead guarantee)"

    catalog, graph = build_kg(extra_recipes=KG_EXTRA_RECIPES,
                              extra_ingredients=KG_EXTRA_INGREDIENTS)
    tenants = _tenants(TENANTS)
    context = paper_context()
    question = parse_question(QUESTION)

    # ------------------------------------------------------------------
    # Phase 1: fault-free oracle + atomic snapshot (with a torn save).
    # ------------------------------------------------------------------
    oracle_builder = ScenarioBuilder(
        catalog, base_graph=graph,
        closure_cache=MaterializationCache(max_size=TENANTS + 8))
    oracle_service = ExplanationService(
        engine=ExplanationEngine(builder=oracle_builder),
        max_cached_scenarios=TENANTS + 8)
    oracle = {}
    labels = {}
    for tenant in tenants:
        response = oracle_service.ask(QUESTION, user=tenant, context=context)
        oracle[tenant.identifier] = response.explanation.text
    for tenant in tenants:
        scenario = oracle_service.engine.build_scenario(question, tenant, context)
        labels[scenario.asserted.fingerprint()] = tenant.identifier
    closures = [
        ClosureEntry(asserted=asserted, closure=closure, post_added=post_added,
                     label=labels[asserted.fingerprint()])
        for asserted, closure, post_added in oracle_builder.closure_cache.export_entries()
    ]
    snap_path = str(tmp_path / "fleet.snap")
    snap_stats = save_snapshot(snap_path, graph, closures=closures)
    good_bytes = open(snap_path, "rb").read()

    # A torn write mid-save must leave the existing snapshot byte-intact.
    torn = FaultInjector(
        faults=[Fault(site="snapshot_write", action="error", at=(0,))],
        seed=SEED)
    with injected(torn):
        with pytest.raises(InjectedFault):
            save_snapshot(snap_path, graph, closures=closures)
    assert open(snap_path, "rb").read() == good_bytes, \
        "torn snapshot write damaged the previous snapshot"
    assert len(load_snapshot(snap_path).closures) == len(closures)

    # ------------------------------------------------------------------
    # Phase 2: fault-free baseline on the snapshot-seeded fleet.
    # ------------------------------------------------------------------
    fleet = ShardedExplanationService(
        num_shards=NUM_SHARDS,
        workers_per_shard=WORKERS_PER_SHARD,
        queue_size=QUEUE_SIZE,
        snapshot=snap_path,
        catalog=catalog,
        max_cached_scenarios=TENANTS + 8,
        closure_cache_size=TENANTS + 8,
        request_timeout=REQUEST_TIMEOUT,
        retry_attempts=3,
        retry_backoff=0.02,
        breaker_failure_threshold=4,
        breaker_cooldown=0.2,
        wedge_timeout=60.0,
        watchdog_interval=0.05,
        fault_seed=SEED,
    )
    fleet.warm([(question, tenant, context) for tenant in tenants])

    base_lat, base_ans, base_fail, base_retries, base_hung = _drive(
        fleet, tenants, context, PHASE_REQUESTS)
    _check_phase("baseline", oracle, base_lat, base_ans, base_fail,
                 base_hung, PHASE_REQUESTS)
    assert base_retries == 0, "fault-free baseline should never need retries"
    p99_clean = _p99(base_lat)

    # ------------------------------------------------------------------
    # Phase 3: seeded chaos — crashes, latency spikes, transient errors.
    # ------------------------------------------------------------------
    chaos = FaultInjector(faults=[
        Fault(site="worker", action="crash", prob=CRASH_PROB),
        Fault(site="query", action="latency", prob=SPIKE_PROB,
              delay_ms=SPIKE_MS),
        Fault(site="query", action="error", prob=ERROR_PROB),
    ], seed=SEED)
    with injected(chaos):
        chaos_lat, chaos_ans, chaos_fail, chaos_retries, chaos_hung = _drive(
            fleet, tenants, context, PHASE_REQUESTS)
    _check_phase("chaos", oracle, chaos_lat, chaos_ans, chaos_fail,
                 chaos_hung, PHASE_REQUESTS)
    crashes = len(chaos.fired_at("worker"))
    spikes = sum(1 for _, action, _ in chaos.fired_at("query")
                 if action == "latency")
    errors = sum(1 for _, action, _ in chaos.fired_at("query")
                 if action == "error")
    assert crashes > 0, "the seeded chaos run never killed a worker"
    assert spikes > 0 and errors > 0, "the seeded chaos run was too quiet"

    # The watchdog must restore the full worker complement.
    full_complement = NUM_SHARDS * WORKERS_PER_SHARD
    recovery_deadline = time.monotonic() + 30.0
    while time.monotonic() < recovery_deadline:
        stats = fleet.stats()
        if stats.workers_live == full_complement:
            break
        time.sleep(0.05)
    stats = fleet.stats()
    assert stats.workers_live == full_complement, \
        f"watchdog left {full_complement - stats.workers_live} workers dead"
    assert stats.workers_restarted >= crashes, \
        "every crashed worker must be restarted"

    # ------------------------------------------------------------------
    # Phase 4: a dense failure burst opens one shard's breaker, which
    # then recovers through a half-open probe.
    # ------------------------------------------------------------------
    victim = tenants[0]
    burst = FaultInjector(
        faults=[Fault(site="query", action="error", every=1)], seed=SEED)
    opened = False
    with injected(burst):
        for _ in range(8):
            try:
                fleet.ask(QUESTION, user=victim, context=context,
                          timeout=REQUEST_TIMEOUT)
            except UnavailableError as exc:
                if exc.reason == "breaker_open":
                    opened = True
                    break
            except InjectedFault:
                continue
    assert opened, "sustained failures never opened the victim shard's breaker"
    breaker_opens = fleet.stats().breaker_opens
    assert breaker_opens >= 1

    # With faults gone, honouring Retry-After must get the tenant served
    # again (the half-open probe closes the breaker).
    closed_deadline = time.monotonic() + 30.0
    recovered_text = None
    while time.monotonic() < closed_deadline:
        try:
            recovered_text = fleet.ask(QUESTION, user=victim, context=context,
                                       timeout=REQUEST_TIMEOUT).explanation.text
            break
        except UnavailableError as exc:
            time.sleep(min(exc.retry_after or 0.05, 0.5))
    assert recovered_text == oracle[victim.identifier], \
        "the victim shard never recovered from its open breaker"

    # ------------------------------------------------------------------
    # Phase 5: recovered steady state — tail must be near the baseline.
    # Best-of-two rounds, mirroring conftest.best_of: with phase-sized
    # samples p99 degenerates to the max, and one noisy-neighbour burst
    # on a shared runner must not fail an otherwise healthy recovery.
    # ------------------------------------------------------------------
    recovery_p99s = []
    for _round in range(2):
        rec_lat, rec_ans, rec_fail, _rec_retries, rec_hung = _drive(
            fleet, tenants, context, PHASE_REQUESTS)
        _check_phase("recovery", oracle, rec_lat, rec_ans, rec_fail,
                     rec_hung, PHASE_REQUESTS)
        recovery_p99s.append(_p99(rec_lat))
    p99_recovered = min(recovery_p99s)
    p99_ceiling = max(RECOVERY_P99_FACTOR * p99_clean, P99_FLOOR_SECONDS)

    final = fleet.stats()
    fleet.stop(timeout=10.0)
    assert faults.ACTIVE is None

    print(f"\nfault gate: {3 * PHASE_REQUESTS} requests over {TENANTS} tenants "
          f"(scale {BENCH_SCALE}); chaos injected {crashes} crashes / "
          f"{spikes} spikes / {errors} errors, {chaos_retries} client retries; "
          f"{final.workers_restarted} workers restarted, "
          f"{final.breaker_opens} breaker opens; "
          f"p99 clean {p99_clean * 1000:.1f} ms -> chaos "
          f"{_p99(chaos_lat) * 1000:.1f} ms -> recovered "
          f"{p99_recovered * 1000:.1f} ms (ceiling {p99_ceiling * 1000:.1f} ms)")
    _record_bench("chaos_serving", {
        "tenants": TENANTS,
        "shards": NUM_SHARDS,
        "workers_per_shard": WORKERS_PER_SHARD,
        "phase_requests": PHASE_REQUESTS,
        "seed": SEED,
        "crash_prob": CRASH_PROB,
        "spike_prob": SPIKE_PROB,
        "spike_ms": SPIKE_MS,
        "error_prob": ERROR_PROB,
        "injected_crashes": crashes,
        "injected_spikes": spikes,
        "injected_errors": errors,
        "client_retries_under_chaos": chaos_retries,
        "workers_restarted": final.workers_restarted,
        "breaker_opens": final.breaker_opens,
        "incorrect_answers": 0,
        "hung_requests": 0,
        "p99_clean_ms": round(p99_clean * 1000, 2),
        "p99_chaos_ms": round(_p99(chaos_lat) * 1000, 2),
        "p99_recovered_ms": round(p99_recovered * 1000, 2),
        "p99_recovery_factor": RECOVERY_P99_FACTOR,
        "snapshot_bytes": snap_stats["bytes"],
    })
    assert p99_recovered <= p99_ceiling, (
        f"recovered p99 {p99_recovered * 1000:.1f} ms exceeds "
        f"{p99_ceiling * 1000:.1f} ms "
        f"({RECOVERY_P99_FACTOR}x the fault-free tail)"
    )
