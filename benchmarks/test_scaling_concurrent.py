"""Concurrent serving gate: the sharded fleet vs. one serial service.

The multi-tenant workload the paper's interactive health-coach scenario
implies is *capacity*-bound, not CPU-bound: each tenant's scenario closure
is ~300ms to materialise but ~10ms to serve warm, so what decides
aggregate throughput is whether the serving layer can keep the working
set's closures cached.  A single :class:`ExplanationService` with
realistic per-instance cache caps thrashes once the tenant working set
exceeds them — every request pays the full re-materialisation — while
:class:`ShardedExplanationService` holds N× the closures (each shard owns
a private scenario + closure cache over the one shared base graph) and
keeps tenant traffic pinned to its home shard by stable hashing.

The fleet **cold-starts from the persistent snapshot store**: an offline
warm phase materialises every tenant's closure once, saves the graph
family plus the labelled closures with
:func:`repro.storage.save_snapshot`, and the fleet boots with
``ShardedExplanationService(snapshot=...)`` — each seeded closure lands
on exactly the shard its tenant's traffic hashes to.  This is what fixed
the cold-start tail: before the snapshot store, every tenant's *first*
request paid the full materialisation and the thundering herd behind it
queued, which put p99 around 10 **seconds**; with seeded shards (plus
single-flight collapsing of duplicate in-flight materialisations) p99 is
gated **under 1 second** at full scale.

The gate drives **thousands of simulated sessions** of mixed ask/update
traffic through the sharded fleet with concurrent client threads and
requires **>=3x aggregate throughput** over the serial capped loop
(measured on a sampled slice of the same round-robin workload — serial
per-op cost is uniform because every op misses, so sampling is sound; a
full serial run would take ~10 minutes).  The same run asserts
update-under-read correctness: every response's scenario fingerprint must
be a complete closure its session was allowed to observe, and follow-up
asks after an update must see the delta.  A final thundering-herd phase
slams concurrent first-touch sessions of tenants *missing* from the
snapshot at their (cold) home shard and asserts single-flight served the
herd with exactly one materialisation per tenant.

Honesty note: the speedup is a *cache-capacity* effect, deliberately.
Python's GIL means worker threads do not add CPU parallelism for this
pure-Python reasoner; the ≥3x comes from N shards holding a working set
one instance cannot, which is also how the layer behaves in production
for cache-dominated traffic.

Measurements land in ``BENCH_concurrent.json`` (CI uploads it as an
artifact next to ``BENCH_sparql.json`` / ``BENCH_memory.json``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import replace

import pytest
from conftest import BENCH_SCALE, build_kg, scaled

from repro.core.engine import ExplanationEngine
from repro.core.questions import parse_question
from repro.core.scenario import ScenarioBuilder
from repro.owl import MaterializationCache
from repro.service import ExplanationService, ShardedExplanationService
from repro.storage import ClosureEntry, save_snapshot
from repro.users.personas import paper_context, paper_user

QUESTION = "Why should I eat Cauliflower Potato Curry?"

#: The benchmark KG is *fixed-size* (not REPRO_BENCH_SCALE-scaled): it sets
#: the per-request reasoning cost the serving layer amortises (~300ms per
#: closure miss vs ~10ms per warm hit at this size), so shrinking it would
#: change what is being measured.  The smoke scale shrinks the traffic
#: volume instead.
KG_EXTRA_RECIPES = 400
KG_EXTRA_INGREDIENTS = 200

NUM_SHARDS = 8
CLIENT_THREADS = 8
#: Per-instance cache caps — identical for the serial baseline and for
#: *each* shard, so the contrast isolates what sharding adds.  Sized so a
#: shard's tenant share *plus its update-churn keys* fits (update keys
#: concentrate on few shards because every UPDATE_EVERY-th session is the
#: same few tenants; overflowing would evict seeded base closures and
#: turn later incremental extends into full re-materialisations), while
#: the whole tenant working set still cannot fit one instance.
SCENARIO_CAP = max(8, scaled(32))
CLOSURE_CAP = max(16, scaled(40))
#: Distinct tenants (the working set) and simulated sessions over them.
TENANTS = max(16, scaled(80))
SESSIONS = max(64, scaled(2000))
#: Every UPDATE_EVERY-th session grows its profile mid-stream and asks a
#: follow-up, so update traffic races reads on warm shards.  Each update
#: mints a fresh scenario/closure key (the grown profile), so the rate is
#: set to keep tenants + update-churn within the fleet's per-shard cache
#: headroom — while the same working set still drowns the serial caps.
UPDATE_EVERY = 40
#: Serial sample size: distinct tenants round-robin, every op a miss.
SERIAL_SAMPLE = max(8, min(16, TENANTS))
#: Tenants deliberately *left out* of the snapshot, hit by a concurrent
#: thundering herd after the main traffic: their first touch must cost
#: exactly one materialisation each (single-flight), never one per client.
HERD_TENANTS = 2
HERD_CLIENTS = 6
#: The p99 tail gate: the cold-start fix's acceptance number.  Warm-seeded
#: shards keep the tail at warm-serving cost; before the snapshot store
#: the same workload measured ~10s.  The smoke floor is looser because a
#: quarter-scale run amortises the (fixed-size) herd materialisations over
#: far fewer warm ops.
P99_CEILING_MS = 1000.0 if BENCH_SCALE >= 1.0 else 2500.0


def _record_bench(key: str, payload: dict) -> None:
    """Merge one gate's measurements into the BENCH_concurrent.json summary."""
    path = os.environ.get("REPRO_BENCH_CONCURRENT_OUT", "BENCH_concurrent.json")
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


def _tenants(count):
    """Distinct tenant profiles: same needs, distinct identity individuals.

    A distinct identifier is enough to force a distinct scenario graph
    (and therefore a distinct closure) per tenant — exactly the working
    set a multi-tenant deployment carries.
    """
    base = paper_user()
    return [replace(base, identifier=f"bench-tenant-{n:04d}", name=f"Tenant {n}")
            for n in range(count)]


def _capped_serial_service(base_engine):
    """One ExplanationService with the same per-instance caps as a shard."""
    builder = ScenarioBuilder(
        base_engine.catalog,
        base_graph=base_engine.builder._base,
        closure_cache=MaterializationCache(max_size=CLOSURE_CAP),
    )
    return ExplanationService(engine=ExplanationEngine(builder=builder),
                              max_cached_scenarios=SCENARIO_CAP)


@pytest.fixture(scope="module")
def bench_engine():
    """An engine over the fixed-size synthetic KG both contestants share."""
    catalog, graph = build_kg(extra_recipes=KG_EXTRA_RECIPES,
                              extra_ingredients=KG_EXTRA_INGREDIENTS)
    return ExplanationEngine(builder=ScenarioBuilder(catalog, base_graph=graph))


def test_sharded_fleet_is_3x_serial_capacity_under_mixed_traffic(bench_engine, tmp_path):
    engine = bench_engine
    tenants = _tenants(TENANTS)
    context = paper_context()

    # ------------------------------------------------------------------
    # Serial baseline: the capped single service thrashes on this working
    # set — sample its steady-state per-op cost on distinct tenants (each
    # op a guaranteed cache miss, like every op of the full serial run).
    # ------------------------------------------------------------------
    serial = _capped_serial_service(engine)
    serial_started = time.perf_counter()
    for tenant in tenants[:SERIAL_SAMPLE]:
        serial.ask(QUESTION, user=tenant, context=context)
    serial_elapsed = time.perf_counter() - serial_started
    serial_throughput = SERIAL_SAMPLE / serial_elapsed

    # ------------------------------------------------------------------
    # Offline warm phase: materialise every tenant's closure once and
    # persist the graph family + labelled closures to the snapshot store
    # (what a deployment does before rolling new serving capacity).
    # ------------------------------------------------------------------
    question = parse_question(QUESTION)
    warm_builder = ScenarioBuilder(
        engine.catalog,
        base_graph=engine.builder._base,
        closure_cache=MaterializationCache(max_size=TENANTS + 8),
    )
    warm_engine = ExplanationEngine(builder=warm_builder)
    labels = {}
    warm_started = time.perf_counter()
    for tenant in tenants:
        scenario = warm_engine.build_scenario(question, tenant, context)
        labels[scenario.asserted.fingerprint()] = tenant.identifier
    warm_seconds = time.perf_counter() - warm_started
    closures = [
        ClosureEntry(asserted=asserted, closure=closure, post_added=post_added,
                     label=labels[asserted.fingerprint()])
        for asserted, closure, post_added in warm_builder.closure_cache.export_entries()
    ]
    assert len(closures) == TENANTS, "warm cache evicted a tenant closure"
    snap_path = str(tmp_path / "fleet.snap")
    save_started = time.perf_counter()
    snap_stats = save_snapshot(snap_path, engine.builder._base, closures=closures)
    save_seconds = time.perf_counter() - save_started

    # ------------------------------------------------------------------
    # Sharded fleet, cold-started from the snapshot: same caps per shard,
    # whole working set seeded warm before the first request arrives.
    # ------------------------------------------------------------------
    cold_started = time.perf_counter()
    fleet = ShardedExplanationService(
        num_shards=NUM_SHARDS,
        workers_per_shard=2,
        queue_size=64,
        snapshot=snap_path,
        catalog=engine.catalog,
        max_cached_scenarios=SCENARIO_CAP,
        closure_cache_size=CLOSURE_CAP,
    )
    # Before admitting traffic, pre-build every seeded tenant's scenario
    # on its home shard (part of the cold-start window): the seeded
    # closures make each build cheap, and the opening burst then runs
    # entirely on the warm path instead of convoying on first touches.
    fleet.warm([(question, tenant, context) for tenant in tenants])
    cold_start_seconds = time.perf_counter() - cold_started
    seeded = sum(shard.service.engine.builder.closure_cache.stats()["size"]
                 for shard in fleet.shards)
    assert seeded == TENANTS, \
        f"snapshot seeding placed {seeded} closures, expected {TENANTS}"
    assert cold_start_seconds < warm_seconds, \
        "cold-starting from the snapshot must beat re-materialising the working set"
    sessions = []
    for n in range(SESSIONS):
        tenant = tenants[n % TENANTS]
        sessions.append((n, fleet.open_session(tenant, context).session_id,
                         tenant.identifier, n % UPDATE_EVERY == 0))

    results = {}   # session index -> list of (stage, fingerprint)
    updates = {}   # session index -> fingerprint returned by the update
    errors = []
    ops_done = [0] * CLIENT_THREADS

    def client(slot):
        try:
            count = 0
            for index, session_id, _, does_update in sessions[slot::CLIENT_THREADS]:
                observed = []
                response = fleet.ask(QUESTION, session_id=session_id)
                observed.append(("pre", response.scenario.inferred.fingerprint()))
                count += 1
                if does_update:
                    updated = fleet.update_scenario(
                        QUESTION, session_id=session_id,
                        likes=(f"Benchmark Delicacy {index}",))
                    updates[index] = updated.inferred.fingerprint()
                    count += 1
                    follow_up = fleet.ask(QUESTION, session_id=session_id)
                    observed.append(("post",
                                     follow_up.scenario.inferred.fingerprint()))
                    count += 1
                results[index] = observed
            ops_done[slot] = count
        except Exception as exc:  # pragma: no cover - surfaced via assert
            errors.append(exc)

    started = time.perf_counter()
    threads = [threading.Thread(target=client, args=(slot,), daemon=True)
               for slot in range(CLIENT_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Thundering herd on tenants missing from the snapshot: concurrent
    # first-touch sessions of one cold tenant must be served by a single
    # materialisation (single-flight), with every waiter observing it.
    # ------------------------------------------------------------------
    herd_users = [replace(paper_user(), identifier=f"bench-herd-{n:02d}",
                          name=f"Herd Tenant {n}")
                  for n in range(HERD_TENANTS)]
    for herd_user in herd_users:
        session_ids = [fleet.open_session(herd_user, context).session_id
                       for _ in range(HERD_CLIENTS)]
        barrier = threading.Barrier(HERD_CLIENTS)
        herd_prints, herd_errors = [], []

        def herd_client(session_id):
            try:
                barrier.wait()
                response = fleet.ask(QUESTION, session_id=session_id)
                herd_prints.append(response.scenario.inferred.fingerprint())
            except Exception as exc:  # pragma: no cover - surfaced via assert
                herd_errors.append(exc)

        herd_threads = [threading.Thread(target=herd_client, args=(sid,),
                                         daemon=True)
                        for sid in session_ids]
        for thread in herd_threads:
            thread.start()
        for thread in herd_threads:
            thread.join()
        assert not herd_errors, f"herd clients failed: {herd_errors[:3]}"
        assert len(herd_prints) == HERD_CLIENTS
        assert len(set(herd_prints)) == 1, \
            "herd clients observed different closures for one tenant"

    stats = fleet.stats()
    fleet.stop()

    assert not errors, f"concurrent clients failed: {errors[:3]}"
    total_ops = sum(ops_done)
    throughput = total_ops / elapsed
    speedup = throughput / serial_throughput

    # --- update-under-read correctness --------------------------------
    # Every tenant's sessions that never updated must all have observed
    # one single, identical closure (racing updates elsewhere on the
    # shard can never tear or leak into it) ...
    baseline_by_tenant = {}
    for index, session_id, tenant_id, does_update in sessions:
        for stage, fingerprint in results[index]:
            if stage == "pre" and not does_update:
                baseline_by_tenant.setdefault(tenant_id, set()).add(fingerprint)
    torn = {tenant: prints for tenant, prints in baseline_by_tenant.items()
            if len(prints) != 1}
    assert not torn, f"tenants observed inconsistent closures: {list(torn)[:3]}"
    # ... and every updating session's follow-up ask saw exactly its own
    # update's delta, not the pre-update state.
    for index, session_id, tenant_id, does_update in sessions:
        if not does_update:
            continue
        stages = dict(results[index])
        assert stages["post"] == updates[index], \
            f"session {session_id} did not see its update's delta"
        assert stages["post"] != stages["pre"], \
            f"session {session_id}'s update changed nothing observable"

    # --- service-health assertions -------------------------------------
    expected_asks = SESSIONS + sum(1 for s in sessions if s[3]) \
        + HERD_TENANTS * HERD_CLIENTS
    assert stats.requests_served == expected_asks
    assert stats.scenario_updates == sum(1 for s in sessions if s[3])
    assert stats.requests_rejected == 0, \
        "benchmark clients are self-throttling; nothing should be shed"
    assert stats.queue_depths == [0] * NUM_SHARDS

    # --- zero-warm-up + single-flight accounting ------------------------
    # Every materialisation the whole run paid is one herd tenant's first
    # touch: the seeded working set never missed (updates take the
    # incremental extend path), and single-flight collapsed each herd to
    # exactly one build with the other in-flight ask waiting on it.
    closure_misses = sum(s.closure_cache.get("misses", 0) for s in stats.shards)
    single_flight_waits = sum(s.closure_cache.get("single_flight_waits", 0)
                              for s in stats.shards)
    assert closure_misses == HERD_TENANTS, \
        f"expected only the {HERD_TENANTS} herd tenants to materialise, " \
        f"got {closure_misses} closure misses"
    assert single_flight_waits >= HERD_TENANTS, \
        "the herd should have produced at least one single-flight wait per tenant"

    print(f"\nconcurrent serving: {total_ops} ops over {SESSIONS} sessions "
          f"({TENANTS} tenants) in {elapsed:.1f}s -> {throughput:.1f} ops/s; "
          f"serial capped loop {serial_throughput:.1f} ops/s -> {speedup:.1f}x "
          f"(p50 {stats.latency_ms['p50']:.1f} ms / "
          f"p99 {stats.latency_ms['p99']:.1f} ms / "
          f"max {stats.latency_ms['max_ms']:.1f} ms); "
          f"cold start {cold_start_seconds:.2f}s from {snap_stats['bytes']} B "
          f"snapshot (warm build {warm_seconds:.1f}s), "
          f"{closure_misses} misses / {single_flight_waits} single-flight waits")
    _record_bench("sharded_vs_serial_throughput", {
        "sessions": SESSIONS,
        "tenants": TENANTS,
        "shards": NUM_SHARDS,
        "workers_per_shard": 2,
        "scenario_cap": SCENARIO_CAP,
        "closure_cap": CLOSURE_CAP,
        "total_ops": total_ops,
        "updates": sum(1 for s in sessions if s[3]),
        "elapsed_seconds": round(elapsed, 3),
        "throughput_ops_per_s": round(throughput, 2),
        "serial_sample_ops": SERIAL_SAMPLE,
        "serial_throughput_ops_per_s": round(serial_throughput, 2),
        "speedup": round(speedup, 2),
        "latency_p50_ms": round(stats.latency_ms["p50"], 2),
        "latency_p99_ms": round(stats.latency_ms["p99"], 2),
        "latency_max_ms": round(stats.latency_ms["max_ms"], 2),
        "p99_ceiling_ms": P99_CEILING_MS,
        "requests_rejected": stats.requests_rejected,
        "snapshot_bytes": snap_stats["bytes"],
        "snapshot_closures": snap_stats["closures"],
        "snapshot_save_seconds": round(save_seconds, 3),
        "warm_build_seconds": round(warm_seconds, 3),
        "cold_start_seconds": round(cold_start_seconds, 3),
        "closure_misses": closure_misses,
        "single_flight_waits": single_flight_waits,
        "herd_tenants": HERD_TENANTS,
        "herd_clients": HERD_CLIENTS,
    })
    assert speedup >= 3.0, (
        f"sharded serving must sustain >=3x the serial capped throughput, "
        f"got {speedup:.1f}x"
    )
    assert stats.latency_ms["p99"] < P99_CEILING_MS, (
        f"snapshot-seeded cold start must keep p99 under "
        f"{P99_CEILING_MS:.0f} ms, got {stats.latency_ms['p99']:.1f} ms"
    )
