"""Concurrent serving gate: the sharded fleet vs. one serial service.

The multi-tenant workload the paper's interactive health-coach scenario
implies is *capacity*-bound, not CPU-bound: each tenant's scenario closure
is ~300ms to materialise but ~10ms to serve warm, so what decides
aggregate throughput is whether the serving layer can keep the working
set's closures cached.  A single :class:`ExplanationService` with
realistic per-instance cache caps thrashes once the tenant working set
exceeds them — every request pays the full re-materialisation — while
:class:`ShardedExplanationService` holds N× the closures (each shard owns
a private scenario + closure cache over the one shared base graph) and
keeps tenant traffic pinned to its home shard by stable hashing.

The gate drives **thousands of simulated sessions** of mixed ask/update
traffic through the sharded fleet with concurrent client threads and
requires **>=3x aggregate throughput** over the serial capped loop
(measured on a sampled slice of the same round-robin workload — serial
per-op cost is uniform because every op misses, so sampling is sound; a
full serial run would take ~10 minutes).  The same run asserts
update-under-read correctness: every response's scenario fingerprint must
be a complete closure its session was allowed to observe, and follow-up
asks after an update must see the delta.

Honesty note: the speedup is a *cache-capacity* effect, deliberately.
Python's GIL means worker threads do not add CPU parallelism for this
pure-Python reasoner; the ≥3x comes from N shards holding a working set
one instance cannot, which is also how the layer behaves in production
for cache-dominated traffic.

Measurements land in ``BENCH_concurrent.json`` (CI uploads it as an
artifact next to ``BENCH_sparql.json`` / ``BENCH_memory.json``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import replace

import pytest
from conftest import build_kg, scaled

from repro.core.engine import ExplanationEngine
from repro.core.scenario import ScenarioBuilder
from repro.owl import MaterializationCache
from repro.service import ExplanationService, ShardedExplanationService
from repro.users.personas import paper_context, paper_user

QUESTION = "Why should I eat Cauliflower Potato Curry?"

#: The benchmark KG is *fixed-size* (not REPRO_BENCH_SCALE-scaled): it sets
#: the per-request reasoning cost the serving layer amortises (~300ms per
#: closure miss vs ~10ms per warm hit at this size), so shrinking it would
#: change what is being measured.  The smoke scale shrinks the traffic
#: volume instead.
KG_EXTRA_RECIPES = 400
KG_EXTRA_INGREDIENTS = 200

NUM_SHARDS = 8
CLIENT_THREADS = 8
#: Per-instance cache caps — identical for the serial baseline and for
#: *each* shard, so the contrast isolates what sharding adds.  Sized so a
#: shard's expected tenant share fits with headroom for hash skew, while
#: the whole working set cannot fit one instance.
SCENARIO_CAP = max(8, scaled(32))
CLOSURE_CAP = max(8, scaled(24))
#: Distinct tenants (the working set) and simulated sessions over them.
TENANTS = max(16, scaled(80))
SESSIONS = max(64, scaled(2000))
#: Every UPDATE_EVERY-th session grows its profile mid-stream and asks a
#: follow-up, so update traffic races reads on warm shards.  Each update
#: mints a fresh scenario/closure key (the grown profile), so the rate is
#: set to keep tenants + update-churn within the fleet's per-shard cache
#: headroom — while the same working set still drowns the serial caps.
UPDATE_EVERY = 40
#: Serial sample size: distinct tenants round-robin, every op a miss.
SERIAL_SAMPLE = max(8, min(16, TENANTS))


def _record_bench(key: str, payload: dict) -> None:
    """Merge one gate's measurements into the BENCH_concurrent.json summary."""
    path = os.environ.get("REPRO_BENCH_CONCURRENT_OUT", "BENCH_concurrent.json")
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


def _tenants(count):
    """Distinct tenant profiles: same needs, distinct identity individuals.

    A distinct identifier is enough to force a distinct scenario graph
    (and therefore a distinct closure) per tenant — exactly the working
    set a multi-tenant deployment carries.
    """
    base = paper_user()
    return [replace(base, identifier=f"bench-tenant-{n:04d}", name=f"Tenant {n}")
            for n in range(count)]


def _capped_serial_service(base_engine):
    """One ExplanationService with the same per-instance caps as a shard."""
    builder = ScenarioBuilder(
        base_engine.catalog,
        base_graph=base_engine.builder._base,
        closure_cache=MaterializationCache(max_size=CLOSURE_CAP),
    )
    return ExplanationService(engine=ExplanationEngine(builder=builder),
                              max_cached_scenarios=SCENARIO_CAP)


@pytest.fixture(scope="module")
def bench_engine():
    """An engine over the fixed-size synthetic KG both contestants share."""
    catalog, graph = build_kg(extra_recipes=KG_EXTRA_RECIPES,
                              extra_ingredients=KG_EXTRA_INGREDIENTS)
    return ExplanationEngine(builder=ScenarioBuilder(catalog, base_graph=graph))


def test_sharded_fleet_is_3x_serial_capacity_under_mixed_traffic(bench_engine):
    engine = bench_engine
    tenants = _tenants(TENANTS)
    context = paper_context()

    # ------------------------------------------------------------------
    # Serial baseline: the capped single service thrashes on this working
    # set — sample its steady-state per-op cost on distinct tenants (each
    # op a guaranteed cache miss, like every op of the full serial run).
    # ------------------------------------------------------------------
    serial = _capped_serial_service(engine)
    serial_started = time.perf_counter()
    for tenant in tenants[:SERIAL_SAMPLE]:
        serial.ask(QUESTION, user=tenant, context=context)
    serial_elapsed = time.perf_counter() - serial_started
    serial_throughput = SERIAL_SAMPLE / serial_elapsed

    # ------------------------------------------------------------------
    # Sharded fleet: same caps per shard, whole working set held warm.
    # ------------------------------------------------------------------
    fleet = ShardedExplanationService(
        num_shards=NUM_SHARDS,
        workers_per_shard=2,
        queue_size=64,
        engine=engine,
        max_cached_scenarios=SCENARIO_CAP,
        closure_cache_size=CLOSURE_CAP,
    )
    sessions = []
    for n in range(SESSIONS):
        tenant = tenants[n % TENANTS]
        sessions.append((n, fleet.open_session(tenant, context).session_id,
                         tenant.identifier, n % UPDATE_EVERY == 0))

    results = {}   # session index -> list of (stage, fingerprint)
    updates = {}   # session index -> fingerprint returned by the update
    errors = []
    ops_done = [0] * CLIENT_THREADS

    def client(slot):
        try:
            count = 0
            for index, session_id, _, does_update in sessions[slot::CLIENT_THREADS]:
                observed = []
                response = fleet.ask(QUESTION, session_id=session_id)
                observed.append(("pre", response.scenario.inferred.fingerprint()))
                count += 1
                if does_update:
                    updated = fleet.update_scenario(
                        QUESTION, session_id=session_id,
                        likes=(f"Benchmark Delicacy {index}",))
                    updates[index] = updated.inferred.fingerprint()
                    count += 1
                    follow_up = fleet.ask(QUESTION, session_id=session_id)
                    observed.append(("post",
                                     follow_up.scenario.inferred.fingerprint()))
                    count += 1
                results[index] = observed
            ops_done[slot] = count
        except Exception as exc:  # pragma: no cover - surfaced via assert
            errors.append(exc)

    started = time.perf_counter()
    threads = [threading.Thread(target=client, args=(slot,), daemon=True)
               for slot in range(CLIENT_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    stats = fleet.stats()
    fleet.stop()

    assert not errors, f"concurrent clients failed: {errors[:3]}"
    total_ops = sum(ops_done)
    throughput = total_ops / elapsed
    speedup = throughput / serial_throughput

    # --- update-under-read correctness --------------------------------
    # Every tenant's sessions that never updated must all have observed
    # one single, identical closure (racing updates elsewhere on the
    # shard can never tear or leak into it) ...
    baseline_by_tenant = {}
    for index, session_id, tenant_id, does_update in sessions:
        for stage, fingerprint in results[index]:
            if stage == "pre" and not does_update:
                baseline_by_tenant.setdefault(tenant_id, set()).add(fingerprint)
    torn = {tenant: prints for tenant, prints in baseline_by_tenant.items()
            if len(prints) != 1}
    assert not torn, f"tenants observed inconsistent closures: {list(torn)[:3]}"
    # ... and every updating session's follow-up ask saw exactly its own
    # update's delta, not the pre-update state.
    for index, session_id, tenant_id, does_update in sessions:
        if not does_update:
            continue
        stages = dict(results[index])
        assert stages["post"] == updates[index], \
            f"session {session_id} did not see its update's delta"
        assert stages["post"] != stages["pre"], \
            f"session {session_id}'s update changed nothing observable"

    # --- service-health assertions -------------------------------------
    expected_asks = SESSIONS + sum(1 for s in sessions if s[3])
    assert stats.requests_served == expected_asks
    assert stats.scenario_updates == sum(1 for s in sessions if s[3])
    assert stats.requests_rejected == 0, \
        "benchmark clients are self-throttling; nothing should be shed"
    assert stats.queue_depths == [0] * NUM_SHARDS

    print(f"\nconcurrent serving: {total_ops} ops over {SESSIONS} sessions "
          f"({TENANTS} tenants) in {elapsed:.1f}s -> {throughput:.1f} ops/s; "
          f"serial capped loop {serial_throughput:.1f} ops/s -> {speedup:.1f}x "
          f"(p50 {stats.latency_ms['p50']:.1f} ms / "
          f"p99 {stats.latency_ms['p99']:.1f} ms)")
    _record_bench("sharded_vs_serial_throughput", {
        "sessions": SESSIONS,
        "tenants": TENANTS,
        "shards": NUM_SHARDS,
        "workers_per_shard": 2,
        "scenario_cap": SCENARIO_CAP,
        "closure_cap": CLOSURE_CAP,
        "total_ops": total_ops,
        "updates": sum(1 for s in sessions if s[3]),
        "elapsed_seconds": round(elapsed, 3),
        "throughput_ops_per_s": round(throughput, 2),
        "serial_sample_ops": SERIAL_SAMPLE,
        "serial_throughput_ops_per_s": round(serial_throughput, 2),
        "speedup": round(speedup, 2),
        "latency_p50_ms": round(stats.latency_ms["p50"], 2),
        "latency_p99_ms": round(stats.latency_ms["p99"], 2),
        "requests_rejected": stats.requests_rejected,
    })
    assert speedup >= 3.0, (
        f"sharded serving must sustain >=3x the serial capped throughput, "
        f"got {speedup:.1f}x"
    )
