"""Experiment E3 (Figure 2): the property lattice around FEO's super-properties.

Figure 2 shows the two super-properties (isCharacteristicOf, isOpposedBy)
and selected sub-properties, with feo:forbids inheriting from both.  This
benchmark regenerates the lattice with the Figure 2 SPARQL query and with
the property-hierarchy view, and asserts the paper's key relationships.
"""

from __future__ import annotations

from repro.core.queries import property_lattice_query
from repro.ontology import feo, food
from repro.owl import PropertyHierarchy
from repro.sparql import prepare


def test_fig2_property_lattice_query(benchmark, cq1_scenario):
    inferred = cq1_scenario.inferred
    prepared = prepare(property_lattice_query(), inferred.namespace_manager)

    result = benchmark(prepared.evaluate, inferred)

    print("\nFigure 2 — sub-property lattice")
    print(result.to_table(inferred.namespace_manager))

    pairs = {(row["property"].local_name(), row["superProperty"].local_name()) for row in result}
    # The interplay the paper highlights: forbids under BOTH super-properties.
    assert ("forbids", "isOpposedBy") in pairs
    assert ("forbids", "isCharacteristicOf") in pairs
    assert ("recommends", "isCharacteristicOf") in pairs
    # The user- and food-profile properties feed hasCharacteristic.
    assert ("likes", "hasCharacteristic") in pairs
    assert ("availableInSeason", "hasCharacteristic") in pairs
    assert ("hasIngredient", "hasCharacteristic") in pairs


def test_fig2_property_hierarchy_view(benchmark, cq1_scenario):
    inferred = cq1_scenario.inferred

    def build_and_check():
        lattice = PropertyHierarchy(inferred)
        return {
            "forbids_under_opposed": feo.forbids in lattice.descendants(feo.isOpposedBy),
            "forbids_under_characteristic": feo.forbids in lattice.descendants(feo.isCharacteristicOf),
            "likes_under_has_characteristic": feo.likes in lattice.descendants(feo.hasCharacteristic),
            "allergic_under_opposed": feo.allergicTo in lattice.descendants(feo.isOpposedBy),
            "has_ingredient_under_has_characteristic":
                food.hasIngredient in lattice.descendants(feo.hasCharacteristic),
        }

    flags = benchmark(build_and_check)
    assert all(flags.values()), flags
