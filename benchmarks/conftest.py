"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one artefact of the paper (table, figure or
listing result) and measures the cost of the pipeline stage behind it.
Expensive shared state (engine, reasoned scenarios) is session-scoped so a
``pytest benchmarks/ --benchmark-only`` run stays fast.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import ExplanationEngine
from repro.core.questions import ContrastiveQuestion, WhatIfConditionQuestion, WhyQuestion
from repro.foodkg import build_core_catalog, generate_catalog, load_catalog
from repro.ontology.feo import build_combined_ontology
from repro.owl import Reasoner
from repro.users.personas import paper_context, paper_user


#: Global size multiplier for the synthetic-scale benchmarks.  CI's smoke
#: job sets REPRO_BENCH_SCALE below 1 so the scaling gates run on every PR
#: without dominating the wall clock; locally the default exercises the
#: full sizes.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(value: int) -> int:
    """Scale a synthetic entity count by REPRO_BENCH_SCALE (at least 1)."""
    return max(1, int(value * BENCH_SCALE))


def best_of(repeats, fn):
    """``(best_seconds, last_result)`` over ``repeats`` timed calls.

    The timing-ratio gates compare minima so that one noisy-neighbour burst
    on a shared CI runner cannot fail an otherwise healthy ratio.
    """
    import time

    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="session")
def engine():
    return ExplanationEngine()


@pytest.fixture(scope="session")
def user():
    return paper_user()


@pytest.fixture(scope="session")
def context():
    return paper_context()


@pytest.fixture(scope="session")
def cq1_scenario(engine, user, context):
    question = WhyQuestion(text="Why should I eat Cauliflower Potato Curry?",
                           recipe="Cauliflower Potato Curry")
    return engine.build_scenario(question, user, context)


@pytest.fixture(scope="session")
def cq2_scenario(engine, user, context):
    question = ContrastiveQuestion(
        text="Why should I eat Butternut Squash Soup over a Broccoli Cheddar Soup?",
        primary="Butternut Squash Soup", secondary="Broccoli Cheddar Soup")
    return engine.build_scenario(question, user, context)


@pytest.fixture(scope="session")
def cq3_scenario(engine, user, context):
    question = WhatIfConditionQuestion(text="What if I was pregnant?", condition="pregnancy")
    return engine.build_scenario(question, user, context)


def build_kg(extra_recipes: int = 0, extra_ingredients: int = 0):
    """Build (asserted) ontology + knowledge graph at a chosen synthetic scale."""
    catalog = generate_catalog(extra_ingredients=extra_ingredients, extra_recipes=extra_recipes)
    graph = build_combined_ontology()
    load_catalog(catalog, graph)
    return catalog, graph


@pytest.fixture(scope="session")
def inferred_core_kg():
    """The curated knowledge graph, reasoned (no scenario individuals)."""
    _, graph = build_kg()
    return Reasoner(graph).run()
