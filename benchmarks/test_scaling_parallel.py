"""Experiment E10: parallel closure and batch-parallel fleet warm-up.

The FEO workload the paper cares about is *classification-heavy*: the
reasoner's job is to classify recipes and scenario individuals against
diet-profile class expressions (restrictions over ``hasIngredient``,
allergens, conditions).  Matcher evaluation is embarrassingly parallel —
each candidate individual is classified independently against the round's
class-expression set — so a process-pool fixpoint
(:meth:`repro.owl.reasoner.Reasoner.run_parallel`) should approach
core-count speedups on it, while the serial fold through the coordinator
keeps the closure bit-identical to the single-core oracle.

This module builds a synthetic classification-heavy KG (the curated
catalogue + synthetic recipes + ``profile-class-k ≡ Recipe ⊓
∃hasIngredient.{ingredient_k}`` diet-profile axioms), then gates:

* ``run_parallel(workers=4)`` ≥ 2.5x faster than ``run()`` at full scale
  on a ≥ 4-core machine (the smoke run on CI's 4-core runner uses a lax
  floor; hosts with fewer cores log the ratio without gating — a pool
  cannot beat the oracle while time-slicing one core);
* fleet warm-up through ``MaterializationCache.materialise_many`` ≥ 2x
  faster than sequential per-tenant materialisation under the same
  conditions;
* differential equality (triple sets + rule-firing counts) between the
  pooled and serial engines — asserted unconditionally, on every host.

Worker-count scaling (1/2/4) is measured and logged, not gated.
Measurements land in ``BENCH_parallel.json`` (CI uploads it as an
artifact next to the other BENCH files).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.foodkg.loader import FoodKGLoader
from repro.ontology import builder as ontology_builder
from repro.ontology import food
from repro.owl import MaterializationCache, Reasoner, parallel_stats, reset_parallel_stats
from repro.owl.parallel import _fork_available
from repro.rdf.namespace import FOODKG
from repro.rdf.terms import IRI, Literal
from conftest import BENCH_SCALE, best_of, build_kg, scaled

pytestmark = pytest.mark.skipif(
    not _fork_available(), reason="parallel closure needs the fork start method")

CORES = os.cpu_count() or 1
FULL_SCALE = BENCH_SCALE >= 1.0
#: The gate's pool size: the acceptance numbers are stated at 4 workers.
GATE_WORKERS = 4
#: Speedup floors.  The 2.5x number is the tentpole's acceptance
#: criterion at full scale on >= 4 cores; the smoke floor only proves the
#: pool is not pathological (a quarter-scale round amortises the fixed
#: fork/IPC overhead over far less matcher work).
CLOSURE_SPEEDUP_FLOOR = 2.5 if FULL_SCALE else 1.1
WARMUP_SPEEDUP_FLOOR = 2.0 if FULL_SCALE else 1.05
GATED = CORES >= GATE_WORKERS

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


def _record_bench(key: str, payload: dict) -> None:
    """Merge one gate's measurements into the BENCH_parallel.json summary."""
    path = os.environ.get("REPRO_BENCH_PARALLEL_OUT", "BENCH_parallel.json")
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


def _classification_heavy_kg(extra_recipes: int, extra_ingredients: int,
                             profile_classes: int):
    """The curated + synthetic KG plus diet-profile class expressions.

    Each profile class is ``Recipe ⊓ ∃hasIngredient.{ingredient_k}`` —
    the shape of the paper's diet/restriction classes — so every fixpoint
    round re-classifies the recipe individuals against ``profile_classes``
    expressions.  That matcher work scales with individuals x classes and
    carries almost no fold output, which is exactly the regime where
    partitioned rounds win.
    """
    catalog, graph = build_kg(extra_recipes=extra_recipes,
                              extra_ingredients=extra_ingredients)
    builder = ontology_builder.OntologyBuilder(graph=graph)
    names = list(catalog.ingredients)
    for k in range(profile_classes):
        ingredient = FoodKGLoader.ingredient_iri(names[k % len(names)])
        builder.declare_class(
            IRI(FOODKG[f"profile-class-{k}"]),
            equivalent_to=[ontology_builder.intersection_of(
                food.Recipe,
                ontology_builder.has_value(food.hasIngredient, ingredient))],
        )
    return graph


def _bench_kg():
    return _classification_heavy_kg(
        extra_recipes=scaled(300), extra_ingredients=scaled(100),
        profile_classes=scaled(800))


def _assert_equal_closures(parallel, serial, preasoner, sreasoner, label):
    missing = serial._triples - parallel._triples
    extra = parallel._triples - serial._triples
    assert not missing and not extra, (
        f"{label}: pooled closure diverged from the oracle "
        f"({len(missing)} missing, {len(extra)} extra)")
    assert preasoner.report.rule_firings == sreasoner.report.rule_firings, label
    assert preasoner.report.iterations == sreasoner.report.iterations, label


def test_parallel_closure_speedup_and_equality():
    """The headline gate: 4-worker closure vs the single-core oracle."""
    graph = _bench_kg()
    repeats = 2 if FULL_SCALE else 3

    sreasoner = Reasoner(graph.copy())
    serial_seconds, serial = best_of(repeats, lambda: sreasoner.run())

    reset_parallel_stats()
    preasoner = Reasoner(graph.copy())
    parallel_seconds, parallel = best_of(
        repeats, lambda: preasoner.run_parallel(workers=GATE_WORKERS))

    _assert_equal_closures(parallel, serial, preasoner, sreasoner,
                           "closure speedup gate")
    stats = parallel_stats()
    speedup = serial_seconds / parallel_seconds
    print(f"\nparallel closure: asserted={len(graph)} closed={len(serial)} "
          f"serial={serial_seconds:.3f}s parallel({GATE_WORKERS}w)="
          f"{parallel_seconds:.3f}s speedup={speedup:.2f}x "
          f"(cores={CORES}, scale={BENCH_SCALE}, "
          f"pool_rounds={stats['pool_rounds']}, "
          f"skew={stats['partition_skew']:.3f})")
    _record_bench("closure", {
        "asserted_triples": len(graph),
        "closed_triples": len(serial),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
        "workers": GATE_WORKERS,
        "cores": CORES,
        "scale": BENCH_SCALE,
        "gated": GATED,
        "pool_rounds": stats["pool_rounds"],
        "partition_skew": stats["partition_skew"],
    })
    assert stats["pool_rounds"] > 0, "the benchmark KG must trigger pooled rounds"
    if GATED:
        assert speedup >= CLOSURE_SPEEDUP_FLOOR, (
            f"run_parallel(workers={GATE_WORKERS}) must be >= "
            f"{CLOSURE_SPEEDUP_FLOOR}x run(), got {speedup:.2f}x")
    else:
        print(f"  (speedup gate skipped: {CORES} core(s) < {GATE_WORKERS})")


@pytest.mark.skipif(CORES < GATE_WORKERS,
                    reason="worker-count scaling needs >= 4 cores to be meaningful")
def test_parallel_closure_scales_with_workers():
    """Near-linear scaling across 1/2/4 workers — logged, not gated."""
    graph = _bench_kg()
    timings = {}
    baseline = None
    for workers in (1, 2, 4):
        reasoner = Reasoner(graph.copy())
        start = time.perf_counter()
        closure = reasoner.run_parallel(workers=workers)
        timings[workers] = time.perf_counter() - start
        if baseline is None:
            baseline = closure._triples
        else:
            assert closure._triples == baseline, f"workers={workers} diverged"
    print("\nworker scaling: " + "  ".join(
        f"{w}w={timings[w]:.3f}s ({timings[1] / timings[w]:.2f}x)"
        for w in sorted(timings)))
    _record_bench("worker_scaling", {
        str(w): {"seconds": timings[w], "speedup_vs_1w": timings[1] / timings[w]}
        for w in timings
    })


def _tenant_graphs(base, count: int):
    """``count`` distinct tenant scenario graphs over one shared base."""
    graphs = []
    for i in range(count):
        graph = base.copy()
        tenant = IRI(FOODKG[f"bench-tenant-{i}"])
        graph.add((tenant, _RDF_TYPE, food.User))
        graph.add((tenant, IRI(FOODKG["likesDish"]), Literal(f"dish-{i}")))
        graphs.append(graph)
    return graphs


def test_fleet_warmup_bulk_speedup():
    """Fleet cold-start: ``materialise_many`` vs per-tenant closures.

    The same tenants' scenario graphs are materialised twice from cold
    caches — sequentially (today's warm path) and through the bulk pool
    pass — and the bulk pass must be >= 2x faster at full scale on a
    >= 4-core host, with identical closures.
    """
    _, base = build_kg(extra_recipes=scaled(60), extra_ingredients=scaled(30))
    tenants = max(4, scaled(8))
    graphs = _tenant_graphs(base, tenants)

    serial_cache = MaterializationCache(max_size=tenants)
    start = time.perf_counter()
    serial_closures = [serial_cache.materialize(graph) for graph in graphs]
    serial_seconds = time.perf_counter() - start

    reset_parallel_stats()
    bulk_cache = MaterializationCache(max_size=tenants)
    start = time.perf_counter()
    bulk_closures = bulk_cache.materialise_many(graphs, workers=GATE_WORKERS)
    bulk_seconds = time.perf_counter() - start

    for i, (serial, bulk) in enumerate(zip(serial_closures, bulk_closures)):
        assert bulk._triples == serial._triples, f"tenant {i} diverged"
        assert bulk.fingerprint() == serial.fingerprint(), f"tenant {i} diverged"
    assert bulk_cache.stats()["bulk_builds"] == tenants

    speedup = serial_seconds / bulk_seconds
    stats = parallel_stats()
    print(f"\nfleet warm-up: tenants={tenants} serial={serial_seconds:.3f}s "
          f"bulk({GATE_WORKERS}w)={bulk_seconds:.3f}s speedup={speedup:.2f}x "
          f"(cores={CORES}, bulk_pool_closures={stats['bulk_pool_closures']})")
    _record_bench("fleet_warmup", {
        "tenants": tenants,
        "serial_seconds": serial_seconds,
        "bulk_seconds": bulk_seconds,
        "speedup": speedup,
        "workers": GATE_WORKERS,
        "cores": CORES,
        "scale": BENCH_SCALE,
        "gated": GATED,
    })
    if GATED:
        assert speedup >= WARMUP_SPEEDUP_FLOOR, (
            f"materialise_many(workers={GATE_WORKERS}) must be >= "
            f"{WARMUP_SPEEDUP_FLOOR}x sequential warm-up, got {speedup:.2f}x")
    else:
        print(f"  (warm-up gate skipped: {CORES} core(s) < {GATE_WORKERS})")


def test_parallel_differential_sweep():
    """Pooled closures stay exact on randomized KGs — every host, every scale."""
    from repro.foodkg.generator import generate_catalog
    from repro.foodkg.loader import load_catalog
    from repro.foodkg.schema import FoodCatalog
    from repro.ontology.feo import build_combined_ontology

    cases = 0
    for seed in range(max(3, scaled(6))):
        catalog = generate_catalog(base=FoodCatalog(), extra_ingredients=8,
                                   extra_recipes=5, seed=seed)
        graph = build_combined_ontology()
        load_catalog(catalog, graph)
        sreasoner = Reasoner(graph.copy())
        serial = sreasoner.run()
        preasoner = Reasoner(graph.copy())
        parallel = preasoner.run_parallel(workers=2, threshold=16)
        _assert_equal_closures(parallel, serial, preasoner, sreasoner,
                               f"sweep seed {seed}")
        cases += 1
    print(f"\ndifferential sweep: {cases} randomized KGs, pooled == oracle")
    _record_bench("differential_sweep", {"cases": cases, "cores": CORES})
