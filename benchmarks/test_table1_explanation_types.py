"""Experiment E1 (Table I): explanation types and their example food questions.

The paper's Table I lists nine literature-derived explanation types with an
example user question each; the evaluation then claims FEO's modelling
covers contextual, contrastive and counterfactual, with the rest reachable
through the same structure.  This benchmark regenerates the table — for
every type: the example question, whether this reproduction implements a
generator for it, and whether the generator produces a non-empty
explanation for the paper's user — and measures the cost of generating all
nine explanations for one question.
"""

from __future__ import annotations

from repro.core.competency import EXTENDED_COMPETENCY_QUESTIONS, PAPER_COMPETENCY_QUESTIONS
from repro.core.questions import WhyQuestion
from repro.ontology.eo import EXPLANATION_TYPES

#: Table I of the paper: explanation type -> example user question.
TABLE1_QUESTIONS = {
    "case_based": "What results from other users recommend food A?",
    "contextual": "Why should I eat Food A?",
    "contrastive": "Why was Food A recommended over Food B?",
    "counterfactual": "What if we changed ingredient C?",
    "everyday": "What foods go together?",
    "scientific": "What literature recommends Food A?",
    "simulation_based": "What if I ate food A everyday?",
    "statistical": "What evidence from data suggests I follow diet D?",
    "trace_based": "What steps led to recommendation E?",
}

#: The subset the paper's initial modelling targets (Section V).
PAPER_PRIMARY_TYPES = {"contextual", "contrastive", "counterfactual"}


def _build_table(engine, user, context):
    """Generate one explanation per Table I row, using a question of the matching shape."""
    from repro.core.questions import ContrastiveQuestion, WhatIfConditionQuestion

    why = WhyQuestion(text="Why should I eat Lentil Soup?", recipe="Lentil Soup")
    questions = {
        type_key: why for type_key in TABLE1_QUESTIONS
    }
    questions["contrastive"] = ContrastiveQuestion(
        text="Why was Butternut Squash Soup recommended over Broccoli Cheddar Soup?",
        primary="Butternut Squash Soup", secondary="Broccoli Cheddar Soup")
    questions["counterfactual"] = WhatIfConditionQuestion(
        text="What if I was pregnant?", condition="pregnancy")
    questions["case_based"] = WhyQuestion(
        text="Why should I eat Spinach Frittata?", recipe="Spinach Frittata")

    recommendation = engine.recommender.recommend_one(user, context)
    rows = []
    for type_key in sorted(TABLE1_QUESTIONS):
        explanation = engine.explain(
            questions[type_key], user, context,
            explanation_type=type_key, recommendation=recommendation)
        rows.append({
            "explanation_type": type_key,
            "example_question": TABLE1_QUESTIONS[type_key],
            "paper_primary": type_key in PAPER_PRIMARY_TYPES,
            "implemented": type_key in engine.supported_explanation_types,
            "non_empty": not explanation.is_empty,
            "evidence_items": len(explanation.items),
        })
    return rows


def test_table1_explanation_type_coverage(benchmark, engine, user, context):
    rows = benchmark.pedantic(_build_table, args=(engine, user, context), rounds=1, iterations=1)

    print("\nTable I — explanation types and reproduction coverage")
    header = f"{'type':<18} {'paper-primary':<14} {'implemented':<12} {'non-empty':<10} {'items':<6} example question"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['explanation_type']:<18} {str(row['paper_primary']):<14} "
              f"{str(row['implemented']):<12} {str(row['non_empty']):<10} "
              f"{row['evidence_items']:<6} {row['example_question']}")

    assert len(rows) == 9
    assert set(TABLE1_QUESTIONS) == set(EXPLANATION_TYPES)
    # Every type has an implemented generator...
    assert all(row["implemented"] for row in rows)
    # ...and the paper's three primary types must produce evidence for this scenario.
    for row in rows:
        if row["paper_primary"]:
            assert row["non_empty"], row


def test_table1_competency_question_pass_rate(benchmark, engine, user, context):
    from repro.core.competency import CompetencySuite

    suite = CompetencySuite(engine, user, context)
    results = benchmark.pedantic(
        suite.run, args=(tuple(PAPER_COMPETENCY_QUESTIONS) + tuple(EXTENDED_COMPETENCY_QUESTIONS),),
        rounds=1, iterations=1)

    print("\nCompetency-question pass matrix (paper CQ1-3 + extended Table I coverage)")
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        print(f"  [{status}] {result.question.identifier:<16} "
              f"({result.question.explanation_type}) items={len(result.explanation.items)}")
    assert all(result.passed for result in results)
