"""Experiment E9a (ablation): reasoning cost vs. knowledge-graph size.

The paper motivates its choice of Pellet by the ontology being
individual-heavy.  This ablation sweeps the synthetic FoodKG size and
measures materialisation cost, reporting the triple counts before and
after reasoning so the growth shape (roughly linear in the instance data
for this ontology) is visible in the benchmark output.
"""

from __future__ import annotations

import pytest

from repro.owl import Reasoner
from conftest import build_kg


@pytest.mark.parametrize("extra_recipes,extra_ingredients", [
    (0, 0),
    (100, 50),
    (300, 100),
], ids=["core", "core+100recipes", "core+300recipes"])
def test_reasoner_scaling(benchmark, extra_recipes, extra_ingredients):
    catalog, graph = build_kg(extra_recipes=extra_recipes, extra_ingredients=extra_ingredients)
    asserted = len(graph)

    def materialise():
        return Reasoner(graph.copy()).run()

    closed = benchmark.pedantic(materialise, rounds=1, iterations=1)

    print(f"\nreasoner scaling: recipes={len(catalog.recipes)} ingredients={len(catalog.ingredients)} "
          f"asserted={asserted} closed={len(closed)} "
          f"(x{len(closed) / max(1, asserted):.2f})")
    assert len(closed) > asserted


def test_reasoner_rule_breakdown_on_core_kg(benchmark):
    _, graph = build_kg()

    def materialise_with_report():
        reasoner = Reasoner(graph.copy())
        reasoner.run()
        return reasoner.report

    report = benchmark.pedantic(materialise_with_report, rounds=1, iterations=1)
    print("\nrule firings on the core knowledge graph:")
    for rule, count in sorted(report.rule_firings.items(), key=lambda kv: -kv[1]):
        print(f"  {rule:<28} {count}")
    # The dominant work is property-centric (inverse/transitive/subproperty),
    # matching the design discussion in the paper.
    assert report.rule_firings.get("inverseOf", 0) > 0
    assert report.rule_firings.get("transitive", 0) > 0
