"""Experiment E9a (ablation): reasoning cost vs. knowledge-graph size.

The paper motivates its choice of Pellet by the ontology being
individual-heavy.  This ablation sweeps the synthetic FoodKG size and
measures materialisation cost, reporting the triple counts before and
after reasoning so the growth shape (roughly linear in the instance data
for this ontology) is visible in the benchmark output.
"""

from __future__ import annotations

import pytest

from repro.owl import Reasoner
from conftest import build_kg, scaled


@pytest.mark.parametrize("extra_recipes,extra_ingredients", [
    (0, 0),
    (scaled(100), scaled(50)),
    (scaled(300), scaled(100)),
], ids=["core", "core+100recipes", "core+300recipes"])
def test_reasoner_scaling(benchmark, extra_recipes, extra_ingredients):
    catalog, graph = build_kg(extra_recipes=extra_recipes, extra_ingredients=extra_ingredients)
    asserted = len(graph)

    def materialise():
        return Reasoner(graph.copy()).run()

    closed = benchmark.pedantic(materialise, rounds=1, iterations=1)

    print(f"\nreasoner scaling: recipes={len(catalog.recipes)} ingredients={len(catalog.ingredients)} "
          f"asserted={asserted} closed={len(closed)} "
          f"(x{len(closed) / max(1, asserted):.2f})")
    assert len(closed) > asserted


def test_reasoner_rule_breakdown_on_core_kg(benchmark):
    _, graph = build_kg()

    def materialise_with_report():
        reasoner = Reasoner(graph.copy())
        reasoner.run()
        return reasoner.report

    report = benchmark.pedantic(materialise_with_report, rounds=1, iterations=1)
    print("\nrule firings on the core knowledge graph:")
    for rule, count in sorted(report.rule_firings.items(), key=lambda kv: -kv[1]):
        print(f"  {rule:<28} {count}")
    # The dominant work is property-centric (inverse/transitive/subproperty),
    # matching the design discussion in the paper.
    assert report.rule_firings.get("inverseOf", 0) > 0
    assert report.rule_firings.get("transitive", 0) > 0


def test_semi_naive_full_run_is_no_slower_than_naive():
    """The semi-naive engine must not regress the cold (full-run) path.

    Naive re-applies every rule family over the whole graph per iteration;
    semi-naive pays the same first round and then only touches deltas, so a
    full materialisation should come out ahead (measured ~0.7-0.85x) and is
    gated here at parity with a tolerance for shared-runner timer noise.
    """
    from conftest import best_of

    _, graph = build_kg(extra_recipes=scaled(100), extra_ingredients=scaled(50))

    naive_seconds, naive = best_of(5, lambda: Reasoner(graph).run_naive())
    semi_seconds, semi = best_of(5, lambda: Reasoner(graph).run())

    assert set(semi) == set(naive), "semi-naive closure diverged from the naive oracle"
    ratio = semi_seconds / naive_seconds
    print(f"\nfull materialisation: naive={naive_seconds * 1000:.1f}ms "
          f"semi-naive={semi_seconds * 1000:.1f}ms (ratio {ratio:.2f})")
    assert ratio <= 1.15, (
        f"semi-naive full run must be no slower than the naive loop, "
        f"got {ratio:.2f}x naive"
    )
