"""Experiment E10 (ablation): persona × explanation-type coverage.

Quantifies the paper's claim that FEO's modular structure "lends itself to
a variety of explanations": for every built-in persona and every Table I
explanation type, can the pipeline produce a non-empty explanation?
"""

from __future__ import annotations

from repro.evaluation import compute_coverage
from repro.users.personas import persona


def test_coverage_matrix_for_paper_persona(benchmark, engine):
    user, context = persona("paper")

    matrix = benchmark.pedantic(
        compute_coverage, kwargs={"engine": engine, "personas": {"paper": (user, context)}},
        rounds=1, iterations=1)

    print("\nCoverage for the paper's persona:")
    print(matrix.to_table())
    # Everything except (possibly) case-based must be covered for the paper user.
    for explanation_type, fraction in matrix.coverage_by_type().items():
        if explanation_type != "case_based":
            assert fraction == 1.0, explanation_type


def test_coverage_matrix_across_all_personas(benchmark, engine):
    matrix = benchmark.pedantic(compute_coverage, kwargs={"engine": engine},
                                rounds=1, iterations=1)

    print("\nCoverage across all personas:")
    print(matrix.to_table())
    print(f"overall coverage: {matrix.overall_coverage():.0%}")

    by_type = matrix.coverage_by_type()
    # The paper's three primary explanation types must work for every persona.
    assert by_type["contextual"] == 1.0
    assert by_type["contrastive"] == 1.0
    assert by_type["counterfactual"] == 1.0
    # Overall coverage stays high even with the stricter extended types.
    assert matrix.overall_coverage() >= 0.85
