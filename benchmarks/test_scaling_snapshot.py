"""Snapshot store gate: cold-starting from a snapshot vs. re-parsing turtle.

The persistent snapshot store exists so that service shards can cold-start
with **zero warm-up**: instead of re-parsing the ontology + knowledge graph
from turtle (re-tokenising every term, re-interning every IRI, re-deriving
every index entry) and re-materialising closures, a shard ``mmap``s-in-spirit
one struct-packed file and rebuilds the dictionary-encoded graph family in
a single bulk pass.

This gate measures both halves of that claim on the synthetic benchmark KG:

* **speed** — ``load_snapshot`` must beat the turtle re-parse by >=10x at
  full benchmark scale (the smoke-scale CI run uses a relaxed 5x floor:
  fixed per-call overheads weigh more on a graph a quarter the size);
* **fidelity** — the loaded graph must be *indistinguishable* from the
  parsed one: same fingerprint, byte-identical N-Triples serialisation,
  identical index statistics and identical SPARQL results, so serving
  from a snapshot can never change an answer.

Measurements land in ``BENCH_snapshot.json`` (CI uploads it as an artifact
next to ``BENCH_concurrent.json`` / ``BENCH_sparql.json``).
"""

from __future__ import annotations

import json
import os

import pytest
from conftest import BENCH_SCALE, best_of, build_kg, scaled

from repro.rdf.graph import Graph
from repro.storage import load_snapshot, save_snapshot

#: Scaled with REPRO_BENCH_SCALE: full scale is the fixed-size KG the
#: concurrent gate serves (about 12k triples / 3.9k terms); the CI smoke
#: scale shrinks it 4x.
KG_EXTRA_RECIPES = scaled(400)
KG_EXTRA_INGREDIENTS = scaled(200)

#: The load-vs-parse speedup floor.  Fixed per-call overheads (file IO,
#: header validation, index bootstrap) are amortised over 4x fewer triples
#: at smoke scale, so the floor relaxes there; the honest >=10x claim is
#: gated at full scale (where the measured ratio is ~13x).
SPEEDUP_FLOOR = 10.0 if BENCH_SCALE >= 1.0 else 5.0

REPEATS = 5

#: A planner-exercising query both graphs must answer identically.
PROBE_QUERY = """
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT ?s ?label WHERE {
    ?s rdf:type ?cls .
    ?s rdfs:label ?label .
}
"""


def _record_bench(key: str, payload: dict) -> None:
    """Merge one gate's measurements into the BENCH_snapshot.json summary."""
    path = os.environ.get("REPRO_BENCH_SNAPSHOT_OUT", "BENCH_snapshot.json")
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[key] = payload
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def bench_graph():
    """The synthetic benchmark KG (catalog is not needed here)."""
    _, graph = build_kg(extra_recipes=KG_EXTRA_RECIPES,
                        extra_ingredients=KG_EXTRA_INGREDIENTS)
    return graph


def test_snapshot_load_is_10x_faster_than_turtle_rebuild(bench_graph, tmp_path):
    graph = bench_graph
    turtle = graph.serialize("turtle")
    snap_path = str(tmp_path / "bench.snap")

    save_seconds, save_stats = best_of(
        REPEATS, lambda: save_snapshot(snap_path, graph))

    parse_seconds, parsed = best_of(REPEATS, lambda: Graph().parse(turtle))
    load_seconds, loaded_snapshot = best_of(
        REPEATS, lambda: load_snapshot(snap_path))
    loaded = loaded_snapshot.graph

    ratio = parse_seconds / load_seconds

    # --- fidelity: the snapshot round-trip must be invisible -----------
    assert len(loaded) == len(graph) == len(parsed)
    assert loaded.fingerprint() == graph.fingerprint()
    assert loaded.index_stats() == graph.index_stats()
    # N-Triples serialisation is sorted, so byte equality is a full
    # content comparison that is independent of term IDs.
    assert loaded.serialize("ntriples") == parsed.serialize("ntriples")
    probe_loaded = {tuple(map(str, row)) for row in loaded.query(PROBE_QUERY)}
    probe_parsed = {tuple(map(str, row)) for row in parsed.query(PROBE_QUERY)}
    assert probe_loaded == probe_parsed and probe_loaded, \
        "snapshot-loaded graph answered the probe query differently"

    print(f"\nsnapshot store: {len(graph)} triples / {save_stats['terms']} terms; "
          f"turtle parse {parse_seconds * 1000:.1f} ms vs snapshot load "
          f"{load_seconds * 1000:.1f} ms -> {ratio:.1f}x "
          f"(save {save_seconds * 1000:.1f} ms, {save_stats['bytes']} bytes)")
    _record_bench("snapshot_load_vs_turtle_parse", {
        "triples": len(graph),
        "terms": save_stats["terms"],
        "snapshot_bytes": save_stats["bytes"],
        "turtle_bytes": len(turtle.encode("utf-8")),
        "save_ms": round(save_seconds * 1000, 2),
        "parse_ms": round(parse_seconds * 1000, 2),
        "load_ms": round(load_seconds * 1000, 2),
        "speedup": round(ratio, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "bench_scale": BENCH_SCALE,
    })
    assert ratio >= SPEEDUP_FLOOR, (
        f"snapshot load must be >={SPEEDUP_FLOOR:.0f}x faster than the "
        f"turtle rebuild, got {ratio:.1f}x "
        f"(parse {parse_seconds:.4f}s vs load {load_seconds:.4f}s)"
    )
