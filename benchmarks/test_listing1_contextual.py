"""Experiment E6 (Listing 1): the contextual-explanation competency question.

Reproduces the paper's Listing 1 — the SPARQL query answering "Why should I
eat Cauliflower Potato Curry?" — and its result table (feo:Autumn /
feo:SeasonCharacteristic), measuring query evaluation over the reasoned
scenario graph and the full explanation-generation path.
"""

from __future__ import annotations

from repro.core.generators import ContextualExplanationGenerator
from repro.core.queries import contextual_query
from repro.sparql import prepare


def test_listing1_query_result(benchmark, cq1_scenario):
    prepared = prepare(contextual_query(cq1_scenario.question_iri),
                       cq1_scenario.inferred.namespace_manager)

    result = benchmark(prepared.evaluate, cq1_scenario.inferred)

    print("\nListing 1 — contextual explanation query result")
    print(result.to_table(cq1_scenario.inferred.namespace_manager))

    pairs = {(row["characteristic"].local_name(), row["classes"].local_name()) for row in result}
    # The row the paper's result table shows.
    assert ("Autumn", "SeasonCharacteristic") in pairs
    # Food-internal characteristics (e.g. the cauliflower ingredient) must not leak in.
    assert not any(characteristic == "Cauliflower" for characteristic, _ in pairs)


def test_listing1_full_explanation_generation(benchmark, cq1_scenario):
    generator = ContextualExplanationGenerator()

    explanation = benchmark(generator.generate, cq1_scenario)

    print("\nListing 1 — rendered contextual explanation")
    print(" ", explanation.text)
    subjects = {item.subject for item in explanation.items}
    assert "Autumn" in subjects
    assert explanation.text.startswith("Cauliflower Potato Curry is recommended because")
