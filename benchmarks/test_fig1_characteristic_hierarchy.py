"""Experiment E2 (Figure 1): the subclass tree under feo:Characteristic.

Regenerates the hierarchy the paper's Figure 1 draws (Parameter, User- and
SystemCharacteristic with their food-specific leaves) from the reasoned
ontology, and measures the cost of building the class hierarchy view.
"""

from __future__ import annotations

from repro.ontology import feo
from repro.owl import ClassHierarchy, render_tree


def test_fig1_characteristic_subclass_tree(benchmark, cq1_scenario):
    inferred = cq1_scenario.inferred

    hierarchy = benchmark(ClassHierarchy, inferred)
    tree = hierarchy.tree(feo.Characteristic)

    print("\nFigure 1 — subclasses of feo:Characteristic")
    print(render_tree(tree, inferred.namespace_manager))

    top_level = hierarchy.direct_children(feo.Characteristic)
    # The three main subclasses the paper names.
    assert feo.Parameter in top_level
    assert feo.UserCharacteristic in top_level
    assert feo.SystemCharacteristic in top_level

    user_side = hierarchy.descendants(feo.UserCharacteristic)
    assert {feo.LikedFoodCharacteristic, feo.DislikedFoodCharacteristic,
            feo.AllergicFoodCharacteristic, feo.DietCharacteristic,
            feo.HealthConditionCharacteristic, feo.NutritionalGoalCharacteristic,
            feo.BudgetCharacteristic} <= user_side

    system_side = hierarchy.descendants(feo.SystemCharacteristic)
    assert {feo.SeasonCharacteristic, feo.LocationCharacteristic,
            feo.TimeCharacteristic} <= system_side


def test_fig1_every_characteristic_class_reaches_the_root(benchmark, cq1_scenario):
    inferred = cq1_scenario.inferred
    hierarchy = ClassHierarchy(inferred)

    leaves = [feo.LikedFoodCharacteristic, feo.AllergicFoodCharacteristic,
              feo.SeasonCharacteristic, feo.LocationCharacteristic,
              feo.DietCharacteristic, feo.BudgetCharacteristic,
              feo.HealthConditionCharacteristic, feo.NutritionalGoalCharacteristic,
              feo.TimeCharacteristic, feo.DislikedFoodCharacteristic]

    def check():
        return [hierarchy.is_a(leaf, feo.Characteristic) for leaf in leaves]

    results = benchmark(check)
    assert all(results)
