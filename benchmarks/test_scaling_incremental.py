"""Experiment E11: incremental closure maintenance vs. full re-materialisation.

A multi-user service mutates live scenarios constantly — one more dietary
restriction, one more liked recipe — and before the semi-naive rework every
single-fact change forced a full re-materialisation (the fingerprint cache
can only hit on byte-identical graphs).  These benchmarks gate the payoff
of the delta-driven path: a single-fact update through
:meth:`repro.owl.reasoner.Reasoner.extend` must be **at least 5x faster**
than re-running the reasoner over the whole graph (the ISSUE acceptance
criterion; measured headroom grows with catalogue size because the update
cost tracks the delta's consequences, not the graph).

Every timed comparison also asserts closure equality, so the speed gate can
never pass on wrong answers.
"""

from __future__ import annotations

import time

from repro.owl import AxiomIndex, Reasoner
from repro.rdf.namespace import FEO, FOOD, FOODKG
from repro.rdf.terms import IRI
from repro.service import ExplanationService

from conftest import best_of as _best_of, build_kg, scaled

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


def test_single_fact_update_is_5x_faster_than_rematerialisation():
    """Acceptance criterion: >= 5x speedup for a single-fact scenario update."""
    _, graph = build_kg(extra_recipes=scaled(160), extra_ingredients=scaled(80))
    axioms = AxiomIndex.from_graph(graph)
    closure = Reasoner(graph, axioms=axioms).run()

    user = IRI(FOODKG["user/bench-user"])
    recipe = sorted(graph.subjects(_RDF_TYPE, IRI(FOOD["Recipe"])))[0]
    delta = [(user, IRI(FEO["likes"]), recipe)]
    updated = graph.copy()
    updated.addN(delta)

    full_seconds, full = _best_of(
        3, lambda: Reasoner(updated, axioms=axioms).run())

    def incremental():
        extended = closure.copy()  # what the cache does to protect the shared entry
        return Reasoner(updated, axioms=axioms).extend(extended, delta)

    incremental_seconds, extended = _best_of(3, incremental)

    assert set(extended) == set(full), "incremental closure diverged from full re-run"
    speedup = full_seconds / incremental_seconds
    print(f"\nsingle-fact update: full={full_seconds * 1000:.1f}ms "
          f"incremental={incremental_seconds * 1000:.1f}ms -> {speedup:.1f}x "
          f"(asserted={len(graph)}, closed={len(closure)})")
    assert speedup >= 5.0, (
        f"single-fact update must be >=5x faster than re-materialisation, "
        f"got {speedup:.1f}x"
    )


def test_update_cost_tracks_the_delta_not_the_graph():
    """Incremental cost stays near-flat while full-run cost grows with scale."""
    timings = []
    for extra_recipes, extra_ingredients in [(scaled(40), scaled(20)),
                                             (scaled(160), scaled(80))]:
        _, graph = build_kg(extra_recipes=extra_recipes,
                            extra_ingredients=extra_ingredients)
        axioms = AxiomIndex.from_graph(graph)
        closure = Reasoner(graph, axioms=axioms).run()
        user = IRI(FOODKG["user/bench-user"])
        recipe = sorted(graph.subjects(_RDF_TYPE, IRI(FOOD["Recipe"])))[0]
        delta = [(user, IRI(FEO["likes"]), recipe)]
        updated = graph.copy()
        updated.addN(delta)
        full_seconds, _ = _best_of(3, lambda: Reasoner(updated, axioms=axioms).run())
        incremental_seconds, _ = _best_of(
            3, lambda: Reasoner(updated, axioms=axioms).extend(closure.copy(), delta))
        timings.append((len(graph), full_seconds, incremental_seconds))
        print(f"\nscale asserted={len(graph)}: full={full_seconds * 1000:.1f}ms "
              f"incremental={incremental_seconds * 1000:.1f}ms")
    (_, small_full, small_inc), (_, large_full, large_inc) = timings
    # Full re-materialisation pays the growth; the incremental path's growth
    # (closure copy + index upkeep) must stay well below it.
    assert large_inc < large_full / 5.0
    # And updating the LARGE graph incrementally beats even the SMALL full run.
    assert large_inc < small_full


def test_service_scenario_update_beats_rebuild():
    """End-to-end: ExplanationService.update_scenario vs a cold rebuild."""
    service = ExplanationService().warm()
    session = service.open_persona_session("paper")
    question = "Why should I eat Cauliflower Potato Curry?"
    service.ask(question, session_id=session.session_id)  # prime the caches

    # Session-addressed updates are cumulative: each one extends the closure
    # published by the previous one (a chain of incremental extensions).
    updates = [
        {"allergies": ("dairy",)},
        {"conditions": ("diabetes",)},
        {"likes": ("Butternut Squash Soup",)},
        {"goals": ("high_fiber",)},
    ]
    update_timings = []
    for update in updates:
        start = time.perf_counter()
        updated = service.update_scenario(
            question, session_id=session.session_id, **update)
        update_timings.append(time.perf_counter() - start)
    # Each update is a distinct delta, so they cannot be repeated for a
    # best-of measurement; the minimum over the four is the steady-state
    # cost (matching the best-of-3 rebuild measurement below).
    incremental_seconds = min(update_timings)

    # The pre-rework cost of the same edit: closure cache cold for the new
    # fingerprint, full re-materialisation of the grown scenario graph.
    builder = service.engine.builder
    rebuild_seconds, rebuilt = _best_of(3, lambda: (
        builder.closure_cache.invalidate(updated.asserted),
        builder.build(updated.question, updated.user, updated.context,
                      recommendation=updated.recommendation),
    )[1])

    assert set(rebuilt.inferred) == set(updated.inferred)
    speedup = rebuild_seconds / incremental_seconds
    print(f"\nscenario update: rebuild={rebuild_seconds * 1000:.1f}ms "
          f"incremental={incremental_seconds * 1000:.1f}ms -> {speedup:.1f}x")
    assert speedup >= 2.0, (
        f"live scenario edits must be >=2x faster than rebuilds, got {speedup:.1f}x"
    )
    assert service.stats().closure_cache["extensions"] == len(updates)
