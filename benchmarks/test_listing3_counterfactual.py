"""Experiment E8 (Listing 3): the counterfactual-explanation competency question.

Reproduces Listing 3 — "What if I was pregnant?" — and its result table
(feo:forbids feo:Sushi; feo:recommends feo:Spinach with feo:SpinachFrittata
as the inherited dish), plus the full counterfactual explanation and the
scenario-assembly cost for a what-if question.
"""

from __future__ import annotations

from repro.core.generators import CounterfactualExplanationGenerator
from repro.core.queries import counterfactual_query
from repro.core.questions import WhatIfConditionQuestion
from repro.sparql import prepare


def test_listing3_query_result(benchmark, cq3_scenario):
    prepared = prepare(counterfactual_query(cq3_scenario.question_iri),
                       cq3_scenario.inferred.namespace_manager)

    result = benchmark(prepared.evaluate, cq3_scenario.inferred)

    print("\nListing 3 — counterfactual explanation query result")
    print(result.to_table(cq3_scenario.inferred.namespace_manager))

    rows = {
        (row["property"].local_name(), row["baseFood"].local_name(),
         row["inheritedFood"].local_name() if row.get("inheritedFood") else None)
        for row in result
    }
    # The paper's two result rows.
    assert ("forbids", "Sushi", None) in rows or any(
        prop == "forbids" and base == "Sushi" for prop, base, _ in rows)
    assert ("recommends", "Spinach", "SpinachFrittata") in rows
    # Only forbids/recommends qualify as sub-properties of isCharacteristicOf.
    assert {prop for prop, _, _ in rows} <= {"forbids", "recommends"}


def test_listing3_full_explanation_generation(benchmark, cq3_scenario):
    generator = CounterfactualExplanationGenerator()

    explanation = benchmark(generator.generate, cq3_scenario)

    print("\nListing 3 — rendered counterfactual explanation")
    print(" ", explanation.text)
    forbidden = {item.subject for item in explanation.items_with_role("forbidden")}
    recommended = {item.subject for item in explanation.items_with_role("recommended")}
    assert "Sushi" in forbidden
    assert "Spinach" in recommended


def test_listing3_scenario_assembly_cost(benchmark, engine, user, context):
    question = WhatIfConditionQuestion(text="What if I was pregnant?", condition="pregnancy")

    scenario = benchmark.pedantic(engine.build_scenario, args=(question, user, context),
                                  rounds=3, iterations=1)
    assert len(scenario.inferred) > len(scenario.asserted)
