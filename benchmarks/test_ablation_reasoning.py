"""Ablation: what the competency questions return *without* the reasoner.

DESIGN.md calls out the design choice the paper leans on — reasoning first,
then querying the inferred graph.  This ablation runs the three competency
question queries over (a) the asserted scenario graph and (b) the reasoned
one, showing that without materialisation the queries return nothing (the
transitive characteristic closure, the inverse properties and the Fact/Foil
classifications are all inferred), which is precisely why the paper's
pipeline requires the reasoner.
"""

from __future__ import annotations

from repro.core.queries import contextual_query, contrastive_query, counterfactual_query
from repro.core.questions import ContrastiveQuestion, WhatIfConditionQuestion, WhyQuestion
from repro.owl import Reasoner
from repro.sparql import query as sparql_query


def _asserted_and_reasoned(engine, question, user, context):
    scenario = engine.builder.build(question, user, context, run_reasoner=False)
    asserted = scenario.asserted
    reasoned = Reasoner(asserted.copy()).run()
    from repro.core.facts_foils import annotate_facts_and_foils
    annotate_facts_and_foils(reasoned, scenario.ecosystem_iri)
    return scenario, asserted, reasoned


def test_ablation_reasoning_contextual(benchmark, engine, user, context):
    question = WhyQuestion(text="Why should I eat Cauliflower Potato Curry?",
                           recipe="Cauliflower Potato Curry")
    scenario, asserted, reasoned = _asserted_and_reasoned(engine, question, user, context)
    query_text = contextual_query(scenario.question_iri)

    without = len(list(sparql_query(asserted, query_text)))
    with_reasoning = len(list(benchmark(sparql_query, reasoned, query_text)))

    print(f"\ncontextual rows without reasoning: {without}; with reasoning: {with_reasoning}")
    assert without == 0
    assert with_reasoning >= 1


def test_ablation_reasoning_contrastive(benchmark, engine, user, context):
    question = ContrastiveQuestion(
        text="Why should I eat Butternut Squash Soup over a Broccoli Cheddar Soup?",
        primary="Butternut Squash Soup", secondary="Broccoli Cheddar Soup")
    scenario, asserted, reasoned = _asserted_and_reasoned(engine, question, user, context)
    query_text = contrastive_query(scenario.question_iri)

    without = len(list(sparql_query(asserted, query_text)))
    with_reasoning = len(list(benchmark(sparql_query, reasoned, query_text)))

    print(f"\ncontrastive rows without reasoning: {without}; with reasoning: {with_reasoning}")
    assert without == 0
    assert with_reasoning >= 1


def test_ablation_reasoning_counterfactual(benchmark, engine, user, context):
    question = WhatIfConditionQuestion(text="What if I was pregnant?", condition="pregnancy")
    scenario, asserted, reasoned = _asserted_and_reasoned(engine, question, user, context)
    query_text = counterfactual_query(scenario.question_iri)

    without_rows = {
        (row["property"].local_name(), row["baseFood"].local_name())
        for row in sparql_query(asserted, query_text)
    }
    with_rows = {
        (row["property"].local_name(), row["baseFood"].local_name())
        for row in benchmark(sparql_query, reasoned, query_text)
    }

    print(f"\ncounterfactual rows without reasoning: {len(without_rows)}; "
          f"with reasoning: {len(with_rows)}")
    # Without the property-chain inference the derived 'forbids Sushi' row is missing.
    assert ("forbids", "Sushi") not in without_rows
    assert ("forbids", "Sushi") in with_rows
