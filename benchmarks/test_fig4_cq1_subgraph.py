"""Experiment E5 (Figure 4): the post-reasoning neighbourhood of competency question 1.

Figure 4 shows the slice of the ontology (after reasoning) needed to answer
"Why should I eat Cauliflower Potato Curry?": the question, its parameter,
the parameter's characteristics, their classes and the isInternal flags.
This benchmark extracts that neighbourhood as a CONSTRUCT query and checks
the edges the figure draws.
"""

from __future__ import annotations

from repro.core.queries import PREFIXES
from repro.ontology import feo
from repro.rdf.namespace import FOODKG
from repro.rdf.terms import IRI

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


def _neighbourhood_query(question_iri) -> str:
    return f"""{PREFIXES}
CONSTRUCT {{
  <{question_iri}> feo:hasParameter ?parameter .
  ?parameter feo:hasCharacteristic ?characteristic .
  ?characteristic a ?cls .
  ?characteristic feo:isInternal ?flag .
}}
WHERE {{
  <{question_iri}> feo:hasParameter ?parameter .
  ?parameter feo:hasCharacteristic ?characteristic .
  ?characteristic a ?cls .
  ?cls rdfs:subClassOf feo:Characteristic .
  OPTIONAL {{ ?characteristic feo:isInternal ?flag . }}
}}
"""


def test_fig4_cq1_neighbourhood(benchmark, cq1_scenario):
    query_text = _neighbourhood_query(cq1_scenario.question_iri)

    result = benchmark(cq1_scenario.query, query_text)
    subgraph = result.graph

    print(f"\nFigure 4 — CQ1 neighbourhood: {len(subgraph)} triples")
    print(subgraph.serialize("turtle"))

    curry = IRI(FOODKG.CauliflowerPotatoCurry)
    # The figure's backbone: question -> parameter -> characteristic -> class.
    assert (cq1_scenario.question_iri, feo.hasParameter, curry) in subgraph
    assert (curry, feo.hasCharacteristic, feo.SEASONS["autumn"]) in subgraph
    assert (feo.SEASONS["autumn"], _RDF_TYPE, feo.SeasonCharacteristic) in subgraph
    # And the internal/external flag used by the contextual query.
    assert any(True for _ in subgraph.triples((feo.SEASONS["autumn"], feo.isInternal, None)))
    # The ingredient path (curry -> cauliflower) is also part of the figure.
    assert (curry, feo.hasCharacteristic, IRI(FOODKG.Cauliflower)) in subgraph
