"""Unit tests for the cost-based SPARQL query planner."""

import pytest

from repro.rdf.graph import Graph, ReadOnlyGraphUnion
from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql import (
    parse_query,
    planner_stats,
    prepare,
    prepare_cached,
    prepared_cache,
    reset_planner_stats,
)
from repro.sparql.planner import (
    PlanEvaluator,
    PlannedBGP,
    PlannedGroup,
    _ChainSolution,
    compile_plan,
    expression_variables,
    pattern_variables,
)

EX = "http://example.org/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def graph():
    g = Graph()
    g.bind("ex", EX)
    ttl = """
    @prefix ex: <http://example.org/> .
    ex:alice a ex:Person ; ex:age 34 ; ex:knows ex:bob, ex:carol .
    ex:bob a ex:Person ; ex:age 25 ; ex:knows ex:carol ; ex:city ex:Boston .
    ex:carol a ex:Person ; ex:age 41 ; ex:city ex:Troy .
    ex:dave a ex:Robot ; ex:age 2 .
    ex:Boston ex:inRegion ex:NewEngland .
    """
    return g.parse(ttl)


# ---------------------------------------------------------------------------
# Plan compilation
# ---------------------------------------------------------------------------
class TestCompilePlan:
    def test_bgps_merge_across_filters(self, graph):
        query = parse_query(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { "
            "?p a ex:Person . FILTER(?a > 3) ?p ex:age ?a . }",
            graph.namespace_manager,
        )
        plan = compile_plan(query)
        group = plan.algebra.where
        assert isinstance(group, PlannedGroup)
        # One merged join space with both triples, filter held separately.
        assert len(group.elements) == 1
        bgp = group.elements[0][0]
        assert isinstance(bgp, PlannedBGP)
        assert len(bgp.triples) == 2
        assert len(group.filters) == 1

    def test_optional_is_a_merge_boundary(self, graph):
        query = parse_query(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { "
            "?p a ex:Person . OPTIONAL { ?p ex:city ?c } ?p ex:age ?a . }",
            graph.namespace_manager,
        )
        group = compile_plan(query).algebra.where
        kinds = [type(element).__name__ for element, _ in group.elements]
        assert kinds == ["PlannedBGP", "OptionalPattern", "PlannedBGP"]

    def test_repeated_variable_pins_order(self, graph):
        query = parse_query(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { "
            "?x ex:knows ?x . ?x ex:age ?a . }",
            graph.namespace_manager,
        )
        bgp = compile_plan(query).algebra.where.elements[0][0]
        assert bgp.reorderable is False

    def test_plan_does_not_mutate_the_parsed_algebra(self, graph):
        query = parse_query(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { ?p a ex:Person }",
            graph.namespace_manager,
        )
        original_where = query.where
        compile_plan(query)
        assert query.where is original_where

    def test_exists_variables_are_conservative(self, graph):
        query = parse_query(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { "
            "?p a ex:Person . FILTER EXISTS { ?p ex:knows ?friend } }",
            graph.namespace_manager,
        )
        group = compile_plan(query).algebra.where
        # ?friend only appears inside EXISTS but still gates the pushdown.
        assert Variable("friend") in group.filters[0].vars


class TestVariableAnalysis:
    def test_pattern_variables_cover_nested_structures(self, graph):
        query = parse_query(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { "
            "?a ex:p ?b . OPTIONAL { ?b ex:q ?c } "
            "{ ?d ex:r ?a } UNION { ?e ex:s 1 } "
            "BIND(?c + 1 AS ?f) VALUES ?g { 1 2 } }",
            graph.namespace_manager,
        )
        names = {str(v) for v in pattern_variables(query.where)}
        assert names == {"a", "b", "c", "d", "e", "f", "g"}

    def test_expression_variables(self, graph):
        query = parse_query(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { "
            "?a ex:p ?b . FILTER(?a != ?b && BOUND(?c)) }",
            graph.namespace_manager,
        )
        info = compile_plan(query).algebra.where.filters[0]
        assert {str(v) for v in info.vars} == {"a", "b", "c"}


# ---------------------------------------------------------------------------
# Planned evaluation behaviour
# ---------------------------------------------------------------------------
class TestPlannedEvaluation:
    def test_adversarial_order_is_reordered(self, graph):
        reset_planner_stats()
        # Worst-first: the var-var-var pattern opens the query.
        result = graph.query(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { "
            "?p ?any ?thing . ?p ex:city ex:Troy . ?p ex:age ?a . }"
        )
        assert len(list(result)) > 0
        stats = planner_stats()
        assert stats["reorderings_applied"] >= 1
        assert stats["actual_rows"] >= 1

    def test_filter_pushdown_counted_and_correct(self, graph):
        reset_planner_stats()
        result = graph.query(
            "PREFIX ex: <http://example.org/> SELECT ?p WHERE { "
            "?p a ex:Person . FILTER(?a > 30) ?p ex:age ?a . }"
        )
        names = sorted(str(row["p"]).rsplit("/", 1)[1] for row in result)
        assert names == ["alice", "carol"]
        assert planner_stats()["filters_pushed"] >= 1

    def test_filter_on_optional_variable_stays_late(self, graph):
        # BOUND(?c) must wait for the OPTIONAL that can bind ?c.
        result = graph.query(
            "PREFIX ex: <http://example.org/> SELECT ?p WHERE { "
            "?p a ex:Person . FILTER(BOUND(?c)) OPTIONAL { ?p ex:city ?c } }"
        )
        names = sorted(str(row["p"]).rsplit("/", 1)[1] for row in result)
        assert names == ["bob", "carol"]

    def test_hash_join_probe_reuse(self, graph):
        reset_planner_stats()
        # Every ?p probes ex:knows with distinct keys, but the second
        # pattern repeats probe keys across equal ?q bindings.
        graph.query(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { "
            "?p ex:knows ?q . ?q ex:age ?a . }"
        )
        stats = planner_stats()
        assert stats["hash_join_probes"] >= 1
        assert stats["hash_join_reuses"] >= 1

    def test_empty_pattern_short_circuits(self, graph):
        reset_planner_stats()
        result = graph.query(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { "
            "?p ex:age ?a . ?p ex:nonexistent ?x . }"
        )
        assert len(list(result)) == 0

    def test_init_bindings_drive_join_order(self, graph):
        result = graph.query(
            "PREFIX ex: <http://example.org/> SELECT ?city WHERE { "
            "?other ex:age ?a . ?p ex:knows ?other . ?other ex:city ?city . }",
            initBindings={"p": ex("bob")},
        )
        assert [str(row["city"]) for row in result] == [EX + "Troy"]

    def test_union_of_graphs_still_plans(self, graph):
        extra = Graph()
        extra.add((ex("eve"), ex("age"), Literal(30)))
        union = ReadOnlyGraphUnion(graph, extra)
        result = union.query(
            "PREFIX ex: <http://example.org/> SELECT ?p WHERE { ?p ex:age ?a }"
        )
        assert len(list(result)) == 5

    def test_plain_triple_store_without_cardinality_falls_back(self):
        class MinimalStore:
            def __init__(self, graph):
                self._graph = graph

            def triples(self, pattern):
                return self._graph.triples(pattern)

        g = Graph()
        g.add((ex("s"), ex("p"), ex("o")))
        prepared = prepare("PREFIX ex: <http://example.org/> SELECT * WHERE { ?s ex:p ?o }")
        result = prepared.evaluate(MinimalStore(g))
        assert len(list(result)) == 1


# ---------------------------------------------------------------------------
# Plan caching
# ---------------------------------------------------------------------------
class TestPlanCache:
    def test_prepared_query_compiles_once(self, graph):
        reset_planner_stats()
        prepared = prepare(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { ?p ex:age ?a }",
            graph.namespace_manager,
        )
        prepared.evaluate(graph)
        prepared.evaluate(graph)
        prepared.evaluate(graph)
        stats = planner_stats()
        assert stats["plans_compiled"] == 1
        assert stats["plan_cache_hits"] == 2
        assert prepared.plan is prepared.plan

    def test_prepare_cached_shares_the_plan(self, graph):
        prepared_cache().clear()
        reset_planner_stats()
        text = "PREFIX ex: <http://example.org/> SELECT * WHERE { ?p ex:city ?c }"
        first = prepare_cached(text)
        second = prepare_cached(text)
        assert first is second
        first.evaluate(graph)
        second.evaluate(graph)
        assert planner_stats()["plans_compiled"] == 1
        assert planner_stats()["plan_cache_hits"] == 1

    def test_estimated_vs_actual_counters_advance(self, graph):
        reset_planner_stats()
        graph.query(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { ?p ex:age ?a }"
        )
        stats = planner_stats()
        assert stats["bgps_evaluated"] == 1
        assert stats["estimated_rows"] >= 1
        assert stats["actual_rows"] == 4

    def test_naive_oracle_matches(self, graph):
        prepared = prepare(
            "PREFIX ex: <http://example.org/> SELECT * WHERE { "
            "?x a ?cls . ?p ex:knows ?x . }",
            graph.namespace_manager,
        )
        planned = sorted(tuple(str(v) for v in row) for row in prepared.evaluate(graph))
        naive = sorted(tuple(str(v) for v in row) for row in prepared.evaluate_naive(graph))
        assert planned == naive


# ---------------------------------------------------------------------------
# Chained solutions
# ---------------------------------------------------------------------------
class TestChainSolution:
    def test_mapping_protocol(self):
        base = {Variable("a"): ex("x")}
        chain = _ChainSolution(_ChainSolution(base, Variable("b"), ex("y")),
                               Variable("c"), Literal(1))
        assert chain[Variable("a")] == ex("x")
        assert chain.get(Variable("b")) == ex("y")
        assert chain.get(Variable("missing")) is None
        assert Variable("c") in chain
        assert len(chain) == 3
        assert set(chain) == {Variable("a"), Variable("b"), Variable("c")}

    def test_materialize_flattens_to_dict(self):
        base = {Variable("a"): ex("x")}
        chain = _ChainSolution(base, Variable("b"), ex("y"))
        flat = chain.materialize()
        assert flat == {Variable("a"): ex("x"), Variable("b"): ex("y")}
        assert isinstance(flat, dict)
        assert base == {Variable("a"): ex("x")}  # untouched

    def test_dict_conversion_for_exists(self):
        base = {Variable("a"): ex("x")}
        chain = _ChainSolution(base, Variable("b"), ex("y"))
        assert dict(chain) == chain.materialize()
