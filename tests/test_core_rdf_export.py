"""Tests for serialising explanations back into RDF (EO encoding)."""

import pytest

from repro.core.generators import (
    ContextualExplanationGenerator,
    ContrastiveExplanationGenerator,
    CounterfactualExplanationGenerator,
)
from repro.core.rdf_export import explanation_iri, explanation_to_rdf
from repro.ontology import eo, feo
from repro.rdf.graph import Graph
from repro.rdf.namespace import FOODKG
from repro.rdf.terms import IRI

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


@pytest.fixture(scope="module")
def contextual_rdf(cq1_scenario):
    explanation = ContextualExplanationGenerator().generate(cq1_scenario)
    graph = explanation_to_rdf(explanation, scenario=cq1_scenario)
    return explanation, graph


class TestExplanationToRdf:
    def test_explanation_individual_typed_with_eo_class(self, contextual_rdf):
        explanation, graph = contextual_rdf
        subject = explanation_iri(explanation)
        assert (subject, _RDF_TYPE, eo.ContextualExplanation) in graph
        assert (subject, _RDF_TYPE, eo.Explanation) in graph

    def test_explanation_addresses_the_question(self, contextual_rdf, cq1_scenario):
        explanation, graph = contextual_rdf
        subject = explanation_iri(explanation)
        assert (subject, eo.addresses, cq1_scenario.question_iri) in graph
        assert (cq1_scenario.question_iri, feo.hasExplanation, subject) in graph

    def test_supporting_evidence_linked(self, contextual_rdf):
        explanation, graph = contextual_rdf
        subject = explanation_iri(explanation)
        assert (subject, eo.isSupportedBy, feo.SEASONS["autumn"]) in graph

    def test_rendered_text_attached_as_comment(self, contextual_rdf):
        explanation, graph = contextual_rdf
        subject = explanation_iri(explanation)
        comments = list(graph.objects(subject, IRI("http://www.w3.org/2000/01/rdf-schema#comment")))
        assert any("recommended because" in str(comment) for comment in comments)

    def test_knowledge_records_created_for_details(self, contextual_rdf):
        _, graph = contextual_rdf
        assert list(graph.subjects(_RDF_TYPE, eo.KnowledgeRecord))

    def test_contrastive_export_links_foils_via_in_relation_to(self, cq2_scenario):
        explanation = ContrastiveExplanationGenerator().generate(cq2_scenario)
        graph = explanation_to_rdf(explanation, scenario=cq2_scenario)
        subject = explanation_iri(explanation)
        assert (subject, _RDF_TYPE, eo.ContrastiveExplanation) in graph
        assert (subject, eo.inRelationTo, IRI(FOODKG.Broccoli)) in graph
        assert (subject, eo.isSupportedBy, feo.SEASONS["autumn"]) in graph

    def test_counterfactual_export_resolves_condition_iri(self, cq3_scenario):
        explanation = CounterfactualExplanationGenerator().generate(cq3_scenario)
        graph = explanation_to_rdf(explanation, scenario=cq3_scenario)
        subject = explanation_iri(explanation)
        assert (subject, _RDF_TYPE, eo.CounterfactualExplanation) in graph
        assert (subject, eo.inRelationTo, IRI(FOODKG.Sushi)) in graph

    def test_export_into_existing_graph_accumulates(self, cq1_scenario, cq2_scenario):
        graph = Graph()
        first = ContextualExplanationGenerator().generate(cq1_scenario)
        second = ContrastiveExplanationGenerator().generate(cq2_scenario)
        explanation_to_rdf(first, graph=graph, scenario=cq1_scenario)
        explanation_to_rdf(second, graph=graph, scenario=cq2_scenario)
        explanations = set(graph.subjects(_RDF_TYPE, eo.Explanation))
        assert len(explanations) == 2

    def test_export_round_trips_through_turtle(self, contextual_rdf):
        _, graph = contextual_rdf
        graph.bind("eo", str(eo.Explanation).rsplit("#", 1)[0] + "#")
        text = graph.serialize("turtle")
        reparsed = Graph().parse(text)
        assert len(reparsed) == len(graph)

    def test_explanation_iri_is_deterministic(self, cq1_scenario):
        explanation = ContextualExplanationGenerator().generate(cq1_scenario)
        assert explanation_iri(explanation) == explanation_iri(explanation)
        assert "Contextual" in str(explanation_iri(explanation))
