"""Direct tests for SPARQL expression evaluation and built-in functions."""

import pytest

from repro.rdf.terms import BNode, IRI, Literal, Variable, XSD_BOOLEAN
from repro.sparql.algebra import (
    BinaryExpr,
    FunctionExpr,
    InExpr,
    TermExpr,
    UnaryExpr,
    VariableExpr,
)
from repro.sparql.functions import (
    ExpressionError,
    effective_boolean_value,
    evaluate_expression,
)

TRUE = Literal(True)
FALSE = Literal(False)


def var(name):
    return VariableExpr(Variable(name))


def lit(value):
    return TermExpr(Literal(value))


def evaluate(expression, **bindings):
    mapping = {Variable(k): v for k, v in bindings.items()}
    return evaluate_expression(expression, mapping)


class TestEffectiveBooleanValue:
    def test_boolean_literals(self):
        assert effective_boolean_value(TRUE) is True
        assert effective_boolean_value(FALSE) is False

    def test_numeric_literals(self):
        assert effective_boolean_value(Literal(5)) is True
        assert effective_boolean_value(Literal(0)) is False

    def test_string_literals(self):
        assert effective_boolean_value(Literal("x")) is True
        assert effective_boolean_value(Literal("")) is False

    def test_unbound_raises(self):
        with pytest.raises(ExpressionError):
            effective_boolean_value(None)

    def test_iri_raises(self):
        with pytest.raises(ExpressionError):
            effective_boolean_value(IRI("http://example.org/x"))


class TestComparisons:
    def test_numeric_comparison_across_datatypes(self):
        expr = BinaryExpr("<", lit(2), TermExpr(Literal(2.5)))
        assert evaluate(expr) == TRUE

    def test_string_equality(self):
        assert evaluate(BinaryExpr("=", lit("a"), lit("a"))) == TRUE
        assert evaluate(BinaryExpr("!=", lit("a"), lit("b"))) == TRUE

    def test_iri_equality(self):
        left = TermExpr(IRI("http://example.org/a"))
        right = TermExpr(IRI("http://example.org/a"))
        assert evaluate(BinaryExpr("=", left, right)) == TRUE

    def test_iri_ordering_is_an_error(self):
        left = TermExpr(IRI("http://example.org/a"))
        right = TermExpr(IRI("http://example.org/b"))
        with pytest.raises(ExpressionError):
            evaluate(BinaryExpr("<", left, right))

    def test_mixed_kind_equality_is_false(self):
        assert evaluate(BinaryExpr("=", TermExpr(IRI("urn:a")), lit("urn:a"))) == FALSE

    def test_unbound_variable_comparison_raises(self):
        with pytest.raises(ExpressionError):
            evaluate(BinaryExpr("=", var("x"), lit(1)))


class TestLogicalOperators:
    def test_or_short_circuits_errors(self):
        # error || true == true (SPARQL three-valued logic)
        expr = BinaryExpr("||", BinaryExpr("=", var("missing"), lit(1)), lit(True))
        assert evaluate(expr) == TRUE

    def test_and_short_circuits_errors(self):
        # error && false == false
        expr = BinaryExpr("&&", BinaryExpr("=", var("missing"), lit(1)), lit(False))
        assert evaluate(expr) == FALSE

    def test_and_with_error_and_true_raises(self):
        expr = BinaryExpr("&&", BinaryExpr("=", var("missing"), lit(1)), lit(True))
        with pytest.raises(ExpressionError):
            evaluate(expr)

    def test_negation(self):
        assert evaluate(UnaryExpr("!", lit(False))) == TRUE

    def test_in_expression(self):
        expr = InExpr(lit(2), (lit(1), lit(2), lit(3)))
        assert evaluate(expr) == TRUE
        assert evaluate(InExpr(lit(9), (lit(1),), negated=True)) == TRUE


class TestArithmetic:
    def test_addition_and_multiplication(self):
        assert evaluate(BinaryExpr("+", lit(2), lit(3))).value == 5
        assert evaluate(BinaryExpr("*", lit(2), lit(3))).value == 6

    def test_division_produces_double(self):
        result = evaluate(BinaryExpr("/", lit(7), lit(2)))
        assert float(result.value) == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError):
            evaluate(BinaryExpr("/", lit(1), lit(0)))

    def test_unary_minus(self):
        assert evaluate(UnaryExpr("-", lit(4))).value == -4


class TestStringFunctions:
    def test_str_of_iri(self):
        result = evaluate(FunctionExpr("STR", (TermExpr(IRI("urn:x")),)))
        assert result == Literal("urn:x")

    def test_contains_strstarts_strends(self):
        assert evaluate(FunctionExpr("CONTAINS", (lit("butternut"), lit("utter")))) == TRUE
        assert evaluate(FunctionExpr("STRSTARTS", (lit("autumn"), lit("aut")))) == TRUE
        assert evaluate(FunctionExpr("STRENDS", (lit("autumn"), lit("umn")))) == TRUE

    def test_ucase_lcase_strlen(self):
        assert evaluate(FunctionExpr("UCASE", (lit("feo"),))) == Literal("FEO")
        assert evaluate(FunctionExpr("LCASE", (lit("FEO"),))) == Literal("feo")
        assert evaluate(FunctionExpr("STRLEN", (lit("food"),))).value == 4

    def test_concat(self):
        assert evaluate(FunctionExpr("CONCAT", (lit("a"), lit("b"), lit("c")))) == Literal("abc")

    def test_strbefore_strafter(self):
        assert evaluate(FunctionExpr("STRBEFORE", (lit("a#b"), lit("#")))) == Literal("a")
        assert evaluate(FunctionExpr("STRAFTER", (lit("a#b"), lit("#")))) == Literal("b")

    def test_replace_and_regex_flags(self):
        assert evaluate(FunctionExpr("REPLACE", (lit("aAa"), lit("a"), lit("x")))) == Literal("xAx")
        assert evaluate(FunctionExpr("REGEX", (lit("Autumn"), lit("^aut"), lit("i")))) == TRUE

    def test_substr(self):
        assert evaluate(FunctionExpr("SUBSTR", (lit("season"), lit(2), lit(3)))) == Literal("eas")

    def test_lang_and_langmatches(self):
        tagged = TermExpr(Literal("chat", language="fr"))
        assert evaluate(FunctionExpr("LANG", (tagged,))) == Literal("fr")
        assert evaluate(FunctionExpr("LANGMATCHES",
                                     (FunctionExpr("LANG", (tagged,)), lit("FR")))) == TRUE


class TestTermFunctions:
    def test_datatype(self):
        result = evaluate(FunctionExpr("DATATYPE", (lit(5),)))
        assert str(result).endswith("integer")

    def test_type_checks(self):
        assert evaluate(FunctionExpr("ISIRI", (TermExpr(IRI("urn:x")),))) == TRUE
        assert evaluate(FunctionExpr("ISLITERAL", (lit("x"),))) == TRUE
        assert evaluate(FunctionExpr("ISNUMERIC", (lit(3),))) == TRUE
        assert evaluate(FunctionExpr("ISNUMERIC", (lit("three"),))) == FALSE

    def test_isblank(self):
        assert evaluate(FunctionExpr("ISBLANK", (TermExpr(IRI("urn:x")),))) == FALSE

    def test_bound_checks_binding_not_value(self):
        assert evaluate(FunctionExpr("BOUND", (var("x"),)), x=Literal(1)) == TRUE
        assert evaluate(FunctionExpr("BOUND", (var("x"),))) == FALSE

    def test_iri_constructor(self):
        assert evaluate(FunctionExpr("IRI", (lit("urn:new"),))) == IRI("urn:new")

    def test_sameterm(self):
        assert evaluate(FunctionExpr("SAMETERM",
                                     (TermExpr(IRI("urn:x")), TermExpr(IRI("urn:x"))))) == TRUE

    def test_numeric_rounding_functions(self):
        assert evaluate(FunctionExpr("ABS", (lit(-3),))).value == 3
        assert evaluate(FunctionExpr("CEIL", (TermExpr(Literal(2.1)),))).value == 3
        assert evaluate(FunctionExpr("FLOOR", (TermExpr(Literal(2.9)),))).value == 2
        assert evaluate(FunctionExpr("ROUND", (TermExpr(Literal(2.5)),))).value == 2

    def test_if_and_coalesce(self):
        expr = FunctionExpr("IF", (lit(True), lit("yes"), lit("no")))
        assert evaluate(expr) == Literal("yes")
        coalesce = FunctionExpr("COALESCE", (var("missing"), lit("fallback")))
        assert evaluate(coalesce) == Literal("fallback")

    def test_unsupported_function_raises(self):
        with pytest.raises(ExpressionError):
            evaluate(FunctionExpr("UUIDISH", (lit("x"),)))
