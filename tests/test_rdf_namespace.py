"""Unit tests for namespaces and the namespace manager."""

import pytest

from repro.rdf.namespace import (
    DEFAULT_PREFIXES,
    FEO,
    Namespace,
    NamespaceManager,
    RDF,
    RDFS,
)
from repro.rdf.terms import IRI


class TestNamespace:
    def test_attribute_access_mints_iri(self):
        ns = Namespace("http://example.org/")
        assert ns.Thing == IRI("http://example.org/Thing")

    def test_item_access_mints_iri(self):
        ns = Namespace("http://example.org/")
        assert ns["Thing"] == IRI("http://example.org/Thing")

    def test_term_method(self):
        ns = Namespace("http://example.org/")
        assert ns.term("a b") == IRI("http://example.org/a b")

    def test_contains_checks_prefix(self):
        assert str(FEO.Autumn) in FEO
        assert "http://other.org/x" not in FEO

    def test_dunder_attributes_not_minted(self):
        ns = Namespace("http://example.org/")
        with pytest.raises(AttributeError):
            ns.__wrapped__

    def test_well_known_namespaces(self):
        assert RDF.type == IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        assert RDFS.subClassOf == IRI("http://www.w3.org/2000/01/rdf-schema#subClassOf")


class TestNamespaceManager:
    def test_defaults_bound(self):
        manager = NamespaceManager()
        assert manager.namespace_for("feo") == str(FEO)

    def test_expand_prefixed_name(self):
        manager = NamespaceManager()
        assert manager.expand("feo:Autumn") == IRI(str(FEO) + "Autumn")

    def test_expand_unknown_prefix_raises(self):
        manager = NamespaceManager()
        with pytest.raises(KeyError):
            manager.expand("nope:Thing")

    def test_expand_requires_colon(self):
        manager = NamespaceManager()
        with pytest.raises(ValueError):
            manager.expand("Autumn")

    def test_qname_compacts(self):
        manager = NamespaceManager()
        assert manager.qname(IRI(str(FEO) + "Autumn")) == "feo:Autumn"

    def test_qname_returns_none_when_unknown(self):
        manager = NamespaceManager()
        assert manager.qname(IRI("http://unknown.example/x")) is None

    def test_qname_refuses_nested_paths(self):
        manager = NamespaceManager()
        manager.bind("ex", "http://example.org/")
        assert manager.qname(IRI("http://example.org/a/b")) is None

    def test_bind_and_rebind(self):
        manager = NamespaceManager(bind_defaults=False)
        manager.bind("ex", "http://one.example/")
        manager.bind("ex", "http://two.example/")
        assert manager.namespace_for("ex") == "http://two.example/"

    def test_bind_without_replace_keeps_existing(self):
        manager = NamespaceManager(bind_defaults=False)
        manager.bind("ex", "http://one.example/")
        manager.bind("ex", "http://two.example/", replace=False)
        assert manager.namespace_for("ex") == "http://one.example/"

    def test_copy_is_independent(self):
        manager = NamespaceManager(bind_defaults=False)
        manager.bind("ex", "http://one.example/")
        clone = manager.copy()
        clone.bind("ex", "http://two.example/")
        assert manager.namespace_for("ex") == "http://one.example/"

    def test_namespaces_iteration_sorted(self):
        manager = NamespaceManager(bind_defaults=False)
        manager.bind("b", "http://b.example/")
        manager.bind("a", "http://a.example/")
        assert [prefix for prefix, _ in manager.namespaces()] == ["a", "b"]

    def test_default_prefix_catalogue_is_consistent(self):
        manager = NamespaceManager()
        for prefix, namespace in DEFAULT_PREFIXES.items():
            assert manager.namespace_for(prefix) == str(namespace)
