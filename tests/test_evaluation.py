"""Tests for the evaluation harness: metrics, coverage matrix and report."""

import pytest

from repro.core.queries import contextual_query, contrastive_query
from repro.evaluation import (
    CoverageMatrix,
    compute_coverage,
    ontology_metrics,
    query_metrics,
    run_evaluation,
)
from repro.evaluation.coverage import CoverageCell
from repro.rdf.terms import IRI
from repro.users import persona


class TestOntologyMetrics:
    def test_counts_reflect_ontology_content(self, ontology_graph):
        metrics = ontology_metrics(ontology_graph)
        assert metrics.classes >= 40
        assert metrics.object_properties >= 40
        assert metrics.subclass_axioms >= 30
        assert metrics.triples == len(ontology_graph)

    def test_as_dict_keys(self, ontology_graph):
        data = ontology_metrics(ontology_graph).as_dict()
        assert {"triples", "classes", "object_properties", "named_individuals"} <= set(data)


class TestQueryMetrics:
    def test_contextual_query_complexity(self):
        metrics = query_metrics(contextual_query(IRI("urn:q")))
        assert metrics.filters == 2
        assert metrics.not_exists == 1
        assert metrics.variables >= 4

    def test_contrastive_query_has_paths_and_negations(self):
        metrics = query_metrics(contrastive_query(IRI("urn:q")))
        assert metrics.not_exists == 4
        assert metrics.property_paths >= 2

    def test_as_dict(self):
        data = query_metrics(contextual_query(IRI("urn:q"))).as_dict()
        assert set(data) == {"triple_patterns", "filters", "not_exists", "optionals",
                             "property_paths", "variables"}


class TestCoverage:
    @pytest.fixture(scope="class")
    def matrix(self, engine):
        user, context = persona("paper")
        return compute_coverage(engine, personas={"paper": (user, context)})

    def test_cells_cover_all_types_for_the_persona(self, matrix):
        types = {cell.explanation_type for cell in matrix.cells}
        assert len(types) == 9

    def test_core_types_covered_for_paper_persona(self, matrix):
        for explanation_type in ("contextual", "contrastive", "counterfactual",
                                 "scientific", "statistical", "everyday",
                                 "simulation_based", "trace_based"):
            assert matrix.covered("paper", explanation_type), explanation_type

    def test_overall_coverage_bounds(self, matrix):
        assert 0.0 <= matrix.overall_coverage() <= 1.0
        assert matrix.overall_coverage() >= 8 / 9

    def test_coverage_by_type_structure(self, matrix):
        by_type = matrix.coverage_by_type()
        assert set(by_type) == {cell.explanation_type for cell in matrix.cells}
        assert all(0.0 <= value <= 1.0 for value in by_type.values())

    def test_table_rendering(self, matrix):
        table = matrix.to_table()
        assert "paper" in table and "contextual" in table

    def test_unknown_cell_lookup_raises(self, matrix):
        with pytest.raises(KeyError):
            matrix.covered("nobody", "contextual")

    def test_empty_matrix_coverage_is_zero(self):
        assert CoverageMatrix().overall_coverage() == 0.0


class TestReport:
    @pytest.fixture(scope="class")
    def report(self, engine):
        return run_evaluation(engine, include_extended=False)

    def test_all_paper_questions_pass(self, report):
        assert report.all_passed

    def test_text_report_sections(self, report):
        text = report.to_text()
        assert "Competency questions" in text
        assert "Coverage" in text
        assert "Ontology metrics" in text
        assert "query complexity" in text

    def test_report_contains_cq_identifiers(self, report):
        text = report.to_text()
        for identifier in ("CQ1", "CQ2", "CQ3"):
            assert identifier in text
