"""Unit tests for the indexed triple store."""

import pytest

from repro.rdf.graph import Graph, ReadOnlyGraphUnion
from repro.rdf.namespace import RDF
from repro.rdf.terms import BNode, IRI, Literal

EX = "http://example.org/"


def ex(name: str) -> IRI:
    return IRI(EX + name)


@pytest.fixture
def small_graph():
    g = Graph()
    g.add((ex("alice"), ex("knows"), ex("bob")))
    g.add((ex("alice"), ex("knows"), ex("carol")))
    g.add((ex("bob"), ex("knows"), ex("carol")))
    g.add((ex("alice"), ex("name"), Literal("Alice")))
    g.add((ex("alice"), IRI(RDF.type), ex("Person")))
    return g


class TestAddRemove:
    def test_len_counts_unique_triples(self, small_graph):
        assert len(small_graph) == 5

    def test_duplicate_add_is_idempotent(self, small_graph):
        small_graph.add((ex("alice"), ex("knows"), ex("bob")))
        assert len(small_graph) == 5

    def test_contains_full_triple(self, small_graph):
        assert (ex("alice"), ex("knows"), ex("bob")) in small_graph

    def test_contains_pattern_with_wildcards(self, small_graph):
        assert (ex("alice"), None, None) in small_graph
        assert (None, ex("knows"), ex("carol")) in small_graph
        assert (ex("carol"), None, None) not in small_graph

    def test_remove_specific_triple(self, small_graph):
        small_graph.remove((ex("alice"), ex("knows"), ex("bob")))
        assert (ex("alice"), ex("knows"), ex("bob")) not in small_graph
        assert len(small_graph) == 4

    def test_remove_with_wildcard(self, small_graph):
        small_graph.remove((ex("alice"), None, None))
        assert len(small_graph) == 1

    def test_remove_nonexistent_is_noop(self, small_graph):
        small_graph.remove((ex("zed"), None, None))
        assert len(small_graph) == 5

    def test_set_replaces_existing_values(self, small_graph):
        small_graph.set((ex("alice"), ex("knows"), ex("dave")))
        assert list(small_graph.objects(ex("alice"), ex("knows"))) == [ex("dave")]

    def test_clear(self, small_graph):
        small_graph.clear()
        assert len(small_graph) == 0

    def test_literal_subject_rejected(self):
        g = Graph()
        with pytest.raises(TypeError):
            g.add((Literal("x"), ex("p"), ex("o")))

    def test_literal_predicate_rejected(self):
        g = Graph()
        with pytest.raises(TypeError):
            g.add((ex("s"), Literal("p"), ex("o")))

    def test_bnode_predicate_rejected(self):
        g = Graph()
        with pytest.raises(TypeError):
            g.add((ex("s"), BNode(), ex("o")))

    def test_addN(self):
        g = Graph()
        g.addN([(ex("a"), ex("p"), ex("b")), (ex("a"), ex("p"), ex("c"))])
        assert len(g) == 2


class TestPatternMatching:
    def test_all_triples(self, small_graph):
        assert len(list(small_graph.triples((None, None, None)))) == 5

    def test_subject_bound(self, small_graph):
        assert len(list(small_graph.triples((ex("alice"), None, None)))) == 4

    def test_subject_predicate_bound(self, small_graph):
        assert len(list(small_graph.triples((ex("alice"), ex("knows"), None)))) == 2

    def test_predicate_bound(self, small_graph):
        assert len(list(small_graph.triples((None, ex("knows"), None)))) == 3

    def test_object_bound(self, small_graph):
        assert len(list(small_graph.triples((None, None, ex("carol"))))) == 2

    def test_predicate_object_bound(self, small_graph):
        assert len(list(small_graph.triples((None, ex("knows"), ex("carol"))))) == 2

    def test_no_match_returns_empty(self, small_graph):
        assert list(small_graph.triples((ex("nobody"), None, None))) == []

    def test_indexes_consistent_after_removal(self, small_graph):
        small_graph.remove((None, ex("knows"), ex("carol")))
        assert list(small_graph.triples((None, ex("knows"), ex("carol")))) == []
        assert (ex("alice"), ex("knows"), ex("bob")) in small_graph


class TestAccessors:
    def test_subjects(self, small_graph):
        assert set(small_graph.subjects(ex("knows"), ex("carol"))) == {ex("alice"), ex("bob")}

    def test_objects(self, small_graph):
        assert set(small_graph.objects(ex("alice"), ex("knows"))) == {ex("bob"), ex("carol")}

    def test_predicates(self, small_graph):
        assert ex("knows") in set(small_graph.predicates(ex("alice")))

    def test_value_returns_one_match(self, small_graph):
        assert small_graph.value(ex("alice"), ex("name")) == Literal("Alice")

    def test_value_default(self, small_graph):
        assert small_graph.value(ex("zed"), ex("name"), default="n/a") == "n/a"

    def test_value_requires_two_bound_positions(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.value(ex("alice"))

    def test_types_of(self, small_graph):
        assert small_graph.types_of(ex("alice")) == {ex("Person")}

    def test_instances_of(self, small_graph):
        assert small_graph.instances_of(ex("Person")) == {ex("alice")}

    def test_subject_objects(self, small_graph):
        pairs = set(small_graph.subject_objects(ex("knows")))
        assert (ex("alice"), ex("bob")) in pairs

    def test_all_nodes(self, small_graph):
        nodes = small_graph.all_nodes()
        assert ex("alice") in nodes and Literal("Alice") in nodes


class TestSetOperations:
    def test_copy_is_independent(self, small_graph):
        clone = small_graph.copy()
        clone.add((ex("new"), ex("p"), ex("o")))
        assert len(clone) == len(small_graph) + 1

    def test_union(self, small_graph):
        other = Graph()
        other.add((ex("x"), ex("p"), ex("y")))
        union = small_graph + other
        assert len(union) == 6

    def test_difference(self, small_graph):
        other = Graph()
        other.add((ex("alice"), ex("knows"), ex("bob")))
        diff = small_graph - other
        assert len(diff) == 4

    def test_intersection(self, small_graph):
        other = Graph()
        other.add((ex("alice"), ex("knows"), ex("bob")))
        other.add((ex("unrelated"), ex("p"), ex("o")))
        inter = small_graph & other
        assert len(inter) == 1

    def test_equality_by_triple_set(self, small_graph):
        assert small_graph == small_graph.copy()

    def test_iadd(self, small_graph):
        small_graph += [(ex("x"), ex("p"), ex("y"))]
        assert (ex("x"), ex("p"), ex("y")) in small_graph


class TestReadOnlyUnion:
    def test_union_view_sees_both_graphs(self, small_graph):
        other = Graph()
        other.add((ex("x"), ex("p"), ex("y")))
        view = ReadOnlyGraphUnion(small_graph, other)
        assert (ex("x"), ex("p"), ex("y")) in view
        assert (ex("alice"), ex("knows"), ex("bob")) in view
        assert len(view) == 6

    def test_union_view_deduplicates(self, small_graph):
        other = small_graph.copy()
        view = ReadOnlyGraphUnion(small_graph, other)
        assert len(view) == len(small_graph)

    def test_union_requires_at_least_one_graph(self):
        with pytest.raises(ValueError):
            ReadOnlyGraphUnion()


class TestCardinality:
    """The O(1) statistics API feeding the SPARQL query planner."""

    ALL_PATTERNS = [
        (None, None, None),
        ("alice", None, None),
        (None, "knows", None),
        (None, None, "carol"),
        ("alice", "knows", None),
        ("alice", None, "carol"),
        (None, "knows", "carol"),
        ("alice", "knows", "bob"),
        ("alice", "knows", "dave"),
        ("nobody", None, None),
        (None, "unknown", None),
        (None, None, "nothing"),
    ]

    @pytest.mark.parametrize("pattern", ALL_PATTERNS)
    def test_cardinality_matches_scan(self, small_graph, pattern):
        resolved = tuple(ex(part) if part else None for part in pattern)
        assert small_graph.cardinality(resolved) == len(list(small_graph.triples(resolved)))

    def test_cardinality_tracks_mutations(self, small_graph):
        before = small_graph.cardinality((None, ex("knows"), None))
        small_graph.add((ex("carol"), ex("knows"), ex("alice")))
        assert small_graph.cardinality((None, ex("knows"), None)) == before + 1
        small_graph.remove((None, ex("knows"), None))
        assert small_graph.cardinality((None, ex("knows"), None)) == 0
        assert small_graph.cardinality((None, None, None)) == len(small_graph)

    def test_cardinality_survives_copy_and_clear(self, small_graph):
        clone = small_graph.copy()
        assert clone.cardinality((None, ex("knows"), None)) == 3
        clone.clear()
        assert clone.cardinality((None, ex("knows"), None)) == 0
        assert clone.cardinality((None, None, None)) == 0
        # The original keeps its counters.
        assert small_graph.cardinality((None, ex("knows"), None)) == 3

    def test_index_stats(self, small_graph):
        stats = small_graph.index_stats()
        assert stats["triples"] == 5
        assert stats["subjects"] == 2  # alice, bob
        assert stats["predicates"] == 3  # knows, name, rdf:type
        assert stats["objects"] == 4  # bob, carol, "Alice", Person

    def test_predicate_stats(self, small_graph):
        stats = small_graph.predicate_stats(ex("knows"))
        assert stats == {"count": 3, "distinct_objects": 2}
        assert small_graph.predicate_stats(ex("unknown")) == {
            "count": 0, "distinct_objects": 0,
        }

    def test_union_cardinality_sums_members(self, small_graph):
        other = Graph()
        other.add((ex("dave"), ex("knows"), ex("alice")))
        view = ReadOnlyGraphUnion(small_graph, other)
        assert view.cardinality((None, ex("knows"), None)) == 4
        assert view.index_stats()["triples"] == 6
        assert view.predicate_stats(ex("knows"))["count"] == 4
