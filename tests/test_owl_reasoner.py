"""Tests for the OWL-RL-style reasoner (the Pellet substitute)."""

import pytest

from repro.owl import (
    AxiomIndex,
    ClassHierarchy,
    InconsistentOntologyError,
    PropertyHierarchy,
    Reasoner,
    render_tree,
)
from repro.owl.vocabulary import RDF_TYPE, RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal

EX = "http://example.org/"


def ex(name):
    return IRI(EX + name)


def reason(ttl: str) -> Graph:
    graph = Graph()
    graph.bind("ex", EX)
    graph.parse(
        "@prefix ex: <http://example.org/> .\n"
        "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
        "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
        "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n" + ttl
    )
    return Reasoner(graph).run()


class TestRdfsRules:
    def test_subclass_transitivity(self):
        inferred = reason("""
        ex:A rdfs:subClassOf ex:B . ex:B rdfs:subClassOf ex:C .
        """)
        assert (ex("A"), RDFS_SUBCLASSOF, ex("C")) in inferred

    def test_type_propagation_through_subclass(self):
        inferred = reason("""
        ex:Cat rdfs:subClassOf ex:Mammal . ex:Mammal rdfs:subClassOf ex:Animal .
        ex:felix a ex:Cat .
        """)
        assert (ex("felix"), RDF_TYPE, ex("Mammal")) in inferred
        assert (ex("felix"), RDF_TYPE, ex("Animal")) in inferred

    def test_subproperty_transitivity_and_propagation(self):
        inferred = reason("""
        ex:hasMother rdfs:subPropertyOf ex:hasParent .
        ex:hasParent rdfs:subPropertyOf ex:hasAncestor .
        ex:amy ex:hasMother ex:beth .
        """)
        assert (ex("hasMother"), RDFS_SUBPROPERTYOF, ex("hasAncestor")) in inferred
        assert (ex("amy"), ex("hasParent"), ex("beth")) in inferred
        assert (ex("amy"), ex("hasAncestor"), ex("beth")) in inferred

    def test_domain_and_range_typing(self):
        inferred = reason("""
        ex:teaches rdfs:domain ex:Teacher . ex:teaches rdfs:range ex:Course .
        ex:ann ex:teaches ex:math101 .
        """)
        assert (ex("ann"), RDF_TYPE, ex("Teacher")) in inferred
        assert (ex("math101"), RDF_TYPE, ex("Course")) in inferred

    def test_range_not_applied_to_literals(self):
        inferred = reason("""
        ex:label rdfs:range ex:Name .
        ex:ann ex:label "Ann" .
        """)
        assert not list(inferred.triples((None, RDF_TYPE, ex("Name"))))


class TestOwlPropertyRules:
    def test_inverse_of(self):
        inferred = reason("""
        ex:hasChild owl:inverseOf ex:hasParent .
        ex:ann ex:hasChild ex:bo .
        """)
        assert (ex("bo"), ex("hasParent"), ex("ann")) in inferred

    def test_inverse_is_symmetric_declaration(self):
        inferred = reason("""
        ex:hasChild owl:inverseOf ex:hasParent .
        ex:bo ex:hasParent ex:ann .
        """)
        assert (ex("ann"), ex("hasChild"), ex("bo")) in inferred

    def test_symmetric_property(self):
        inferred = reason("""
        ex:marriedTo a owl:SymmetricProperty .
        ex:ann ex:marriedTo ex:bo .
        """)
        assert (ex("bo"), ex("marriedTo"), ex("ann")) in inferred

    def test_transitive_property(self):
        inferred = reason("""
        ex:partOf a owl:TransitiveProperty .
        ex:finger ex:partOf ex:hand . ex:hand ex:partOf ex:arm . ex:arm ex:partOf ex:body .
        """)
        assert (ex("finger"), ex("partOf"), ex("arm")) in inferred
        assert (ex("finger"), ex("partOf"), ex("body")) in inferred

    def test_property_chain(self):
        inferred = reason("""
        ex:hasUncle owl:propertyChainAxiom ( ex:hasParent ex:hasBrother ) .
        ex:kid ex:hasParent ex:mum . ex:mum ex:hasBrother ex:uncle .
        """)
        assert (ex("kid"), ex("hasUncle"), ex("uncle")) in inferred

    def test_equivalent_property(self):
        inferred = reason("""
        ex:cost owl:equivalentProperty ex:price .
        ex:item ex:cost ex:tenDollars .
        """)
        assert (ex("item"), ex("price"), ex("tenDollars")) in inferred


class TestClassification:
    def test_has_value_classification(self):
        inferred = reason("""
        ex:RedThing owl:equivalentClass [ a owl:Restriction ;
            owl:onProperty ex:color ; owl:hasValue ex:red ] .
        ex:apple ex:color ex:red .
        ex:sky ex:color ex:blue .
        """)
        assert (ex("apple"), RDF_TYPE, ex("RedThing")) in inferred
        assert (ex("sky"), RDF_TYPE, ex("RedThing")) not in inferred

    def test_has_value_consequence_direction(self):
        inferred = reason("""
        ex:RedThing rdfs:subClassOf [ a owl:Restriction ;
            owl:onProperty ex:color ; owl:hasValue ex:red ] .
        ex:cherry a ex:RedThing .
        """)
        assert (ex("cherry"), ex("color"), ex("red")) in inferred

    def test_some_values_from_classification(self):
        inferred = reason("""
        ex:Parent owl:equivalentClass [ a owl:Restriction ;
            owl:onProperty ex:hasChild ; owl:someValuesFrom ex:Person ] .
        ex:kid a ex:Person .
        ex:ann ex:hasChild ex:kid .
        ex:rock ex:hasChild ex:pebble .
        """)
        assert (ex("ann"), RDF_TYPE, ex("Parent")) in inferred
        assert (ex("rock"), RDF_TYPE, ex("Parent")) not in inferred

    def test_intersection_classification(self):
        inferred = reason("""
        ex:WorkingParent owl:equivalentClass [ owl:intersectionOf ( ex:Parent ex:Worker ) ] .
        ex:ann a ex:Parent , ex:Worker .
        ex:bo a ex:Parent .
        """)
        assert (ex("ann"), RDF_TYPE, ex("WorkingParent")) in inferred
        assert (ex("bo"), RDF_TYPE, ex("WorkingParent")) not in inferred

    def test_intersection_decomposition(self):
        inferred = reason("""
        ex:WorkingParent owl:equivalentClass [ owl:intersectionOf ( ex:Parent ex:Worker ) ] .
        ex:cat a ex:WorkingParent .
        """)
        assert (ex("cat"), RDF_TYPE, ex("Parent")) in inferred
        assert (ex("cat"), RDF_TYPE, ex("Worker")) in inferred

    def test_union_classification(self):
        inferred = reason("""
        ex:Pet owl:equivalentClass [ owl:unionOf ( ex:Cat ex:Dog ) ] .
        ex:rex a ex:Dog .
        ex:tree a ex:Plant .
        """)
        assert (ex("rex"), RDF_TYPE, ex("Pet")) in inferred
        assert (ex("tree"), RDF_TYPE, ex("Pet")) not in inferred

    def test_all_values_from_consequence(self):
        inferred = reason("""
        ex:DogOwner rdfs:subClassOf [ a owl:Restriction ;
            owl:onProperty ex:hasPet ; owl:allValuesFrom ex:Dog ] .
        ex:ann a ex:DogOwner . ex:ann ex:hasPet ex:rex .
        """)
        assert (ex("rex"), RDF_TYPE, ex("Dog")) in inferred

    def test_one_of_classification(self):
        inferred = reason("""
        ex:PrimaryColor owl:equivalentClass [ owl:oneOf ( ex:red ex:green ex:blue ) ] .
        ex:red ex:isA ex:thing .
        """)
        assert (ex("red"), RDF_TYPE, ex("PrimaryColor")) in inferred

    def test_restriction_subclass_of_named_class(self):
        inferred = reason("""
        [ a owl:Restriction ; owl:onProperty ex:wearsCollar ; owl:hasValue true ]
            rdfs:subClassOf ex:Pet .
        ex:rex ex:wearsCollar true .
        """)
        assert (ex("rex"), RDF_TYPE, ex("Pet")) in inferred

    def test_named_equivalence_is_mutual_subclass(self):
        inferred = reason("""
        ex:Human owl:equivalentClass ex:Person .
        ex:ann a ex:Human .
        """)
        assert (ex("ann"), RDF_TYPE, ex("Person")) in inferred


class TestPerRuleRegression:
    """Minimal graphs per rule family, pinning the exact inferred triple set
    and the :class:`ReasoningReport` rule-firing counts.

    These fixtures freeze the semi-naive engine's per-rule behaviour: any
    change to what a rule derives *or* to how its firings are attributed
    shows up here before it can hide inside a large closure.
    """

    @staticmethod
    def infer(ttl: str):
        graph = Graph()
        graph.bind("ex", EX)
        graph.parse(
            "@prefix ex: <http://example.org/> .\n"
            "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n" + ttl
        )
        reasoner = Reasoner(graph)
        closed = reasoner.run()
        return set(closed) - set(graph), reasoner.report

    def test_subclass_transitivity_and_type_propagation(self):
        inferred, report = self.infer("""
        ex:A rdfs:subClassOf ex:B . ex:B rdfs:subClassOf ex:C .
        ex:x a ex:A .
        """)
        assert inferred == {
            (ex("A"), RDFS_SUBCLASSOF, ex("C")),
            (ex("x"), RDF_TYPE, ex("B")),
            (ex("x"), RDF_TYPE, ex("C")),
        }
        assert report.rule_firings == {"schema-closure": 1, "subClassOf-types": 2}

    def test_subproperty_closure_and_propagation(self):
        inferred, report = self.infer("""
        ex:hasMother rdfs:subPropertyOf ex:hasParent .
        ex:hasParent rdfs:subPropertyOf ex:hasAncestor .
        ex:amy ex:hasMother ex:beth .
        """)
        assert inferred == {
            (ex("hasMother"), RDFS_SUBPROPERTYOF, ex("hasAncestor")),
            (ex("amy"), ex("hasParent"), ex("beth")),
            (ex("amy"), ex("hasAncestor"), ex("beth")),
        }
        assert report.rule_firings == {"schema-closure": 1, "subPropertyOf": 2}

    def test_inverse_property(self):
        inferred, report = self.infer("""
        ex:hasChild owl:inverseOf ex:hasParent .
        ex:ann ex:hasChild ex:bo .
        """)
        assert inferred == {(ex("bo"), ex("hasParent"), ex("ann"))}
        assert report.rule_firings == {"inverseOf": 1}

    def test_symmetric_property(self):
        inferred, report = self.infer("""
        ex:marriedTo a owl:SymmetricProperty .
        ex:ann ex:marriedTo ex:bo .
        """)
        assert inferred == {(ex("bo"), ex("marriedTo"), ex("ann"))}
        assert report.rule_firings == {"symmetric": 1}

    def test_transitive_property_closure(self):
        inferred, report = self.infer("""
        ex:partOf a owl:TransitiveProperty .
        ex:a ex:partOf ex:b . ex:b ex:partOf ex:c . ex:c ex:partOf ex:d .
        """)
        assert inferred == {
            (ex("a"), ex("partOf"), ex("c")),
            (ex("a"), ex("partOf"), ex("d")),
            (ex("b"), ex("partOf"), ex("d")),
        }
        assert report.rule_firings == {"transitive": 3}

    def test_property_chain(self):
        inferred, report = self.infer("""
        ex:hasUncle owl:propertyChainAxiom ( ex:hasParent ex:hasBrother ) .
        ex:kid ex:hasParent ex:mum . ex:mum ex:hasBrother ex:uncle .
        """)
        assert inferred == {(ex("kid"), ex("hasUncle"), ex("uncle"))}
        assert report.rule_firings == {"propertyChain": 1}

    def test_domain_and_range(self):
        inferred, report = self.infer("""
        ex:teaches rdfs:domain ex:Teacher . ex:teaches rdfs:range ex:Course .
        ex:ann ex:teaches ex:math101 .
        """)
        assert inferred == {
            (ex("ann"), RDF_TYPE, ex("Teacher")),
            (ex("math101"), RDF_TYPE, ex("Course")),
        }
        assert report.rule_firings == {"domain-range": 2}

    def test_has_value_classification(self):
        inferred, report = self.infer("""
        ex:RedThing owl:equivalentClass [ a owl:Restriction ;
            owl:onProperty ex:color ; owl:hasValue ex:red ] .
        ex:apple ex:color ex:red .
        """)
        assert inferred == {(ex("apple"), RDF_TYPE, ex("RedThing"))}
        assert report.rule_firings == {"classification": 1}

    def test_some_values_from_classification(self):
        inferred, report = self.infer("""
        ex:Parent owl:equivalentClass [ a owl:Restriction ;
            owl:onProperty ex:hasChild ; owl:someValuesFrom ex:Person ] .
        ex:kid a ex:Person .
        ex:ann ex:hasChild ex:kid .
        """)
        assert inferred == {(ex("ann"), RDF_TYPE, ex("Parent"))}
        assert report.rule_firings == {"classification": 1}

    def test_all_values_from_consequence(self):
        inferred, report = self.infer("""
        ex:DogOwner rdfs:subClassOf [ a owl:Restriction ;
            owl:onProperty ex:hasPet ; owl:allValuesFrom ex:Dog ] .
        ex:ann a ex:DogOwner . ex:ann ex:hasPet ex:rex .
        """)
        assert inferred == {(ex("rex"), RDF_TYPE, ex("Dog"))}
        assert report.rule_firings == {"restriction-consequences": 1}

    def test_rule_interplay_chain_through_inverse(self):
        """A derived (inverse) edge must feed the chain rule in a later round."""
        inferred, report = self.infer("""
        ex:childOf owl:inverseOf ex:hasChild .
        ex:hasGrandparent owl:propertyChainAxiom ( ex:childOf ex:childOf ) .
        ex:gran ex:hasChild ex:mum . ex:mum ex:hasChild ex:kid .
        """)
        assert inferred == {
            (ex("mum"), ex("childOf"), ex("gran")),
            (ex("kid"), ex("childOf"), ex("mum")),
            (ex("kid"), ex("hasGrandparent"), ex("gran")),
        }
        assert report.rule_firings == {"inverseOf": 2, "propertyChain": 1}


class TestReasonerBehaviour:
    def test_report_statistics(self):
        graph = Graph()
        graph.parse(
            "@prefix ex: <http://example.org/> .\n"
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
            "ex:A rdfs:subClassOf ex:B . ex:x a ex:A ."
        )
        reasoner = Reasoner(graph)
        closed = reasoner.run()
        assert reasoner.report.input_triples == 2
        assert reasoner.report.inferred_triples == len(closed) - 2
        assert reasoner.report.iterations >= 1

    def test_base_graph_not_mutated(self):
        graph = Graph()
        graph.parse(
            "@prefix ex: <http://example.org/> .\n"
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
            "ex:A rdfs:subClassOf ex:B . ex:x a ex:A ."
        )
        before = len(graph)
        Reasoner(graph).run()
        assert len(graph) == before

    def test_inferred_only_excludes_asserted(self):
        graph = Graph()
        graph.parse(
            "@prefix ex: <http://example.org/> .\n"
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
            "ex:A rdfs:subClassOf ex:B . ex:x a ex:A ."
        )
        delta = Reasoner(graph).inferred_only()
        assert (ex("x"), RDF_TYPE, ex("A")) not in delta
        assert (ex("x"), RDF_TYPE, ex("B")) in delta

    def test_idempotent_on_closed_graph(self):
        graph = Graph()
        graph.parse(
            "@prefix ex: <http://example.org/> .\n"
            "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
            "ex:partOf a owl:TransitiveProperty .\n"
            "ex:a ex:partOf ex:b . ex:b ex:partOf ex:c ."
        )
        closed_once = Reasoner(graph).run()
        closed_twice = Reasoner(closed_once).run()
        assert set(closed_once) == set(closed_twice)

    def test_disjointness_violation_raises(self):
        graph = Graph()
        graph.parse(
            "@prefix ex: <http://example.org/> .\n"
            "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
            "ex:Meat owl:disjointWith ex:Vegetable .\n"
            "ex:weird a ex:Meat , ex:Vegetable ."
        )
        with pytest.raises(InconsistentOntologyError):
            Reasoner(graph).run()

    def test_consistency_check_can_be_disabled(self):
        graph = Graph()
        graph.parse(
            "@prefix ex: <http://example.org/> .\n"
            "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
            "ex:Meat owl:disjointWith ex:Vegetable .\n"
            "ex:weird a ex:Meat , ex:Vegetable ."
        )
        closed = Reasoner(graph, check_consistency=False).run()
        assert len(closed) >= len(graph)


class TestAxiomIndex:
    def test_superclass_closure(self):
        graph = Graph()
        graph.parse(
            "@prefix ex: <http://example.org/> .\n"
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
            "ex:A rdfs:subClassOf ex:B . ex:B rdfs:subClassOf ex:C ."
        )
        index = AxiomIndex.from_graph(graph)
        assert index.superclass_closure(ex("A")) == {ex("A"), ex("B"), ex("C")}

    def test_subclasses_of(self):
        graph = Graph()
        graph.parse(
            "@prefix ex: <http://example.org/> .\n"
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
            "ex:A rdfs:subClassOf ex:B . ex:B rdfs:subClassOf ex:C ."
        )
        index = AxiomIndex.from_graph(graph)
        assert index.subclasses_of(ex("C")) == {ex("A"), ex("B")}

    def test_superproperty_closure(self):
        graph = Graph()
        graph.parse(
            "@prefix ex: <http://example.org/> .\n"
            "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
            "ex:p rdfs:subPropertyOf ex:q . ex:q rdfs:subPropertyOf ex:r ."
        )
        index = AxiomIndex.from_graph(graph)
        assert index.superproperty_closure(ex("p")) == {ex("p"), ex("q"), ex("r")}


class TestHierarchies:
    @pytest.fixture
    def hierarchy_graph(self):
        return reason("""
        ex:Season rdfs:subClassOf ex:SystemCharacteristic .
        ex:Location rdfs:subClassOf ex:SystemCharacteristic .
        ex:SystemCharacteristic rdfs:subClassOf ex:Characteristic .
        ex:UserCharacteristic rdfs:subClassOf ex:Characteristic .
        ex:likes rdfs:subPropertyOf ex:hasCharacteristic .
        """)

    def test_class_children_and_parents(self, hierarchy_graph):
        hierarchy = ClassHierarchy(hierarchy_graph)
        assert ex("SystemCharacteristic") in hierarchy.children(ex("Characteristic"))
        assert ex("Characteristic") in hierarchy.parents(ex("SystemCharacteristic"))

    def test_ancestors_descendants(self, hierarchy_graph):
        hierarchy = ClassHierarchy(hierarchy_graph)
        assert ex("Characteristic") in hierarchy.ancestors(ex("Season"))
        assert ex("Season") in hierarchy.descendants(ex("Characteristic"))

    def test_direct_children_excludes_grandchildren(self, hierarchy_graph):
        hierarchy = ClassHierarchy(hierarchy_graph)
        direct = hierarchy.direct_children(ex("Characteristic"))
        assert ex("Season") not in direct
        assert ex("SystemCharacteristic") in direct

    def test_is_a(self, hierarchy_graph):
        hierarchy = ClassHierarchy(hierarchy_graph)
        assert hierarchy.is_a(ex("Season"), ex("Characteristic"))
        assert not hierarchy.is_a(ex("Characteristic"), ex("Season"))

    def test_tree_and_rendering(self, hierarchy_graph):
        hierarchy = ClassHierarchy(hierarchy_graph)
        tree = hierarchy.tree(ex("Characteristic"))
        text = render_tree(tree)
        assert "Characteristic" in text and "Season" in text

    def test_property_hierarchy(self, hierarchy_graph):
        hierarchy = PropertyHierarchy(hierarchy_graph)
        assert ex("likes") in hierarchy.children(ex("hasCharacteristic"))
