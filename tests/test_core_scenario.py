"""Tests for scenario assembly (profile/context/question → reasoned RDF)."""

import pytest

from repro.core.questions import (
    ContrastiveQuestion,
    WhatIfConditionQuestion,
    WhatIfIngredientQuestion,
    WhyQuestion,
)
from repro.ontology import eo, feo, food
from repro.rdf.namespace import FEO, FOODKG
from repro.rdf.terms import IRI
from repro.users import SystemContext, UserProfile

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


class TestUserAndSystemAssertions:
    def test_user_typed_and_labelled(self, cq1_scenario):
        graph = cq1_scenario.asserted
        assert (cq1_scenario.user_iri, _RDF_TYPE, food.User) in graph

    def test_likes_and_allergies_asserted(self, cq1_scenario):
        graph = cq1_scenario.asserted
        assert (cq1_scenario.user_iri, feo.likes, IRI(FOODKG.BroccoliCheddarSoup)) in graph
        assert (cq1_scenario.user_iri, feo.allergicTo, IRI(FOODKG.Broccoli)) in graph

    def test_diet_goal_budget_asserted(self, cq1_scenario):
        graph = cq1_scenario.asserted
        assert (cq1_scenario.user_iri, feo.followsDiet, IRI(FOODKG.VegetarianDiet)) in graph
        assert (cq1_scenario.user_iri, feo.hasGoal, feo.NUTRITIONAL_GOALS["high_folate"]) in graph
        assert (cq1_scenario.user_iri, feo.hasBudget, feo.BUDGET_LEVELS["medium"]) in graph

    def test_system_season_and_region_asserted(self, cq1_scenario):
        graph = cq1_scenario.asserted
        assert (cq1_scenario.system_iri, feo.currentSeason, feo.SEASONS["autumn"]) in graph
        assert (cq1_scenario.system_iri, feo.locatedIn, IRI(FOODKG.NortheastUsRegion)) in graph

    def test_ecosystem_links_user_and_system(self, cq1_scenario):
        graph = cq1_scenario.asserted
        assert (cq1_scenario.ecosystem_iri, feo.hasUser, cq1_scenario.user_iri) in graph
        assert (cq1_scenario.ecosystem_iri, feo.hasSystem, cq1_scenario.system_iri) in graph
        assert (cq1_scenario.ecosystem_iri, _RDF_TYPE, feo.Ecosystem) in graph


class TestQuestionAssertions:
    def test_why_question_iri_matches_paper_naming(self, cq1_scenario):
        assert cq1_scenario.question_iri == IRI(FEO.WhyEatCauliflowerPotatoCurry)

    def test_why_question_parameter(self, cq1_scenario):
        graph = cq1_scenario.asserted
        assert (cq1_scenario.question_iri, feo.hasParameter, IRI(FOODKG.CauliflowerPotatoCurry)) in graph
        assert (cq1_scenario.question_iri, _RDF_TYPE, feo.WhyQuestion) in graph

    def test_contrastive_question_has_both_parameters(self, cq2_scenario):
        graph = cq2_scenario.asserted
        assert (cq2_scenario.question_iri, feo.hasPrimaryParameter,
                IRI(FOODKG.ButternutSquashSoup)) in graph
        assert (cq2_scenario.question_iri, feo.hasSecondaryParameter,
                IRI(FOODKG.BroccoliCheddarSoup)) in graph

    def test_whatif_question_parameter_is_the_condition(self, cq3_scenario):
        graph = cq3_scenario.asserted
        assert (cq3_scenario.question_iri, feo.hasHypothetical,
                feo.HEALTH_CONDITIONS["pregnancy"]) in graph

    def test_whatif_question_iri_matches_paper_style(self, cq3_scenario):
        assert "WhatIfIWas" in str(cq3_scenario.question_iri)

    def test_parameters_recorded_on_scenario(self, cq2_scenario):
        assert IRI(FOODKG.ButternutSquashSoup) in cq2_scenario.parameter_iris
        assert IRI(FOODKG.BroccoliCheddarSoup) in cq2_scenario.parameter_iris

    def test_unknown_condition_raises(self, engine, user, context):
        question = WhatIfConditionQuestion(text="What if I was bionic?", condition="bionic")
        with pytest.raises(KeyError):
            engine.builder.build(question, user, context, run_reasoner=False)

    def test_ingredient_whatif_question(self, engine, user, context):
        question = WhatIfIngredientQuestion(
            text="What if we changed Cheddar Cheese in Broccoli Cheddar Soup?",
            recipe="Broccoli Cheddar Soup", ingredient="Cheddar Cheese")
        scenario = engine.builder.build(question, user, context, run_reasoner=False)
        assert (scenario.question_iri, feo.hasHypothetical, IRI(FOODKG.CheddarCheese)) in scenario.asserted


class TestReasonedScenario:
    def test_inferred_graph_is_larger_than_asserted(self, cq1_scenario):
        assert len(cq1_scenario.inferred) > len(cq1_scenario.asserted)

    def test_parameter_typed_by_range_inference(self, cq1_scenario):
        assert (IRI(FOODKG.CauliflowerPotatoCurry), _RDF_TYPE, feo.Parameter) in cq1_scenario.inferred

    def test_transitive_characteristic_closure(self, cq1_scenario):
        # curry -> cauliflower -> autumn
        assert (IRI(FOODKG.CauliflowerPotatoCurry), feo.hasCharacteristic,
                feo.SEASONS["autumn"]) in cq1_scenario.inferred

    def test_liked_recipe_classified_as_liked_food_characteristic(self, cq1_scenario):
        assert (IRI(FOODKG.BroccoliCheddarSoup), _RDF_TYPE,
                feo.LikedFoodCharacteristic) in cq1_scenario.inferred

    def test_allergy_classified_as_allergic_food_characteristic(self, cq2_scenario):
        assert (IRI(FOODKG.Broccoli), _RDF_TYPE,
                feo.AllergicFoodCharacteristic) in cq2_scenario.inferred

    def test_ecosystem_characteristics_collected(self, cq1_scenario):
        assert (cq1_scenario.ecosystem_iri, feo.hasEcosystemCharacteristic,
                feo.SEASONS["autumn"]) in cq1_scenario.inferred

    def test_ecosystem_opposed_by_allergy(self, cq1_scenario):
        assert (cq1_scenario.ecosystem_iri, feo.isOpposedBy,
                IRI(FOODKG.Broccoli)) in cq1_scenario.inferred

    def test_scenario_query_helper(self, cq1_scenario):
        result = cq1_scenario.query(
            "PREFIX feo: <https://purl.org/heals/feo#> "
            "SELECT ?c WHERE { ?e a feo:Ecosystem . ?e feo:hasEcosystemCharacteristic ?c }")
        assert len(list(result)) >= 3

    def test_base_graph_unaffected_by_scenarios(self, engine, user, context):
        base_size = len(engine.builder._base)
        question = WhyQuestion(text="Why should I eat Sushi?", recipe="Sushi")
        engine.builder.build(question, user, context, run_reasoner=False)
        assert len(engine.builder._base) == base_size

    def test_recommendation_assertion(self, engine, user, context):
        recommendation = engine.recommender.recommend_one(user, context)
        question = WhyQuestion(text=f"Why should I eat {recommendation.recipe}?",
                               recipe=recommendation.recipe)
        scenario = engine.builder.build(question, user, context,
                                        recommendation=recommendation, run_reasoner=False)
        recs = list(scenario.asserted.subjects(_RDF_TYPE, eo.SystemRecommendation))
        assert len(recs) == 1

    def test_free_text_likes_still_get_an_iri(self, engine, context):
        user = UserProfile(identifier="freetext", likes=("Grandma's Secret Stew",))
        question = WhyQuestion(text="Why should I eat Sushi?", recipe="Sushi")
        scenario = engine.builder.build(question, user, context, run_reasoner=False)
        assert any(True for _ in scenario.asserted.triples((scenario.user_iri, feo.likes, None)))
