"""Tests for OWL class-expression parsing and membership checking."""

import pytest

from repro.owl.expressions import (
    AllValuesFrom,
    ComplementOf,
    HasValue,
    IntersectionOf,
    MinCardinality,
    NamedClass,
    OneOf,
    SomeValuesFrom,
    UnionOf,
    parse_class_expression,
)
from repro.owl.vocabulary import OWL_THING, RDF_TYPE
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, IRI, Literal

EX = "http://example.org/"


def ex(name):
    return IRI(EX + name)


def parse_from_turtle(ttl, subject, predicate):
    graph = Graph()
    graph.parse(
        "@prefix ex: <http://example.org/> .\n"
        "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
        "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n" + ttl)
    node = graph.value(subject, predicate)
    return graph, parse_class_expression(graph, node)


def type_index(graph):
    index = {}
    for s, _, o in graph.triples((None, RDF_TYPE, None)):
        index.setdefault(s, set()).add(o)
    return index


class TestParsing:
    def test_named_class(self):
        graph = Graph()
        parsed = parse_class_expression(graph, ex("Person"))
        assert parsed == NamedClass(ex("Person"))

    def test_some_values_from(self):
        graph, parsed = parse_from_turtle(
            "ex:Parent owl:equivalentClass [ a owl:Restriction ; "
            "owl:onProperty ex:hasChild ; owl:someValuesFrom ex:Person ] .",
            ex("Parent"), IRI("http://www.w3.org/2002/07/owl#equivalentClass"))
        assert isinstance(parsed, SomeValuesFrom)
        assert parsed.property == ex("hasChild")
        assert parsed.named_classes() == {ex("Person")}
        assert parsed.properties() == {ex("hasChild")}

    def test_all_values_from(self):
        graph, parsed = parse_from_turtle(
            "ex:DogOwner owl:equivalentClass [ a owl:Restriction ; "
            "owl:onProperty ex:hasPet ; owl:allValuesFrom ex:Dog ] .",
            ex("DogOwner"), IRI("http://www.w3.org/2002/07/owl#equivalentClass"))
        assert isinstance(parsed, AllValuesFrom)

    def test_has_value(self):
        graph, parsed = parse_from_turtle(
            "ex:RedThing owl:equivalentClass [ a owl:Restriction ; "
            "owl:onProperty ex:color ; owl:hasValue ex:red ] .",
            ex("RedThing"), IRI("http://www.w3.org/2002/07/owl#equivalentClass"))
        assert parsed == HasValue(ex("color"), ex("red"))

    def test_min_cardinality(self):
        graph, parsed = parse_from_turtle(
            "ex:Parent owl:equivalentClass [ a owl:Restriction ; "
            "owl:onProperty ex:hasChild ; owl:minCardinality 2 ] .",
            ex("Parent"), IRI("http://www.w3.org/2002/07/owl#equivalentClass"))
        assert parsed == MinCardinality(ex("hasChild"), 2)

    def test_intersection_and_union(self):
        graph, parsed = parse_from_turtle(
            "ex:WorkingParent owl:equivalentClass [ owl:intersectionOf ( ex:Parent ex:Worker ) ] .",
            ex("WorkingParent"), IRI("http://www.w3.org/2002/07/owl#equivalentClass"))
        assert isinstance(parsed, IntersectionOf)
        assert parsed.named_classes() == {ex("Parent"), ex("Worker")}

        graph, parsed = parse_from_turtle(
            "ex:Pet owl:equivalentClass [ owl:unionOf ( ex:Cat ex:Dog ) ] .",
            ex("Pet"), IRI("http://www.w3.org/2002/07/owl#equivalentClass"))
        assert isinstance(parsed, UnionOf)

    def test_complement(self):
        graph, parsed = parse_from_turtle(
            "ex:NonMeat owl:equivalentClass [ owl:complementOf ex:Meat ] .",
            ex("NonMeat"), IRI("http://www.w3.org/2002/07/owl#equivalentClass"))
        assert isinstance(parsed, ComplementOf)

    def test_one_of(self):
        graph, parsed = parse_from_turtle(
            "ex:Primary owl:equivalentClass [ owl:oneOf ( ex:red ex:green ) ] .",
            ex("Primary"), IRI("http://www.w3.org/2002/07/owl#equivalentClass"))
        assert isinstance(parsed, OneOf)
        assert parsed.members == frozenset({ex("red"), ex("green")})

    def test_literal_returns_none(self):
        graph = Graph()
        assert parse_class_expression(graph, Literal("x")) is None

    def test_unrecognised_bnode_returns_none(self):
        graph = Graph()
        node = BNode()
        graph.add((node, ex("unrelated"), ex("x")))
        assert parse_class_expression(graph, node) is None


class TestMembership:
    def test_named_class_membership_uses_type_index(self):
        graph = Graph()
        graph.add((ex("felix"), RDF_TYPE, ex("Cat")))
        index = type_index(graph)
        assert NamedClass(ex("Cat")).matches(graph, ex("felix"), index)
        assert not NamedClass(ex("Dog")).matches(graph, ex("felix"), index)

    def test_owl_thing_matches_everything(self):
        graph = Graph()
        assert NamedClass(OWL_THING).matches(graph, ex("anything"), {})

    def test_some_values_from_membership(self):
        graph = Graph()
        graph.add((ex("ann"), ex("hasChild"), ex("kid")))
        graph.add((ex("kid"), RDF_TYPE, ex("Person")))
        expression = SomeValuesFrom(ex("hasChild"), NamedClass(ex("Person")))
        assert expression.matches(graph, ex("ann"), type_index(graph))
        assert not expression.matches(graph, ex("kid"), type_index(graph))

    def test_all_values_from_membership_closed_world(self):
        graph = Graph()
        graph.add((ex("ann"), ex("hasPet"), ex("rex")))
        graph.add((ex("rex"), RDF_TYPE, ex("Dog")))
        expression = AllValuesFrom(ex("hasPet"), NamedClass(ex("Dog")))
        assert expression.matches(graph, ex("ann"), type_index(graph))
        graph.add((ex("ann"), ex("hasPet"), ex("whiskers")))
        assert not expression.matches(graph, ex("ann"), type_index(graph))

    def test_has_value_membership(self):
        graph = Graph()
        graph.add((ex("apple"), ex("color"), ex("red")))
        assert HasValue(ex("color"), ex("red")).matches(graph, ex("apple"), {})
        assert not HasValue(ex("color"), ex("blue")).matches(graph, ex("apple"), {})

    def test_min_cardinality_membership(self):
        graph = Graph()
        graph.add((ex("ann"), ex("hasChild"), ex("a")))
        graph.add((ex("ann"), ex("hasChild"), ex("b")))
        assert MinCardinality(ex("hasChild"), 2).matches(graph, ex("ann"), {})
        assert not MinCardinality(ex("hasChild"), 3).matches(graph, ex("ann"), {})

    def test_boolean_combinations(self):
        graph = Graph()
        graph.add((ex("ann"), RDF_TYPE, ex("Parent")))
        graph.add((ex("ann"), RDF_TYPE, ex("Worker")))
        index = type_index(graph)
        both = IntersectionOf((NamedClass(ex("Parent")), NamedClass(ex("Worker"))))
        either = UnionOf((NamedClass(ex("Parent")), NamedClass(ex("Robot"))))
        negated = ComplementOf(NamedClass(ex("Robot")))
        assert both.matches(graph, ex("ann"), index)
        assert either.matches(graph, ex("ann"), index)
        assert negated.matches(graph, ex("ann"), index)

    def test_one_of_membership(self):
        expression = OneOf(frozenset({ex("red"), ex("green")}))
        assert expression.matches(Graph(), ex("red"), {})
        assert not expression.matches(Graph(), ex("blue"), {})
