"""Tests for user/system modelling and the Health Coach substitute."""

import pytest

from repro.foodkg import build_core_catalog
from repro.recommender import (
    ConstraintChecker,
    ContentBasedScorer,
    HealthCoach,
    RecommendationTrace,
)
from repro.users import SystemContext, UserProfile, all_personas, paper_context, paper_user, persona


@pytest.fixture(scope="module")
def catalog():
    return build_core_catalog()


class TestUserProfile:
    def test_requires_identifier(self):
        with pytest.raises(ValueError):
            UserProfile(identifier="")

    def test_unknown_condition_rejected(self):
        with pytest.raises(ValueError):
            UserProfile(identifier="u", conditions=("scurvy",))

    def test_unknown_goal_rejected(self):
        with pytest.raises(ValueError):
            UserProfile(identifier="u", goals=("more_cake",))

    def test_unknown_budget_rejected(self):
        with pytest.raises(ValueError):
            UserProfile(identifier="u", budget="infinite")

    def test_with_condition_returns_new_profile(self):
        base = UserProfile(identifier="u")
        pregnant = base.with_condition("pregnancy")
        assert pregnant.has_condition("pregnancy")
        assert not base.has_condition("pregnancy")

    def test_with_condition_idempotent(self):
        profile = UserProfile(identifier="u", conditions=("diabetes",))
        assert profile.with_condition("diabetes") is profile

    def test_without_condition(self):
        profile = UserProfile(identifier="u", conditions=("diabetes",))
        assert not profile.without_condition("diabetes").has_condition("diabetes")

    def test_preference_queries(self):
        profile = UserProfile(identifier="u", likes=("Sushi",), dislikes=("Bacon",),
                              allergies=("Broccoli",))
        assert profile.likes_food("Sushi")
        assert profile.dislikes_food("Bacon")
        assert profile.is_allergic_to("Broccoli")

    def test_summary_structure(self):
        profile = paper_user()
        summary = profile.summary()
        assert summary["allergies"] == ["Broccoli"]
        assert summary["budget"] == ["medium"]


class TestSystemContext:
    def test_defaults_are_valid(self):
        context = SystemContext()
        assert context.season == "autumn"

    def test_unknown_season_rejected(self):
        with pytest.raises(ValueError):
            SystemContext(season="monsoon")

    def test_unknown_meal_time_rejected(self):
        with pytest.raises(ValueError):
            SystemContext(meal_time="brunch")

    def test_for_month_maps_to_season(self):
        assert SystemContext.for_month(10).season == "autumn"
        assert SystemContext.for_month(1).season == "winter"
        assert SystemContext.for_month(7).season == "summer"

    def test_for_month_out_of_range(self):
        with pytest.raises(ValueError):
            SystemContext.for_month(13)

    def test_with_season_returns_copy(self):
        context = SystemContext(season="autumn")
        assert context.with_season("winter").season == "winter"
        assert context.season == "autumn"

    def test_summary_includes_optional_fields(self):
        context = SystemContext(meal_time="dinner", budget="low")
        summary = context.summary()
        assert summary["meal_time"] == "dinner" and summary["budget"] == "low"


class TestPersonas:
    def test_paper_user_matches_paper_scenario(self):
        user = paper_user()
        assert user.is_allergic_to("Broccoli")
        assert "Broccoli Cheddar Soup" in user.likes

    def test_paper_context_is_autumn(self):
        assert paper_context().season == "autumn"

    def test_all_personas_well_formed(self, catalog):
        for key, (user, context) in all_personas().items():
            assert user.identifier
            for liked in user.likes:
                assert liked in catalog.recipes or liked in catalog.ingredients, (key, liked)

    def test_persona_lookup_unknown_key(self):
        with pytest.raises(KeyError):
            persona("nonexistent")


class TestConstraints:
    @pytest.fixture(scope="class")
    def checker(self, catalog):
        return ConstraintChecker(catalog)

    def test_allergy_violation_direct_ingredient(self, checker, catalog):
        violations = checker.violations(catalog.recipe("Broccoli Cheddar Soup"), paper_user())
        kinds = {v.kind for v in violations}
        assert "allergy" in kinds

    def test_condition_violation(self, checker, catalog):
        pregnant = UserProfile(identifier="p", conditions=("pregnancy",))
        violations = checker.violations(catalog.recipe("Sushi"), pregnant)
        assert any(v.kind == "condition" and v.detail == "Raw Fish" for v in violations)

    def test_diet_violation(self, checker, catalog):
        vegan = UserProfile(identifier="v", diets=("vegan",))
        violations = checker.violations(catalog.recipe("Broccoli Cheddar Soup"), vegan)
        assert any(v.kind == "diet" for v in violations)

    def test_dislike_violation(self, checker, catalog):
        user = UserProfile(identifier="d", dislikes=("Bacon",))
        violations = checker.violations(catalog.recipe("Bacon Egg Breakfast Sandwich"), user)
        assert any(v.kind == "dislike" for v in violations)

    def test_no_violations_for_compatible_recipe(self, checker, catalog):
        assert checker.is_allowed(catalog.recipe("Butternut Squash Soup"), paper_user())

    def test_partition_splits_consistently(self, checker, catalog):
        recipes = list(catalog.recipes.values())
        allowed, rejected = checker.partition(recipes, paper_user())
        assert len(allowed) + len(rejected) == len(recipes)
        assert "Broccoli Cheddar Soup" in rejected

    def test_violation_descriptions_are_sentences(self, checker, catalog):
        violations = checker.violations(catalog.recipe("Broccoli Cheddar Soup"), paper_user())
        for violation in violations:
            assert violation.recipe in violation.describe()


class TestScoring:
    @pytest.fixture(scope="class")
    def scorer(self, catalog):
        return ContentBasedScorer(catalog)

    def test_liked_recipe_scores_higher_than_unknown(self, scorer, catalog):
        user, context = paper_user(), paper_context()
        liked = scorer.score(catalog.recipe("Broccoli Cheddar Soup"), user, context)
        neutral = scorer.score(catalog.recipe("Beef Tacos"), user, context)
        assert liked.total > neutral.total

    def test_seasonal_component_awarded_in_autumn(self, scorer, catalog):
        breakdown = scorer.score(catalog.recipe("Butternut Squash Soup"), paper_user(), paper_context())
        assert "seasonal" in breakdown.components

    def test_seasonal_component_absent_out_of_season(self, scorer, catalog):
        winter = paper_context().with_season("winter")
        breakdown = scorer.score(catalog.recipe("Butternut Squash Soup"), paper_user(), winter)
        assert "seasonal" not in breakdown.components

    def test_goal_nutrient_component(self, scorer, catalog):
        breakdown = scorer.score(catalog.recipe("Spinach Frittata"), paper_user(), paper_context())
        assert "goal_nutrient" in breakdown.components

    def test_disliked_ingredient_penalty(self, scorer, catalog):
        user = UserProfile(identifier="d", dislikes=("Bacon",))
        breakdown = scorer.score(catalog.recipe("Bacon Egg Breakfast Sandwich"), user, paper_context())
        assert breakdown.components["disliked_ingredient"] < 0

    def test_breakdown_total_is_sum_of_components(self, scorer, catalog):
        breakdown = scorer.score(catalog.recipe("Lentil Soup"), paper_user(), paper_context())
        assert abs(breakdown.total - sum(breakdown.components.values())) < 1e-9

    def test_rank_orders_best_first(self, scorer, catalog):
        ranked = scorer.rank(list(catalog.recipes.values()), paper_user(), paper_context())
        totals = [b.total for b in ranked]
        assert totals == sorted(totals, reverse=True)

    def test_custom_weights_respected(self, catalog):
        heavy = ContentBasedScorer(catalog, weights={"seasonal": 100.0})
        breakdown = heavy.score(catalog.recipe("Butternut Squash Soup"), paper_user(), paper_context())
        assert breakdown.components["seasonal"] == 100.0


class TestHealthCoach:
    @pytest.fixture(scope="class")
    def coach(self, catalog):
        return HealthCoach(catalog)

    def test_recommends_top_k(self, coach):
        recommendations = coach.recommend(paper_user(), paper_context(), top_k=5)
        assert len(recommendations) == 5
        assert [r.rank for r in recommendations] == [1, 2, 3, 4, 5]

    def test_never_recommends_allergen_violating_recipes(self, coach):
        recommendations = coach.recommend(paper_user(), paper_context(), top_k=20)
        assert all(r.recipe != "Broccoli Cheddar Soup" for r in recommendations)

    def test_pregnant_user_never_gets_sushi(self, coach):
        pregnant = UserProfile(identifier="p", conditions=("pregnancy",), likes=("Sushi",))
        recommendations = coach.recommend(pregnant, paper_context(), top_k=20)
        assert all(r.recipe != "Sushi" for r in recommendations)

    def test_vegetarian_user_gets_only_vegetarian_recipes(self, coach, catalog):
        recommendations = coach.recommend(paper_user(), paper_context(), top_k=10)
        for recommendation in recommendations:
            assert "vegetarian" in catalog.recipes[recommendation.recipe].diets

    def test_scores_descending(self, coach):
        recommendations = coach.recommend(paper_user(), paper_context(), top_k=10)
        scores = [r.score for r in recommendations]
        assert scores == sorted(scores, reverse=True)

    def test_trace_contains_pipeline_stages(self, coach):
        recommendation = coach.recommend_one(paper_user(), paper_context())
        stages = recommendation.trace.stages()
        assert stages == ["candidate-generation", "constraint-filter", "scoring", "selection"]

    def test_why_not_explains_rejection(self, coach):
        violations = coach.why_not("Broccoli Cheddar Soup", paper_user())
        assert any(v.kind == "allergy" for v in violations)

    def test_why_not_unknown_recipe_raises(self, coach):
        with pytest.raises(KeyError):
            coach.why_not("Imaginary Pie", paper_user())

    def test_compare_returns_both_breakdowns(self, coach):
        comparison = coach.compare("Butternut Squash Soup", "Broccoli Cheddar Soup",
                                   paper_user(), paper_context())
        assert set(comparison) == {"Butternut Squash Soup", "Broccoli Cheddar Soup"}

    def test_reasons_are_human_readable(self, coach):
        recommendation = coach.recommend_one(paper_user(), paper_context())
        assert all(isinstance(reason, str) and reason for reason in recommendation.reasons())


class TestTrace:
    def test_trace_accumulates_steps(self):
        trace = RecommendationTrace()
        trace.add("stage-one", "did something", detail=1)
        trace.add("stage-two", "did something else")
        assert len(trace) == 2
        assert trace.for_stage("stage-one")[0].detail == {"detail": 1}

    def test_trace_sentences(self):
        trace = RecommendationTrace()
        trace.add("scoring", "scored 5 recipes")
        assert trace.as_sentences() == ["[scoring] scored 5 recipes"]
