"""Differential tests: semi-naive evaluation against the naive oracle.

The reasoner's :meth:`~repro.owl.reasoner.Reasoner.run` (semi-naive,
delta-driven) and :meth:`~repro.owl.reasoner.Reasoner.extend` (incremental
closure maintenance) must be *extensionally indistinguishable* from the
naive fixed-point loop (:meth:`~repro.owl.reasoner.Reasoner.run_naive`).
This suite checks that triple-for-triple on randomized synthetic FoodKG
catalogs (seeded, via :mod:`repro.foodkg.generator`) and across hundreds of
randomized deltas — data facts, scenario-style profile updates, and
schema-bearing deltas that force the full-reclosure fallback.

Together the parametrized cases exceed the 200-randomized-case acceptance
floor; every case asserts exact set equality, so any divergence reports the
offending triples.
"""

from __future__ import annotations

import random

import pytest

from repro.foodkg.generator import generate_catalog
from repro.foodkg.loader import load_catalog
from repro.foodkg.schema import FoodCatalog
from repro.ontology import feo
from repro.ontology.feo import build_combined_ontology
from repro.owl import AxiomIndex, Reasoner
from repro.owl.vocabulary import (
    OWL_TRANSITIVE_PROPERTY,
    RDF_TYPE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from repro.rdf.graph import Graph
from repro.rdf.namespace import FOOD
from repro.rdf.terms import IRI

FOOD_RECIPE = IRI(FOOD["Recipe"])
FOOD_INGREDIENT = IRI(FOOD["Ingredient"])


def build_random_kg(seed: int, ingredients: int = 8, recipes: int = 5) -> Graph:
    """Ontology + a small random synthetic catalogue (no curated entries)."""
    catalog = generate_catalog(
        base=FoodCatalog(), extra_ingredients=ingredients, extra_recipes=recipes,
        seed=seed,
    )
    graph = build_combined_ontology()
    load_catalog(catalog, graph)
    return graph


def assert_same_closure(left: Graph, right: Graph, label: str) -> None:
    left_set, right_set = set(left), set(right)
    missing = left_set - right_set
    extra = right_set - left_set
    assert not missing and not extra, (
        f"{label}: closures differ — {len(missing)} missing, {len(extra)} extra; "
        f"e.g. missing={sorted(missing)[:3]} extra={sorted(extra)[:3]}"
    )


# ---------------------------------------------------------------------------
# Random delta generation
# ---------------------------------------------------------------------------

def _data_delta(rng: random.Random, graph: Graph, size: int) -> list:
    """Random *data* (non-schema) triples over the graph's own vocabulary."""
    foods = sorted(graph.subjects(RDF_TYPE, FOOD_RECIPE)) + \
        sorted(graph.subjects(RDF_TYPE, FOOD_INGREDIENT))
    axioms = AxiomIndex.from_graph(graph)
    interesting_props = sorted(
        set(axioms.transitive) | set(axioms.symmetric) | set(axioms.inverse_of)
        | set(axioms.domains) | set(axioms.ranges) | set(axioms.subproperty_of)
    )
    classes = sorted(axioms.declared_classes)
    conditions = sorted(feo.HEALTH_CONDITIONS.values())
    delta = []
    for _ in range(size):
        kind = rng.randrange(4)
        user = IRI(f"http://example.org/user{rng.randrange(4)}")
        if kind == 0:  # a scenario-style profile fact
            prop = rng.choice((feo.likes, feo.dislikes, feo.allergicTo))
            delta.append((user, prop, rng.choice(foods)))
        elif kind == 1:  # a health condition (triggers restriction machinery)
            delta.append((user, feo.hasCondition, rng.choice(conditions)))
        elif kind == 2:  # an edge through an axiom-bearing property
            prop = rng.choice(interesting_props)
            delta.append((rng.choice(foods), prop, rng.choice(foods)))
        else:  # a raw type assertion
            delta.append((rng.choice(foods), RDF_TYPE, rng.choice(classes)))
    return delta


def _schema_delta(rng: random.Random, graph: Graph) -> list:
    """A delta carrying a schema axiom (must trigger the re-closure fallback)."""
    axioms = AxiomIndex.from_graph(graph)
    classes = sorted(axioms.declared_classes)
    data_props = sorted(
        {p for _, p, _ in graph if p not in (RDF_TYPE, RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF)}
    )
    kind = rng.randrange(3)
    if kind == 0:  # new subclass edge between existing classes
        sub, sup = rng.sample(classes, 2)
        return [(sub, RDFS_SUBCLASSOF, sup)]
    if kind == 1:  # declare an existing data property transitive
        return [(rng.choice(data_props), RDF_TYPE, OWL_TRANSITIVE_PROPERTY)]
    # new subproperty edge between existing data properties
    sub, sup = rng.sample(data_props, 2)
    return [(sub, RDFS_SUBPROPERTYOF, sup)]


# ---------------------------------------------------------------------------
# Closure equality: semi-naive vs naive
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(8))
def test_semi_naive_equals_naive_on_random_catalogs(seed):
    rng = random.Random(1000 + seed)
    graph = build_random_kg(seed, ingredients=rng.randint(4, 10),
                            recipes=rng.randint(3, 7))
    naive = Reasoner(graph, check_consistency=False).run_naive()
    semi = Reasoner(graph, check_consistency=False).run()
    assert_same_closure(naive, semi, f"seed={seed}")


def test_semi_naive_equals_naive_with_random_data_noise():
    """Catalog graphs salted with random extra data triples still agree."""
    for seed in range(6):
        rng = random.Random(2000 + seed)
        graph = build_random_kg(seed, ingredients=5, recipes=4)
        graph.addN(_data_delta(rng, graph, rng.randint(3, 10)))
        naive = Reasoner(graph, check_consistency=False).run_naive()
        semi = Reasoner(graph, check_consistency=False).run()
        assert_same_closure(naive, semi, f"noisy seed={seed}")


@pytest.mark.parametrize("seed", range(6))
def test_encoded_engine_equals_term_engine_on_random_catalogs(seed):
    """The ID-space rule engine (run) must match the term-object engine
    (run_term) triple-for-triple — the two differ only in representation."""
    rng = random.Random(3000 + seed)
    graph = build_random_kg(seed, ingredients=rng.randint(4, 10),
                            recipes=rng.randint(3, 7))
    graph.addN(_data_delta(rng, graph, rng.randint(0, 8)))
    term = Reasoner(graph, check_consistency=False).run_term()
    encoded = Reasoner(graph, check_consistency=False).run()
    assert_same_closure(term, encoded, f"term-vs-encoded seed={seed}")
    # Rule firing counts agree too: same rules, same effective additions.
    term_report = Reasoner(graph, check_consistency=False)
    term_report.run_term()
    encoded_report = Reasoner(graph, check_consistency=False)
    encoded_report.run()
    assert term_report.report.rule_firings == encoded_report.report.rule_firings


# ---------------------------------------------------------------------------
# Incremental extension vs full re-run
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def base_kg():
    graph = build_random_kg(seed=42, ingredients=8, recipes=5)
    closure = Reasoner(graph, check_consistency=False).run()
    return graph, closure


def _check_extension(base: Graph, closure: Graph, delta, label,
                     shared_axioms=None) -> None:
    updated = base.copy()
    updated.addN(delta)
    full = Reasoner(updated, check_consistency=False).run()
    axioms = shared_axioms  # None -> extracted from the updated graph
    extended = Reasoner(updated, axioms=axioms, check_consistency=False).extend(
        closure.copy(), delta)
    assert_same_closure(full, extended, label)


def test_extend_matches_full_rerun_on_single_fact_deltas(base_kg):
    """One added fact at a time — the scenario-update hot path."""
    base, closure = base_kg
    for case in range(110):
        rng = random.Random(3000 + case)
        delta = _data_delta(rng, base, 1)
        _check_extension(base, closure, delta, f"single-fact case={case}")


def test_extend_matches_full_rerun_on_batched_deltas(base_kg):
    """Multi-fact deltas (2-6 triples) applied in one extension."""
    base, closure = base_kg
    for case in range(60):
        rng = random.Random(4000 + case)
        delta = _data_delta(rng, base, rng.randint(2, 6))
        _check_extension(base, closure, delta, f"batch case={case}")


def test_extend_matches_full_rerun_with_shared_base_axioms(base_kg):
    """The builder's pattern: one AxiomIndex extracted once from the base."""
    base, closure = base_kg
    shared = AxiomIndex.from_graph(base)
    for case in range(20):
        rng = random.Random(5000 + case)
        delta = _data_delta(rng, base, rng.randint(1, 4))
        _check_extension(base, closure, delta, f"shared-axioms case={case}",
                         shared_axioms=shared)


def test_extend_matches_full_rerun_on_schema_deltas(base_kg):
    """Schema-bearing deltas must fall back to a full (still equal) re-closure."""
    base, closure = base_kg
    for case in range(24):
        rng = random.Random(6000 + case)
        delta = _schema_delta(rng, base)
        _check_extension(base, closure, delta, f"schema case={case}")


def test_chained_extensions_match_full_rerun(base_kg):
    """Repeated extend() calls (a mutating live scenario) stay convergent."""
    base, closure = base_kg
    for chain in range(8):
        rng = random.Random(7000 + chain)
        updated = base.copy()
        evolving = closure.copy()
        for _ in range(4):
            delta = _data_delta(rng, updated, rng.randint(1, 3))
            updated.addN(delta)
            Reasoner(updated, check_consistency=False).extend(evolving, delta)
        full = Reasoner(updated, check_consistency=False).run()
        assert_same_closure(full, evolving, f"chain={chain}")


def test_extend_with_empty_delta_is_identity(base_kg):
    base, closure = base_kg
    extended = Reasoner(base, check_consistency=False).extend(closure.copy(), [])
    assert_same_closure(closure, extended, "empty delta")


def test_extend_with_already_present_triples_is_identity(base_kg):
    """Re-asserting triples the closure already holds derives nothing new."""
    base, closure = base_kg
    rng = random.Random(8000)
    present = rng.sample(sorted(base), 5)
    extended = Reasoner(base, check_consistency=False).extend(closure.copy(), present)
    assert_same_closure(closure, extended, "present-triples delta")


# ---------------------------------------------------------------------------
# Non-monotone (closed-world) classification: extension must refuse
# ---------------------------------------------------------------------------

def _all_values_from_graph() -> Graph:
    """ann is a DogLover while every pet is a Dog — until felix arrives."""
    graph = Graph()
    graph.parse(
        "@prefix ex: <http://example.org/> .\n"
        "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
        "ex:DogLover owl:equivalentClass [ a owl:Restriction ;\n"
        "    owl:onProperty ex:hasPet ; owl:allValuesFrom ex:Dog ] .\n"
        "ex:ann ex:hasPet ex:rex . ex:rex a ex:Dog .\n"
    )
    return graph


def test_extend_refuses_closed_world_classification_axioms():
    """allValuesFrom matches can be *invalidated* by additions: a new non-Dog
    pet must retract ann's DogLover type, which a monotone delta pass cannot
    do — extend() must refuse rather than return a stale closure."""
    base = _all_values_from_graph()
    reasoner = Reasoner(base, check_consistency=False)
    closure = reasoner.run()
    assert not reasoner.supports_incremental_extension
    delta = [(IRI("http://example.org/ann"), IRI("http://example.org/hasPet"),
              IRI("http://example.org/felix"))]
    with pytest.raises(ValueError, match="closed-world"):
        reasoner.extend(closure.copy(), delta)


def test_closure_cache_falls_back_to_full_run_for_closed_world_axioms():
    """The cache detects the unsound case up front and re-reasons from the
    asserted graph, so callers still get the correct (retracted) closure."""
    from repro.owl import MaterializationCache

    base = _all_values_from_graph()
    cache = MaterializationCache()
    base_fingerprint = base.fingerprint()
    cache.materialize(base)
    delta = [(IRI("http://example.org/ann"), IRI("http://example.org/hasPet"),
              IRI("http://example.org/felix"))]
    updated = base.copy()
    updated.addN(delta)
    result = cache.extend(updated, base_fingerprint, delta)
    full = Reasoner(updated, check_consistency=False).run()
    assert_same_closure(full, result, "closed-world fallback")
    dog_lover = (IRI("http://example.org/ann"), RDF_TYPE,
                 IRI("http://example.org/DogLover"))
    assert dog_lover not in result  # the stale classification is gone
    assert cache.stats()["extensions"] == 0  # it never took the unsound path
