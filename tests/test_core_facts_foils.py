"""Tests for the Figure 3 fact/foil semantics (pure matrix + graph annotation)."""

import pytest

from repro.core.facts_foils import (
    EcosystemView,
    annotate_facts_and_foils,
    classify_characteristic,
    fact_foil_matrix,
)
from repro.ontology import eo, feo
from repro.rdf.namespace import FOODKG
from repro.rdf.terms import IRI

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


class TestClassificationMatrix:
    def test_supports_and_present_is_fact(self):
        assert classify_characteristic(True, True) == "fact"

    def test_supports_and_absent_is_foil(self):
        assert classify_characteristic(True, False) == "foil"

    def test_opposes_and_present_is_foil(self):
        assert classify_characteristic(False, True, opposes_parameter=True) == "foil"

    def test_opposes_and_absent_is_neither(self):
        assert classify_characteristic(False, False, opposes_parameter=True) == "neither"

    def test_supports_but_opposed_by_ecosystem_is_foil(self):
        # The allergy case: broccoli supports Broccoli Cheddar Soup but the
        # user (ecosystem) is opposed by it.
        assert classify_characteristic(True, False, opposed_by_ecosystem=True) == "foil"
        assert classify_characteristic(True, True, opposed_by_ecosystem=True) == "foil"

    def test_untouched_characteristic_is_neither(self):
        assert classify_characteristic(False, True) == "neither"
        assert classify_characteristic(False, False) == "neither"

    def test_matrix_enumerates_all_touching_cases(self):
        rows = fact_foil_matrix()
        assert len(rows) == 12  # 3 parameter relations x 2 presence x 2 opposition
        verdicts = {row["verdict"] for row in rows}
        assert verdicts == {"fact", "foil", "neither"}

    def test_matrix_has_exactly_one_pure_fact_configuration(self):
        rows = fact_foil_matrix()
        facts = [row for row in rows if row["verdict"] == "fact"]
        assert all(row["supports_parameter"] and row["present_in_ecosystem"]
                   and not row["opposed_by_ecosystem"] for row in facts)


class TestGraphAnnotation:
    def test_ecosystem_view_reads_supported_and_opposed(self, cq2_scenario):
        view = EcosystemView.from_graph(cq2_scenario.inferred, cq2_scenario.ecosystem_iri)
        assert feo.SEASONS["autumn"] in view.supported
        assert IRI(FOODKG.Broccoli) in view.opposed

    def test_autumn_is_a_fact_in_cq2(self, cq2_scenario):
        assert (feo.SEASONS["autumn"], _RDF_TYPE, eo.Fact) in cq2_scenario.inferred

    def test_broccoli_is_a_foil_in_cq2(self, cq2_scenario):
        assert (IRI(FOODKG.Broccoli), _RDF_TYPE, eo.Foil) in cq2_scenario.inferred

    def test_out_of_season_is_closed_world_foil(self, cq2_scenario):
        # Spring supports Broccoli Cheddar Soup (broccoli is a spring vegetable)
        # but is not the ecosystem's season -> closed-world foil.
        assert (feo.SEASONS["spring"], _RDF_TYPE, eo.Foil) in cq2_scenario.inferred

    def test_irrelevant_conditions_are_not_foils(self, cq2_scenario):
        # The user has no health condition, so conditions linked to the soup's
        # ingredients through forbids-knowledge must not be annotated as foils.
        assert (feo.HEALTH_CONDITIONS["lactose_intolerance"], _RDF_TYPE, eo.Foil) \
            not in cq2_scenario.inferred

    def test_annotation_is_idempotent(self, cq2_scenario):
        before = len(cq2_scenario.inferred)
        added = annotate_facts_and_foils(cq2_scenario.inferred, cq2_scenario.ecosystem_iri)
        assert added == {"facts": 0, "foils": 0}
        assert len(cq2_scenario.inferred) == before

    def test_annotation_returns_counts_on_fresh_graph(self, engine, user, context):
        from repro.core.questions import ContrastiveQuestion
        question = ContrastiveQuestion(text="Why A over B?",
                                       primary="Butternut Squash Soup",
                                       secondary="Broccoli Cheddar Soup")
        scenario = engine.builder.build(question, user, context, run_reasoner=False)
        from repro.owl import Reasoner
        inferred = Reasoner(scenario.asserted).run()
        added = annotate_facts_and_foils(inferred, scenario.ecosystem_iri)
        assert added["foils"] >= 1
