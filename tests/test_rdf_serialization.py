"""Tests for Turtle and N-Triples parsing/serialisation and graph comparison."""

import pytest

from repro.rdf.collection import make_collection, read_collection
from repro.rdf.compare import graph_diff, isomorphic
from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF
from repro.rdf.ntriples import NTriplesParseError, parse as parse_nt, serialize as serialize_nt
from repro.rdf.terms import BNode, IRI, Literal, XSD_BOOLEAN, XSD_DECIMAL, XSD_INTEGER
from repro.rdf.turtle import TurtleParseError, parse as parse_ttl, serialize as serialize_ttl

EX = "http://example.org/"


def ex(name):
    return IRI(EX + name)


class TestTurtleParsing:
    def test_prefix_and_simple_triple(self):
        g = parse_ttl('@prefix ex: <http://example.org/> .\nex:a ex:p ex:b .')
        assert (ex("a"), ex("p"), ex("b")) in g

    def test_sparql_style_prefix(self):
        g = parse_ttl('PREFIX ex: <http://example.org/>\nex:a ex:p ex:b .')
        assert (ex("a"), ex("p"), ex("b")) in g

    def test_a_keyword_is_rdf_type(self):
        g = parse_ttl('@prefix ex: <http://example.org/> .\nex:a a ex:Thing .')
        assert (ex("a"), IRI(RDF.type), ex("Thing")) in g

    def test_predicate_object_lists(self):
        g = parse_ttl(
            '@prefix ex: <http://example.org/> .\n'
            'ex:a ex:p ex:b ; ex:q ex:c , ex:d .'
        )
        assert len(g) == 3

    def test_language_literal(self):
        g = parse_ttl('@prefix ex: <http://example.org/> .\nex:a ex:label "chat"@fr .')
        assert (ex("a"), ex("label"), Literal("chat", language="fr")) in g

    def test_typed_literal(self):
        g = parse_ttl(
            '@prefix ex: <http://example.org/> .\n'
            '@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n'
            'ex:a ex:count "5"^^xsd:integer .'
        )
        assert (ex("a"), ex("count"), Literal("5", datatype=XSD_INTEGER)) in g

    def test_numeric_shorthand(self):
        g = parse_ttl('@prefix ex: <http://example.org/> .\nex:a ex:n 5 ; ex:m 2.5 .')
        assert (ex("a"), ex("n"), Literal("5", datatype=XSD_INTEGER)) in g
        assert (ex("a"), ex("m"), Literal("2.5", datatype=XSD_DECIMAL)) in g

    def test_boolean_shorthand(self):
        g = parse_ttl('@prefix ex: <http://example.org/> .\nex:a ex:flag true .')
        assert (ex("a"), ex("flag"), Literal("true", datatype=XSD_BOOLEAN)) in g

    def test_blank_node_property_list(self):
        g = parse_ttl('@prefix ex: <http://example.org/> .\nex:a ex:p [ ex:q ex:b ] .')
        assert len(g) == 2
        bnodes = [o for _, _, o in g.triples((ex("a"), ex("p"), None))]
        assert isinstance(bnodes[0], BNode)

    def test_collection(self):
        g = parse_ttl('@prefix ex: <http://example.org/> .\nex:a ex:list ( ex:x ex:y ) .')
        head = g.value(ex("a"), ex("list"))
        assert read_collection(g, head) == [ex("x"), ex("y")]

    def test_empty_collection_is_nil(self):
        g = parse_ttl('@prefix ex: <http://example.org/> .\nex:a ex:list ( ) .')
        assert g.value(ex("a"), ex("list")) == IRI(RDF.nil)

    def test_comments_ignored(self):
        g = parse_ttl('# a comment\n@prefix ex: <http://example.org/> .\nex:a ex:p ex:b . # done')
        assert len(g) == 1

    def test_triple_quoted_string(self):
        g = parse_ttl('@prefix ex: <http://example.org/> .\nex:a ex:note """line1\nline2""" .')
        assert (ex("a"), ex("note"), Literal("line1\nline2")) in g

    def test_escaped_characters_in_string(self):
        g = parse_ttl('@prefix ex: <http://example.org/> .\nex:a ex:note "tab\\there" .')
        assert (ex("a"), ex("note"), Literal("tab\there")) in g

    def test_unknown_prefix_raises(self):
        with pytest.raises(TurtleParseError):
            parse_ttl('nope:a nope:p nope:b .')

    def test_missing_dot_raises(self):
        with pytest.raises(TurtleParseError):
            parse_ttl('@prefix ex: <http://example.org/> .\nex:a ex:p ex:b')

    def test_garbage_raises(self):
        with pytest.raises(TurtleParseError):
            parse_ttl('@prefix ex: <http://example.org/> .\nex:a ~~~ ex:b .')


class TestTurtleSerialisation:
    def test_roundtrip_preserves_triples(self):
        source = Graph()
        source.bind("ex", EX)
        source.add((ex("a"), ex("p"), ex("b")))
        source.add((ex("a"), IRI(RDF.type), ex("Thing")))
        source.add((ex("a"), ex("label"), Literal("thing", language="en")))
        source.add((ex("a"), ex("count"), Literal(3)))
        text = serialize_ttl(source)
        reparsed = parse_ttl(text)
        assert set(reparsed) == set(source)

    def test_serialisation_uses_prefixes(self):
        g = Graph()
        g.bind("ex", EX)
        g.add((ex("a"), ex("p"), ex("b")))
        assert "@prefix ex:" in serialize_ttl(g)
        assert "ex:a" in serialize_ttl(g)

    def test_rdf_type_written_as_a(self):
        g = Graph()
        g.bind("ex", EX)
        g.add((ex("a"), IRI(RDF.type), ex("Thing")))
        assert " a ex:Thing" in serialize_ttl(g)

    def test_empty_graph_serialises_to_empty_string(self):
        assert serialize_ttl(Graph()) == ""

    def test_graph_serialize_method_dispatch(self):
        g = Graph()
        g.add((ex("a"), ex("p"), ex("b")))
        assert "example.org" in g.serialize("turtle")
        assert "example.org" in g.serialize("ntriples")
        with pytest.raises(ValueError):
            g.serialize("jsonld")


class TestNTriples:
    def test_roundtrip(self):
        g = Graph()
        g.add((ex("a"), ex("p"), ex("b")))
        g.add((ex("a"), ex("label"), Literal("x y", language="en")))
        g.add((ex("a"), ex("count"), Literal(4)))
        g.add((BNode("n1"), ex("p"), ex("b")))
        text = serialize_nt(g)
        assert set(parse_nt(text)) == set(g)

    def test_sorted_output_is_deterministic(self):
        g = Graph()
        g.add((ex("b"), ex("p"), ex("c")))
        g.add((ex("a"), ex("p"), ex("c")))
        assert serialize_nt(g) == serialize_nt(g.copy())

    def test_comments_and_blank_lines_ignored(self):
        text = "# comment\n\n<http://example.org/a> <http://example.org/p> <http://example.org/b> .\n"
        assert len(parse_nt(text)) == 1

    def test_literal_with_datatype(self):
        text = ('<http://example.org/a> <http://example.org/n> '
                '"5"^^<http://www.w3.org/2001/XMLSchema#integer> .')
        g = parse_nt(text)
        assert (ex("a"), ex("n"), Literal("5", datatype=XSD_INTEGER)) in g

    def test_escaped_literal(self):
        text = '<http://example.org/a> <http://example.org/p> "line\\nbreak" .'
        g = parse_nt(text)
        assert g.value(ex("a"), ex("p")) == Literal("line\nbreak")

    def test_malformed_line_raises(self):
        with pytest.raises(NTriplesParseError):
            parse_nt("this is not ntriples")


class TestCollections:
    def test_make_and_read_roundtrip(self):
        g = Graph()
        head = make_collection(g, [ex("a"), ex("b"), Literal(3)])
        assert read_collection(g, head) == [ex("a"), ex("b"), Literal(3)]

    def test_empty_collection(self):
        g = Graph()
        assert make_collection(g, []) == IRI(RDF.nil)
        assert read_collection(g, IRI(RDF.nil)) == []

    def test_cycle_guard(self):
        g = Graph()
        node = BNode()
        g.add((node, IRI(RDF.first), ex("a")))
        g.add((node, IRI(RDF.rest), node))
        with pytest.raises(ValueError):
            read_collection(g, node, max_length=10)


class TestGraphComparison:
    def test_graph_diff(self):
        left, right = Graph(), Graph()
        left.add((ex("a"), ex("p"), ex("b")))
        left.add((ex("shared"), ex("p"), ex("x")))
        right.add((ex("shared"), ex("p"), ex("x")))
        right.add((ex("c"), ex("p"), ex("d")))
        both, only_left, only_right = graph_diff(left, right)
        assert len(both) == 1 and len(only_left) == 1 and len(only_right) == 1

    def test_isomorphic_identical_graphs(self):
        g = Graph()
        g.add((ex("a"), ex("p"), ex("b")))
        assert isomorphic(g, g.copy())

    def test_isomorphic_with_renamed_bnodes(self):
        left, right = Graph(), Graph()
        left.add((BNode("x"), ex("p"), ex("b")))
        right.add((BNode("y"), ex("p"), ex("b")))
        assert isomorphic(left, right)

    def test_not_isomorphic_different_sizes(self):
        left, right = Graph(), Graph()
        left.add((ex("a"), ex("p"), ex("b")))
        assert not isomorphic(left, right)

    def test_not_isomorphic_different_structure(self):
        left, right = Graph(), Graph()
        left.add((BNode("x"), ex("p"), ex("b")))
        right.add((BNode("y"), ex("q"), ex("b")))
        assert not isomorphic(left, right)
