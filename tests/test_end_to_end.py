"""End-to-end integration tests across personas.

These tests exercise the full pipeline (profile → recommendation →
scenario → reasoning → SPARQL → explanation) for every built-in persona,
checking cross-cutting invariants rather than specific rows: explanations
are always produced for the paper's three primary types, hard constraints
are never violated by recommendations, and the explanation evidence never
contradicts the user's profile.
"""

import pytest

from repro.core.questions import ContrastiveQuestion, WhatIfConditionQuestion, WhyQuestion
from repro.users.personas import all_personas

PERSONA_ITEMS = sorted(all_personas().items())
PERSONA_IDS = [key for key, _ in PERSONA_ITEMS]


@pytest.fixture(scope="module", params=PERSONA_ITEMS, ids=PERSONA_IDS)
def persona_setup(request, engine):
    key, (user, context) = request.param
    recommendations = engine.recommender.recommend(user, context, top_k=5)
    return key, user, context, recommendations


class TestRecommendationInvariants:
    def test_recommendations_exist_for_every_persona(self, persona_setup):
        _, _, _, recommendations = persona_setup
        assert recommendations, "every persona should receive at least one recommendation"

    def test_no_recommendation_contains_an_allergen(self, persona_setup, engine):
        _, user, _, recommendations = persona_setup
        for recommendation in recommendations:
            allergens = set(engine.catalog.recipe_allergens(recommendation.recipe))
            ingredients = set(engine.catalog.recipes[recommendation.recipe].ingredients)
            for allergy in user.allergies:
                assert allergy not in ingredients
                assert allergy.lower() not in {a.lower() for a in allergens}

    def test_no_recommendation_violates_condition_rules(self, persona_setup, engine):
        _, user, _, recommendations = persona_setup
        forbidden = set()
        for condition in user.conditions:
            for rule in engine.catalog.rules_for(condition):
                forbidden.update(rule.forbids)
        for recommendation in recommendations:
            ingredients = set(engine.catalog.recipes[recommendation.recipe].ingredients)
            assert not forbidden & ingredients

    def test_diet_constraints_respected(self, persona_setup, engine):
        _, user, _, recommendations = persona_setup
        for recommendation in recommendations:
            recipe = engine.catalog.recipes[recommendation.recipe]
            for diet in user.diets:
                assert diet in recipe.diets


class TestExplanationInvariants:
    def test_contextual_explanation_for_top_recommendation(self, persona_setup, engine):
        _, user, context, recommendations = persona_setup
        top = recommendations[0]
        explanation = engine.contextual(top.recipe, user, context)
        assert explanation.explanation_type == "contextual"
        # Every surfaced characteristic is external by construction.
        assert all(item.characteristic_type in
                   {"SeasonCharacteristic", "LocationCharacteristic",
                    "BudgetCharacteristic", "TimeCharacteristic"}
                   for item in explanation.items)

    def test_contrastive_explanation_between_top_two(self, persona_setup, engine):
        _, user, context, recommendations = persona_setup
        if len(recommendations) < 2:
            pytest.skip("persona has fewer than two recommendations")
        primary, secondary = recommendations[0].recipe, recommendations[1].recipe
        question = ContrastiveQuestion(
            text=f"Why should I eat {primary} over {secondary}?",
            primary=primary, secondary=secondary)
        explanation = engine.explain(question, user, context, explanation_type="contrastive")
        facts = {item.subject for item in explanation.items_with_role("fact")}
        foils = {item.subject for item in explanation.items_with_role("foil")}
        assert not facts & foils

    def test_counterfactual_explanation_for_pregnancy(self, persona_setup, engine):
        _, user, context, _ = persona_setup
        explanation = engine.counterfactual_condition("pregnancy", user, context)
        forbidden = {item.subject for item in explanation.items_with_role("forbidden")}
        # The pregnancy rule always forbids raw fish, hence sushi by inheritance.
        assert "RawFish" in forbidden
        assert "Sushi" in forbidden

    def test_explanation_text_is_always_a_sentence(self, persona_setup, engine):
        key, user, context, recommendations = persona_setup
        explanation = engine.contextual(recommendations[0].recipe, user, context)
        assert explanation.text.strip().endswith(".")
        assert len(explanation.text) > 20


class TestScenarioConsistency:
    def test_scenario_graphs_isolated_between_personas(self, engine):
        """Two personas' scenarios never leak each other's profile assertions."""
        from repro.ontology import feo

        personas = all_personas()
        (user_a, context_a) = personas["paper"]
        (user_b, context_b) = personas["vegan_athlete"]
        question = WhyQuestion(text="Why should I eat Lentil Soup?", recipe="Lentil Soup")
        scenario_a = engine.build_scenario(question, user_a, context_a)
        scenario_b = engine.build_scenario(question, user_b, context_b)
        assert scenario_a.user_iri != scenario_b.user_iri
        assert not list(scenario_b.inferred.triples((scenario_a.user_iri, feo.likes, None)))

    def test_whatif_condition_not_added_to_actual_profile(self, engine, user, context):
        """Asking 'what if I was pregnant' must not assert the condition on the user."""
        from repro.ontology import feo

        question = WhatIfConditionQuestion(text="What if I was pregnant?", condition="pregnancy")
        scenario = engine.build_scenario(question, user, context)
        assert (scenario.user_iri, feo.hasCondition,
                feo.HEALTH_CONDITIONS["pregnancy"]) not in scenario.asserted
