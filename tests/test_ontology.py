"""Tests for the ontology builder and the three ontologies (EO, food, FEO)."""

import pytest

from repro.ontology import eo, feo, food
from repro.ontology.builder import (
    OntologyBuilder,
    has_value,
    intersection_of,
    some_values_from,
    union_of,
)
from repro.owl import ClassHierarchy, PropertyHierarchy, Reasoner
from repro.owl.vocabulary import (
    OWL_CLASS,
    OWL_EQUIVALENT_CLASS,
    OWL_OBJECT_PROPERTY,
    OWL_TRANSITIVE_PROPERTY,
    RDF_TYPE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal

EX = "http://example.org/"


def ex(name):
    return IRI(EX + name)


class TestOntologyBuilder:
    def test_declare_class_with_label_and_parent(self):
        builder = OntologyBuilder()
        builder.declare_class(ex("Cat"), "Cat", subclass_of=[ex("Animal")])
        graph = builder.graph
        assert (ex("Cat"), RDF_TYPE, OWL_CLASS) in graph
        assert (ex("Cat"), RDFS_SUBCLASSOF, ex("Animal")) in graph

    def test_declare_class_with_restriction_equivalence(self):
        builder = OntologyBuilder()
        builder.declare_class(ex("Parent"),
                              equivalent_to=[some_values_from(ex("hasChild"), ex("Person"))])
        assert list(builder.graph.triples((ex("Parent"), OWL_EQUIVALENT_CLASS, None)))

    def test_declare_object_property_characteristics(self):
        builder = OntologyBuilder()
        builder.declare_object_property(ex("partOf"), transitive=True,
                                        inverse_of=ex("hasPart"),
                                        domain=ex("Piece"), range=ex("Whole"))
        graph = builder.graph
        assert (ex("partOf"), RDF_TYPE, OWL_OBJECT_PROPERTY) in graph
        assert (ex("partOf"), RDF_TYPE, OWL_TRANSITIVE_PROPERTY) in graph

    def test_declare_property_chain(self):
        builder = OntologyBuilder()
        builder.declare_object_property(ex("hasUncle"), property_chain=[ex("hasParent"), ex("hasBrother")])
        assert list(builder.graph.triples(
            (ex("hasUncle"), IRI("http://www.w3.org/2002/07/owl#propertyChainAxiom"), None)))

    def test_add_individual_with_properties(self):
        builder = OntologyBuilder()
        builder.add_individual(ex("felix"), [ex("Cat")], label="Felix",
                               properties={ex("age"): Literal(3), ex("knows"): [ex("tom")]})
        graph = builder.graph
        assert (ex("felix"), RDF_TYPE, ex("Cat")) in graph
        assert (ex("felix"), ex("age"), Literal(3)) in graph
        assert (ex("felix"), ex("knows"), ex("tom")) in graph

    def test_restriction_helpers_compose(self):
        builder = OntologyBuilder()
        expression = intersection_of(
            ex("Food"),
            some_values_from(ex("hasIngredient"), union_of(ex("Vegetable"), ex("Fruit"))),
            has_value(ex("isHealthy"), Literal(True)),
        )
        builder.declare_class(ex("HealthyFood"), equivalent_to=[expression])
        # The encoded expression must round-trip through the reasoner's parser.
        from repro.owl.expressions import parse_class_expression
        node = builder.graph.value(ex("HealthyFood"), OWL_EQUIVALENT_CLASS)
        parsed = parse_class_expression(builder.graph, node)
        assert parsed is not None
        assert ex("Vegetable") in parsed.named_classes()


class TestExplanationOntology:
    @pytest.fixture(scope="class")
    def graph(self):
        return eo.build_eo_graph()

    def test_all_nine_explanation_types_declared(self, graph):
        for type_iri in eo.EXPLANATION_TYPES.values():
            assert (type_iri, RDFS_SUBCLASSOF, eo.Explanation) in graph

    def test_table1_has_nine_types(self):
        assert len(eo.EXPLANATION_TYPES) == 9

    def test_fact_and_foil_classes_exist(self, graph):
        assert (eo.Fact, RDF_TYPE, OWL_CLASS) in graph
        assert (eo.Foil, RDF_TYPE, OWL_CLASS) in graph

    def test_record_classes_are_knowledge(self, graph):
        assert (eo.ObjectRecord, RDFS_SUBCLASSOF, eo.Knowledge) in graph
        assert (eo.KnowledgeRecord, RDFS_SUBCLASSOF, eo.Knowledge) in graph


class TestFoodOntology:
    @pytest.fixture(scope="class")
    def graph(self):
        return food.build_food_graph()

    def test_recipe_and_ingredient_are_foods(self, graph):
        assert (food.Recipe, RDFS_SUBCLASSOF, food.Food) in graph
        assert (food.Ingredient, RDFS_SUBCLASSOF, food.Food) in graph

    def test_core_classes_declared(self, graph):
        for cls in (food.User, food.Diet, food.MealType, food.Cuisine, food.Allergen, food.Nutrient):
            assert (cls, RDF_TYPE, OWL_CLASS) in graph

    def test_has_ingredient_domain_range(self, graph):
        assert graph.value(food.hasIngredient, IRI("http://www.w3.org/2000/01/rdf-schema#domain")) == food.Recipe
        assert graph.value(food.hasIngredient, IRI("http://www.w3.org/2000/01/rdf-schema#range")) == food.Ingredient


class TestFEO:
    @pytest.fixture(scope="class")
    def graph(self):
        return feo.build_combined_ontology()

    @pytest.fixture(scope="class")
    def hierarchy(self, graph):
        return ClassHierarchy(Reasoner(graph.copy()).run())

    def test_figure1_main_subclasses(self, graph):
        for cls in (feo.Parameter, feo.UserCharacteristic, feo.SystemCharacteristic):
            assert (cls, RDFS_SUBCLASSOF, feo.Characteristic) in graph

    def test_figure1_user_characteristic_leaves(self, hierarchy):
        for cls in (feo.LikedFoodCharacteristic, feo.DislikedFoodCharacteristic,
                    feo.AllergicFoodCharacteristic, feo.DietCharacteristic,
                    feo.HealthConditionCharacteristic, feo.NutritionalGoalCharacteristic):
            assert hierarchy.is_a(cls, feo.UserCharacteristic)

    def test_figure1_system_characteristic_leaves(self, hierarchy):
        for cls in (feo.SeasonCharacteristic, feo.LocationCharacteristic, feo.TimeCharacteristic):
            assert hierarchy.is_a(cls, feo.SystemCharacteristic)

    def test_has_characteristic_is_transitive_with_inverse(self, graph):
        assert (feo.hasCharacteristic, RDF_TYPE, OWL_TRANSITIVE_PROPERTY) in graph
        assert (feo.hasCharacteristic,
                IRI("http://www.w3.org/2002/07/owl#inverseOf"), feo.isCharacteristicOf) in graph

    def test_forbids_is_subproperty_of_both_superproperties(self, graph):
        # The property interplay the paper highlights explicitly.
        assert (feo.forbids, RDFS_SUBPROPERTYOF, feo.isOpposedBy) in graph
        assert (feo.forbids, RDFS_SUBPROPERTYOF, feo.isCharacteristicOf) in graph

    def test_recommends_is_subproperty_of_is_characteristic_of(self, graph):
        assert (feo.recommends, RDFS_SUBPROPERTYOF, feo.isCharacteristicOf) in graph

    def test_user_profile_properties_feed_the_lattice(self, graph):
        assert (feo.likes, RDFS_SUBPROPERTYOF, feo.hasCharacteristic) in graph
        assert (feo.allergicTo, RDFS_SUBPROPERTYOF, feo.isOpposedBy) in graph
        assert (feo.dislikes, RDFS_SUBPROPERTYOF, feo.isOpposedBy) in graph

    def test_food_properties_feed_the_lattice(self, graph):
        from repro.ontology import food as food_module
        assert (food_module.hasIngredient, RDFS_SUBPROPERTYOF, feo.hasCharacteristic) in graph
        assert (feo.availableInSeason, RDFS_SUBPROPERTYOF, feo.hasCharacteristic) in graph

    def test_internal_external_partition_is_disjoint(self):
        internal = set(feo.INTERNAL_CHARACTERISTIC_CLASSES)
        external = set(feo.EXTERNAL_CHARACTERISTIC_CLASSES)
        assert not internal & external

    def test_isinternal_hasvalue_axioms_materialise_on_instances(self, graph):
        inferred = Reasoner(graph.copy()).run()
        assert (feo.SEASONS["autumn"], feo.isInternal, Literal(False)) in inferred

    def test_shared_individuals_are_typed(self, graph):
        assert (feo.SEASONS["winter"], RDF_TYPE, feo.SeasonCharacteristic) in graph
        assert (feo.HEALTH_CONDITIONS["pregnancy"], RDF_TYPE, feo.HealthConditionCharacteristic) in graph
        assert (feo.NUTRITIONAL_GOALS["low_sodium"], RDF_TYPE, feo.NutritionalGoalCharacteristic) in graph
        assert (feo.BUDGET_LEVELS["low"], RDF_TYPE, feo.BudgetCharacteristic) in graph

    def test_fact_and_foil_have_equivalence_definitions(self, graph):
        assert list(graph.triples((eo.Fact, OWL_EQUIVALENT_CLASS, None)))
        assert list(graph.triples((eo.Foil, OWL_EQUIVALENT_CLASS, None)))

    def test_ingredient_characteristic_is_knowledge(self, graph):
        assert (feo.IngredientCharacteristic, RDFS_SUBCLASSOF, eo.Knowledge) in graph

    def test_combined_ontology_contains_all_three_namespaces(self, graph):
        assert (eo.Explanation, RDF_TYPE, OWL_CLASS) in graph
        assert (food.Recipe, RDF_TYPE, OWL_CLASS) in graph
        assert (feo.Characteristic, RDF_TYPE, OWL_CLASS) in graph

    def test_figure2_property_lattice_via_hierarchy(self, graph):
        inferred = Reasoner(graph.copy()).run()
        lattice = PropertyHierarchy(inferred)
        assert feo.forbids in lattice.descendants(feo.isCharacteristicOf)
        assert feo.recommends in lattice.descendants(feo.isCharacteristicOf)
        assert feo.forbids in lattice.descendants(feo.isOpposedBy)

    def test_ontology_serialises_to_turtle(self, graph):
        text = graph.serialize("turtle")
        assert "feo:Characteristic" in text
        assert "owl:TransitiveProperty" in text
