"""Tests for question modelling and the natural-language question parser."""

import pytest

from repro.core.questions import (
    ContrastiveQuestion,
    QuestionParseError,
    QuestionType,
    WhatIfConditionQuestion,
    WhatIfIngredientQuestion,
    WhyQuestion,
    parse_question,
)


class TestQuestionObjects:
    def test_why_question_local_name_matches_paper(self):
        question = WhyQuestion(text="Why should I eat Cauliflower Potato Curry?",
                               recipe="Cauliflower Potato Curry")
        assert question.local_name() == "WhyEatCauliflowerPotatoCurry"
        assert question.question_type is QuestionType.WHY

    def test_contrastive_local_name_matches_paper(self):
        question = ContrastiveQuestion(
            text="Why should I eat Butternut Squash Soup over Broccoli Cheddar Soup?",
            primary="Butternut Squash Soup", secondary="Broccoli Cheddar Soup")
        assert question.local_name() == "WhyEatButternutSquashSoupOverBroccoliCheddarSoup"

    def test_what_if_condition_local_name_matches_paper(self):
        question = WhatIfConditionQuestion(text="What if I was pregnant?", condition="pregnancy")
        assert question.local_name() == "WhatIfIWasPregnancy"

    def test_what_if_ingredient_local_name(self):
        question = WhatIfIngredientQuestion(text="What if we changed cheddar?",
                                            recipe="Broccoli Cheddar Soup",
                                            ingredient="Cheddar Cheese")
        assert "CheddarCheese" in question.local_name()

    def test_questions_are_immutable(self):
        question = WhyQuestion(text="Why?", recipe="Sushi")
        with pytest.raises(AttributeError):
            question.recipe = "Other"


class TestQuestionParsing:
    def test_parse_why_question(self):
        question = parse_question("Why should I eat Cauliflower Potato Curry?")
        assert isinstance(question, WhyQuestion)
        assert question.recipe == "Cauliflower Potato Curry"

    def test_parse_why_without_question_mark(self):
        question = parse_question("Why should I eat Sushi")
        assert isinstance(question, WhyQuestion)
        assert question.recipe == "Sushi"

    def test_parse_contrastive_over(self):
        question = parse_question(
            "Why should I eat Butternut Squash Soup over a Broccoli Cheddar Soup?")
        assert isinstance(question, ContrastiveQuestion)
        assert question.primary == "Butternut Squash Soup"
        assert question.secondary == "Broccoli Cheddar Soup"

    def test_parse_contrastive_recommended_over(self):
        question = parse_question("Why was Sushi recommended over Lentil Soup?")
        assert isinstance(question, ContrastiveQuestion)
        assert question.primary == "Sushi"
        assert question.secondary == "Lentil Soup"

    def test_parse_contrastive_instead_of(self):
        question = parse_question("Why should I eat Lentil Soup instead of Beef Tacos?")
        assert isinstance(question, ContrastiveQuestion)
        assert question.secondary == "Beef Tacos"

    def test_parse_what_if_pregnant(self):
        question = parse_question("What if I was pregnant?")
        assert isinstance(question, WhatIfConditionQuestion)
        assert question.condition == "pregnancy"

    def test_parse_what_if_were_diabetic(self):
        question = parse_question("What if I were diabetic?")
        assert question.condition == "diabetes"

    def test_parse_what_if_lactose_intolerant(self):
        question = parse_question("What if I was lactose intolerant?")
        assert question.condition == "lactose_intolerance"

    def test_parse_what_if_changed_ingredient(self):
        question = parse_question("What if we changed Cheddar Cheese in Broccoli Cheddar Soup?")
        assert isinstance(question, WhatIfIngredientQuestion)
        assert question.ingredient == "Cheddar Cheese"
        assert question.recipe == "Broccoli Cheddar Soup"

    def test_parse_what_if_replaced_with(self):
        question = parse_question("What if we replaced Raw Fish with Tofu in Sushi?")
        assert isinstance(question, WhatIfIngredientQuestion)
        assert question.ingredient == "Raw Fish"
        assert question.replacement == "Tofu"

    def test_parse_case_insensitive(self):
        question = parse_question("WHY SHOULD I EAT SUSHI?")
        assert isinstance(question, WhyQuestion)

    def test_whitespace_normalised(self):
        question = parse_question("  Why   should I eat   Sushi ?")
        assert question.recipe == "Sushi"

    def test_unparseable_text_raises(self):
        with pytest.raises(QuestionParseError):
            parse_question("Tell me a joke about food")

    def test_original_text_preserved(self):
        text = "Why should I eat Sushi?"
        assert parse_question(text).text == text
