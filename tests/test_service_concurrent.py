"""Concurrency battery for the multi-tenant serving layer.

Covers the serving-layer guarantees the sharded architecture makes:

* **snapshot isolation** — N reader threads racing one writer per session
  only ever observe *complete* scenario closures (each read's content
  fingerprint matches one of the states a serial replay of the same
  update sequence produces — no torn snapshots), post-update reads see
  the delta, and reads never wait on the update lock;
* **differential correctness** — a concurrent mixed ask/update trace
  through :class:`ShardedExplanationService` is response-for-response
  equal to a serial replay of the same trace on a plain
  :class:`ExplanationService` (the serial oracle);
* **load shedding** — admission control surfaces the typed
  :class:`BackpressureError` (with counters), not a 500 or a traceback,
  through both ``ExplanationService.ask`` and the HTTP API;
* **session lifecycle** — idle sessions are evicted (TTL and LRU cap)
  and persona-addressed sessions rebuild transparently afterwards.

The reader-thread count scales with ``REPRO_TEST_WORKERS`` (CI runs a
2/8 matrix).
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from dataclasses import replace

import pytest

from repro.owl import MaterializationCache
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI
from repro.service import (
    BackpressureError,
    ExplanationRequest,
    ExplanationServer,
    ExplanationService,
    ShardedExplanationService,
)
from repro.users.personas import paper_context, paper_user, persona
from repro.users.sessions import SessionRegistry

#: Reader/worker thread count for the race tests (CI matrix: 2 and 8).
WORKERS = max(2, int(os.environ.get("REPRO_TEST_WORKERS", "4")))

QUESTION = "Why should I eat Cauliflower Potato Curry?"

#: One writer's update sequence; each step changes the scenario closure, so
#: the five states (base + four updates) have five distinct fingerprints.
UPDATES = (
    dict(allergies=("dairy",)),
    dict(conditions=("diabetes",)),
    dict(likes=("Spinach",)),
    dict(goals=("high_fiber",)),
)


def _run_threads(targets, timeout=60.0):
    """Start one thread per target callable and join them all."""
    threads = [threading.Thread(target=target, daemon=True) for target in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "worker thread did not finish in time"


# ---------------------------------------------------------------------------
# Snapshot-isolated reads
# ---------------------------------------------------------------------------
class TestSnapshotIsolation:
    def _serial_state_fingerprints(self, engine):
        """The oracle: fingerprints of every profile-prefix closure, serially."""
        oracle = ExplanationService(engine=engine)
        session = oracle.open_persona_session("paper")
        states = [oracle.ask(QUESTION, session_id=session.session_id)
                  .scenario.inferred.fingerprint()]
        for update in UPDATES:
            states.append(oracle.update_scenario(
                QUESTION, session_id=session.session_id, **update)
                .inferred.fingerprint())
        return states

    def test_readers_racing_one_writer_observe_no_torn_snapshots(self, engine):
        expected = self._serial_state_fingerprints(engine)
        assert len(set(expected)) == len(expected), \
            "oracle states must be distinguishable for the race to be checkable"

        service = ExplanationService(engine=engine)
        session = service.open_persona_session("paper")
        service.ask(QUESTION, session_id=session.session_id)  # prime state 0

        observed = [[] for _ in range(WORKERS)]
        errors = []
        stop = threading.Event()

        def reader(slot):
            try:
                while not stop.is_set():
                    response = service.ask(QUESTION, session_id=session.session_id)
                    observed[slot].append(response.scenario.inferred.fingerprint())
            except Exception as exc:  # pragma: no cover - surfaced via assert
                errors.append(exc)

        def writer():
            try:
                for update in UPDATES:
                    service.update_scenario(QUESTION, session_id=session.session_id,
                                            **update)
                    time.sleep(0.02)  # let readers sample this state
            except Exception as exc:  # pragma: no cover - surfaced via assert
                errors.append(exc)
            finally:
                stop.set()

        _run_threads([lambda slot=s: reader(slot) for s in range(WORKERS)] + [writer])

        assert not errors, f"concurrent requests failed: {errors[:3]}"
        valid = set(expected)
        total_reads = 0
        for sequence in observed:
            total_reads += len(sequence)
            # Every read saw a complete closure from the serial state space —
            # never a half-applied update.
            assert set(sequence) <= valid, "a read observed a torn snapshot"
            # A session's profile only advances, so each reader's view moves
            # monotonically through the state sequence.
            indices = [expected.index(fingerprint) for fingerprint in sequence]
            assert indices == sorted(indices), \
                "a reader travelled backwards through the update sequence"
        assert total_reads > 0, "readers never ran"

        # Post-update reads see the delta: after the writer finished, the
        # next read serves exactly the final state.
        final = service.ask(QUESTION, session_id=session.session_id)
        assert final.scenario.inferred.fingerprint() == expected[-1]

    def test_reads_proceed_while_the_update_lock_is_held(self, engine):
        """ask() must never wait on the update path's lock."""
        service = ExplanationService(engine=engine)
        session = service.open_persona_session("paper")
        service.ask(QUESTION, session_id=session.session_id)

        results = []
        with service._update_lock:  # an update is "in flight"
            thread = threading.Thread(
                target=lambda: results.append(
                    service.ask(QUESTION, session_id=session.session_id)),
                daemon=True)
            thread.start()
            thread.join(timeout=30)
            assert not thread.is_alive(), "read blocked behind the update lock"
        assert results and results[0].explanation.text

    def test_snapshot_is_isolated_from_later_cache_state(self, engine):
        """The scenario handed back with a response is the caller's own view."""
        service = ExplanationService(engine=engine)
        session = service.open_persona_session("paper")
        before = service.ask(QUESTION, session_id=session.session_id)
        fingerprint = before.scenario.inferred.fingerprint()
        service.update_scenario(QUESTION, session_id=session.session_id,
                                likes=("Sushi",))
        # The held snapshot is unaffected by the update, and mutating it
        # cannot leak back into the service's caches.
        assert before.scenario.inferred.fingerprint() == fingerprint
        before.scenario.inferred.add(
            (before.scenario.user_iri, before.scenario.question_iri,
             before.scenario.user_iri))
        after = service.ask(QUESTION, session_id=session.session_id)
        assert before.scenario.inferred.fingerprint() != fingerprint
        assert after.scenario.inferred.fingerprint() != \
            before.scenario.inferred.fingerprint()


# ---------------------------------------------------------------------------
# Concurrent trace == serial replay (the differential oracle)
# ---------------------------------------------------------------------------
class TestShardedDifferential:
    N_SESSIONS = 8

    def _trace(self):
        """A mixed per-session op list over distinct tenant profiles."""
        base_user, context = paper_user(), paper_context()
        trace = []
        for index in range(self.N_SESSIONS):
            user = replace(base_user, identifier=f"tenant-{index}",
                           name=f"Tenant {index}")
            ops = [("ask", None)]
            if index % 2 == 0:
                ops.append(("update", {"likes": (f"Custom Delicacy {index}",)}))
                ops.append(("ask", None))
            ops.append(("ask", None))
            trace.append((user, context, ops))
        return trace

    @staticmethod
    def _signature(response):
        return (response.explanation.text,
                response.scenario.inferred.fingerprint())

    def _drive(self, ask, update, user, context, ops, sink, key):
        session = None
        for op_index, (op, payload) in enumerate(ops):
            if op == "ask":
                response = ask(user, context, key)
                sink[(key, op_index)] = self._signature(response)
            else:
                update(user, context, key, payload)
        return session

    def test_concurrent_mixed_trace_equals_serial_replay(self, engine):
        trace = self._trace()

        # -- concurrent run through the sharded service ------------------
        sharded = ShardedExplanationService(
            num_shards=3, workers_per_shard=max(1, WORKERS // 2), engine=engine)
        sessions = {}
        for index, (user, context, _) in enumerate(trace):
            sessions[index] = sharded.open_session(user, context).session_id
        concurrent_results = {}
        errors = []

        def client(chunk):
            try:
                for index, (user, context, ops) in chunk:
                    self._drive(
                        lambda u, c, key: sharded.ask(
                            QUESTION, session_id=sessions[key]),
                        lambda u, c, key, payload: sharded.update_scenario(
                            QUESTION, session_id=sessions[key], **payload),
                        user, context, ops, concurrent_results, index)
            except Exception as exc:  # pragma: no cover - surfaced via assert
                errors.append(exc)

        indexed = list(enumerate(trace))
        chunks = [indexed[i::WORKERS] for i in range(WORKERS)]
        _run_threads([lambda c=chunk: client(c) for chunk in chunks if chunk],
                     timeout=300.0)
        sharded.stop()
        assert not errors, f"concurrent trace failed: {errors[:3]}"

        # -- serial replay on a plain single-threaded service ------------
        serial = ExplanationService(engine=engine)
        serial_results = {}
        for index, (user, context, ops) in enumerate(trace):
            session = serial.open_session(user, context)
            self._drive(
                lambda u, c, key: serial.ask(QUESTION, session_id=session.session_id),
                lambda u, c, key, payload: serial.update_scenario(
                    QUESTION, session_id=session.session_id, **payload),
                user, context, ops, serial_results, index)

        assert concurrent_results.keys() == serial_results.keys()
        for key in serial_results:
            assert concurrent_results[key] == serial_results[key], \
                f"concurrent response diverged from serial replay at {key}"

    def test_sessions_route_stably_to_their_home_shard(self, engine):
        sharded = ShardedExplanationService(num_shards=4, engine=engine, start=False)
        session = sharded.open_persona_session("paper")
        home = sharded.shard_for_session(session.session_id)
        assert session.session_id in home.service.registry
        # The same persona always lands on the same shard.
        again = sharded.open_persona_session("paper")
        assert sharded.shard_for_session(again.session_id) is home
        # Every mint is parseable and in range.
        for key in ("pregnant_user", "paper"):
            sid = sharded.open_persona_session(key).session_id
            assert sharded.shard_for_session(sid).index < sharded.num_shards


# ---------------------------------------------------------------------------
# Load shedding (bounded queues + admission control)
# ---------------------------------------------------------------------------
class TestLoadShedding:
    def test_service_admission_control_sheds_with_typed_error(self, engine, monkeypatch):
        service = ExplanationService(engine=engine, max_pending=1)
        service.ask(QUESTION, persona="paper")  # warm: no reasoning during the race

        entered, release = threading.Event(), threading.Event()
        real_explain = engine.explain

        def slow_explain(*args, **kwargs):
            entered.set()
            assert release.wait(timeout=30)
            return real_explain(*args, **kwargs)

        monkeypatch.setattr(engine, "explain", slow_explain)
        first_error = []
        blocker = threading.Thread(
            target=lambda: first_error.append(
                service.ask(QUESTION, persona="paper")), daemon=True)
        blocker.start()
        assert entered.wait(timeout=30)
        try:
            with pytest.raises(BackpressureError) as excinfo:
                service.ask(QUESTION, persona="paper")
        finally:
            release.set()
            blocker.join(timeout=30)

        payload = excinfo.value.to_payload()
        assert payload["error"] == "backpressure"
        assert payload["retryable"] is True
        assert payload["scope"] == "service"
        stats = service.stats()
        assert stats.requests_rejected == 1
        assert "requests rejected:      1" in stats.to_text()
        # The blocked request itself completed fine once released.
        assert first_error and first_error[0].explanation.text

    def test_shard_queue_rejection_carries_shard_context(self, engine):
        sharded = ShardedExplanationService(
            num_shards=1, workers_per_shard=1, queue_size=1, engine=engine)
        try:
            release = threading.Event()
            running = threading.Event()

            def occupy():
                running.set()
                assert release.wait(timeout=30)

            worker_future = sharded.shards[0].submit(occupy)
            assert running.wait(timeout=30)
            queued_future = sharded.shards[0].submit(lambda: "queued")
            with pytest.raises(BackpressureError) as excinfo:
                sharded.ask(QUESTION, persona="paper")
            assert excinfo.value.shard == 0
            assert excinfo.value.scope == "shard"
            assert excinfo.value.queue_depth == 1
            release.set()
            worker_future.result(timeout=30)
            assert queued_future.result(timeout=30) == "queued"
            stats = sharded.stats()
            assert stats.requests_rejected == 1
            assert stats.queue_depths == [0]
            # Back to normal service after the burst drained.
            assert sharded.ask(QUESTION, persona="paper").explanation.text
        finally:
            sharded.stop()


# ---------------------------------------------------------------------------
# HTTP API (transport-level behaviour of the same guarantees)
# ---------------------------------------------------------------------------
def _request(url, path, payload=None):
    """(status, decoded JSON body) for one request; errors are not raised."""
    if payload is None:
        request = urllib.request.Request(url + path)
    else:
        request = urllib.request.Request(
            url + path, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHTTPServer:
    @pytest.fixture()
    def server(self, engine):
        sharded = ShardedExplanationService(
            num_shards=1, workers_per_shard=1, queue_size=1, engine=engine)
        server = ExplanationServer(sharded, port=0).start()
        yield server
        server.stop()

    def test_ask_sessions_update_and_stats_roundtrip(self, server):
        status, body = _request(server.url, "/healthz")
        assert (status, body["status"]) == (200, "ok")

        status, opened = _request(server.url, "/sessions", {"persona": "paper"})
        assert status == 200 and opened["session_id"].startswith("s0:")

        status, answer = _request(server.url, "/ask", {
            "question": QUESTION, "session_id": opened["session_id"]})
        assert status == 200
        assert answer["explanation_type"] == "contextual"
        assert answer["text"]

        status, updated = _request(server.url, "/update", {
            "question": QUESTION, "session_id": opened["session_id"],
            "likes": ["Sushi"]})
        assert status == 200 and "Sushi" in updated["likes"]

        status, stats = _request(server.url, "/stats")
        assert status == 200
        assert stats["requests_served"] >= 1
        assert stats["scenario_updates"] == 1
        assert len(stats["per_shard"]) == 1

    def test_client_errors_are_400_not_500(self, server):
        status, body = _request(server.url, "/ask", {"question": "gibberish"})
        assert status == 400 and body["error"] == "bad_request"
        status, body = _request(server.url, "/ask", {})
        assert status == 400
        status, body = _request(server.url, "/nope", {})
        assert status == 404
        status, body = _request(server.url, "/ask", {
            "question": QUESTION, "explanation_type": "bogus"})
        assert status == 400 and "bogus" in body["message"]

    def test_backpressure_is_a_typed_503_then_recovers(self, server):
        sharded = server.service
        sharded.ask(QUESTION, persona="paper")  # warm all layers first

        release = threading.Event()
        running = threading.Event()

        def occupy():
            running.set()
            assert release.wait(timeout=30)

        worker_future = sharded.shards[0].submit(occupy)
        assert running.wait(timeout=30)
        filler_future = sharded.shards[0].submit(lambda: None)  # queue now full
        status, body = _request(server.url, "/ask",
                                {"question": QUESTION, "persona": "paper"})
        assert status == 503
        assert body["error"] == "backpressure"
        assert body["retryable"] is True
        assert body["shard"] == 0

        release.set()
        worker_future.result(timeout=30)
        filler_future.result(timeout=30)
        status, body = _request(server.url, "/ask",
                                {"question": QUESTION, "persona": "paper"})
        assert status == 200 and body["text"]
        status, stats = _request(server.url, "/stats")
        assert stats["requests_rejected"] == 1


# ---------------------------------------------------------------------------
# Session eviction and transparent rebuild
# ---------------------------------------------------------------------------
class TestSessionEviction:
    def test_idle_sessions_are_ttl_evicted(self):
        registry = SessionRegistry(idle_ttl=0.05)
        user, context = persona("paper")
        registry.open(user, context, session_id="idle-1")
        registry.open(user, context, session_id="idle-2")
        assert len(registry) == 2
        time.sleep(0.12)
        assert registry.evict_idle() == 2
        assert len(registry) == 0
        assert registry.ttl_evictions == 2

    def test_evicted_persona_session_rebuilds_transparently(self, engine):
        service = ExplanationService(
            engine=engine, registry=SessionRegistry(idle_ttl=0.05))
        session = service.open_persona_session("paper")
        first = service.ask(QUESTION, session_id=session.session_id)
        time.sleep(0.12)
        # The session is gone...
        assert service.registry.evict_idle() >= 1
        # ...but the same session id keeps working: the registry rebuilds it
        # from the recorded persona key instead of raising.
        second = service.ask(QUESTION, session_id=session.session_id)
        assert second.explanation.text == first.explanation.text
        assert service.registry.rebuilds == 1
        assert service.stats().session_rebuilds == 1
        rebuilt = service.registry.get(session.session_id)
        assert rebuilt is not session
        assert rebuilt.user == persona("paper")[0]

    def test_rebuild_restarts_from_the_persona_baseline(self, engine):
        """Documented trade-off: incremental profile growth dies with the TTL."""
        service = ExplanationService(
            engine=engine, registry=SessionRegistry(idle_ttl=0.05))
        session = service.open_persona_session("paper")
        service.ask(QUESTION, session_id=session.session_id)
        service.update_scenario(QUESTION, session_id=session.session_id,
                                likes=("Black Bean Tacos",))
        assert "Black Bean Tacos" in service.registry.get(session.session_id).user.likes
        time.sleep(0.12)
        service.registry.evict_idle()
        rebuilt = service.registry.get(session.session_id)
        assert "Black Bean Tacos" not in rebuilt.user.likes

    def test_explicit_profile_sessions_stay_evicted(self):
        registry = SessionRegistry(max_sessions=2)
        user, context = persona("paper")
        for n in range(3):
            registry.open(replace(user, identifier=f"u{n}"), context,
                          session_id=f"anon-{n}")
        assert registry.evictions == 1
        with pytest.raises(KeyError):
            registry.get("anon-0")

    def test_capacity_eviction_also_rebuilds_persona_sessions(self):
        registry = SessionRegistry(max_sessions=2)
        user, context = persona("paper")
        registry.open(user, context, session_id="p-0", persona="paper")
        registry.open(user, context, session_id="p-1", persona="paper")
        registry.open(user, context, session_id="p-2", persona="paper")
        assert len(registry) == 2 and registry.evictions == 1
        rebuilt = registry.get("p-0")
        assert rebuilt.persona == "paper" and registry.rebuilds == 1
        assert len(registry) == 2  # the cap still holds after the rebuild

    def test_closing_a_session_forgets_the_rebuild_spec(self):
        registry = SessionRegistry()
        user, context = persona("paper")
        registry.open(user, context, session_id="gone", persona="paper")
        registry.close("gone")
        with pytest.raises(KeyError):
            registry.get("gone")


# ---------------------------------------------------------------------------
# Single-flight materialisation (the cold-start dog-pile fix)
# ---------------------------------------------------------------------------
class TestSingleFlight:
    """Concurrent first-touch requests must share ONE materialisation.

    Before single-flight, N threads racing a cold cache key all found a
    miss and all ran the ~300ms reasoner — the thundering herd behind a
    cold shard multiplied its warm-up cost by the client count.
    """

    @staticmethod
    def _tiny_graph():
        graph = Graph()
        graph.add((IRI("urn:ex:s"), IRI("urn:ex:p"), IRI("urn:ex:o")))
        return graph

    def test_concurrent_first_touch_materialises_exactly_once(self):
        graph = self._tiny_graph()
        cache = MaterializationCache(max_size=4)
        release = threading.Event()
        runs = []

        class _BlockingReasoner:
            def __init__(self, target):
                self._target = target

            def run(self):
                runs.append(threading.get_ident())
                assert release.wait(timeout=30)
                return self._target.copy()

        results = []

        def worker():
            results.append(cache.materialize(
                graph, reasoner_factory=_BlockingReasoner))

        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(WORKERS)]
        for thread in threads:
            thread.start()
        # The claimant is parked inside run(); wait until every other
        # thread is provably queued behind it, then let the build finish.
        deadline = time.time() + 30
        while cache.single_flight_waits < WORKERS - 1:
            assert time.time() < deadline, \
                f"only {cache.single_flight_waits} waiters queued up"
            time.sleep(0.005)
        release.set()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()

        assert len(runs) == 1, "the dog-pile ran the reasoner more than once"
        assert cache.misses == 1
        assert cache.hits == WORKERS - 1
        assert cache.single_flight_waits == WORKERS - 1
        assert all(result is results[0] for result in results), \
            "waiters must observe the one published closure"

    def test_failed_build_does_not_strand_waiters(self):
        graph = self._tiny_graph()
        cache = MaterializationCache(max_size=4)
        fail_release = threading.Event()
        calls = []

        class _FlakyReasoner:
            """First build crashes (after the waiter queues); retry works."""

            def __init__(self, target):
                self._target = target

            def run(self):
                calls.append(threading.get_ident())
                if len(calls) == 1:
                    assert fail_release.wait(timeout=30)
                    raise RuntimeError("reasoner crashed mid-build")
                return self._target.copy()

        results, errors = [], []

        def worker():
            try:
                results.append(cache.materialize(
                    graph, reasoner_factory=_FlakyReasoner))
            except RuntimeError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, daemon=True) for _ in range(2)]
        for thread in threads:
            thread.start()
        deadline = time.time() + 30
        while cache.single_flight_waits < 1:
            assert time.time() < deadline, "the waiter never queued"
            time.sleep(0.005)
        fail_release.set()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()

        # The claimant propagated its crash; the waiter woke to a missing
        # entry, claimed the build itself, and succeeded.
        assert len(errors) == 1 and "crashed" in str(errors[0])
        assert len(results) == 1 and len(calls) == 2
        assert cache.misses == 1

    def test_sharded_first_touch_dogpile_materialises_once(self, engine):
        sharded = ShardedExplanationService(
            num_shards=1, workers_per_shard=max(2, WORKERS),
            queue_size=64, engine=engine)
        try:
            user, context = paper_user(), paper_context()
            session_ids = [sharded.open_session(user, context).session_id
                           for _ in range(max(2, WORKERS))]
            barrier = threading.Barrier(len(session_ids))
            fingerprints, errors = [], []

            def client(session_id):
                try:
                    barrier.wait(timeout=30)
                    response = sharded.ask(QUESTION, session_id=session_id)
                    fingerprints.append(response.scenario.inferred.fingerprint())
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            _run_threads([lambda sid=sid: client(sid) for sid in session_ids])
            assert not errors, f"dog-pile clients failed: {errors[:3]}"
            stats = sharded.shards[0].service.engine.builder.closure_cache.stats()
            assert stats["misses"] == 1, \
                "N concurrent first-touch asks must cost one materialisation"
            assert stats["single_flight_waits"] >= 1
            assert len(set(fingerprints)) == 1
        finally:
            sharded.stop()


# ---------------------------------------------------------------------------
# Internal errors are honest 500s, never reclassified as client faults
# ---------------------------------------------------------------------------
class TestInternalErrors:
    @pytest.fixture()
    def server(self, engine):
        sharded = ShardedExplanationService(
            num_shards=1, workers_per_shard=1, queue_size=4, engine=engine)
        server = ExplanationServer(sharded, port=0).start()
        yield server
        server.stop()

    def test_handler_bug_is_500_with_counter(self, server, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("wiring bug")

        monkeypatch.setattr(server.service, "ask", boom)
        status, body = _request(server.url, "/ask",
                                {"question": QUESTION, "persona": "paper"})
        assert status == 500
        assert body["error"] == "internal_error"
        assert "wiring bug" not in body["message"], \
            "internal exception detail must stay in the server log"
        assert server.internal_errors == 1
        status, stats = _request(server.url, "/stats")
        assert status == 200 and stats["internal_errors"] == 1

    def test_raw_keyerror_is_a_500_not_a_400(self, server, monkeypatch):
        """The old transport mapped any KeyError to 400, masking bugs."""
        def boom(*args, **kwargs):
            raise KeyError("internal-lookup-key")

        monkeypatch.setattr(server.service, "ask", boom)
        status, body = _request(server.url, "/ask",
                                {"question": QUESTION, "persona": "paper"})
        assert status == 500 and body["error"] == "internal_error"
        assert server.internal_errors == 1

    def test_unknown_entities_stay_400_with_prose_message(self, server):
        status, body = _request(server.url, "/sessions", {"persona": "nope"})
        assert status == 400 and body["error"] == "bad_request"
        # UnknownEntityError renders as prose, not KeyError's quoted repr.
        assert "nope" in body["message"]
        assert not body["message"].startswith('"')
        assert server.internal_errors == 0
