"""Unit tests for the RDF term model."""

import pytest
from decimal import Decimal

from repro.rdf.terms import (
    BNode,
    IRI,
    Literal,
    URIRef,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    RDF_LANGSTRING,
)


class TestIRI:
    def test_equality_with_same_value(self):
        assert IRI("http://example.org/a") == IRI("http://example.org/a")

    def test_inequality_with_different_value(self):
        assert IRI("http://example.org/a") != IRI("http://example.org/b")

    def test_not_equal_to_literal_with_same_text(self):
        assert IRI("hello") != Literal("hello")

    def test_not_equal_to_bnode_with_same_text(self):
        assert IRI("b0") != BNode("b0")

    def test_uriref_alias(self):
        assert URIRef is IRI

    def test_n3_form(self):
        assert IRI("http://example.org/a").n3() == "<http://example.org/a>"

    def test_hashable_and_usable_in_sets(self):
        s = {IRI("http://example.org/a"), IRI("http://example.org/a")}
        assert len(s) == 1

    def test_local_name_hash_fragment(self):
        assert IRI("https://purl.org/heals/feo#Autumn").local_name() == "Autumn"

    def test_local_name_slash(self):
        assert IRI("http://purl.org/heals/food/Recipe").local_name() == "Recipe"

    def test_defrag(self):
        assert IRI("http://x.org/a#b").defrag() == IRI("http://x.org/a")

    def test_requires_string(self):
        with pytest.raises(TypeError):
            IRI(42)


class TestBNode:
    def test_auto_label_unique(self):
        assert BNode() != BNode()

    def test_explicit_label_equality(self):
        assert BNode("x") == BNode("x")

    def test_n3_form(self):
        assert BNode("x").n3() == "_:x"

    def test_not_equal_to_iri(self):
        assert BNode("x") != IRI("x")

    def test_hash_differs_from_plain_string_usage_in_mixed_sets(self):
        mixed = {BNode("x"), IRI("x")}
        assert len(mixed) == 2


class TestLiteral:
    def test_plain_string_equality(self):
        assert Literal("cat") == Literal("cat")

    def test_language_tag_distinguishes(self):
        assert Literal("cat", language="en") != Literal("cat")

    def test_language_normalised_to_lowercase(self):
        assert Literal("cat", language="EN").language == "en"

    def test_datatype_inferred_for_int(self):
        lit = Literal(5)
        assert lit.datatype == XSD_INTEGER
        assert lit.value == 5

    def test_datatype_inferred_for_float(self):
        lit = Literal(2.5)
        assert lit.datatype == XSD_DOUBLE
        assert lit.value == 2.5

    def test_datatype_inferred_for_bool(self):
        assert Literal(True).datatype == XSD_BOOLEAN
        assert Literal(True).value is True
        assert Literal(False).lexical == "false"

    def test_datatype_inferred_for_decimal(self):
        lit = Literal(Decimal("1.50"))
        assert lit.datatype == XSD_DECIMAL
        assert lit.value == Decimal("1.50")

    def test_explicit_datatype_parsing(self):
        lit = Literal("42", datatype=XSD_INTEGER)
        assert lit.value == 42

    def test_invalid_lexical_for_datatype_falls_back_to_text(self):
        lit = Literal("notanumber", datatype=XSD_INTEGER)
        assert lit.value == "notanumber"

    def test_cannot_have_both_language_and_datatype(self):
        with pytest.raises(ValueError):
            Literal("x", language="en", datatype=XSD_STRING)

    def test_plain_and_xsd_string_literals_are_equal(self):
        assert Literal("x") == Literal("x", datatype=XSD_STRING)

    def test_numeric_equality_across_datatypes(self):
        assert Literal("1", datatype=XSD_INTEGER) == 1
        assert Literal("1.0", datatype=XSD_DOUBLE) == 1.0

    def test_equality_with_python_string(self):
        assert Literal("spam") == "spam"

    def test_boolean_value_comparison(self):
        assert Literal("true", datatype=XSD_BOOLEAN) == True  # noqa: E712

    def test_n3_plain(self):
        assert Literal("cat").n3() == '"cat"'

    def test_n3_language(self):
        assert Literal("cat", language="en").n3() == '"cat"@en'

    def test_n3_typed(self):
        assert Literal(3).n3() == '"3"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_n3_escaping(self):
        assert Literal('say "hi"\n').n3() == '"say \\"hi\\"\\n"'

    def test_is_numeric(self):
        assert Literal(3).is_numeric()
        assert not Literal("three").is_numeric()

    def test_ordering_numeric(self):
        assert Literal(2) < Literal(10)

    def test_ordering_lexical(self):
        assert Literal("apple") < Literal("banana")

    def test_langstring_normalised_datatype(self):
        assert Literal("x", language="en")._normalised_datatype() == RDF_LANGSTRING


class TestVariable:
    def test_strips_question_mark(self):
        assert Variable("?x") == Variable("x")

    def test_strips_dollar(self):
        assert Variable("$x") == Variable("x")

    def test_n3(self):
        assert Variable("x").n3() == "?x"

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("?9bad")

    def test_not_equal_to_iri(self):
        assert Variable("x") != IRI("x")
