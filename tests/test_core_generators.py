"""Tests for the nine explanation generators."""

import pytest

from repro.core.generators import (
    CaseBasedExplanationGenerator,
    ContextualExplanationGenerator,
    ContrastiveExplanationGenerator,
    CounterfactualExplanationGenerator,
    EverydayExplanationGenerator,
    ScientificExplanationGenerator,
    SimulationExplanationGenerator,
    StatisticalExplanationGenerator,
    TraceBasedExplanationGenerator,
)
from repro.core.questions import WhyQuestion


class TestContextualGenerator:
    @pytest.fixture(scope="class")
    def explanation(self, cq1_scenario):
        return ContextualExplanationGenerator().generate(cq1_scenario)

    def test_paper_expected_season_item(self, explanation):
        autumn = [i for i in explanation.items if i.subject == "Autumn"]
        assert autumn and autumn[0].characteristic_type == "SeasonCharacteristic"

    def test_only_external_characteristics_surface(self, explanation):
        assert all(i.characteristic_type in
                   {"SeasonCharacteristic", "LocationCharacteristic",
                    "BudgetCharacteristic", "TimeCharacteristic"}
                   for i in explanation.items)

    def test_no_ingredients_leak_into_contextual_explanation(self, explanation):
        assert "Cauliflower" not in explanation.subjects()

    def test_text_mentions_recipe_and_season(self, explanation):
        assert "Cauliflower Potato Curry" in explanation.text
        assert "season" in explanation.text.lower()

    def test_query_and_bindings_recorded(self, explanation):
        assert "feo:hasParameter" in explanation.query
        assert explanation.bindings

    def test_explanation_type_label(self, explanation):
        assert explanation.explanation_type == "contextual"


class TestContrastiveGenerator:
    @pytest.fixture(scope="class")
    def explanation(self, cq2_scenario):
        return ContrastiveExplanationGenerator().generate(cq2_scenario)

    def test_autumn_fact_present(self, explanation):
        facts = {i.subject: i.characteristic_type for i in explanation.items_with_role("fact")}
        assert facts.get("Autumn") == "SeasonCharacteristic"

    def test_broccoli_allergy_foil_present(self, explanation):
        foils = {i.subject: i.characteristic_type for i in explanation.items_with_role("foil")}
        assert foils.get("Broccoli") == "AllergicFoodCharacteristic"

    def test_facts_and_foils_disjoint(self, explanation):
        facts = {i.subject for i in explanation.items_with_role("fact")}
        foils = {i.subject for i in explanation.items_with_role("foil")}
        assert not facts & foils

    def test_no_knowledge_classes_in_types(self, explanation):
        assert all(i.characteristic_type not in {"IngredientCharacteristic", "NutrientCharacteristic"}
                   for i in explanation.items)

    def test_text_contrasts_both_recipes(self, explanation):
        assert "Butternut Squash Soup" in explanation.text
        assert "Broccoli Cheddar Soup" in explanation.text
        assert "allergic" in explanation.text


class TestCounterfactualGenerator:
    @pytest.fixture(scope="class")
    def explanation(self, cq3_scenario):
        return CounterfactualExplanationGenerator().generate(cq3_scenario)

    def test_sushi_forbidden(self, explanation):
        assert "Sushi" in {i.subject for i in explanation.items_with_role("forbidden")}

    def test_raw_fish_forbidden_with_inherited_dish(self, explanation):
        raw_fish = [i for i in explanation.items_with_role("forbidden") if i.subject == "RawFish"]
        assert raw_fish and raw_fish[0].value == "Sushi"

    def test_spinach_recommended(self, explanation):
        recommended = {i.subject for i in explanation.items_with_role("recommended")}
        assert "Spinach" in recommended

    def test_spinach_frittata_inherited(self, explanation):
        spinach = [i for i in explanation.items_with_role("recommended") if i.subject == "Spinach"]
        assert spinach[0].value in {"SpinachFrittata", "ChickpeaSpinachStew", "GrilledSalmonBowl",
                                    "BerrySpinachSmoothie", "RoastedBeetSalad", "TofuScramble",
                                    "VegetarianLentilCurry", "ChickenQuinoaSalad"}

    def test_text_shape_matches_paper_answer(self, explanation):
        assert "advised against eating" in explanation.text
        assert "encouraged to eat" in explanation.text


class TestKnowledgeDrivenGenerators:
    def test_scientific_explanation_surfaces_pregnancy_rationale(self, engine, cq3_scenario):
        explanation = ScientificExplanationGenerator(engine.catalog).generate(cq3_scenario)
        assert any("pregnancy" == item.subject for item in explanation.items)
        assert any("folate" in (item.detail or "").lower() for item in explanation.items)

    def test_scientific_explanation_for_recipe_question(self, engine, cq1_scenario):
        explanation = ScientificExplanationGenerator(engine.catalog).generate(cq1_scenario)
        assert explanation.explanation_type == "scientific"

    def test_statistical_explanation_reports_diet_share(self, engine, cq1_scenario):
        explanation = StatisticalExplanationGenerator(engine.catalog).generate(cq1_scenario)
        diet_items = [i for i in explanation.items if i.characteristic_type == "DietCharacteristic"]
        assert diet_items and "%" in diet_items[0].detail

    def test_statistical_explanation_counts_are_consistent(self, engine, cq1_scenario):
        explanation = StatisticalExplanationGenerator(engine.catalog).generate(cq1_scenario)
        assert explanation.metadata["kg_recipe_count"] == len(engine.catalog.recipes)

    def test_everyday_explanation_lists_pairings(self, engine, cq1_scenario):
        explanation = EverydayExplanationGenerator(engine.catalog).generate(cq1_scenario)
        assert 0 < len(explanation.items) <= 5
        assert all(item.role == "pairing" for item in explanation.items)

    def test_everyday_pairings_exclude_staples(self, engine):
        pairings = EverydayExplanationGenerator(engine.catalog).pairings_for("Sushi")
        assert "Salt" not in pairings and "Olive Oil" not in pairings

    def test_simulation_explanation_reports_nutrients(self, engine, cq1_scenario):
        explanation = SimulationExplanationGenerator(engine.catalog).generate(cq1_scenario)
        assert explanation.items
        assert all(item.characteristic_type == "NutrientCharacteristic" for item in explanation.items)

    def test_simulation_fractions_are_positive(self, engine):
        fractions = SimulationExplanationGenerator(engine.catalog).simulate("Broccoli Cheddar Soup")
        assert all(value >= 0 for value in fractions.values())
        assert fractions["calories"] > 0

    def test_case_based_explanation_finds_similar_user(self, engine, user, context):
        question = WhyQuestion(text="Why should I eat Spinach Frittata?", recipe="Spinach Frittata")
        scenario = engine.build_scenario(question, user, context)
        explanation = CaseBasedExplanationGenerator(engine.catalog).generate(scenario)
        assert any(item.role == "case" for item in explanation.items)

    def test_case_based_skips_dissimilar_population(self, engine, user, context, catalog):
        question = WhyQuestion(text="Why should I eat Spinach Frittata?", recipe="Spinach Frittata")
        scenario = engine.build_scenario(question, user, context)
        generator = CaseBasedExplanationGenerator(catalog, population=[])
        explanation = generator.generate(scenario)
        assert explanation.is_empty

    def test_trace_based_explanation_replays_pipeline(self, engine, user, context):
        recommendation = engine.recommender.recommend_one(user, context)
        question = WhyQuestion(text=f"Why should I eat {recommendation.recipe}?",
                               recipe=recommendation.recipe)
        scenario = engine.build_scenario(question, user, context, recommendation=recommendation)
        explanation = TraceBasedExplanationGenerator().generate(scenario)
        stages = [item.subject for item in explanation.items_with_role("trace_step")]
        assert stages == ["candidate-generation", "constraint-filter", "scoring", "selection"]

    def test_trace_based_without_recommendation_is_empty(self, cq1_scenario):
        explanation = TraceBasedExplanationGenerator().generate(cq1_scenario)
        assert explanation.is_empty
