"""Tests for SPARQL query evaluation over a graph."""

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal

EX = "http://example.org/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def family_graph():
    g = Graph()
    g.bind("ex", EX)
    ttl = """
    @prefix ex: <http://example.org/> .
    ex:alice a ex:Person ; ex:age 34 ; ex:knows ex:bob, ex:carol ; ex:name "Alice"@en .
    ex:bob a ex:Person ; ex:age 25 ; ex:knows ex:carol ; ex:city ex:Boston .
    ex:carol a ex:Person ; ex:age 41 ; ex:city ex:Troy .
    ex:dave a ex:Robot ; ex:age 2 .
    ex:Boston ex:inRegion ex:NewEngland .
    ex:NewEngland ex:inRegion ex:USEast .
    ex:Person ex:subClassOf ex:Agent .
    ex:Robot ex:subClassOf ex:Agent .
    """
    return g.parse(ttl)


class TestBasicSelect:
    def test_single_pattern(self, family_graph):
        rows = list(family_graph.query("SELECT ?p WHERE { ?p a ex:Person }"))
        assert len(rows) == 3

    def test_join_across_patterns(self, family_graph):
        result = family_graph.query(
            "SELECT ?x ?city WHERE { ?x ex:knows ?y . ?y ex:city ?city }")
        pairs = {(str(r["x"]), str(r["city"])) for r in result}
        assert (EX + "alice", EX + "Boston") in pairs
        assert (EX + "alice", EX + "Troy") in pairs
        assert (EX + "bob", EX + "Troy") in pairs

    def test_no_match_returns_empty(self, family_graph):
        assert len(family_graph.query("SELECT ?x WHERE { ?x a ex:Unicorn }")) == 0

    def test_distinct(self, family_graph):
        without = family_graph.query("SELECT ?y WHERE { ?x ex:knows ?y }")
        with_distinct = family_graph.query("SELECT DISTINCT ?y WHERE { ?x ex:knows ?y }")
        assert len(list(without)) == 3
        assert len(list(with_distinct)) == 2

    def test_select_star_collects_all_variables(self, family_graph):
        result = family_graph.query("SELECT * WHERE { ?x ex:knows ?y }")
        assert {"x", "y"} <= {str(v) for v in result.variables}

    def test_limit_offset(self, family_graph):
        all_rows = list(family_graph.query("SELECT ?p WHERE { ?p ex:age ?a } ORDER BY ?a"))
        limited = list(family_graph.query("SELECT ?p WHERE { ?p ex:age ?a } ORDER BY ?a LIMIT 2 OFFSET 1"))
        assert limited == all_rows[1:3]

    def test_order_by_numeric_ascending(self, family_graph):
        rows = list(family_graph.query("SELECT ?p ?a WHERE { ?p ex:age ?a } ORDER BY ?a"))
        ages = [int(r["a"].value) for r in rows]
        assert ages == sorted(ages)

    def test_order_by_descending(self, family_graph):
        rows = list(family_graph.query("SELECT ?p ?a WHERE { ?p ex:age ?a } ORDER BY DESC(?a)"))
        ages = [int(r["a"].value) for r in rows]
        assert ages == sorted(ages, reverse=True)

    def test_init_bindings_restrict_results(self, family_graph):
        result = family_graph.query(
            "SELECT ?y WHERE { ?x ex:knows ?y }", initBindings={"x": ex("bob")})
        assert [str(r["y"]) for r in result] == [EX + "carol"]

    def test_result_row_attribute_and_key_access(self, family_graph):
        row = next(iter(family_graph.query("SELECT ?p WHERE { ?p a ex:Robot }")))
        assert row["p"] == row.p == row[0]


class TestFilters:
    def test_numeric_comparison(self, family_graph):
        rows = family_graph.query("SELECT ?p WHERE { ?p ex:age ?a . FILTER (?a > 30) }")
        assert {str(r["p"]) for r in rows} == {EX + "alice", EX + "carol"}

    def test_boolean_or(self, family_graph):
        rows = family_graph.query(
            "SELECT ?p WHERE { ?p ex:age ?a . FILTER (?a < 10 || ?a > 40) }")
        assert {str(r["p"]) for r in rows} == {EX + "dave", EX + "carol"}

    def test_boolean_and_negation(self, family_graph):
        rows = family_graph.query(
            "SELECT ?p WHERE { ?p ex:age ?a . FILTER (?a > 20 && !(?a > 40)) }")
        assert {str(r["p"]) for r in rows} == {EX + "alice", EX + "bob"}

    def test_equality_on_iris(self, family_graph):
        rows = family_graph.query(
            "SELECT ?x WHERE { ?x ex:knows ?y . FILTER (?y = ex:carol) }")
        assert {str(r["x"]) for r in rows} == {EX + "alice", EX + "bob"}

    def test_in_operator(self, family_graph):
        rows = family_graph.query(
            "SELECT ?p WHERE { ?p ex:age ?a . FILTER (?a IN (25, 41)) }")
        assert {str(r["p"]) for r in rows} == {EX + "bob", EX + "carol"}

    def test_not_exists(self, family_graph):
        rows = family_graph.query(
            "SELECT ?p WHERE { ?p a ex:Person . FILTER NOT EXISTS { ?p ex:city ?c } }")
        assert [str(r["p"]) for r in rows] == [EX + "alice"]

    def test_exists(self, family_graph):
        rows = family_graph.query(
            "SELECT ?p WHERE { ?p a ex:Person . FILTER EXISTS { ?p ex:city ?c } }")
        assert {str(r["p"]) for r in rows} == {EX + "bob", EX + "carol"}

    def test_regex_function(self, family_graph):
        rows = family_graph.query(
            'SELECT ?p WHERE { ?p ex:name ?n . FILTER regex(?n, "^Ali") }')
        assert len(list(rows)) == 1

    def test_filter_scope_covers_whole_group(self, family_graph):
        # The filter references a variable bound by a later pattern.
        rows = family_graph.query(
            "SELECT ?p WHERE { ?p a ex:Person . FILTER (?a > 30) . ?p ex:age ?a }")
        assert {str(r["p"]) for r in rows} == {EX + "alice", EX + "carol"}

    def test_filter_error_drops_solution(self, family_graph):
        # Comparing an IRI with a number is an error: those solutions drop out.
        rows = family_graph.query(
            "SELECT ?p WHERE { ?p ex:city ?c . FILTER (?c > 5) }")
        assert len(list(rows)) == 0


class TestOptionalUnionMinus:
    def test_optional_keeps_unmatched_rows(self, family_graph):
        rows = list(family_graph.query(
            "SELECT ?p ?c WHERE { ?p a ex:Person . OPTIONAL { ?p ex:city ?c } }"))
        assert len(rows) == 3
        cities = {str(r["p"]): r.get("c") for r in rows}
        assert cities[EX + "alice"] is None
        assert str(cities[EX + "bob"]) == EX + "Boston"

    def test_union_combines_branches(self, family_graph):
        rows = family_graph.query(
            "SELECT ?x WHERE { { ?x a ex:Person } UNION { ?x a ex:Robot } }")
        assert len(list(rows)) == 4

    def test_minus_removes_matching(self, family_graph):
        rows = family_graph.query(
            "SELECT ?p WHERE { ?p a ex:Person . MINUS { ?p ex:city ex:Troy } }")
        assert {str(r["p"]) for r in rows} == {EX + "alice", EX + "bob"}

    def test_bind_adds_variable(self, family_graph):
        rows = list(family_graph.query(
            "SELECT ?p ?double WHERE { ?p ex:age ?a . BIND ((?a + ?a) AS ?double) }"))
        doubled = {str(r["p"]): float(r["double"].value) for r in rows}
        assert doubled[EX + "bob"] == 50

    def test_values_restricts(self, family_graph):
        rows = family_graph.query(
            "SELECT ?p ?a WHERE { VALUES ?p { ex:alice ex:dave } ?p ex:age ?a }")
        assert {str(r["p"]) for r in rows} == {EX + "alice", EX + "dave"}


class TestPropertyPaths:
    def test_one_or_more(self, family_graph):
        rows = family_graph.query(
            "SELECT ?r WHERE { ex:Boston ex:inRegion+ ?r }")
        assert {str(r["r"]) for r in rows} == {EX + "NewEngland", EX + "USEast"}

    def test_zero_or_more_includes_start(self, family_graph):
        rows = family_graph.query(
            "SELECT ?r WHERE { ex:Boston ex:inRegion* ?r }")
        assert EX + "Boston" in {str(r["r"]) for r in rows}

    def test_inverse_path(self, family_graph):
        rows = family_graph.query("SELECT ?x WHERE { ex:carol ^ex:knows ?x }")
        assert {str(r["x"]) for r in rows} == {EX + "alice", EX + "bob"}

    def test_sequence_path(self, family_graph):
        rows = family_graph.query("SELECT ?r WHERE { ex:bob ex:city/ex:inRegion ?r }")
        assert [str(r["r"]) for r in rows] == [EX + "NewEngland"]

    def test_alternative_path(self, family_graph):
        rows = family_graph.query(
            "SELECT ?o WHERE { ex:bob ex:city|ex:age ?o }")
        assert len(list(rows)) == 2

    def test_transitive_path_with_bound_object(self, family_graph):
        rows = family_graph.query(
            "SELECT ?x WHERE { ?x ex:inRegion+ ex:USEast }")
        assert {str(r["x"]) for r in rows} == {EX + "Boston", EX + "NewEngland"}


class TestAggregatesAndForms:
    def test_count(self, family_graph):
        row = next(iter(family_graph.query(
            "SELECT (COUNT(?p) AS ?n) WHERE { ?p a ex:Person }")))
        assert row["n"].value == 3

    def test_count_distinct(self, family_graph):
        row = next(iter(family_graph.query(
            "SELECT (COUNT(DISTINCT ?y) AS ?n) WHERE { ?x ex:knows ?y }")))
        assert row["n"].value == 2

    def test_group_by_with_count(self, family_graph):
        rows = list(family_graph.query(
            "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x ex:knows ?y } GROUP BY ?x"))
        counts = {str(r["x"]): r["n"].value for r in rows}
        assert counts[EX + "alice"] == 2 and counts[EX + "bob"] == 1

    def test_avg_min_max_sum(self, family_graph):
        row = next(iter(family_graph.query(
            "SELECT (AVG(?a) AS ?avg) (MIN(?a) AS ?min) (MAX(?a) AS ?max) (SUM(?a) AS ?sum) "
            "WHERE { ?p a ex:Person . ?p ex:age ?a }")))
        assert row["min"].value == 25 and row["max"].value == 41
        assert row["sum"].value == 100
        assert abs(float(row["avg"].value) - 100 / 3) < 1e-6

    def test_having_filters_groups(self, family_graph):
        rows = list(family_graph.query(
            "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x ex:knows ?y } GROUP BY ?x "
            "HAVING (COUNT(?y) > 1)"))
        assert [str(r["x"]) for r in rows] == [EX + "alice"]

    def test_ask_true_and_false(self, family_graph):
        assert family_graph.query("ASK { ex:alice ex:knows ex:bob }").askAnswer is True
        assert family_graph.query("ASK { ex:bob ex:knows ex:alice }").askAnswer is False

    def test_construct_builds_graph(self, family_graph):
        result = family_graph.query(
            "CONSTRUCT { ?y ex:knownBy ?x } WHERE { ?x ex:knows ?y }")
        assert (ex("bob"), ex("knownBy"), ex("alice")) in result.graph
        assert len(result.graph) == 3

    def test_result_table_rendering(self, family_graph):
        result = family_graph.query("SELECT ?p WHERE { ?p a ex:Person } ORDER BY ?p")
        table = result.to_table(family_graph.namespace_manager)
        assert "?p" in table and "ex:alice" in table

    def test_result_bindings_and_values_helpers(self, family_graph):
        result = family_graph.query("SELECT ?p ?a WHERE { ?p ex:age ?a }")
        assert len(result.bindings) == 4
        assert len(result.values("a")) == 4


class TestEvaluatorHotPathRegressions:
    """Pin the behaviour of the MINUS / ORDER BY / DISTINCT-aggregate rework."""

    def test_minus_inner_pattern_evaluated_once(self, family_graph, monkeypatch):
        from repro.rdf.terms import Variable
        from repro.sparql.algebra import BGP, GroupPattern, MinusPattern, TriplePattern
        from repro.sparql.evaluator import QueryEvaluator

        inner = GroupPattern([BGP([TriplePattern(Variable("p"), ex("city"), ex("Troy"))])])
        minus = MinusPattern(inner)
        evaluator = QueryEvaluator(family_graph)
        calls = []
        original = QueryEvaluator.evaluate_pattern

        def counting(self, pattern, solutions):
            if pattern is inner:
                calls.append(solutions)
            return original(self, pattern, solutions)

        monkeypatch.setattr(QueryEvaluator, "evaluate_pattern", counting)
        outer = [{Variable("p"): ex(name)} for name in ("alice", "bob", "carol", "dave")]
        kept = evaluator._evaluate_minus(minus, outer)
        # One inner evaluation for four outer solutions (was once per solution).
        assert len(calls) == 1
        assert {str(s[Variable("p")]) for s in kept} == {
            EX + "alice", EX + "bob", EX + "dave",
        }

    def test_minus_with_disjoint_domains_keeps_everything(self, family_graph):
        rows = family_graph.query(
            "SELECT ?p WHERE { ?p a ex:Person . MINUS { ?z ex:city ex:Nowhere } }")
        assert len(list(rows)) == 3

    def test_minus_multiple_shared_variables(self, family_graph):
        rows = family_graph.query(
            "SELECT ?x ?y WHERE { ?x ex:knows ?y . MINUS { ?x ex:knows ?y . ?x ex:age 34 } }")
        assert {(str(r["x"]), str(r["y"])) for r in rows} == {(EX + "bob", EX + "carol")}

    def test_order_by_mixed_directions_is_stable(self, family_graph):
        rows = list(family_graph.query(
            "SELECT ?x ?y WHERE { ?x ex:knows ?y } ORDER BY ?x DESC(?y)"))
        keys = [(str(r["x"]), str(r["y"])) for r in rows]
        assert keys == sorted(keys, key=lambda pair: (pair[0], tuple(-ord(ch) for ch in pair[1])))

    def test_order_by_unbound_sorts_first(self, family_graph):
        rows = list(family_graph.query(
            "SELECT ?p ?c WHERE { ?p a ex:Person . OPTIONAL { ?p ex:city ?c } } ORDER BY ?c"))
        assert rows[0]["c"] is None

    def test_distinct_aggregate_with_duplicate_literals(self, family_graph):
        row = next(iter(family_graph.query(
            "SELECT (COUNT(DISTINCT ?a) AS ?n) WHERE { ?p ex:age ?a }")))
        assert row["n"].value == 4

    def test_distinct_aggregate_unhashable_fallback(self):
        from repro.sparql.algebra import AggregateExpr, VariableExpr
        from repro.rdf.terms import Variable
        from repro.sparql.evaluator import QueryEvaluator

        class Unhashable:
            __hash__ = None

            def __init__(self, tag):
                self.tag = tag

            def __eq__(self, other):
                return isinstance(other, Unhashable) and self.tag == other.tag

        value = Unhashable("x")
        evaluator = QueryEvaluator(Graph())
        var = Variable("v")
        aggregate = AggregateExpr("COUNT", VariableExpr(var), distinct=True)
        members = [{var: value}, {var: Unhashable("x")}, {var: Unhashable("y")}]
        assert evaluator._evaluate_aggregate(aggregate, members).value == 2
