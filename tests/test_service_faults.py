"""Chaos battery for the fault-tolerance layer.

Exercises the serving stack's failure model with the deterministic fault
injector (:mod:`repro.testing.faults`):

* **deadlines** — a caller's wait is bounded by its timeout, expiry is a
  typed :class:`DeadlineExceededError`, queued-but-expired work is
  skipped before execution, and every miss is counted;
* **supervision** — a crashed worker's request is salvaged (no caller
  hangs), the watchdog restarts dead workers and retires-and-replaces
  wedged ones, and ``workers_live`` recovers;
* **circuit breaker** — consecutive failures open it, callers then fail
  fast with :class:`ShardUnavailableError` + ``retry_after``, a
  half-open probe closes it again (or re-opens it on failure);
* **graceful drain** — ``stop(timeout=...)`` cancels overdue queued work
  with :class:`ServiceDrainingError`, is idempotent, and a submit racing
  a stop gets a typed error instead of hanging forever;
* **retry** — idempotent asks retry transparently on
  :class:`TransientServingError`; updates never do;
* **HTTP taxonomy** — 503s carry ``Retry-After`` + a machine-readable
  ``reason``, deadline misses are 504s, and a draining server rejects
  new work with 503 while in-flight requests finish;
* **crash-recovery stress** — seeded random worker kills mid-burst lose
  no request, answer none wrongly, and leave the counters reconciled.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import (
    DeadlineExceededError,
    ServiceDrainingError,
    ShardUnavailableError,
    TransientServingError,
    UnavailableError,
)
from repro.service import (
    CircuitBreaker,
    ExplanationServer,
    ExplanationService,
    ServiceShard,
    ServiceStats,
    ShardedExplanationService,
)
from repro.testing import faults
from repro.testing.faults import Fault, FaultInjector, InjectedFault, injected

QUESTION = "Why should I eat Cauliflower Potato Curry?"


class _StubService:
    """Just enough of :class:`ExplanationService` for shard-level tests."""

    def stats(self):
        return ServiceStats()

    def latency_snapshot(self):
        return []


def _shard(**kwargs) -> ServiceShard:
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("queue_size", 8)
    shard = ServiceShard(0, _StubService(), **kwargs)
    shard.start()
    return shard


def _occupy(shard):
    """Park the shard's (single) worker on an event; returns (release, future)."""
    release = threading.Event()
    running = threading.Event()

    def block():
        running.set()
        assert release.wait(timeout=30)
        return "occupied"

    future = shard.submit(block)
    assert running.wait(timeout=30)
    return release, future


# ---------------------------------------------------------------------------
# Fault injector semantics
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_disabled_by_default(self):
        assert faults.ACTIVE is None

    def test_spec_grammar(self):
        injector = FaultInjector.from_spec(
            "worker=crash@3,9; query=error@every=4; "
            "materialize=latency@p=0.5:25", seed=7)
        by_site = {fault.site: fault for fault in injector.faults}
        assert by_site["worker"].action == "crash"
        assert by_site["worker"].at == (3, 9)
        assert by_site["query"].every == 4
        assert by_site["materialize"].prob == 0.5
        assert by_site["materialize"].delay_ms == 25.0
        for bad in ("worker", "worker=crash", "worker=boom@1", "w=crash@x"):
            with pytest.raises(ValueError):
                FaultInjector.from_spec(bad)

    def test_index_trigger_fires_exactly_there(self):
        injector = FaultInjector([Fault(site="s", action="error", at=(1,))])
        injector.fire("s")  # hit 0: clean
        with pytest.raises(InjectedFault):
            injector.fire("s")  # hit 1
        injector.fire("s")  # hit 2: clean again
        assert injector.fired == [("s", "error", 1)]
        assert injector.count("s") == 3

    def test_probabilistic_trigger_is_seed_deterministic(self):
        def run(seed):
            injector = FaultInjector(
                [Fault(site="s", action="error", prob=0.3)], seed=seed)
            hits = []
            for i in range(50):
                try:
                    injector.fire("s")
                except InjectedFault:
                    hits.append(i)
            return hits

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_injected_fault_is_a_typed_transient(self):
        assert issubclass(InjectedFault, TransientServingError)
        assert issubclass(InjectedFault, UnavailableError)

    def test_context_manager_scopes_activation(self):
        injector = FaultInjector()
        with injected(injector) as active:
            assert faults.ACTIVE is active is injector
        assert faults.ACTIVE is None


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------
class TestDeadlines:
    def test_caller_wait_is_bounded_and_typed(self):
        shard = _shard()
        try:
            release, future = _occupy(shard)
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError) as excinfo:
                shard.call(lambda: "late", timeout=0.1)
            assert time.monotonic() - started < 5.0
            assert excinfo.value.timeout == 0.1
            assert excinfo.value.shard == 0
            assert excinfo.value.to_payload()["error"] == "deadline_exceeded"
            assert shard.timed_out == 1
            release.set()
            assert future.result(timeout=30) == "occupied"
        finally:
            shard.stop(timeout=5.0)

    def test_expired_queued_work_is_skipped_not_executed(self):
        shard = _shard()
        try:
            release, blocked = _occupy(shard)
            executed = threading.Event()
            stale = shard.submit(executed.set, timeout=0.05)
            time.sleep(0.1)  # let the deadline lapse while still queued
            release.set()
            with pytest.raises(DeadlineExceededError):
                stale.result(timeout=30)
            assert not executed.is_set()
            assert shard.expired == 1
            assert blocked.result(timeout=30) == "occupied"
        finally:
            shard.stop(timeout=5.0)

    def test_timeout_counters_surface_in_stats(self):
        shard = _shard()
        try:
            release, _ = _occupy(shard)
            with pytest.raises(DeadlineExceededError):
                shard.call(lambda: None, timeout=0.05)
            release.set()
            stats = shard.stats()
            assert stats.requests_timed_out == 1
            assert "requests timed out:     1" in stats.to_text()
        finally:
            shard.stop(timeout=5.0)


# ---------------------------------------------------------------------------
# Supervision: dead and wedged workers
# ---------------------------------------------------------------------------
class TestSupervision:
    def test_crashed_worker_is_restarted_and_request_salvaged(self):
        shard = _shard(workers=1)
        try:
            with injected(FaultInjector(
                    [Fault(site="worker", action="crash", at=(0,))])):
                future = shard.submit(lambda: "survived")
                # The worker dies holding the request; the item is salvaged
                # back onto the queue, so nothing is lost.
                deadline = time.monotonic() + 5.0
                while shard.workers_live() > 0 and time.monotonic() < deadline:
                    time.sleep(0.005)
                assert shard.workers_live() == 0
                assert shard.supervise() == 1
                assert shard.workers_live() == 1
                assert shard.workers_restarted == 1
                assert future.result(timeout=30) == "survived"
        finally:
            shard.stop(timeout=5.0)

    def test_wedged_worker_is_retired_and_replaced(self):
        shard = _shard(workers=1, wedge_timeout=0.05)
        try:
            release, wedged = _occupy(shard)
            time.sleep(0.1)  # past the wedge threshold
            assert shard.supervise() == 1
            assert shard.workers_restarted == 1
            # The replacement serves new work while the wedged thread is
            # still stuck (it cannot be killed, only abandoned).
            assert shard.call(lambda: "fresh", timeout=5.0) == "fresh"
            release.set()
            assert wedged.result(timeout=30) == "occupied"
        finally:
            shard.stop(timeout=5.0)

    def test_fleet_watchdog_restores_capacity(self, engine):
        sharded = ShardedExplanationService(
            num_shards=1, workers_per_shard=2, engine=engine,
            watchdog_interval=0.02, breaker_failure_threshold=100)
        try:
            with injected(FaultInjector(
                    [Fault(site="worker", action="crash", at=(0,))])):
                assert sharded.ask(QUESTION, persona="paper").explanation.text
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    stats = sharded.stats()
                    if stats.workers_live == 2 and stats.workers_restarted == 1:
                        break
                    time.sleep(0.01)
                stats = sharded.stats()
                assert stats.workers_live == 2
                assert stats.workers_restarted == 1
        finally:
            sharded.stop(timeout=5.0)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_unit_state_machine(self):
        breaker = CircuitBreaker(0, failure_threshold=3, cooldown=0.01,
                                 max_cooldown=0.02, seed=1)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(ShardUnavailableError) as excinfo:
            breaker.acquire()
        assert excinfo.value.retry_after > 0
        assert excinfo.value.to_payload()["reason"] == "breaker_open"
        time.sleep(0.03)
        assert breaker.state == "half_open"
        breaker.acquire()  # the single probe is admitted
        with pytest.raises(ShardUnavailableError):
            breaker.acquire()  # a second concurrent probe is not
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.acquire()

    def test_failed_probe_reopens_with_longer_cooldown(self):
        breaker = CircuitBreaker(0, failure_threshold=1, cooldown=0.01,
                                 max_cooldown=10.0, seed=1)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.02)
        breaker.acquire()  # probe
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert breaker.opens == 2

    def test_consecutive_shard_failures_fail_fast_then_recover(self):
        breaker = CircuitBreaker(0, failure_threshold=3, cooldown=0.05,
                                 max_cooldown=0.05, seed=1)
        shard = _shard(breaker=breaker)
        try:
            def boom():
                raise RuntimeError("internal bug")

            for _ in range(3):
                with pytest.raises(RuntimeError):
                    shard.call(boom)
            with pytest.raises(ShardUnavailableError) as excinfo:
                shard.call(lambda: "nope")
            assert excinfo.value.retry_after is not None
            assert shard.breaker.rejected_fast == 1
            assert shard.stats().breaker["state"] == "open"
            time.sleep(0.06)  # cooldown (jitter keeps it <= 0.05)
            assert shard.call(lambda: "probe ok") == "probe ok"
            assert shard.breaker.state == "closed"
            assert shard.stats().breaker["opens"] == 1
        finally:
            shard.stop(timeout=5.0)

    def test_request_errors_do_not_trip_the_breaker(self, engine):
        sharded = ShardedExplanationService(
            num_shards=1, workers_per_shard=1, engine=engine,
            breaker_failure_threshold=2, watchdog_interval=None)
        try:
            from repro.errors import RequestError

            for _ in range(4):
                with pytest.raises(RequestError):
                    sharded.ask("gibberish that parses to nothing")
            # Client errors are the client's fault; the shard stays open
            # for business.
            assert sharded.shards[0].breaker.state == "closed"
            assert sharded.ask(QUESTION, persona="paper").explanation.text
        finally:
            sharded.stop(timeout=5.0)


# ---------------------------------------------------------------------------
# Graceful drain and the submit/stop race
# ---------------------------------------------------------------------------
class TestGracefulDrain:
    def test_bounded_stop_cancels_overdue_queued_work(self):
        shard = _shard(queue_size=8)
        release, blocked = _occupy(shard)
        queued = [shard.submit(lambda i=i: i) for i in range(3)]
        stopper = threading.Thread(target=lambda: shard.stop(timeout=0.1),
                                   daemon=True)
        stopper.start()
        for future in queued:
            with pytest.raises(ServiceDrainingError) as excinfo:
                future.result(timeout=30)
            assert excinfo.value.to_payload()["reason"] == "draining"
        assert shard.cancelled == 3
        release.set()
        assert blocked.result(timeout=30) == "occupied"
        stopper.join(timeout=30)
        assert not stopper.is_alive()

    def test_unbounded_stop_drains_everything(self):
        shard = _shard(queue_size=8)
        results = [shard.submit(lambda i=i: i * 2) for i in range(5)]
        shard.stop()
        assert [f.result(timeout=1) for f in results] == [0, 2, 4, 6, 8]
        assert shard.cancelled == 0

    def test_stop_is_idempotent_and_concurrent_safe(self):
        shard = _shard()
        shard.stop(timeout=1.0)
        shard.stop(timeout=1.0)  # second stop: immediate no-op
        errors = []

        def stopper():
            try:
                shard.stop(timeout=1.0)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=stopper) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors

    def test_submit_racing_stop_gets_typed_error_never_hangs(self):
        shard = _shard(workers=2, queue_size=16)
        futures = []
        outcomes = []
        stop_barrier = threading.Barrier(5)

        def hammer():
            stop_barrier.wait()
            for _ in range(200):
                try:
                    futures.append(shard.submit(lambda: time.sleep(0.0005)))
                except (ServiceDrainingError, UnavailableError):
                    outcomes.append("rejected")
                    return

        def stopper():
            stop_barrier.wait()
            time.sleep(0.01)
            shard.stop(timeout=0.5)

        threads = [threading.Thread(target=hammer, daemon=True) for _ in range(4)]
        threads.append(threading.Thread(target=stopper, daemon=True))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        # Every accepted future resolves — served, cancelled, or expired —
        # within a bound.  Nothing waits forever on a stopped shard.
        for future in futures:
            try:
                future.result(timeout=10)
            except (ServiceDrainingError, DeadlineExceededError):
                pass

    def test_submit_after_stop_is_rejected(self):
        shard = _shard()
        shard.stop()
        with pytest.raises(ServiceDrainingError):
            shard.submit(lambda: None)
        with pytest.raises(ServiceDrainingError):
            shard.call(lambda: None)

    def test_fleet_stop_is_idempotent(self, engine):
        sharded = ShardedExplanationService(
            num_shards=2, workers_per_shard=1, engine=engine,
            watchdog_interval=None)
        assert sharded.ask(QUESTION, persona="paper").explanation.text
        sharded.stop(timeout=5.0)
        assert sharded.draining
        sharded.stop(timeout=5.0)
        with pytest.raises(ServiceDrainingError):
            sharded.ask(QUESTION, persona="paper")


# ---------------------------------------------------------------------------
# Internal retry: idempotent asks only
# ---------------------------------------------------------------------------
class TestRetry:
    def test_transient_ask_failures_are_retried(self, engine):
        sharded = ShardedExplanationService(
            num_shards=1, workers_per_shard=1, engine=engine,
            retry_attempts=2, retry_backoff=0.005, watchdog_interval=None)
        try:
            calls = []
            real_explain = sharded.shards[0].service.explain

            def flaky_explain(request):
                calls.append(request)
                if len(calls) == 1:
                    raise TransientServingError("simulated hiccup")
                return real_explain(request)

            sharded.shards[0].service.explain = flaky_explain
            response = sharded.ask(QUESTION, persona="paper")
            assert response.explanation.text
            assert len(calls) == 2
        finally:
            sharded.stop(timeout=5.0)

    def test_exhausted_retries_surface_the_transient(self, engine):
        sharded = ShardedExplanationService(
            num_shards=1, workers_per_shard=1, engine=engine,
            retry_attempts=1, retry_backoff=0.005, watchdog_interval=None,
            breaker_failure_threshold=100)
        try:
            calls = []

            def always_down(request):
                calls.append(request)
                raise TransientServingError("still down")

            sharded.shards[0].service.explain = always_down
            with pytest.raises(TransientServingError):
                sharded.ask(QUESTION, persona="paper")
            assert len(calls) == 2  # the original attempt + one retry
        finally:
            sharded.stop(timeout=5.0)

    def test_updates_are_never_retried(self, engine):
        sharded = ShardedExplanationService(
            num_shards=1, workers_per_shard=1, engine=engine,
            retry_attempts=3, watchdog_interval=None)
        try:
            calls = []

            def failing_update(*args, **kwargs):
                calls.append(args)
                raise TransientServingError("mid-update fault")

            sharded.shards[0].service.update_scenario = failing_update
            with pytest.raises(TransientServingError):
                sharded.update_scenario(QUESTION, persona="paper",
                                        likes=("Sushi",))
            assert len(calls) == 1  # not idempotent: exactly one attempt
        finally:
            sharded.stop(timeout=5.0)

    def test_injected_query_fault_recovers_transparently(self, engine):
        sharded = ShardedExplanationService(
            num_shards=1, workers_per_shard=1, engine=engine,
            retry_attempts=2, retry_backoff=0.005, watchdog_interval=None)
        try:
            with injected(FaultInjector(
                    [Fault(site="query", action="error", at=(0,))])) as injector:
                response = sharded.ask(QUESTION, persona="paper")
                assert response.explanation.text
                assert injector.fired == [("query", "error", 0)]
        finally:
            sharded.stop(timeout=5.0)


# ---------------------------------------------------------------------------
# HTTP transport taxonomy
# ---------------------------------------------------------------------------
def _request(url, path, payload=None, timeout=60):
    """(status, decoded JSON body, headers); errors are not raised."""
    if payload is None:
        request = urllib.request.Request(url + path)
    else:
        request = urllib.request.Request(
            url + path, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


class TestHTTPFaultTaxonomy:
    @pytest.fixture()
    def server(self, engine):
        sharded = ShardedExplanationService(
            num_shards=1, workers_per_shard=1, queue_size=1, engine=engine,
            watchdog_interval=None)
        server = ExplanationServer(sharded, port=0).start()
        yield server
        server.stop(timeout=5.0)

    def test_503_carries_retry_after_and_reason(self, server):
        sharded = server.service
        sharded.ask(QUESTION, persona="paper")  # warm first
        release, blocked = _occupy(sharded.shards[0])
        filler = sharded.shards[0].submit(lambda: None)
        status, body, headers = _request(
            server.url, "/ask", {"question": QUESTION, "persona": "paper"})
        assert status == 503
        assert body["reason"] == "backpressure"
        assert body["retryable"] is True
        assert body["retry_after"] is not None
        assert int(headers["Retry-After"]) >= 1
        release.set()
        blocked.result(timeout=30)
        filler.result(timeout=30)

    def test_deadline_miss_is_a_504(self, server):
        sharded = server.service
        sharded.ask(QUESTION, persona="paper")  # warm first
        release, blocked = _occupy(sharded.shards[0])
        status, body, _ = _request(
            server.url, "/ask",
            {"question": QUESTION, "persona": "paper", "timeout": 0.1})
        assert status == 504
        assert body["error"] == "deadline_exceeded"
        assert body["retryable"] is True
        release.set()
        blocked.result(timeout=30)
        status, body, _ = _request(
            server.url, "/ask", {"question": QUESTION, "persona": "paper"})
        assert status == 200 and body["text"]

    def test_bad_timeout_is_a_400(self, server):
        for bad in ("soon", -1, 0):
            status, body, _ = _request(
                server.url, "/ask",
                {"question": QUESTION, "persona": "paper", "timeout": bad})
            assert status == 400
            assert "timeout" in body["message"]

    def test_draining_server_rejects_new_work_with_503(self, engine):
        sharded = ShardedExplanationService(
            num_shards=1, workers_per_shard=1, queue_size=4, engine=engine,
            watchdog_interval=None)
        server = ExplanationServer(sharded, port=0).start()
        sharded.ask(QUESTION, persona="paper")  # warm first
        release, blocked = _occupy(sharded.shards[0])
        stopper = threading.Thread(target=lambda: server.stop(timeout=10.0),
                                   daemon=True)
        stopper.start()
        deadline = time.monotonic() + 5.0
        while not sharded.draining and time.monotonic() < deadline:
            time.sleep(0.005)
        status, body, headers = _request(
            server.url, "/ask", {"question": QUESTION, "persona": "paper"})
        assert status == 503
        assert body["reason"] == "draining"
        assert "Retry-After" in headers
        release.set()
        blocked.result(timeout=30)
        stopper.join(timeout=30)
        assert not stopper.is_alive()


# ---------------------------------------------------------------------------
# Worker-crash recovery stress (satellite)
# ---------------------------------------------------------------------------
class TestCrashRecoveryStress:
    def test_random_worker_kills_lose_nothing(self, engine):
        """Seeded random kills mid-burst: the watchdog restores capacity,
        no request is lost or answered wrongly, and the counters reconcile."""
        personas = ("paper", "vegan_athlete", "diabetic_user")
        baseline = {}
        oracle = ExplanationService(engine=engine)
        for persona_key in personas:
            baseline[persona_key] = oracle.ask(
                QUESTION, persona=persona_key).explanation.text

        sharded = ShardedExplanationService(
            num_shards=2, workers_per_shard=2, queue_size=32, engine=engine,
            watchdog_interval=0.02, retry_attempts=3, retry_backoff=0.005,
            breaker_failure_threshold=1000)
        clients, per_client = 6, 10
        try:
            with injected(FaultInjector(
                    [Fault(site="worker", action="crash", prob=0.08)],
                    seed=42)) as injector:
                answers = []
                failures = []

                def client(worker_id):
                    for i in range(per_client):
                        persona_key = personas[(worker_id + i) % len(personas)]
                        try:
                            response = sharded.ask(QUESTION, persona=persona_key)
                            answers.append((persona_key,
                                            response.explanation.text))
                        except Exception as exc:  # noqa: BLE001 - asserted empty
                            failures.append(exc)

                threads = [threading.Thread(target=client, args=(n,), daemon=True)
                           for n in range(clients)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                    assert not thread.is_alive()

                assert not failures
                assert len(answers) == clients * per_client
                # Differential correctness: every answer matches the
                # fault-free oracle for its persona.
                for persona_key, text in answers:
                    assert text == baseline[persona_key]

                crashes = len(injector.fired_at("worker"))
                # The schedule must actually have fired, or this test is
                # vacuous.
                assert crashes > 0

                # The watchdog restores full capacity and accounts for
                # every kill.
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    stats = sharded.stats()
                    if (stats.workers_live == 4
                            and stats.workers_restarted == crashes):
                        break
                    time.sleep(0.02)
                stats = sharded.stats()
                assert stats.workers_live == 4
                assert stats.workers_restarted == crashes
                # Counters reconcile: every ask executed exactly once
                # (kills fire before execution, so salvage + retry never
                # double-serve).
                assert stats.requests_served == clients * per_client
        finally:
            sharded.stop(timeout=10.0)
