"""Tests for the ExplanationEngine facade and the competency-question harness."""

import pytest

from repro.core import (
    CompetencySuite,
    EXTENDED_COMPETENCY_QUESTIONS,
    ExpectedBinding,
    Explanation,
    PAPER_COMPETENCY_QUESTIONS,
)
from repro.core.questions import WhyQuestion


class TestEngineFacade:
    def test_supported_types_cover_table1(self, engine):
        assert set(engine.supported_explanation_types) == {
            "case_based", "contextual", "contrastive", "counterfactual", "everyday",
            "scientific", "simulation_based", "statistical", "trace_based",
        }

    def test_unknown_explanation_type_raises(self, engine):
        with pytest.raises(KeyError):
            engine.generator("magic")

    def test_ask_routes_why_question_to_contextual(self, engine, user, context):
        explanation = engine.ask("Why should I eat Cauliflower Potato Curry?", user, context)
        assert explanation.explanation_type == "contextual"

    def test_ask_routes_contrastive_question(self, engine, user, context):
        explanation = engine.ask(
            "Why should I eat Butternut Squash Soup over Broccoli Cheddar Soup?", user, context)
        assert explanation.explanation_type == "contrastive"

    def test_ask_routes_whatif_question_to_counterfactual(self, engine, user, context):
        explanation = engine.ask("What if I was pregnant?", user, context)
        assert explanation.explanation_type == "counterfactual"

    def test_explicit_type_override(self, engine, user, context):
        explanation = engine.ask("Why should I eat Sushi?", user, context,
                                 explanation_type="everyday")
        assert explanation.explanation_type == "everyday"

    def test_explain_with_prebuilt_scenario_is_consistent(self, engine, user, context, cq1_scenario):
        explanation = engine.explain(cq1_scenario.question, user, context,
                                     explanation_type="contextual", scenario=cq1_scenario)
        assert "Autumn" in explanation.subjects()

    def test_explain_all_types_returns_all_nine(self, engine, user, context):
        question = WhyQuestion(text="Why should I eat Lentil Soup?", recipe="Lentil Soup")
        results = engine.explain_all_types(question, user, context)
        assert set(results) == set(engine.supported_explanation_types)
        assert all(isinstance(explanation, Explanation) for explanation in results.values())

    def test_recommend_and_explain_pairs(self, engine, user, context):
        pairs = engine.recommend_and_explain(user, context, top_k=2)
        assert len(pairs) == 2
        for recommendation, explanation in pairs:
            assert recommendation.recipe in explanation.question.text

    def test_explanation_summary_shape(self, engine, user, context):
        explanation = engine.contextual("Butternut Squash Soup", user, context)
        summary = explanation.summary()
        assert summary["type"] == "contextual"
        assert isinstance(summary["items"], list)


class TestCompetencySuite:
    @pytest.fixture(scope="class")
    def results(self, engine, user, context):
        return CompetencySuite(engine, user, context).run_all()

    def test_paper_competency_questions_all_pass(self, results):
        by_id = {result.question.identifier: result for result in results}
        for identifier in ("CQ1", "CQ2", "CQ3"):
            assert by_id[identifier].passed, by_id[identifier].summary()

    def test_extended_competency_questions_all_pass(self, results):
        extended = [r for r in results
                    if r.question.identifier not in ("CQ1", "CQ2", "CQ3")]
        assert extended
        for result in extended:
            assert result.passed, result.summary()

    def test_every_table1_type_is_exercised(self, results):
        exercised = {result.question.explanation_type for result in results}
        assert exercised == {
            "contextual", "contrastive", "counterfactual", "scientific", "statistical",
            "everyday", "simulation_based", "case_based", "trace_based",
        }

    def test_result_summary_structure(self, results):
        summary = results[0].summary()
        assert {"id", "explanation_type", "question", "passed", "items", "missing"} <= set(summary)

    def test_expected_binding_matching_logic(self):
        binding = ExpectedBinding("Autumn", role="context", characteristic_type="SeasonCharacteristic")
        from repro.core.explanation import Explanation as Expl, ExplanationItem
        explanation = Expl(explanation_type="contextual",
                           question=WhyQuestion(text="q", recipe="r"),
                           items=[ExplanationItem(subject="Autumn", role="context",
                                                  characteristic_type="SeasonCharacteristic")])
        assert binding.satisfied_by(explanation)
        assert not ExpectedBinding("Winter").satisfied_by(explanation)
        assert not ExpectedBinding("Autumn", role="fact").satisfied_by(explanation)

    def test_paper_suite_definition_matches_paper(self):
        assert len(PAPER_COMPETENCY_QUESTIONS) == 3
        assert {q.explanation_type for q in PAPER_COMPETENCY_QUESTIONS} == {
            "contextual", "contrastive", "counterfactual"}
        assert len(EXTENDED_COMPETENCY_QUESTIONS) == 6
