"""Parallel closure and bulk materialisation: differential + fault tests.

``Reasoner.run_parallel`` and ``bulk_materialise`` must be extensionally
indistinguishable from the single-core oracle ``run()`` — same triples,
same fingerprint, same rule-firing counts, same iteration count — under
pooled rounds, under serial fallback, and under injected worker faults.

The pool size scales with ``REPRO_TEST_WORKERS`` (the CI matrix runs 2
and 8); locally it defaults to 2 so the suite stays fast on small
machines.
"""

from __future__ import annotations

import os

import pytest

from repro.core.questions import ContrastiveQuestion, WhatIfConditionQuestion, WhyQuestion
from repro.core.scenario import ScenarioBuilder
from repro.foodkg.catalog import build_core_catalog
from repro.foodkg.generator import generate_catalog
from repro.foodkg.loader import load_catalog
from repro.foodkg.schema import FoodCatalog
from repro.ontology.feo import build_combined_ontology
from repro.owl import (
    MaterializationCache,
    Reasoner,
    bulk_materialise,
    parallel_stats,
    reset_parallel_stats,
)
from repro.owl.parallel import _fork_available
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.testing.faults import Fault, FaultInjector, injected
from repro.users.personas import paper_context, paper_user

WORKERS = max(2, int(os.environ.get("REPRO_TEST_WORKERS", "2")))

pytestmark = pytest.mark.skipif(
    not _fork_available(), reason="parallel closure needs the fork start method")


def build_random_kg(seed: int, ingredients: int = 8, recipes: int = 5) -> Graph:
    catalog = generate_catalog(
        base=FoodCatalog(), extra_ingredients=ingredients, extra_recipes=recipes,
        seed=seed,
    )
    graph = build_combined_ontology()
    load_catalog(catalog, graph)
    return graph


def assert_identical_closure(parallel: Graph, serial: Graph,
                             preasoner: Reasoner, sreasoner: Reasoner) -> None:
    """Exact equality: triples, fingerprint, firings, iterations."""
    missing = serial._triples - parallel._triples
    extra = parallel._triples - serial._triples
    assert not missing and not extra, (
        f"closures differ: {len(missing)} missing, {len(extra)} extra")
    assert parallel.fingerprint() == serial.fingerprint()
    assert preasoner.report.rule_firings == sreasoner.report.rule_firings
    assert preasoner.report.iterations == sreasoner.report.iterations
    assert preasoner.report.inferred_triples == sreasoner.report.inferred_triples


# ---------------------------------------------------------------------------
# Differential equality
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [11, 23, 47])
def test_run_parallel_matches_run_exactly(seed):
    base = build_random_kg(seed)
    sreasoner = Reasoner(base.copy())
    serial = sreasoner.run()
    preasoner = Reasoner(base.copy())
    # A tiny threshold forces pooled rounds even on this small KG.
    parallel = preasoner.run_parallel(workers=WORKERS, threshold=16)
    assert_identical_closure(parallel, serial, preasoner, sreasoner)


def test_run_parallel_pools_rounds():
    reset_parallel_stats()
    base = build_random_kg(5)
    closure = Reasoner(base.copy()).run_parallel(workers=WORKERS, threshold=16)
    stats = parallel_stats()
    assert stats["parallel_closures"] == 1
    assert stats["pool_rounds"] > 0
    assert stats["partition_skew"] >= 1.0
    assert len(closure) > len(base)


def test_workers_one_is_the_oracle():
    base = build_random_kg(7)
    sreasoner = Reasoner(base.copy())
    serial = sreasoner.run()
    preasoner = Reasoner(base.copy())
    parallel = preasoner.run_parallel(workers=1)
    assert_identical_closure(parallel, serial, preasoner, sreasoner)


def test_huge_threshold_falls_back_to_serial_rounds():
    """Rounds below the delta threshold run the oracle code path."""
    reset_parallel_stats()
    base = build_random_kg(3)
    sreasoner = Reasoner(base.copy())
    serial = sreasoner.run()
    preasoner = Reasoner(base.copy())
    parallel = preasoner.run_parallel(workers=WORKERS, threshold=10**6)
    assert_identical_closure(parallel, serial, preasoner, sreasoner)
    assert parallel_stats()["pool_fallbacks"] >= 1


def _all_values_from_graph() -> Graph:
    graph = Graph()
    graph.parse(
        "@prefix ex: <http://example.org/> .\n"
        "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
        "ex:DogLover owl:equivalentClass [ a owl:Restriction ;\n"
        "    owl:onProperty ex:hasPet ; owl:allValuesFrom ex:Dog ] .\n"
        "ex:ann ex:hasPet ex:rex . ex:rex a ex:Dog .\n"
    )
    return graph


def test_non_monotone_classification_falls_back():
    """Closed-world axioms (allValuesFrom) disable partitioned rounds,
    mirroring ``supports_incremental_extension``."""
    reset_parallel_stats()
    base = _all_values_from_graph()
    sreasoner = Reasoner(base.copy(), check_consistency=False)
    serial = sreasoner.run()
    preasoner = Reasoner(base.copy(), check_consistency=False)
    assert not preasoner.supports_incremental_extension
    parallel = preasoner.run_parallel(workers=WORKERS, threshold=1)
    assert parallel._triples == serial._triples
    assert preasoner.report.rule_firings == sreasoner.report.rule_firings
    assert parallel_stats()["pool_fallbacks"] >= 1


# ---------------------------------------------------------------------------
# Bulk materialisation
# ---------------------------------------------------------------------------

def _scenario_deltas(base: Graph, count: int):
    """``count`` distinct scenario-style extensions of a shared base."""
    graphs = []
    for i in range(count):
        graph = base.copy()
        subject = IRI(f"http://example.org/user{i}")
        graph.add((subject, IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                   IRI("https://purl.org/heals/feo#User")))
        graph.add((subject, IRI("http://example.org/likes"),
                   Literal(f"dish-{i}")))
        graphs.append(graph)
    return graphs


def test_bulk_materialise_matches_serial_closures():
    reset_parallel_stats()
    base = build_random_kg(13)
    graphs = _scenario_deltas(base, 3)
    serial = {i: Reasoner(g.copy()).run() for i, g in enumerate(graphs)}
    results = dict(bulk_materialise(graphs, workers=WORKERS))
    assert set(results) == set(serial)
    for i in serial:
        assert results[i]._triples == serial[i]._triples, i
        assert results[i].fingerprint() == serial[i].fingerprint(), i
    assert parallel_stats()["bulk_pool_closures"] >= 1


def test_bulk_materialised_graphs_are_live():
    """Adopted closures must be normal graphs: queryable and extendable."""
    base = build_random_kg(17)
    graphs = _scenario_deltas(base, 2)
    for _, closure in bulk_materialise(graphs, workers=WORKERS):
        assert len(list(closure.triples((None, None, None)))) == len(closure)
        probe = IRI("http://example.org/probe")
        closure.add((probe, probe, probe))
        assert (probe, probe, probe) in closure


def test_materialise_many_counters_and_dedup():
    base = build_random_kg(19)
    graphs = _scenario_deltas(base, 3)
    graphs.append(graphs[0].copy())  # duplicate within the input batch
    cache = MaterializationCache(max_size=8)
    closures = cache.materialise_many(graphs, workers=WORKERS)
    assert len(closures) == 4
    assert closures[0].fingerprint() == closures[3].fingerprint()
    stats = cache.stats()
    assert stats["bulk_builds"] == 3  # the duplicate never built twice
    # Second pass: everything is already cached.
    again = cache.materialise_many(graphs, workers=WORKERS)
    stats = cache.stats()
    assert stats["bulk_hits"] == 4
    assert stats["bulk_builds"] == 3
    for first, second in zip(closures, again):
        assert first.fingerprint() == second.fingerprint()


# ---------------------------------------------------------------------------
# Scenario and fleet warm-up wiring
# ---------------------------------------------------------------------------

def test_build_many_matches_per_request_build():
    catalog = build_core_catalog()
    user, context = paper_user(), paper_context()
    requests = [
        (WhyQuestion(text="Why should I eat Cauliflower Potato Curry?",
                     recipe="Cauliflower Potato Curry"), user, context),
        (ContrastiveQuestion(text="Why soup over soup?",
                             primary="Butternut Squash Soup",
                             secondary="Broccoli Cheddar Soup"), user, context),
        (WhatIfConditionQuestion(text="What if I was pregnant?",
                                 condition="pregnancy"), user, context),
    ]
    bulk_builder = ScenarioBuilder(catalog,
                                   closure_cache=MaterializationCache(max_size=8))
    # Same base graph => identical assembled fingerprints, so the two
    # builders' scenarios are directly comparable.
    serial_builder = ScenarioBuilder(catalog, base_graph=bulk_builder._base)
    scenarios = bulk_builder.build_many(requests, workers=WORKERS)
    for scenario, (question, u, c) in zip(scenarios, requests):
        reference = serial_builder.build(question, u, c)
        assert scenario.asserted.fingerprint() == reference.asserted.fingerprint()
        assert scenario.inferred._triples == reference.inferred._triples
        assert scenario.ecosystem_iri == reference.ecosystem_iri


def test_fleet_warm_closes_seeded_tenants_in_bulk():
    from repro.service import ShardedExplanationService

    user, context = paper_user(), paper_context()
    requests = [
        (WhyQuestion(text="Why should I eat Cauliflower Potato Curry?",
                     recipe="Cauliflower Potato Curry"), user, context),
        (WhatIfConditionQuestion(text="What if I was pregnant?",
                                 condition="pregnancy"), user, context),
    ]
    fleet = ShardedExplanationService(
        num_shards=2, workers_per_shard=1, start=False,
        reasoner_workers=WORKERS, watchdog_interval=None)
    try:
        fleet.warm(requests)
        # Every request now hits its home shard's scenario cache.
        for question, u, c in requests:
            shard = fleet._shard_by_key(u.identifier)
            assert shard.service.prewarm_scenario(question, u, c)
    finally:
        fleet.stop()


# ---------------------------------------------------------------------------
# Fault injection at the worker_pool site
# ---------------------------------------------------------------------------

def _run_with_faults(fault: Fault):
    base = build_random_kg(29)
    sreasoner = Reasoner(base.copy())
    serial = sreasoner.run()
    reset_parallel_stats()
    preasoner = Reasoner(base.copy())
    with injected(FaultInjector(faults=(fault,))):
        parallel = preasoner.run_parallel(workers=WORKERS, threshold=16)
    assert_identical_closure(parallel, serial, preasoner, sreasoner)
    return parallel_stats()


def test_worker_pool_error_retries_partition_serially():
    """An injected transient error in every pool worker: the coordinator
    retries each failed partition on its own thread, and the closure is
    still exact."""
    stats = _run_with_faults(Fault(site="worker_pool", action="error", every=1))
    assert stats["pool_retries"] > 0


def test_worker_pool_crash_is_contained():
    """An injected crash (BaseException) in a worker's first partition
    surfaces as a failed task; the coordinator recovers it serially."""
    stats = _run_with_faults(Fault(site="worker_pool", action="crash", at=(0,)))
    assert stats["pool_retries"] > 0 or stats["pool_fallbacks"] > 0


def test_worker_pool_latency_spike_only_slows():
    """A latency fault must not change the result (and must not count as
    a retry)."""
    stats = _run_with_faults(
        Fault(site="worker_pool", action="latency", at=(0,), delay_ms=20.0))
    assert stats["pool_retries"] == 0


def test_worker_pool_fault_in_bulk_close_falls_back():
    base = build_random_kg(31)
    graphs = _scenario_deltas(base, 2)
    serial = {i: Reasoner(g.copy()).run() for i, g in enumerate(graphs)}
    reset_parallel_stats()
    fault = Fault(site="worker_pool", action="error", every=1)
    with injected(FaultInjector(faults=(fault,))):
        results = dict(bulk_materialise(graphs, workers=WORKERS))
    for i in serial:
        assert results[i]._triples == serial[i]._triples, i
    assert parallel_stats()["pool_retries"] > 0
