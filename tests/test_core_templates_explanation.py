"""Tests for natural-language templates, the explanation data model and queries."""

import pytest

from repro.core.explanation import Explanation, ExplanationItem
from repro.core.queries import (
    PREFIXES,
    contextual_query,
    contrastive_query,
    counterfactual_query,
)
from repro.core.questions import WhyQuestion
from repro.core.templates import (
    humanize,
    join_phrases,
    render_contextual,
    render_contrastive,
    render_counterfactual,
    render_scientific,
    render_simulation,
    render_trace_based,
)
from repro.rdf.terms import IRI


class TestHumanize:
    def test_camel_case_split(self):
        assert humanize("CauliflowerPotatoCurry") == "Cauliflower Potato Curry"

    def test_snake_case_split(self):
        assert humanize("high_folate") == "high folate"

    def test_acronyms_not_exploded(self):
        assert humanize("NortheastUS") == "Northeast US"

    def test_already_spaced_text_unchanged(self):
        assert humanize("Butternut Squash Soup") == "Butternut Squash Soup"


class TestJoinPhrases:
    def test_empty(self):
        assert join_phrases([]) == ""

    def test_single(self):
        assert join_phrases(["one"]) == "one"

    def test_two(self):
        assert join_phrases(["one", "two"]) == "one and two"

    def test_many(self):
        assert join_phrases(["a", "b", "c"]) == "a, b and c"

    def test_skips_empty_strings(self):
        assert join_phrases(["a", "", "b"]) == "a and b"


class TestRenderers:
    def _item(self, subject, role="context", ctype="SeasonCharacteristic", **kwargs):
        return ExplanationItem(subject=subject, role=role, characteristic_type=ctype, **kwargs)

    def test_contextual_sentence_mentions_season(self):
        text = render_contextual("CauliflowerPotatoCurry", [self._item("Autumn")])
        assert "Cauliflower Potato Curry" in text
        assert "Autumn is the current season" in text

    def test_contextual_empty_fallback(self):
        text = render_contextual("Sushi", [])
        assert "No external context" in text

    def test_contrastive_sentence_contains_fact_and_foil(self):
        facts = [self._item("Autumn", role="fact")]
        foils = [self._item("Broccoli", role="foil", ctype="AllergicFoodCharacteristic")]
        text = render_contrastive("ButternutSquashSoup", "BroccoliCheddarSoup", facts, foils)
        assert "preferred over" in text
        assert "allergic to Broccoli" in text

    def test_contrastive_empty_fallback(self):
        text = render_contrastive("A", "B", [], [])
        assert "could not be distinguished" in text

    def test_counterfactual_sentence(self):
        forbidden = [self._item("Sushi", role="forbidden", ctype="FoodCharacteristic")]
        recommended = [self._item("Spinach", role="recommended", ctype="FoodCharacteristic",
                                  value="SpinachFrittata")]
        text = render_counterfactual("pregnancy", forbidden, recommended)
        assert "advised against eating Sushi" in text
        assert "Spinach" in text and "Spinach Frittata" in text

    def test_counterfactual_no_changes(self):
        assert "would not alter" in render_counterfactual("pregnancy", [], [])

    def test_scientific_render(self):
        items = [ExplanationItem(subject="pregnancy", role="evidence",
                                 characteristic_type="KnowledgeRecord",
                                 detail="folate supports neural-tube development")]
        assert "folate" in render_scientific("Spinach Frittata", items)

    def test_simulation_render(self):
        items = [ExplanationItem(subject="sodium", role="high_contribution",
                                 characteristic_type="NutrientCharacteristic",
                                 detail="would supply 40% of daily sodium")]
        assert "every day for a week" in render_simulation("Sushi", items)

    def test_trace_render(self):
        items = [ExplanationItem(subject="scoring", role="trace_step",
                                 characteristic_type="ObjectRecord", detail="step 1: scored")]
        assert "arrived at" in render_trace_based("Lentil Soup", items)


class TestExplanationModel:
    def test_items_with_role_filters(self):
        explanation = Explanation(
            explanation_type="contrastive",
            question=WhyQuestion(text="q", recipe="r"),
            items=[ExplanationItem(subject="A", role="fact"),
                   ExplanationItem(subject="B", role="foil")],
        )
        assert [i.subject for i in explanation.items_with_role("fact")] == ["A"]

    def test_is_empty(self):
        explanation = Explanation(explanation_type="contextual",
                                  question=WhyQuestion(text="q", recipe="r"))
        assert explanation.is_empty

    def test_item_describe_includes_type_and_detail(self):
        item = ExplanationItem(subject="Autumn", role="context",
                               characteristic_type="SeasonCharacteristic", detail="in season")
        text = item.describe()
        assert "Autumn" in text and "SeasonCharacteristic" in text and "in season" in text

    def test_summary_round_trips_question_text(self):
        explanation = Explanation(explanation_type="contextual",
                                  question=WhyQuestion(text="Why?", recipe="r"),
                                  text="Because.")
        assert explanation.summary()["question"] == "Why?"


class TestQueryTemplates:
    def test_prefixes_declared_once(self):
        assert PREFIXES.count("PREFIX feo:") == 1

    def test_contextual_query_embeds_question_iri(self):
        query = contextual_query(IRI("https://purl.org/heals/feo#WhyEatSushi"))
        assert "<https://purl.org/heals/feo#WhyEatSushi>" in query
        assert "feo:isInternal false" in query

    def test_contextual_query_ecosystem_variant_adds_clause(self):
        plain = contextual_query(IRI("https://purl.org/heals/feo#Q"))
        matched = contextual_query(IRI("https://purl.org/heals/feo#Q"), match_ecosystem=True)
        assert "hasEcosystemCharacteristic" not in plain
        assert "hasEcosystemCharacteristic" in matched

    def test_contrastive_query_uses_fact_and_foil(self):
        query = contrastive_query(IRI("https://purl.org/heals/feo#Q"))
        assert "eo:Fact" in query and "eo:Foil" in query
        assert "rdfs:subClassOf+" in query

    def test_counterfactual_query_uses_optional(self):
        query = counterfactual_query(IRI("https://purl.org/heals/feo#Q"))
        assert "OPTIONAL" in query and "feo:isIngredientOf" in query

    def test_queries_are_parseable_by_our_engine(self):
        from repro.sparql import parse_query
        for query in (contextual_query(IRI("urn:q")), contrastive_query(IRI("urn:q")),
                      counterfactual_query(IRI("urn:q"))):
            assert parse_query(query) is not None
