"""Tests for the synthetic FoodKG: schema records, catalogue, generator and loader."""

import pytest

from repro.foodkg import (
    FoodCatalog,
    FoodKGLoader,
    IngredientRecord,
    NutrientProfile,
    PAPER_INGREDIENTS,
    PAPER_RECIPES,
    RecipeRecord,
    SyntheticCatalogGenerator,
    build_core_catalog,
    generate_catalog,
    load_catalog,
    slugify,
)
from repro.ontology import feo, food
from repro.owl.vocabulary import RDF_TYPE
from repro.rdf.graph import Graph
from repro.rdf.namespace import FOODKG
from repro.rdf.terms import IRI


class TestSlugify:
    def test_paper_example(self):
        assert slugify("Cauliflower Potato Curry") == "CauliflowerPotatoCurry"

    def test_punctuation_removed(self):
        assert slugify("mac & cheese!") == "MacCheese"

    def test_snake_case_input(self):
        assert slugify("northeast_us") == "NortheastUs"

    def test_preserves_existing_capitals(self):
        assert slugify("BBQ ribs") == "BBQRibs"


class TestSchemaRecords:
    def test_nutrient_profile_combined(self):
        total = NutrientProfile(calories=100, protein=5).combined(NutrientProfile(calories=50, protein=2))
        assert total.calories == 150 and total.protein == 7

    def test_nutrient_profile_scaled(self):
        half = NutrientProfile(calories=100, sodium=200).scaled(0.5)
        assert half.calories == 50 and half.sodium == 100

    def test_catalog_rejects_recipe_with_unknown_ingredient(self):
        catalog = FoodCatalog()
        with pytest.raises(KeyError):
            catalog.add_recipe(RecipeRecord(name="Mystery Stew", ingredients=("Unobtainium",)))

    def test_catalog_tracks_allergens_and_regions(self):
        catalog = FoodCatalog()
        catalog.add_ingredient(IngredientRecord("Milk", allergens=("dairy",), regions=("global",)))
        assert "dairy" in catalog.allergens
        assert "global" in catalog.regions


class TestCoreCatalog:
    @pytest.fixture(scope="class")
    def catalog(self):
        return build_core_catalog()

    def test_contains_every_paper_recipe(self, catalog):
        for name in PAPER_RECIPES:
            assert name in catalog.recipes

    def test_contains_every_paper_ingredient(self, catalog):
        for name in PAPER_INGREDIENTS:
            assert name in catalog.ingredients

    def test_cauliflower_is_an_autumn_vegetable(self, catalog):
        assert "autumn" in catalog.ingredients["Cauliflower"].seasons

    def test_butternut_squash_is_autumn_only(self, catalog):
        assert catalog.ingredients["Butternut Squash"].seasons == ("autumn",)

    def test_broccoli_cheddar_soup_contains_broccoli_and_dairy(self, catalog):
        assert "Broccoli" in catalog.recipes["Broccoli Cheddar Soup"].ingredients
        assert "dairy" in catalog.recipe_allergens("Broccoli Cheddar Soup")

    def test_sushi_contains_raw_fish(self, catalog):
        assert "Raw Fish" in catalog.recipes["Sushi"].ingredients

    def test_spinach_is_a_folate_source(self, catalog):
        assert "folate" in catalog.ingredients["Spinach"].nutrients

    def test_pregnancy_rule_forbids_raw_fish_and_recommends_spinach(self, catalog):
        rules = catalog.rules_for("pregnancy")
        assert rules, "pregnancy rule missing"
        assert "Raw Fish" in rules[0].forbids
        assert "Spinach" in rules[0].recommends

    def test_every_condition_and_goal_has_a_rule(self, catalog):
        subjects = {rule.subject for rule in catalog.condition_rules}
        assert {"pregnancy", "diabetes", "hypertension", "lactose_intolerance",
                "celiac_disease", "high_cholesterol"} <= subjects
        assert {"high_folate", "low_sodium", "high_protein"} <= subjects

    def test_recipe_ingredient_references_are_closed(self, catalog):
        for recipe in catalog.recipes.values():
            for ingredient in recipe.ingredients:
                assert ingredient in catalog.ingredients

    def test_rule_food_references_are_closed(self, catalog):
        for rule in catalog.condition_rules:
            for name in rule.forbids + rule.recommends:
                assert name in catalog.ingredients or name in catalog.recipes

    def test_recipe_seasons_derived_from_ingredients(self, catalog):
        assert "autumn" in catalog.recipe_seasons("Butternut Squash Soup")

    def test_recipe_nutrition_aggregates_ingredients(self, catalog):
        nutrition = catalog.recipe_nutrition("Spinach Frittata")
        assert nutrition.calories > 0 and nutrition.protein > 0

    def test_recipes_containing(self, catalog):
        names = [r.name for r in catalog.recipes_containing("Spinach")]
        assert "Spinach Frittata" in names

    def test_catalogue_is_reasonably_sized(self, catalog):
        stats = catalog.stats()
        assert stats["recipes"] >= 40
        assert stats["ingredients"] >= 80

    def test_vegetarian_recipes_exist(self, catalog):
        assert any("vegetarian" in r.diets for r in catalog.recipes.values())


class TestSyntheticGenerator:
    def test_generation_is_deterministic_for_a_seed(self):
        first = generate_catalog(extra_ingredients=5, extra_recipes=5, seed=42)
        second = generate_catalog(extra_ingredients=5, extra_recipes=5, seed=42)
        assert list(first.recipes) == list(second.recipes)
        assert list(first.ingredients) == list(second.ingredients)

    def test_different_seeds_differ(self):
        first = generate_catalog(extra_recipes=5, seed=1)
        second = generate_catalog(extra_recipes=5, seed=2)
        first_new = list(first.recipes)[-5:]
        second_new = list(second.recipes)[-5:]
        assert first_new != second_new

    def test_expansion_counts(self):
        catalog = generate_catalog(extra_ingredients=10, extra_recipes=20)
        base = build_core_catalog()
        assert len(catalog.ingredients) == len(base.ingredients) + 10
        assert len(catalog.recipes) == len(base.recipes) + 20

    def test_synthetic_recipes_reference_known_ingredients(self):
        catalog = generate_catalog(extra_ingredients=5, extra_recipes=10)
        for recipe in catalog.recipes.values():
            for ingredient in recipe.ingredients:
                assert ingredient in catalog.ingredients

    def test_synthetic_ingredient_values_in_range(self):
        generator = SyntheticCatalogGenerator(seed=3)
        record = generator.ingredient(1)
        assert 0 <= record.nutrition.calories <= 300
        assert set(record.seasons) <= {"spring", "summer", "autumn", "winter"}


class TestLoader:
    @pytest.fixture(scope="class")
    def loaded(self):
        catalog = build_core_catalog()
        graph = load_catalog(catalog)
        return catalog, graph

    def test_recipes_typed_as_recipes(self, loaded):
        _, graph = loaded
        assert (IRI(FOODKG.CauliflowerPotatoCurry), RDF_TYPE, food.Recipe) in graph

    def test_ingredients_typed_as_ingredients(self, loaded):
        _, graph = loaded
        assert (IRI(FOODKG.Cauliflower), RDF_TYPE, food.Ingredient) in graph

    def test_recipe_ingredient_edges(self, loaded):
        _, graph = loaded
        assert (IRI(FOODKG.Sushi), food.hasIngredient, IRI(FOODKG.RawFish)) in graph

    def test_seasonal_availability_uses_feo_seasons(self, loaded):
        _, graph = loaded
        assert (IRI(FOODKG.Cauliflower), feo.availableInSeason, feo.SEASONS["autumn"]) in graph

    def test_allergen_edges(self, loaded):
        _, graph = loaded
        assert (IRI(FOODKG.CheddarCheese), feo.containsAllergen, IRI(FOODKG.DairyAllergen)) in graph

    def test_condition_rules_loaded(self, loaded):
        _, graph = loaded
        assert (feo.HEALTH_CONDITIONS["pregnancy"], feo.forbids, IRI(FOODKG.RawFish)) in graph
        assert (feo.HEALTH_CONDITIONS["pregnancy"], feo.recommends, IRI(FOODKG.Spinach)) in graph

    def test_nutrition_literals_attached(self, loaded):
        _, graph = loaded
        assert graph.value(IRI(FOODKG.SpinachFrittata), food.hasCalories) is not None

    def test_budget_levels_attached(self, loaded):
        _, graph = loaded
        assert (IRI(FOODKG.Sushi), feo.requiresBudget, feo.BUDGET_LEVELS["high"]) in graph

    def test_labels_attached(self, loaded):
        _, graph = loaded
        label = graph.value(IRI(FOODKG.ButternutSquashSoup),
                            IRI("http://www.w3.org/2000/01/rdf-schema#label"))
        assert str(label) == "Butternut Squash Soup"

    def test_food_iri_lookup(self, loaded):
        catalog, _ = loaded
        loader = FoodKGLoader()
        assert loader.food_iri(catalog, "Sushi") == IRI(FOODKG.Sushi)
        assert loader.food_iri(catalog, "Spinach") == IRI(FOODKG.Spinach)
        with pytest.raises(KeyError):
            loader.food_iri(catalog, "Unobtainium")

    def test_unknown_season_raises(self):
        with pytest.raises(KeyError):
            FoodKGLoader.season_iri("monsoon")

    def test_graph_size_scales_with_catalog(self, loaded):
        catalog, graph = loaded
        assert len(graph) > 10 * len(catalog.recipes)
