"""Tests for the serving layer: caches, sessions and the ExplanationService."""

from __future__ import annotations

import pytest

from repro.core.queries import contextual_template, contrastive_template
from repro.owl import MaterializationCache, Reasoner
from repro.rdf.graph import Graph
from repro.rdf.namespace import FEO
from repro.rdf.terms import IRI
from repro.service import ExplanationRequest, ExplanationService
from repro.sparql import PreparedQueryCache, prepare_cached, prepared_cache
from repro.users.personas import paper_context, paper_user, persona
from repro.users.sessions import SessionRegistry


def _triple(n: int):
    return (IRI(f"urn:s{n}"), IRI("urn:p"), IRI(f"urn:o{n}"))


class TestGraphFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a, b = Graph(), Graph()
        for graph in (a, b):
            graph.add(_triple(1))
            graph.add(_triple(2))
        assert a.fingerprint() == b.fingerprint()

    def test_insertion_order_is_irrelevant(self):
        a, b = Graph(), Graph()
        a.add(_triple(1)).add(_triple(2))
        b.add(_triple(2)).add(_triple(1))
        assert a.fingerprint() == b.fingerprint()

    def test_mutation_changes_and_reverting_restores(self):
        graph = Graph().add(_triple(1))
        before = graph.fingerprint()
        graph.add(_triple(2))
        assert graph.fingerprint() != before
        graph.remove(_triple(2))
        assert graph.fingerprint() == before

    def test_duplicate_add_is_a_noop(self):
        graph = Graph().add(_triple(1))
        before = graph.fingerprint()
        graph.add(_triple(1))
        assert graph.fingerprint() == before

    def test_copy_preserves_fingerprint(self):
        graph = Graph().add(_triple(1)).add(_triple(2))
        assert graph.copy().fingerprint() == graph.fingerprint()

    def test_clear_resets(self):
        graph = Graph().add(_triple(1))
        graph.clear()
        assert graph.fingerprint() == Graph().fingerprint()


class TestPreparedQueryCache:
    def test_hit_returns_same_prepared_object(self):
        cache = PreparedQueryCache()
        text = contextual_template()
        first = cache.get(text)
        second = cache.get(text)
        assert first is second
        assert cache.stats() == {"size": 1, "hits": 1, "misses": 1}

    def test_distinct_texts_are_distinct_entries(self):
        cache = PreparedQueryCache()
        assert cache.get(contextual_template()) is not cache.get(contrastive_template())
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = PreparedQueryCache(max_size=2)
        q1 = "SELECT ?s WHERE { ?s ?p1 ?o . }"
        q2 = "SELECT ?s WHERE { ?s ?p2 ?o . }"
        q3 = "SELECT ?s WHERE { ?s ?p3 ?o . }"
        first = cache.get(q1)
        cache.get(q2)
        cache.get(q3)  # evicts q1
        assert len(cache) == 2
        assert cache.get(q1) is not first  # re-parsed after eviction

    def test_module_level_cache_is_shared(self):
        text = "SELECT ?s WHERE { ?s a ?cls . }"
        assert prepare_cached(text) is prepare_cached(text)
        assert prepared_cache().stats()["size"] >= 1

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            PreparedQueryCache(max_size=0)


class TestMaterializationCache:
    def _graph(self):
        graph = Graph()
        subclassof = IRI("http://www.w3.org/2000/01/rdf-schema#subClassOf")
        rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        graph.add((IRI("urn:Dog"), subclassof, IRI("urn:Animal")))
        graph.add((IRI("urn:rex"), rdf_type, IRI("urn:Dog")))
        return graph

    def test_hit_skips_reasoning_and_shares_the_closure(self):
        cache = MaterializationCache()
        graph = self._graph()
        first = cache.materialize(graph)
        second = cache.materialize(graph)
        assert first is second
        assert cache.stats() == {"size": 1, "hits": 1, "misses": 1,
                                 "extensions": 0, "single_flight_waits": 0,
                                 "bulk_hits": 0, "bulk_builds": 0}
        # The closure is a real materialisation.
        rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        assert (IRI("urn:rex"), rdf_type, IRI("urn:Animal")) in first

    def test_matches_uncached_reasoner_output(self):
        graph = self._graph()
        assert set(MaterializationCache().materialize(graph)) == set(Reasoner(graph).run())

    def test_mutation_invalidates_via_fingerprint(self):
        cache = MaterializationCache()
        graph = self._graph()
        cache.materialize(graph)
        graph.add(_triple(9))
        cache.materialize(graph)
        assert cache.stats()["misses"] == 2

    def test_copy_mode_returns_private_graph(self):
        cache = MaterializationCache()
        graph = self._graph()
        shared = cache.materialize(graph)
        private = cache.materialize(graph, copy=True)
        assert private is not shared and set(private) == set(shared)

    def test_lru_bound(self):
        cache = MaterializationCache(max_size=1)
        g1, g2 = self._graph(), self._graph().add(_triple(5))
        cache.materialize(g1)
        cache.materialize(g2)
        assert len(cache) == 1
        cache.materialize(g1)  # evicted above -> re-reasons
        assert cache.stats()["misses"] == 3

    def test_post_process_runs_once_before_publication(self):
        cache = MaterializationCache()
        graph = self._graph()
        marker = (IRI("urn:marker"), IRI("urn:p"), IRI("urn:done"))
        calls = []

        def post(closure):
            calls.append(1)
            closure.add(marker)

        first = cache.materialize(graph, post_process=post)
        second = cache.materialize(graph, post_process=post)
        assert first is second
        assert marker in first
        assert calls == [1]  # a hit never re-runs (or observes partial) post-processing

    def test_explicit_invalidate(self):
        cache = MaterializationCache()
        graph = self._graph()
        cache.materialize(graph)
        assert cache.invalidate(graph) is True
        assert cache.invalidate(graph) is False


class TestMaterializationCacheExtension:
    """The incremental (extend) path of the closure cache."""

    def _graph(self):
        graph = Graph()
        subclassof = IRI("http://www.w3.org/2000/01/rdf-schema#subClassOf")
        rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        graph.add((IRI("urn:Dog"), subclassof, IRI("urn:Animal")))
        graph.add((IRI("urn:rex"), rdf_type, IRI("urn:Dog")))
        return graph

    def _delta(self):
        rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        return [(IRI("urn:bella"), rdf_type, IRI("urn:Dog"))]

    def test_extend_matches_full_materialisation(self):
        cache = MaterializationCache()
        graph = self._graph()
        base_fingerprint = graph.fingerprint()
        cache.materialize(graph)
        delta = self._delta()
        graph.addN(delta)
        extended = cache.extend(graph, base_fingerprint, delta)
        assert set(extended) == set(Reasoner(graph).run())
        assert cache.stats()["extensions"] == 1

    def test_extend_does_not_mutate_the_shared_base_closure(self):
        cache = MaterializationCache()
        graph = self._graph()
        base_fingerprint = graph.fingerprint()
        base_closure = cache.materialize(graph)
        snapshot = set(base_closure)
        fingerprint = base_closure.fingerprint()
        graph.addN(self._delta())
        extended = cache.extend(graph, base_fingerprint, self._delta())
        assert extended is not base_closure
        assert set(base_closure) == snapshot
        assert base_closure.fingerprint() == fingerprint

    def test_extend_falls_back_to_full_materialisation_without_base(self):
        cache = MaterializationCache()
        graph = self._graph()
        missing_fingerprint = (0, 0)
        delta = self._delta()
        graph.addN(delta)
        closure = cache.extend(graph, missing_fingerprint, delta)
        assert set(closure) == set(Reasoner(graph).run())
        assert cache.stats()["misses"] == 1 and cache.stats()["extensions"] == 0

    def test_extend_on_cached_target_is_a_plain_hit(self):
        cache = MaterializationCache()
        graph = self._graph()
        base_fingerprint = graph.fingerprint()
        cache.materialize(graph)
        delta = self._delta()
        graph.addN(delta)
        first = cache.extend(graph, base_fingerprint, delta)
        second = cache.extend(graph, base_fingerprint, delta)
        assert first is second
        assert cache.stats()["hits"] == 1 and cache.stats()["extensions"] == 1

    def test_extend_reruns_post_process_on_the_extended_closure(self):
        """Annotations are stripped, the delta reasoned in, the pass re-run."""
        cache = MaterializationCache()
        graph = self._graph()
        base_fingerprint = graph.fingerprint()
        rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        annotation_class = IRI("urn:Seen")

        def post(closure):
            # Closed-world pass: tag every Dog instance (not OWL-derivable).
            for dog in list(closure.subjects(rdf_type, IRI("urn:Dog"))):
                closure.add((dog, rdf_type, annotation_class))

        cache.materialize(graph, post_process=post)
        delta = self._delta()
        graph.addN(delta)
        extended = cache.extend(graph, base_fingerprint, delta, post_process=post)
        assert (IRI("urn:rex"), rdf_type, annotation_class) in extended
        assert (IRI("urn:bella"), rdf_type, annotation_class) in extended
        # The extension result must be exactly full-reason + fresh post-pass.
        expected = Reasoner(graph).run()
        post(expected)
        assert set(extended) == set(expected)


class TestServiceScenarioUpdates:
    """End-to-end: closure-cache hits stay annotated, updates stay incremental."""

    @pytest.fixture()
    def service(self, engine):
        return ExplanationService(engine=engine)

    def test_closure_cache_hit_serves_annotated_facts_and_foils(self, service):
        from repro.ontology import eo

        question = "Why should I eat Cauliflower Potato Curry?"
        first = service.ask(question, persona="paper")
        hits_before = service.stats().closure_cache.get("hits", 0)
        # A second session of the same persona assembles a triple-identical
        # graph: the closure cache hit must still expose the fact/foil types
        # the post-process pass wrote before publication.
        second = service.ask(question, persona="paper")
        assert service.stats().closure_cache.get("hits", 0) >= hits_before
        assert first.explanation.text == second.explanation.text
        key = next(iter(service._scenarios))
        scenario = service._scenarios[key]
        rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        assert list(scenario.inferred.triples((None, rdf_type, eo.Fact)))

    def test_update_scenario_is_differentially_correct(self, service):
        from repro.core.facts_foils import annotate_facts_and_foils
        from repro.owl import Reasoner as FreshReasoner

        question = "Why should I eat Cauliflower Potato Curry?"
        service.ask(question, persona="paper")
        updated = service.update_scenario(
            question, persona="paper", allergies=("dairy",), conditions=("diabetes",))
        assert "dairy" in updated.user.allergies
        assert "diabetes" in updated.user.conditions
        # The incremental closure must be triple-identical to reasoning the
        # grown asserted graph from scratch and re-annotating.
        fresh = FreshReasoner(updated.asserted).run()
        annotate_facts_and_foils(fresh, updated.ecosystem_iri)
        assert set(updated.inferred) == set(fresh)
        assert service.stats().scenario_updates == 1
        assert service.stats().closure_cache.get("extensions", 0) == 1

    def test_update_scenario_leaves_the_shared_closure_untouched(self, service):
        question = "Why should I eat Cauliflower Potato Curry?"
        response = service.ask(question, persona="paper")
        original = next(iter(service._scenarios.values()))
        inferred_before = original.inferred.fingerprint()
        asserted_before = original.asserted.fingerprint()
        service.update_scenario(question, persona="paper", likes=("Sushi",))
        # Another session still sharing the original cached closure must not
        # observe the mutation.
        assert original.inferred.fingerprint() == inferred_before
        assert original.asserted.fingerprint() == asserted_before
        repeat = service.ask(question, persona="paper")
        assert repeat.explanation.text == response.explanation.text

    def test_update_scenario_advances_the_session_profile(self, service):
        session = service.open_persona_session("paper")
        question = "Why should I eat Cauliflower Potato Curry?"
        service.ask(question, session_id=session.session_id)
        service.update_scenario(question, session_id=session.session_id,
                                goals=("high_fiber",))
        assert "high_fiber" in session.user.goals
        # The follow-up ask under the grown profile hits the updated entry.
        follow_up = service.ask(question, session_id=session.session_id)
        assert follow_up.scenario_cache_hit

    def test_update_scenario_rejects_unknown_restrictions(self, service):
        question = "Why should I eat Cauliflower Potato Curry?"
        service.ask(question, persona="paper")
        with pytest.raises(ValueError):
            service.update_scenario(question, persona="paper",
                                    conditions=("square_wheels",))

    def test_update_scenario_rejects_schema_extra_triples(self, service):
        """Schema axioms would invalidate the builder's shared axiom index."""
        from repro.core.questions import parse_question
        from repro.owl.vocabulary import RDFS_SUBCLASSOF

        question = parse_question("Why should I eat Cauliflower Potato Curry?")
        user, context = persona("paper")
        scenario = service.engine.build_scenario(question, user, context)
        with pytest.raises(ValueError, match="schema axiom"):
            service.engine.update_scenario(
                scenario,
                extra_triples=[(IRI("urn:A"), RDFS_SUBCLASSOF, IRI("urn:B"))])

    def test_update_scenario_replacing_recommendation_rebuilds(self, service):
        """Swapping recommendations is a retraction: the old one must vanish."""
        from repro.core.questions import parse_question
        from repro.foodkg.schema import slugify
        from repro.rdf.namespace import FOODKG

        user, context = persona("paper")
        first, second = service.engine.recommender.recommend(user, context, top_k=2)
        question = parse_question("Why should I eat Cauliflower Potato Curry?")
        scenario = service.engine.build_scenario(question, user, context,
                                                 recommendation=first)
        updated = service.engine.update_scenario(scenario, recommendation=second)
        fresh = service.engine.build_scenario(question, user, context,
                                              recommendation=second)
        assert updated.recommendation == second
        assert set(updated.asserted) == set(fresh.asserted)
        assert set(updated.inferred) == set(fresh.inferred)
        old_rec_iri = IRI(FOODKG["recommendation/" + slugify(first.recipe)])
        assert not list(updated.asserted.triples((old_rec_iri, None, None)))

    def test_update_scenario_replacement_keeps_extra_triples(self, service):
        """The rebuild taken for a recommendation swap must not drop extras."""
        from repro.core.questions import parse_question

        user, context = persona("paper")
        first, second = service.engine.recommender.recommend(user, context, top_k=2)
        question = parse_question("Why should I eat Cauliflower Potato Curry?")
        scenario = service.engine.build_scenario(question, user, context,
                                                 recommendation=first)
        extra = (IRI("urn:note"), IRI("urn:about"), IRI("urn:lunch"))
        updated = service.engine.update_scenario(
            scenario, recommendation=second, extra_triples=[extra])
        assert updated.recommendation == second
        assert extra in updated.asserted
        assert extra in updated.inferred

    def test_update_scenario_swap_carries_earlier_extra_triples(self, service):
        """Extras from earlier updates survive a later recommendation swap."""
        from repro.core.questions import parse_question

        user, context = persona("paper")
        first, second = service.engine.recommender.recommend(user, context, top_k=2)
        question = parse_question("Why should I eat Cauliflower Potato Curry?")
        scenario = service.engine.build_scenario(question, user, context,
                                                 recommendation=first)
        extra = (IRI("urn:note"), IRI("urn:about"), IRI("urn:dinner"))
        grown = service.engine.update_scenario(scenario, extra_triples=[extra])
        swapped = service.engine.update_scenario(grown, recommendation=second)
        assert swapped.recommendation == second
        assert extra in swapped.asserted
        assert extra in swapped.inferred


class TestSessionRegistry:
    def test_open_get_close_roundtrip(self):
        registry = SessionRegistry()
        session = registry.open(paper_user(), paper_context())
        assert registry.get(session.session_id) is session
        assert session.session_id in registry
        assert registry.close(session.session_id) is session
        assert session.session_id not in registry

    def test_unknown_session_raises(self):
        with pytest.raises(KeyError):
            SessionRegistry().get("no-such-session")

    def test_eviction_drops_least_recently_active(self):
        registry = SessionRegistry(max_sessions=2)
        first = registry.open(paper_user(), paper_context())
        second = registry.open(paper_user(), paper_context())
        registry.get(first.session_id)  # refresh first
        registry.open(paper_user(), paper_context())  # evicts second
        assert first.session_id in registry
        assert second.session_id not in registry
        assert registry.evictions == 1

    def test_history_is_recorded_and_bounded(self):
        session = SessionRegistry().open(paper_user(), paper_context())
        for n in range(7):
            session.record_question(f"question {n}", keep_last=5)
        assert session.questions_asked == 7
        assert session.history == [f"question {n}" for n in range(2, 7)]


class TestExplanationService:
    @pytest.fixture()
    def service(self, engine):
        # Reuses the session-scoped engine: only service-layer state is fresh.
        return ExplanationService(engine=engine)

    def test_ask_with_persona(self, service):
        response = service.ask("Why should I eat Cauliflower Potato Curry?",
                               persona="paper")
        assert response.explanation.explanation_type == "contextual"
        assert "Autumn" in [item.subject for item in response.explanation.items]
        assert response.session_id is None

    def test_repeat_hits_scenario_cache_with_identical_answer(self, service):
        question = "Why should I eat Cauliflower Potato Curry?"
        first = service.ask(question, persona="paper")
        second = service.ask(question, persona="paper")
        assert not first.scenario_cache_hit
        assert second.scenario_cache_hit
        assert first.explanation.text == second.explanation.text

    def test_batch_amortises_scenarios(self, service):
        requests = [ExplanationRequest(question="What if I was pregnant?",
                                       persona="pregnant_user")] * 3
        responses = service.explain_batch(requests)
        assert [r.scenario_cache_hit for r in responses] == [False, True, True]
        assert service.stats().scenario_cache_misses == 1

    def test_explanation_type_override_reuses_scenario(self, service):
        question = "Why should I eat Cauliflower Potato Curry?"
        contextual = service.ask(question, persona="paper")
        scientific = service.ask(question, persona="paper",
                                 explanation_type="scientific")
        assert scientific.explanation.explanation_type == "scientific"
        assert scientific.scenario_cache_hit  # same scenario, different generator

    def test_session_flow_records_history(self, service):
        session = service.open_persona_session("pregnant_user")
        response = service.ask("What if I was pregnant?",
                               session_id=session.session_id)
        assert response.session_id == session.session_id
        assert session.questions_asked == 1
        assert session.history == ["What if I was pregnant?"]
        assert service.close_session(session.session_id) is session

    def test_unknown_session_raises(self, service):
        with pytest.raises(KeyError):
            service.ask("Why should I eat Sushi?", session_id="missing")

    def test_explicit_user_and_context(self, service):
        user, context = persona("paper")
        response = service.ask("Why should I eat Cauliflower Potato Curry?",
                               user=user, context=context)
        assert not response.explanation.is_empty

    def test_partial_user_context_is_rejected(self, service):
        user, context = persona("paper")
        with pytest.raises(ValueError):
            service.ask("Why should I eat Sushi?", user=user)  # context missing
        with pytest.raises(ValueError):
            service.ask("Why should I eat Sushi?", context=context)  # user missing

    def test_explain_all_types_builds_one_scenario(self, service):
        request = ExplanationRequest(question="Why should I eat Cauliflower Potato Curry?",
                                     persona="paper")
        responses = service.explain_all_types(request)
        assert set(responses) == set(service.engine.supported_explanation_types)
        assert service.stats().scenario_cache_misses == 1

    def test_explain_all_types_records_session_question_once(self, service):
        session = service.open_persona_session("paper")
        request = ExplanationRequest(question="Why should I eat Cauliflower Potato Curry?",
                                     session_id=session.session_id)
        responses = service.explain_all_types(request)
        assert session.questions_asked == 1
        assert all(r.session_id == session.session_id for r in responses.values())

    def test_stats_snapshot(self, service):
        service.ask("Why should I eat Cauliflower Potato Curry?", persona="paper")
        stats = service.stats()
        assert stats.requests_served == 1
        assert stats.scenario_cache_misses == 1
        assert "hits" in stats.prepared_query_cache
        text = stats.to_text()
        assert "requests served" in text and "closure cache" in text
        assert "query planner" in text
        assert "term store" in text

    def test_stats_expose_term_store_counters(self, service):
        service.ask("Why should I eat Cauliflower Potato Curry?", persona="paper")
        stats = service.stats()
        store = stats.term_store
        # The engine's base graph family: thousands of interned terms, and
        # the kind breakdown accounts for every one of them.
        assert store["interned_terms"] > 0
        assert store["encoded_triples"] > 0
        assert (store["iris"] + store["bnodes"] + store["literals"]
                == store["interned_terms"])
        # The competency queries ran through the encoded join fast path.
        assert stats.query_planner.get("encoded_bgps", 0) > 0

    def test_stats_report_plan_cache_reuse_across_requests(self, service):
        from repro.sparql import reset_planner_stats

        reset_planner_stats()
        question = "Why should I eat Cauliflower Potato Curry?"
        service.ask(question, persona="paper")
        first = service.stats().query_planner
        # A fresh user defeats the scenario cache, so the competency query
        # re-evaluates — through the already-compiled plan.
        user, context = persona("pregnant_user")
        service.ask(question, user=user, context=context)
        second = service.stats().query_planner
        assert second["plan_cache_hits"] > first["plan_cache_hits"]
        assert second["plans_compiled"] == first["plans_compiled"]

    def test_scenario_cache_lru_bound(self, engine):
        service = ExplanationService(engine=engine, max_cached_scenarios=1)
        service.ask("Why should I eat Cauliflower Potato Curry?", persona="paper")
        service.ask("What if I was pregnant?", persona="pregnant_user")
        repeat = service.ask("Why should I eat Cauliflower Potato Curry?",
                             persona="paper")
        assert not repeat.scenario_cache_hit  # evicted by the second question

    def test_stats_on_idle_service_does_not_build_the_engine(self):
        service = ExplanationService()  # no engine injected
        stats = service.stats()
        assert stats.requests_served == 0 and stats.closure_cache == {}
        assert service._engine is None  # still lazy after reading stats
        service.clear_caches()
        assert service._engine is None

    def test_warm_prepares_competency_templates(self, engine):
        baseline = prepared_cache().stats()["size"]
        ExplanationService(engine=engine).warm()
        assert prepared_cache().stats()["size"] >= max(baseline, 3)


class TestServeRequestLineParsing:
    def test_bare_question_uses_default_persona(self):
        from repro.cli import _parse_request_line

        assert _parse_request_line("Why should I eat Sushi?\n", "paper") == \
            ("paper", "Why should I eat Sushi?")

    def test_persona_prefix(self):
        from repro.cli import _parse_request_line

        assert _parse_request_line("pregnant_user: What if I was pregnant?", "paper") == \
            ("pregnant_user", "What if I was pregnant?")

    def test_unknown_prefix_is_part_of_the_question(self):
        from repro.cli import _parse_request_line

        persona_key, question = _parse_request_line("note: odd question", "paper")
        assert persona_key == "paper" and question == "note: odd question"

    def test_blank_and_comment_lines_are_skipped(self):
        from repro.cli import _parse_request_line

        assert _parse_request_line("   \n", "paper") is None
        assert _parse_request_line("# comment", "paper") is None
