"""Property-based tests (hypothesis) for the core data structures and invariants."""

import string
import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.facts_foils import classify_characteristic
from repro.foodkg.generator import SyntheticCatalogGenerator, generate_catalog
from repro.foodkg.schema import NutrientProfile, slugify
from repro.owl import Reasoner
from repro.owl.vocabulary import RDF_TYPE, RDFS_SUBCLASSOF
from repro.rdf.compare import isomorphic
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.ntriples import parse as parse_nt, serialize as serialize_nt
from repro.rdf.terms import BNode, IRI, Literal, XSD_DATE, XSD_DECIMAL
from repro.rdf.turtle import parse as parse_ttl, serialize as serialize_ttl
from repro.sparql import query as sparql_query

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
_local_names = st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=12)
_iris = _local_names.map(lambda name: IRI("http://example.org/" + name))
_literals = st.one_of(
    st.text(alphabet=string.printable, max_size=30).map(Literal),
    st.integers(min_value=-10**6, max_value=10**6).map(Literal),
    st.booleans().map(Literal),
)
_nodes = st.one_of(_iris, _literals)
_triples = st.tuples(_iris, _iris, _nodes)

#: Richer terms for the dictionary/serialisation round-trip properties:
#: language-tagged and datatyped literals and (serialisable-label) bnodes.
_language_tags = st.sampled_from(["en", "de", "fr", "en-gb", "pt-br"])
_tagged_literals = st.builds(
    Literal,
    st.text(alphabet=string.printable, max_size=20),
    language=_language_tags,
)
_typed_literals = st.one_of(
    st.builds(Literal, st.text(alphabet=string.digits, min_size=1, max_size=8),
              datatype=st.sampled_from([XSD_DECIMAL, XSD_DATE])),
    st.integers(min_value=-10**9, max_value=10**9).map(Literal),
    st.floats(allow_nan=False, allow_infinity=False, width=32).map(Literal),
)
_bnodes = _local_names.map(lambda name: BNode("b" + name))
_rich_terms = st.one_of(_iris, _bnodes, _literals, _tagged_literals, _typed_literals)
_rich_triples = st.tuples(
    st.one_of(_iris, _bnodes), _iris,
    st.one_of(_iris, _bnodes, _literals, _tagged_literals, _typed_literals),
)


class TestGraphProperties:
    @given(st.lists(_triples, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_graph_length_equals_unique_triples(self, triples):
        graph = Graph()
        graph.addN(triples)
        assert len(graph) == len(set(triples))

    @given(st.lists(_triples, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_every_added_triple_is_findable_by_every_index(self, triples):
        graph = Graph()
        graph.addN(triples)
        for s, p, o in triples:
            assert (s, p, o) in graph
            assert (s, p, o) in set(graph.triples((s, None, None)))
            assert (s, p, o) in set(graph.triples((None, p, None)))
            assert (s, p, o) in set(graph.triples((None, None, o)))

    @given(st.lists(_triples, max_size=40), st.lists(_triples, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_union_and_difference_are_set_like(self, left_triples, right_triples):
        left, right = Graph(), Graph()
        left.addN(left_triples)
        right.addN(right_triples)
        union = left + right
        assert set(union) == set(left) | set(right)
        difference = left - right
        assert set(difference) == set(left) - set(right)

    @given(st.lists(_triples, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_removal_leaves_no_trace_in_indexes(self, triples):
        graph = Graph()
        graph.addN(triples)
        for s, p, o in list(graph):
            graph.remove((s, p, o))
        assert len(graph) == 0
        assert list(graph.triples((None, None, None))) == []


#: A deliberately small term pool so random sequences collide: the same
#: triple gets added, removed and re-added, which is exactly what stresses
#: the index/journal bookkeeping.
_small_iris = st.sampled_from([IRI(f"http://example.org/n{i}") for i in range(6)])
_small_triples = st.tuples(_small_iris, _small_iris, st.one_of(_small_iris, st.sampled_from([Literal("v1"), Literal(2)])))
_mutations = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), _small_triples),
    max_size=80,
)


def _apply_mutations(graph, mutations):
    """Mirror a mutation sequence into the graph and a reference set."""
    reference = set()
    for op, triple in mutations:
        if op == "add":
            graph.add(triple)
            reference.add(triple)
        else:
            graph.remove(triple)
            reference.discard(triple)
    return reference


class TestGraphIndexConsistency:
    """Random add/remove sequences keep every index and derived view aligned.

    These guard the invariants the incremental reasoning path leans on:
    the SPO/POS/OSP permutation indexes, ``len``, ``fingerprint()`` and the
    change journal must all tell the same story after any mutation history.
    """

    @given(_mutations)
    @settings(max_examples=80, deadline=None)
    def test_len_iteration_and_membership_match_reference(self, mutations):
        graph = Graph()
        reference = _apply_mutations(graph, mutations)
        assert len(graph) == len(reference)
        assert set(graph) == reference
        for triple in reference:
            assert triple in graph

    @given(_mutations)
    @settings(max_examples=80, deadline=None)
    def test_permutation_indexes_stay_mutually_consistent(self, mutations):
        graph = Graph()
        reference = _apply_mutations(graph, mutations)
        # The permutation indexes are dictionary-encoded (integer term IDs);
        # decode them before comparing against the term-level reference.
        terms = graph.dictionary.terms
        from_spo = {(terms[s], terms[p], terms[o]) for s, by_pred in graph._spo.items()
                    for p, objs in by_pred.items() for o in objs}
        from_pos = {(terms[s], terms[p], terms[o]) for p, by_obj in graph._pos.items()
                    for o, subjs in by_obj.items() for s in subjs}
        from_osp = {(terms[s], terms[p], terms[o]) for o, by_subj in graph._osp.items()
                    for s, preds in by_subj.items() for p in preds}
        assert from_spo == reference
        assert from_pos == reference
        assert from_osp == reference
        # No empty husks left behind by removals.
        assert all(objs for by_pred in graph._spo.values() for objs in by_pred.values())
        assert all(subjs for by_obj in graph._pos.values() for subjs in by_obj.values())
        assert all(preds for by_subj in graph._osp.values() for preds in by_subj.values())

    @given(_mutations)
    @settings(max_examples=80, deadline=None)
    def test_every_pattern_shape_agrees_with_the_triple_set(self, mutations):
        graph = Graph()
        reference = _apply_mutations(graph, mutations)
        for s, p, o in reference:
            assert (s, p, o) in set(graph.triples((s, None, None)))
            assert (s, p, o) in set(graph.triples((None, p, None)))
            assert (s, p, o) in set(graph.triples((None, None, o)))
            assert (s, p, o) in set(graph.triples((s, p, None)))
            assert (s, p, o) in set(graph.triples((None, p, o)))
        assert set(graph.triples((None, None, None))) == reference

    @given(_mutations)
    @settings(max_examples=80, deadline=None)
    def test_fingerprint_depends_only_on_final_content(self, mutations):
        graph = Graph()
        reference = _apply_mutations(graph, mutations)
        rebuilt = Graph()
        rebuilt.addN(reference)
        assert graph.fingerprint() == rebuilt.fingerprint()
        assert graph.fingerprint()[0] == len(reference)

    @given(_mutations, _mutations)
    @settings(max_examples=60, deadline=None)
    def test_journal_captures_the_net_delta(self, history, tracked):
        graph = Graph()
        _apply_mutations(graph, history)
        before = set(graph)
        journal = graph.start_journal()
        _apply_mutations(graph, tracked)
        after = set(graph)
        assert set(journal.added()) == after - before
        assert set(journal.removed()) == before - after
        assert journal.clean == (after == before)
        journal.close()
        assert not journal.active
        # Closed journals stop recording but keep their delta readable.
        graph.add((IRI("http://example.org/post"), IRI("http://example.org/p"),
                   IRI("http://example.org/o")))
        assert set(journal.added()) == after - before

    @given(_mutations)
    @settings(max_examples=40, deadline=None)
    def test_copy_is_independent_and_journal_free(self, mutations):
        graph = Graph()
        reference = _apply_mutations(graph, mutations)
        journal = graph.start_journal()
        clone = graph.copy()
        assert set(clone) == reference
        assert clone.fingerprint() == graph.fingerprint()
        assert clone._journals == []
        probe = (IRI("http://example.org/probe"), IRI("http://example.org/p"),
                 IRI("http://example.org/o"))
        clone.add(probe)
        assert probe not in graph
        assert journal.clean  # mutating the clone never reaches the original's journal
        journal.close()


class TestTermDictionaryProperties:
    """The interning layer under the dictionary-encoded storage engine."""

    @given(st.lists(_rich_terms, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_roundtrip_and_id_stability(self, terms):
        dictionary = TermDictionary()
        ids = [dictionary.intern(term) for term in terms]
        for term, tid in zip(terms, ids):
            decoded = dictionary.decode(tid)
            assert decoded == term
            assert type(decoded) is type(term)
            if isinstance(term, Literal):
                assert decoded.language == term.language
            # Re-interning an equal term never mints a new ID.
            assert dictionary.intern(term) == tid
        # Distinct IDs decode to distinct terms (bijectivity).
        assert len(set(ids)) == len({dictionary.decode(tid) for tid in set(ids)})
        stats = dictionary.stats()
        assert stats["interned_terms"] == len(dictionary)
        assert stats["iris"] + stats["bnodes"] + stats["literals"] == len(dictionary)

    @given(
        st.lists(_rich_terms, max_size=30),
        st.lists(_rich_terms, max_size=30),
        st.lists(_rich_terms, max_size=15),
    )
    @settings(max_examples=20, deadline=None)
    def test_concurrent_interning_is_bijective_and_stable(self, left, right, shared):
        """Racing interners agree on one ID per term and never corrupt the map.

        Two threads intern overlapping term lists into one dictionary (the
        serving layer does exactly this: every shard's scenario builder
        interns into the shared graph-family dictionary).  Afterwards the
        dictionary must be a bijection — same term -> same ID from both
        threads, every ID decodes back to its term — and re-interning must
        return the IDs the race assigned (stability)."""
        dictionary = TermDictionary()
        workloads = [left + shared, right + shared]
        observed = [{}, {}]
        barrier = threading.Barrier(len(workloads))
        errors = []

        def interner(slot, terms):
            try:
                barrier.wait(timeout=30)
                for term in terms:
                    observed[slot][term] = dictionary.intern(term)
            except Exception as exc:  # pragma: no cover - surfaced via assert
                errors.append(exc)

        threads = [threading.Thread(target=interner, args=(slot, terms))
                   for slot, terms in enumerate(workloads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        assert not errors, f"concurrent intern failed: {errors[:3]}"

        # Both threads got the same ID for every term they both interned.
        for term in set(observed[0]) & set(observed[1]):
            assert observed[0][term] == observed[1][term]
        # Bijectivity + decode round-trip across the union.
        assignments = {**observed[0], **observed[1]}
        assert len(set(assignments.values())) == len(assignments)
        for term, tid in assignments.items():
            decoded = dictionary.decode(tid)
            assert decoded == term and type(decoded) is type(term)
            # Post-race stability: interning never re-mints.
            assert dictionary.intern(term) == tid
        assert len(dictionary) == len(assignments)
        stats = dictionary.stats()
        assert stats["interned_terms"] == len(assignments)
        assert stats["iris"] + stats["bnodes"] + stats["literals"] == len(assignments)

    @given(st.lists(_triples, max_size=40), st.lists(_triples, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_dictionary_is_stable_across_copy(self, base_triples, extra_triples):
        graph = Graph()
        graph.addN(base_triples)
        clone = graph.copy()
        # One dictionary per graph family: the clone shares it, and every
        # term keeps the ID it had in the original.
        assert clone.dictionary is graph.dictionary
        for s, p, o in base_triples:
            assert clone.dictionary.lookup(s) == graph.dictionary.lookup(s)
            assert clone.encode_triple((s, p, o)) == graph.encode_triple((s, p, o))
        # Growing the clone interns into the shared dictionary but never
        # changes the original's triples, indexes or fingerprint.
        before = graph.fingerprint()
        clone.addN(extra_triples)
        assert graph.fingerprint() == before
        assert set(graph) == set(base_triples)
        for s, p, o in extra_triples:
            assert graph.dictionary.lookup(s) is not None
            assert (s, p, o) in clone

    @given(_mutations, _mutations)
    @settings(max_examples=50, deadline=None)
    def test_copy_on_write_keeps_both_sides_consistent(self, first, second):
        """Interleaved mutations on a graph and its copy stay independent
        (the COW permutation indexes must un-share correctly)."""
        graph = Graph()
        expected_original = _apply_mutations(graph, first)
        clone = graph.copy()
        expected_clone = set(expected_original)
        for action, triple in second:
            if action == "add":
                clone.add(triple)
                expected_clone.add(triple)
            else:
                clone.remove(triple)
                expected_clone.discard(triple)
        # And mutate the original after the clone diverged.
        for action, triple in second[:len(second) // 2]:
            if action == "add":
                graph.remove(triple)
                expected_original.discard(triple)
        assert set(graph) == expected_original
        assert set(clone) == expected_clone
        for s, p, o in expected_clone:
            assert (s, p, o) in set(clone.triples((s, None, None)))
            assert (s, p, o) in set(clone.triples((None, p, None)))
            assert (s, p, o) in set(clone.triples((None, None, o)))
        for s, p, o in expected_original:
            assert (s, p, o) in set(graph.triples((s, None, None)))
            assert (s, p, o) in set(graph.triples((None, None, o)))


class TestSerialisationProperties:
    @given(st.lists(st.tuples(_iris, _iris, st.one_of(_iris, _literals)), max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_ntriples_roundtrip_is_lossless(self, triples):
        graph = Graph()
        graph.addN(triples)
        reparsed = parse_nt(serialize_nt(graph))
        assert set(reparsed) == set(graph)

    @given(st.lists(_rich_triples, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_ntriples_roundtrip_preserves_isomorphism(self, triples):
        graph = Graph()
        graph.addN(triples)
        reparsed = parse_nt(serialize_nt(graph))
        assert isomorphic(graph, reparsed)

    @given(st.lists(_rich_triples, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_turtle_roundtrip_preserves_isomorphism(self, triples):
        graph = Graph()
        graph.addN(triples)
        reparsed = parse_ttl(serialize_ttl(graph))
        assert isomorphic(graph, reparsed)


class TestSparqlProperties:
    @given(st.lists(st.tuples(_iris, _iris, _iris), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_select_star_returns_one_row_per_triple(self, triples):
        graph = Graph()
        graph.addN(triples)
        result = sparql_query(graph, "SELECT ?s ?p ?o WHERE { ?s ?p ?o }")
        assert len(list(result)) == len(set(triples))

    @given(st.lists(st.tuples(_iris, _iris, _iris), min_size=1, max_size=25))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_count_aggregate_matches_row_count(self, triples):
        graph = Graph()
        graph.addN(triples)
        result = sparql_query(graph, "SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }")
        row = next(iter(result))
        assert row["n"].value == len(set(triples))

    @given(st.lists(st.tuples(_iris, _iris, _iris), max_size=25), _iris)
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_ask_agrees_with_membership(self, triples, probe):
        graph = Graph()
        graph.addN(triples)
        result = sparql_query(graph, f"ASK {{ <{probe}> ?p ?o }}")
        expected = any(s == probe for s, _, _ in graph)
        assert result.askAnswer is expected


class TestReasonerProperties:
    @given(st.lists(st.tuples(_iris, _iris), min_size=1, max_size=12), st.data())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_subclass_chain_membership_propagates(self, edges, data):
        """Typing an individual with any class propagates to all its ancestors."""
        graph = Graph()
        for sub, sup in edges:
            if sub != sup:
                graph.add((sub, RDFS_SUBCLASSOF, sup))
        start = data.draw(st.sampled_from([sub for sub, _ in edges]))
        individual = IRI("http://example.org/__individual")
        graph.add((individual, RDF_TYPE, start))
        inferred = Reasoner(graph).run()
        # Compute reachable ancestors over the asserted edges.
        reachable, frontier = set(), {start}
        adjacency = {}
        for sub, sup in edges:
            if sub != sup:
                adjacency.setdefault(sub, set()).add(sup)
        while frontier:
            node = frontier.pop()
            for parent in adjacency.get(node, ()):
                if parent not in reachable:
                    reachable.add(parent)
                    frontier.add(parent)
        for ancestor in reachable:
            assert (individual, RDF_TYPE, ancestor) in inferred

    @given(st.lists(st.tuples(_iris, _iris, _iris), max_size=20))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_reasoning_is_monotonic(self, triples):
        """The closure always contains the asserted graph."""
        graph = Graph()
        graph.addN(triples)
        inferred = Reasoner(graph).run()
        assert set(graph) <= set(inferred)


class TestFactFoilProperties:
    @given(st.booleans(), st.booleans(), st.booleans(), st.booleans())
    @settings(max_examples=64, deadline=None)
    def test_verdict_is_total_and_closed(self, supports, present, opposes, opposed_by):
        verdict = classify_characteristic(supports, present, opposes, opposed_by)
        assert verdict in {"fact", "foil", "neither"}

    @given(st.booleans(), st.booleans())
    @settings(max_examples=16, deadline=None)
    def test_untouched_characteristics_are_never_facts_or_foils(self, present, opposed_by):
        assert classify_characteristic(False, present, False, opposed_by) == "neither"

    @given(st.booleans(), st.booleans(), st.booleans())
    @settings(max_examples=32, deadline=None)
    def test_facts_require_ecosystem_presence_without_opposition(self, present, opposes, opposed_by):
        verdict = classify_characteristic(True, present, opposes, opposed_by)
        if verdict == "fact":
            assert present and not opposed_by


class TestCatalogProperties:
    @given(st.text(alphabet=string.ascii_letters + string.digits + " _-'&", min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_slugify_produces_identifier_safe_names(self, name):
        slug = slugify(name)
        assert all(ch.isalnum() for ch in slug)

    @given(st.floats(min_value=0, max_value=1000, allow_nan=False),
           st.floats(min_value=0, max_value=1000, allow_nan=False),
           st.floats(min_value=0.1, max_value=3.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_nutrient_profile_scaling_is_linear(self, calories, protein, factor):
        profile = NutrientProfile(calories=calories, protein=protein)
        scaled = profile.scaled(factor)
        assert scaled.calories == pytest.approx(calories * factor)
        assert scaled.protein == pytest.approx(protein * factor)

    @given(st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=12),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_generated_catalogues_always_reference_known_ingredients(self, extra_ing, extra_rec, seed):
        catalog = generate_catalog(extra_ingredients=extra_ing, extra_recipes=extra_rec, seed=seed)
        for recipe in catalog.recipes.values():
            assert set(recipe.ingredients) <= set(catalog.ingredients)

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=0, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_synthetic_ingredients_are_deterministic_per_seed(self, seed, index):
        first = SyntheticCatalogGenerator(seed=seed).ingredient(index)
        second = SyntheticCatalogGenerator(seed=seed).ingredient(index)
        assert first == second


class TestSnapshotProperties:
    """The persistent snapshot store round-trips arbitrary graph families
    and fails *closed*: any corruption raises the typed
    :class:`~repro.storage.SnapshotError`, never yields a partial graph."""

    @staticmethod
    def _save(tmp_path, triples):
        from repro.storage import save_snapshot

        graph = Graph()
        graph.addN(triples)
        path = tmp_path / "family.snap"
        save_snapshot(str(path), graph)
        return graph, path

    @given(st.lists(_rich_triples, max_size=40))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_random_graphs_survive_a_save_load_cycle(self, tmp_path, triples):
        from repro.storage import load_snapshot

        graph, path = self._save(tmp_path, triples)
        loaded = load_snapshot(str(path)).graph
        assert set(loaded) == set(graph)
        assert loaded.fingerprint() == graph.fingerprint()
        assert loaded.index_stats() == graph.index_stats()
        assert loaded.serialize("ntriples") == graph.serialize("ntriples")
        # The rebuilt dictionary is a bijection over the loaded terms.
        terms = [loaded.dictionary.decode(tid)
                 for triple in loaded.triples_ids() for tid in triple]
        assert all(loaded.dictionary.intern(term) == loaded.dictionary.lookup(term)
                   for term in terms)

    @given(st.lists(_rich_triples, min_size=1, max_size=25),
           st.data())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_any_single_byte_corruption_is_a_typed_failure(self, tmp_path,
                                                           triples, data):
        from repro.storage import SnapshotError, load_snapshot

        _, path = self._save(tmp_path, triples)
        blob = bytearray(path.read_bytes())
        position = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        mask = data.draw(st.integers(min_value=1, max_value=255))
        blob[position] ^= mask  # guaranteed to change the byte
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError):
            load_snapshot(str(path))

    @given(st.lists(_rich_triples, min_size=1, max_size=25), st.data())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_any_truncation_is_a_typed_failure(self, tmp_path, triples, data):
        from repro.storage import SnapshotError, load_snapshot

        _, path = self._save(tmp_path, triples)
        blob = path.read_bytes()
        keep = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        path.write_bytes(blob[:keep])
        with pytest.raises(SnapshotError):
            load_snapshot(str(path))

    @given(st.lists(_rich_triples, min_size=1, max_size=25),
           st.integers(min_value=2, max_value=0xFFFF))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_unknown_format_versions_are_rejected(self, tmp_path, triples,
                                                  version):
        import struct

        from repro.storage import FORMAT_VERSION, SnapshotError, load_snapshot

        if version == FORMAT_VERSION:
            version += 1
        _, path = self._save(tmp_path, triples)
        blob = bytearray(path.read_bytes())
        struct.pack_into("<H", blob, 4, version)  # the version field
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(str(path))
