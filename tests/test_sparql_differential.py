"""Differential tests: planned evaluation vs the naive left-to-right oracle.

Every case builds a randomized graph and a randomized query, evaluates it
through the cost-based planner (``PreparedQuery.evaluate``) and through
the naive evaluator (``PreparedQuery.evaluate_naive``), and asserts the
results are identical as multisets — or, under ORDER BY, that the sort-key
sequences also agree (ties among other columns may legally permute when
the join order changes).

The generator covers the planner's rewrite surface: BGP orderings (with
adversarial var-var and unbound-predicate patterns), FILTER placement
(including EXISTS and BOUND on possibly-unbound variables), OPTIONAL,
UNION, MINUS, BIND, VALUES, property paths, and ``init_bindings``.
"""

from __future__ import annotations

import random

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.sparql import prepare

EX = "http://example.org/"
RDF_TYPE = "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"

N_CASES = 240

VARS = ["?a", "?b", "?c", "?d"]


# ---------------------------------------------------------------------------
# Random graphs
# ---------------------------------------------------------------------------
def build_graph(rng: random.Random):
    graph = Graph()
    graph.bind("ex", EX)
    subjects = [IRI(EX + f"e{i}") for i in range(rng.randint(6, 14))]
    predicates = [IRI(EX + f"p{i}") for i in range(rng.randint(2, 4))]
    classes = [IRI(EX + f"C{i}") for i in range(3)]
    rdf_type = IRI(RDF_TYPE.strip("<>"))
    objects = subjects + [Literal(n) for n in range(6)]
    for _ in range(rng.randint(30, 110)):
        graph.add((rng.choice(subjects), rng.choice(predicates), rng.choice(objects)))
    for subject in subjects:
        if rng.random() < 0.7:
            graph.add((subject, rdf_type, rng.choice(classes)))
    return graph, subjects, predicates, classes


# ---------------------------------------------------------------------------
# Random queries
# ---------------------------------------------------------------------------
def _term(rng, subjects, predicates, classes, bound_pool, kind):
    """One triple-pattern position: a variable or a constant."""
    if kind == "s":
        choices = [f"ex:{s.local_name()}" for s in subjects]
    elif kind == "p":
        choices = [f"ex:{p.local_name()}" for p in predicates] + ["a"]
    else:
        choices = (
            [f"ex:{s.local_name()}" for s in subjects]
            + [f"ex:{c.local_name()}" for c in classes]
            + [str(n) for n in range(6)]
        )
    if rng.random() < (0.55 if kind != "p" else 0.3):
        return rng.choice(bound_pool)
    return rng.choice(choices)


def _bgp(rng, subjects, predicates, classes, count, var_pool=VARS):
    lines = []
    for _ in range(count):
        s = _term(rng, subjects, predicates, classes, var_pool, "s")
        p = _term(rng, subjects, predicates, classes, var_pool, "p")
        o = _term(rng, subjects, predicates, classes, var_pool, "o")
        lines.append(f"  {s} {p} {o} .")
    return "\n".join(lines)


def _filter(rng):
    return rng.choice([
        "  FILTER ( ?a != ?b ) .",
        "  FILTER ( isIRI(?a) ) .",
        "  FILTER ( ?c > 2 ) .",
        "  FILTER ( BOUND(?c) ) .",
        "  FILTER ( !BOUND(?d) ) .",
        "  FILTER ( ?a IN (ex:e0, ex:e1, ex:e2) ) .",
        "  FILTER EXISTS { ?a ex:p0 ?z } .",
        "  FILTER NOT EXISTS { ?a ex:p1 ?c } .",
    ])


def _shape_bgp(rng, subjects, predicates, classes):
    body = _bgp(rng, subjects, predicates, classes, rng.randint(2, 4))
    distinct = "DISTINCT " if rng.random() < 0.4 else ""
    return f"SELECT {distinct}* WHERE {{\n{body}\n}}", None, False


def _shape_filters(rng, subjects, predicates, classes):
    parts = [_bgp(rng, subjects, predicates, classes, rng.randint(2, 3))]
    for _ in range(rng.randint(1, 2)):
        parts.insert(rng.randint(0, len(parts)), _filter(rng))
    return "SELECT * WHERE {\n" + "\n".join(parts) + "\n}", None, False


def _shape_optional(rng, subjects, predicates, classes):
    base = _bgp(rng, subjects, predicates, classes, 2)
    inner = _bgp(rng, subjects, predicates, classes, rng.randint(1, 2))
    extra = _filter(rng) if rng.random() < 0.5 else ""
    return (
        f"SELECT * WHERE {{\n{base}\n  OPTIONAL {{\n{inner}\n{extra}\n  }}\n}}",
        None,
        False,
    )


def _shape_union(rng, subjects, predicates, classes):
    left = _bgp(rng, subjects, predicates, classes, rng.randint(1, 2))
    right = _bgp(rng, subjects, predicates, classes, rng.randint(1, 2))
    tail = _bgp(rng, subjects, predicates, classes, 1) if rng.random() < 0.5 else ""
    return (
        f"SELECT * WHERE {{\n{tail}\n  {{\n{left}\n  }} UNION {{\n{right}\n  }}\n}}",
        None,
        False,
    )


def _shape_minus(rng, subjects, predicates, classes):
    base = _bgp(rng, subjects, predicates, classes, 2)
    inner = _bgp(rng, subjects, predicates, classes, rng.randint(1, 2))
    return f"SELECT * WHERE {{\n{base}\n  MINUS {{\n{inner}\n  }}\n}}", None, False


def _shape_path(rng, subjects, predicates, classes):
    path = rng.choice([
        "ex:p0/ex:p1", "ex:p0+", "ex:p1*", "^ex:p0", "(ex:p0|ex:p1)",
    ])
    endpoint = (
        f"ex:{rng.choice(subjects).local_name()}" if rng.random() < 0.4 else "?b"
    )
    extra = _bgp(rng, subjects, predicates, classes, 1)
    return f"SELECT * WHERE {{\n  ?a {path} {endpoint} .\n{extra}\n}}", None, False


def _shape_init_bindings(rng, subjects, predicates, classes):
    body = _bgp(rng, subjects, predicates, classes, rng.randint(2, 3))
    bindings = {"a": rng.choice(subjects)}
    return f"SELECT * WHERE {{\n{body}\n}}", bindings, False


def _shape_order_by(rng, subjects, predicates, classes):
    body = _bgp(rng, subjects, predicates, classes, rng.randint(2, 3))
    keys = rng.sample(["?a", "?b", "?c"], rng.randint(1, 2))
    rendered = " ".join(
        f"DESC({key})" if rng.random() < 0.5 else key for key in keys
    )
    return f"SELECT * WHERE {{\n{body}\n}} ORDER BY {rendered}", None, True


def _shape_mixed(rng, subjects, predicates, classes):
    base = _bgp(rng, subjects, predicates, classes, 2)
    inner = _bgp(rng, subjects, predicates, classes, 1)
    constraint = _filter(rng)
    bind = "  BIND ( ?c + 1 AS ?sum ) ." if rng.random() < 0.5 else ""
    values = (
        "  VALUES ?a { ex:e0 ex:e1 ex:e2 ex:e3 }" if rng.random() < 0.5 else ""
    )
    return (
        "SELECT * WHERE {\n" + values + "\n" + base + "\n" + constraint + "\n"
        + bind + "\n  OPTIONAL {\n" + inner + "\n  }\n}",
        None,
        False,
    )


SHAPES = [
    _shape_bgp,
    _shape_filters,
    _shape_optional,
    _shape_union,
    _shape_minus,
    _shape_path,
    _shape_init_bindings,
    _shape_order_by,
    _shape_mixed,
]


# ---------------------------------------------------------------------------
# Result comparison
# ---------------------------------------------------------------------------
def _canon(value):
    if value is None:
        return ""
    return value.n3() if hasattr(value, "n3") else str(value)


def _multiset(result):
    return sorted(tuple(_canon(value) for value in row) for row in result)


def _order_key_sequences(result, query_text):
    """Per-row values of the ORDER BY variables, in result order."""
    order_vars = []
    clause = query_text.rsplit("ORDER BY", 1)[1]
    for token in clause.replace("DESC(", " ").replace(")", " ").split():
        if token.startswith("?"):
            order_vars.append(token[1:])
    return [tuple(_canon(row.get(v)) for v in order_vars) for row in result]


@pytest.mark.parametrize("case", range(N_CASES))
def test_planned_matches_naive(case):
    rng = random.Random(11000 + case)
    graph, subjects, predicates, classes = build_graph(rng)
    shape = SHAPES[case % len(SHAPES)]
    query_text, bindings, ordered = shape(rng, subjects, predicates, classes)
    query_text = f"PREFIX ex: <{EX}>\n{query_text}"

    prepared = prepare(query_text, graph.namespace_manager)
    planned = list(prepared.evaluate(graph, bindings))
    naive = list(prepared.evaluate_naive(graph, bindings))

    assert _multiset(planned) == _multiset(naive), query_text
    if ordered:
        assert _order_key_sequences(planned, query_text) == _order_key_sequences(
            naive, query_text
        ), query_text


# ---------------------------------------------------------------------------
# The paper's competency queries, differentially, on a real scenario graph
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("listing", ["contextual", "contrastive", "counterfactual"])
def test_competency_listings_match_naive(listing, cq1_scenario, cq2_scenario, cq3_scenario):
    from repro.core.queries import (
        contextual_template,
        contrastive_template,
        counterfactual_template,
    )

    scenario = {
        "contextual": cq1_scenario,
        "contrastive": cq2_scenario,
        "counterfactual": cq3_scenario,
    }[listing]
    template = {
        "contextual": contextual_template(),
        "contrastive": contrastive_template(),
        "counterfactual": counterfactual_template(),
    }[listing]
    prepared = prepare(template, scenario.inferred.namespace_manager)
    bindings = {"question": scenario.question_iri}
    planned = _multiset(prepared.evaluate(scenario.inferred, bindings))
    naive = _multiset(prepared.evaluate_naive(scenario.inferred, bindings))
    assert planned == naive
    assert planned  # the listings must keep answering on the paper scenario
