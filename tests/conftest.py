"""Shared fixtures.

The expensive artefacts (combined ontology, loaded knowledge graph,
reasoned scenario graphs, the explanation engine) are session-scoped: they
are built once and treated as read-only by the tests that share them.
Tests that need to mutate a graph build their own.
"""

from __future__ import annotations

import pytest

from repro.core.engine import ExplanationEngine
from repro.core.questions import ContrastiveQuestion, WhatIfConditionQuestion, WhyQuestion
from repro.foodkg.catalog import build_core_catalog
from repro.foodkg.loader import load_catalog
from repro.ontology.feo import build_combined_ontology
from repro.owl import Reasoner
from repro.users.personas import paper_context, paper_user


@pytest.fixture(scope="session")
def catalog():
    """The curated food catalogue."""
    return build_core_catalog()


@pytest.fixture(scope="session")
def ontology_graph():
    """EO + food ontology + FEO, schema only."""
    return build_combined_ontology()


@pytest.fixture(scope="session")
def kg_graph(catalog):
    """Combined ontology plus the loaded food knowledge graph (asserted only)."""
    graph = build_combined_ontology()
    load_catalog(catalog, graph)
    return graph


@pytest.fixture(scope="session")
def inferred_kg(kg_graph):
    """The knowledge graph after reasoning (no scenario individuals)."""
    return Reasoner(kg_graph.copy()).run()


@pytest.fixture(scope="session")
def engine(catalog):
    """A shared explanation engine over the curated catalogue."""
    return ExplanationEngine(catalog=catalog)


@pytest.fixture(scope="session")
def user():
    return paper_user()


@pytest.fixture(scope="session")
def context():
    return paper_context()


@pytest.fixture(scope="session")
def cq1_scenario(engine, user, context):
    """Reasoned scenario for competency question 1 (contextual)."""
    question = WhyQuestion(text="Why should I eat Cauliflower Potato Curry?",
                           recipe="Cauliflower Potato Curry")
    return engine.build_scenario(question, user, context)


@pytest.fixture(scope="session")
def cq2_scenario(engine, user, context):
    """Reasoned scenario for competency question 2 (contrastive)."""
    question = ContrastiveQuestion(
        text="Why should I eat Butternut Squash Soup over a Broccoli Cheddar Soup?",
        primary="Butternut Squash Soup", secondary="Broccoli Cheddar Soup")
    return engine.build_scenario(question, user, context)


@pytest.fixture(scope="session")
def cq3_scenario(engine, user, context):
    """Reasoned scenario for competency question 3 (counterfactual)."""
    question = WhatIfConditionQuestion(text="What if I was pregnant?", condition="pregnancy")
    return engine.build_scenario(question, user, context)
