"""Integration tests: the paper's Listings 1-3 run against the reasoned scenarios.

These tests execute the SPARQL of the paper's listings (modulo IRI
substitution for the question individual) over the inferred graphs and
check that the rows the paper's result tables show are among the results.
"""

import pytest

from repro.core.queries import (
    characteristic_hierarchy_query,
    contextual_query,
    contrastive_query,
    counterfactual_query,
    fact_query,
    foil_query,
    property_lattice_query,
)


def _names(result, variable):
    return {term.local_name() for term in result.values(variable)}


class TestListing1Contextual:
    @pytest.fixture(scope="class")
    def result(self, cq1_scenario):
        return cq1_scenario.query(contextual_query(cq1_scenario.question_iri))

    def test_returns_at_least_one_row(self, result):
        assert len(list(result)) >= 1

    def test_autumn_season_row_present(self, result):
        # The paper's result table: feo:Autumn / feo:SeasonCharacteristic.
        pairs = {(row["characteristic"].local_name(), row["classes"].local_name())
                 for row in result}
        assert ("Autumn", "SeasonCharacteristic") in pairs

    def test_all_characteristics_are_external(self, cq1_scenario, result):
        # Every returned characteristic carries feo:isInternal false.
        from repro.ontology import feo
        from repro.rdf.terms import Literal
        for characteristic in result.values("characteristic"):
            assert (characteristic, feo.isInternal, Literal(False)) in cq1_scenario.inferred

    def test_no_knowledge_classes_in_results(self, result):
        assert "IngredientCharacteristic" not in _names(result, "classes")

    def test_ecosystem_matched_variant_is_subset_of_paper_query(self, cq1_scenario):
        paper_rows = set()
        for row in cq1_scenario.query(contextual_query(cq1_scenario.question_iri)):
            paper_rows.add((row["characteristic"], row["classes"]))
        matched_rows = set()
        for row in cq1_scenario.query(
                contextual_query(cq1_scenario.question_iri, match_ecosystem=True)):
            matched_rows.add((row["characteristic"], row["classes"]))
        assert matched_rows <= paper_rows


class TestListing2Contrastive:
    @pytest.fixture(scope="class")
    def result(self, cq2_scenario):
        return cq2_scenario.query(contrastive_query(cq2_scenario.question_iri))

    def test_returns_rows(self, result):
        assert len(list(result)) >= 1

    def test_paper_fact_row(self, result):
        # fact: feo:Autumn typed feo:SeasonCharacteristic
        pairs = {(row["factA"].local_name(), row["factType"].local_name()) for row in result}
        assert ("Autumn", "SeasonCharacteristic") in pairs

    def test_paper_foil_row(self, result):
        # foil: feo:Broccoli typed feo:AllergicFoodCharacteristic
        pairs = {(row["foilB"].local_name(), row["foilType"].local_name()) for row in result}
        assert ("Broccoli", "AllergicFoodCharacteristic") in pairs

    def test_fact_types_are_leaf_characteristic_classes(self, result):
        assert "SystemCharacteristic" not in _names(result, "factType")
        assert "Characteristic" not in _names(result, "factType")

    def test_foils_do_not_include_primary_parameter_facts(self, result):
        assert "Autumn" not in _names(result, "foilB")


class TestListing3Counterfactual:
    @pytest.fixture(scope="class")
    def result(self, cq3_scenario):
        return cq3_scenario.query(counterfactual_query(cq3_scenario.question_iri))

    def test_returns_rows(self, result):
        assert len(list(result)) >= 2

    def test_forbids_sushi_row(self, result):
        rows = {(row["property"].local_name(), row["baseFood"].local_name()) for row in result}
        assert ("forbids", "Sushi") in rows

    def test_recommends_spinach_with_frittata_row(self, result):
        rows = {
            (row["property"].local_name(), row["baseFood"].local_name(),
             row["inheritedFood"].local_name() if row.get("inheritedFood") else None)
            for row in result
        }
        assert ("recommends", "Spinach", "SpinachFrittata") in rows

    def test_only_subproperties_of_is_characteristic_of_appear(self, result):
        assert _names(result, "property") <= {"forbids", "recommends"}

    def test_base_foods_are_foods(self, cq3_scenario, result):
        from repro.ontology import food
        from repro.rdf.terms import IRI
        rdf_type = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        for base_food in result.values("baseFood"):
            assert (base_food, rdf_type, food.Food) in cq3_scenario.inferred


class TestAuxiliaryQueries:
    def test_figure1_hierarchy_query(self, cq1_scenario):
        result = cq1_scenario.query(characteristic_hierarchy_query())
        classes = _names(result, "cls")
        assert {"Parameter", "UserCharacteristic", "SystemCharacteristic",
                "SeasonCharacteristic", "LikedFoodCharacteristic"} <= classes

    def test_figure2_property_lattice_query(self, cq1_scenario):
        result = cq1_scenario.query(property_lattice_query())
        pairs = {(row["property"].local_name(), row["superProperty"].local_name())
                 for row in result}
        assert ("forbids", "isOpposedBy") in pairs
        assert ("forbids", "isCharacteristicOf") in pairs
        assert ("recommends", "isCharacteristicOf") in pairs
        assert ("likes", "hasCharacteristic") in pairs

    def test_fact_and_foil_queries(self, cq2_scenario):
        facts = _names(cq2_scenario.query(fact_query()), "fact")
        foils = _names(cq2_scenario.query(foil_query()), "foil")
        assert "Autumn" in facts
        assert "Broccoli" in foils
