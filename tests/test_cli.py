"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def shared_engine(engine):
    # Reuse the session engine fixture for CLI calls (avoids rebuilding the KG).
    return engine


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_ask_arguments(self):
        args = build_parser().parse_args(["ask", "Why should I eat Sushi?",
                                          "--persona", "paper", "--type", "everyday"])
        assert args.command == "ask"
        assert args.explanation_type == "everyday"

    def test_unknown_persona_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ask", "Why?", "--persona", "nobody"])

    def test_export_defaults(self):
        args = build_parser().parse_args(["export"])
        assert args.output == "-" and args.format == "turtle"


class TestCommands:
    def test_ask_prints_explanation(self, shared_engine, capsys):
        code = main(["ask", "Why should I eat Cauliflower Potato Curry?",
                     "--show-evidence"], engine=shared_engine)
        out = capsys.readouterr().out
        assert code == 0
        assert "contextual explanation" in out
        assert "Autumn" in out

    def test_ask_with_explicit_type(self, shared_engine, capsys):
        code = main(["ask", "Why should I eat Sushi?", "--type", "everyday"],
                    engine=shared_engine)
        out = capsys.readouterr().out
        assert code == 0
        assert "everyday" in out

    def test_recommend_lists_ranked_recipes(self, shared_engine, capsys):
        code = main(["recommend", "--persona", "pregnant_user", "--top-k", "2"],
                    engine=shared_engine)
        out = capsys.readouterr().out
        assert code == 0
        assert "#1" in out and "#2" in out

    def test_competency_command_passes(self, shared_engine, capsys):
        code = main(["competency"], engine=shared_engine)
        out = capsys.readouterr().out
        assert code == 0
        assert "[PASS] CQ1" in out and "3/3" in out

    def test_export_to_stdout(self, shared_engine, capsys):
        code = main(["export"], engine=shared_engine)
        out = capsys.readouterr().out
        assert code == 0
        assert "feo:Characteristic" in out

    def test_serve_answers_request_stream(self, shared_engine, tmp_path, capsys):
        requests = tmp_path / "requests.txt"
        requests.write_text(
            "# two repeats then another persona\n"
            "Why should I eat Cauliflower Potato Curry?\n"
            "Why should I eat Cauliflower Potato Curry?\n"
            "pregnant_user: What if I was pregnant?\n"
        )
        code = main(["serve", "--requests", str(requests), "--stats"],
                    engine=shared_engine)
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("Cauliflower Potato Curry?") == 2
        assert "| cached]" in out            # the repeat hit the scenario cache
        assert "[pregnant_user | counterfactual]" in out
        assert "requests served:        3" in out
        assert "active sessions:        2" in out

    def test_serve_missing_requests_file_fails_cleanly(self, shared_engine, capsys):
        code = main(["serve", "--requests", "/no/such/file.txt"], engine=shared_engine)
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot read requests file" in err

    def test_serve_continues_past_unparseable_lines(self, shared_engine, tmp_path, capsys):
        requests = tmp_path / "requests.txt"
        requests.write_text("gibberish not a question\nWhy should I eat Sushi?\n")
        code = main(["serve", "--requests", str(requests)], engine=shared_engine)
        out = capsys.readouterr().out
        assert code == 1
        assert "[error] gibberish not a question" in out
        assert "[paper | contextual] Why should I eat Sushi?" in out

    def test_serve_continues_past_unknown_foods_and_types(self, shared_engine, tmp_path, capsys):
        requests = tmp_path / "requests.txt"
        requests.write_text("Why should I eat Completely Unknown Dish?\n"
                            "Why should I eat Sushi?\n")
        code = main(["serve", "--requests", str(requests)], engine=shared_engine)
        out = capsys.readouterr().out
        assert code == 1
        assert "[error] Why should I eat Completely Unknown Dish?" in out
        assert "[paper | contextual] Why should I eat Sushi?" in out

        requests.write_text("Why should I eat Sushi?\n")
        code = main(["serve", "--requests", str(requests), "--type", "bogus"],
                    engine=shared_engine)
        out = capsys.readouterr().out
        assert code == 1
        assert "[error] Why should I eat Sushi?" in out

    def test_export_to_file(self, shared_engine, tmp_path, capsys):
        target = tmp_path / "kg.nt"
        code = main(["export", "--output", str(target), "--format", "ntriples"],
                    engine=shared_engine)
        capsys.readouterr()
        assert code == 0
        content = target.read_text()
        assert "https://purl.org/heals/feo#Characteristic" in content
