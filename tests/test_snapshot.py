"""Unit tests for the persistent snapshot store (`repro.storage.snapshot`).

Covers the graph-family round-trip (terms, triples, namespaces, index
metadata), closure-entry persistence — including delta-chained entries
and the cold-start ``install`` path — and the fail-closed behaviour on
corrupted, truncated or wrong-version files.
"""

from __future__ import annotations

import struct

import pytest

from repro.owl import MaterializationCache, Reasoner
from repro.owl.vocabulary import RDF_TYPE, RDFS_SUBCLASSOF
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.storage import (
    ClosureEntry,
    FORMAT_VERSION,
    MAGIC,
    SnapshotError,
    load_snapshot,
    save_snapshot,
)

EX = "http://example.org/"


def _family_graph() -> Graph:
    """A small graph exercising every term kind and a subclass chain."""
    graph = Graph()
    graph.namespace_manager.bind("ex", EX)
    graph.add((IRI(EX + "Dog"), RDFS_SUBCLASSOF, IRI(EX + "Animal")))
    graph.add((IRI(EX + "Animal"), RDFS_SUBCLASSOF, IRI(EX + "Thing")))
    graph.add((IRI(EX + "rex"), RDF_TYPE, IRI(EX + "Dog")))
    graph.add((IRI(EX + "rex"), IRI(EX + "name"), Literal("Rex")))
    graph.add((IRI(EX + "rex"), IRI(EX + "age"), Literal(7)))
    graph.add((IRI(EX + "rex"), IRI(EX + "motto"), Literal("wuff", language="de")))
    return graph


def _scenario(base: Graph, tag: str) -> Graph:
    """A per-tenant variant of ``base`` (same family, small delta)."""
    scenario = base.copy()
    scenario.add((IRI(EX + tag), RDF_TYPE, IRI(EX + "Dog")))
    return scenario


class TestGraphRoundTrip:
    def test_graph_methods_round_trip(self, tmp_path):
        graph = _family_graph()
        path = str(tmp_path / "family.snap")
        stats = graph.to_snapshot(path)
        assert stats["triples"] == len(graph)
        loaded = Graph.from_snapshot(path)
        assert set(loaded) == set(graph)
        assert loaded.fingerprint() == graph.fingerprint()
        assert loaded.index_stats() == graph.index_stats()
        assert loaded.serialize("ntriples") == graph.serialize("ntriples")

    def test_namespace_bindings_survive(self, tmp_path):
        graph = _family_graph()
        path = str(tmp_path / "family.snap")
        graph.to_snapshot(path)
        loaded = Graph.from_snapshot(path)
        assert dict(loaded.namespaces())["ex"] == IRI(EX)
        assert loaded.qname(IRI(EX + "Dog")) == "ex:Dog"

    def test_loaded_graph_is_independently_mutable(self, tmp_path):
        graph = _family_graph()
        path = str(tmp_path / "family.snap")
        graph.to_snapshot(path)
        loaded = Graph.from_snapshot(path)
        probe = (IRI(EX + "probe"), IRI(EX + "p"), IRI(EX + "o"))
        loaded.add(probe)
        loaded.remove((IRI(EX + "rex"), IRI(EX + "name"), Literal("Rex")))
        assert probe in loaded and probe not in graph
        assert len(loaded) == len(graph)

    def test_empty_graph_round_trips(self, tmp_path):
        path = str(tmp_path / "empty.snap")
        Graph().to_snapshot(path)
        loaded = Graph.from_snapshot(path)
        assert len(loaded) == 0
        assert loaded.fingerprint() == Graph().fingerprint()


class TestClosurePersistence:
    def _entries(self, base):
        """Three reasoned closure entries over ``base`` (shared family)."""
        entries = []
        for n, tag in enumerate(("tenant-a", "tenant-b", "tenant-c")):
            asserted = _scenario(base, tag)
            closure = Reasoner(asserted).run()
            entries.append(ClosureEntry(asserted=asserted, closure=closure,
                                        label=tag if n else None))
        return entries

    def test_closure_entries_round_trip(self, tmp_path):
        base = _family_graph()
        entries = self._entries(base)
        path = str(tmp_path / "warm.snap")
        stats = save_snapshot(path, base, closures=entries)
        assert stats["closures"] == len(entries)
        loaded = load_snapshot(path)
        assert len(loaded.closures) == len(entries)
        for saved, restored in zip(entries, loaded.closures):
            assert set(restored.asserted) == set(saved.asserted)
            assert set(restored.closure) == set(saved.closure)
            assert restored.label == saved.label
            assert restored.asserted.fingerprint() == saved.asserted.fingerprint()
            assert restored.closure.fingerprint() == saved.closure.fingerprint()
            # Restored graphs are one family with the loaded base.
            assert restored.asserted.dictionary is loaded.graph.dictionary

    def test_delta_chained_siblings_round_trip(self, tmp_path):
        """Near-identical sibling closures (the fleet-snapshot shape the
        prev-chaining optimisation targets) restore exactly."""
        base = _family_graph()
        entries = []
        for n in range(6):
            asserted = _scenario(base, f"sibling-{n}")
            closure = Reasoner(asserted).run()
            entries.append(ClosureEntry(asserted=asserted, closure=closure,
                                        label=f"sibling-{n}"))
        path = str(tmp_path / "chained.snap")
        save_snapshot(path, base, closures=entries)
        loaded = load_snapshot(path)
        for saved, restored in zip(entries, loaded.closures):
            assert set(restored.closure) == set(saved.closure)
            assert restored.closure.fingerprint() == saved.closure.fingerprint()

    def test_loaded_entries_install_as_cache_hits(self, tmp_path):
        base = _family_graph()
        entries = self._entries(base)
        path = str(tmp_path / "warm.snap")
        save_snapshot(path, base, closures=entries)
        loaded = load_snapshot(path)
        cache = MaterializationCache(max_size=8)
        for entry in loaded.closures:
            cache.install(entry.asserted, entry.closure, entry.post_added)
        # Re-building the same scenario over the *loaded* family is a hit.
        scenario = _scenario(loaded.graph, "tenant-b")
        closure = cache.materialize(scenario)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 0
        assert set(closure) == set(Reasoner(scenario).run())

    def test_foreign_family_closures_are_rejected(self, tmp_path):
        base = _family_graph()
        foreign = _family_graph()  # same content, different dictionary
        entry = ClosureEntry(asserted=foreign, closure=Reasoner(foreign).run())
        with pytest.raises(SnapshotError, match="family"):
            save_snapshot(str(tmp_path / "bad.snap"), base, closures=[entry])


class TestFailClosed:
    def _saved(self, tmp_path, closures=False):
        base = _family_graph()
        entries = []
        if closures:
            asserted = _scenario(base, "tenant-a")
            entries = [ClosureEntry(asserted=asserted,
                                    closure=Reasoner(asserted).run())]
        path = tmp_path / "family.snap"
        save_snapshot(str(path), base, closures=entries)
        return path

    def test_bad_magic(self, tmp_path):
        path = self._saved(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[:4] = b"NOPE"
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="not a graph snapshot"):
            load_snapshot(str(path))

    def test_wrong_version(self, tmp_path):
        path = self._saved(tmp_path)
        blob = bytearray(path.read_bytes())
        struct.pack_into("<H", blob, len(MAGIC), FORMAT_VERSION + 1)
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(str(path))

    def test_truncated_header_and_payload(self, tmp_path):
        path = self._saved(tmp_path)
        blob = path.read_bytes()
        for keep in (0, 10, len(blob) // 2, len(blob) - 1):
            path.write_bytes(blob[:keep])
            with pytest.raises(SnapshotError):
                load_snapshot(str(path))

    def test_payload_corruption_fails_the_crc(self, tmp_path):
        path = self._saved(tmp_path, closures=True)
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="CRC"):
            load_snapshot(str(path))

    def test_missing_file_is_a_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_snapshot(str(tmp_path / "does-not-exist.snap"))


class TestAtomicWrites:
    """A failed save must never damage an existing snapshot on disk."""

    def test_torn_write_leaves_previous_snapshot_intact(self, tmp_path):
        from repro.testing.faults import Fault, FaultInjector, InjectedFault, injected

        base = _family_graph()
        path = tmp_path / "family.snap"
        save_snapshot(str(path), base)
        good = path.read_bytes()

        bigger = _family_graph()
        bigger.add((IRI(EX + "extra"), RDF_TYPE, IRI(EX + "Dog")))
        torn = FaultInjector(
            faults=[Fault(site="snapshot_write", action="error", at=(0,))]
        )
        with injected(torn):
            with pytest.raises(InjectedFault):
                save_snapshot(str(path), bigger)

        # The original file is byte-identical and still loads.
        assert path.read_bytes() == good
        loaded = load_snapshot(str(path))
        assert len(loaded.graph) == len(base)

    def test_failed_save_leaves_no_temp_files(self, tmp_path):
        from repro.testing.faults import Fault, FaultInjector, InjectedFault, injected

        path = tmp_path / "family.snap"
        torn = FaultInjector(
            faults=[Fault(site="snapshot_write", action="error", at=(0,))]
        )
        with injected(torn):
            with pytest.raises(InjectedFault):
                save_snapshot(str(path), _family_graph())

        assert list(tmp_path.iterdir()) == []

    def test_successful_save_replaces_atomically(self, tmp_path):
        path = tmp_path / "family.snap"
        save_snapshot(str(path), _family_graph())

        bigger = _family_graph()
        bigger.add((IRI(EX + "extra"), RDF_TYPE, IRI(EX + "Dog")))
        save_snapshot(str(path), bigger)

        loaded = load_snapshot(str(path))
        assert len(loaded.graph) == len(bigger)
        # No stray temp files once the replace lands.
        assert [p.name for p in tmp_path.iterdir()] == ["family.snap"]
