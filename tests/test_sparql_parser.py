"""Tests for the SPARQL tokenizer and parser (query text → algebra)."""

import pytest

from repro.rdf.namespace import NamespaceManager
from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.algebra import (
    AskQuery,
    BGP,
    BindPattern,
    ConstructQuery,
    ExistsExpr,
    FilterPattern,
    GroupPattern,
    ModifiedPath,
    OptionalPattern,
    SelectQuery,
    SequencePath,
    TriplePattern,
    UnionPattern,
    ValuesPattern,
)
from repro.sparql.parser import parse_query
from repro.sparql.tokenizer import SparqlSyntaxError, tokenize

EX = "http://example.org/"


def parse(text):
    manager = NamespaceManager()
    manager.bind("ex", EX)
    return parse_query(text, manager)


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        kinds = [t.value for t in tokenize("select Where FILTER") if t.kind == "KEYWORD"]
        assert kinds == ["SELECT", "WHERE", "FILTER"]

    def test_variables(self):
        tokens = tokenize("?x $y")
        assert [t.value for t in tokens if t.kind == "VAR"] == ["?x", "$y"]

    def test_iri_and_pname(self):
        tokens = tokenize("<http://example.org/a> ex:b")
        assert tokens[0].kind == "IRIREF"
        assert tokens[1].kind == "PNAME"

    def test_comments_skipped(self):
        tokens = tokenize("SELECT # comment\n ?x")
        assert [t.kind for t in tokens[:-1]] == ["KEYWORD", "VAR"]

    def test_operators(self):
        values = [t.value for t in tokenize("= != <= >= && || !") if t.kind == "OP"]
        assert values == ["=", "!=", "<=", ">=", "&&", "||", "!"]

    def test_unexpected_character_raises(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("SELECT ~ WHERE")


class TestSelectParsing:
    def test_simple_select(self):
        q = parse("SELECT ?s WHERE { ?s ?p ?o }")
        assert isinstance(q, SelectQuery)
        assert q.projections[0].variable == Variable("s")
        bgp = q.where.patterns[0]
        assert isinstance(bgp, BGP)
        assert len(bgp.triples) == 1

    def test_select_star(self):
        q = parse("SELECT * WHERE { ?s ?p ?o }")
        assert q.select_all

    def test_distinct_flag(self):
        q = parse("SELECT DISTINCT ?s WHERE { ?s ?p ?o }")
        assert q.distinct

    def test_where_keyword_optional(self):
        q = parse("SELECT ?s { ?s ?p ?o }")
        assert isinstance(q, SelectQuery)

    def test_prefixed_names_resolved(self):
        q = parse("PREFIX foo: <http://foo.org/> SELECT ?s WHERE { ?s a foo:Thing }")
        triple = q.where.patterns[0].triples[0]
        assert triple.object == IRI("http://foo.org/Thing")

    def test_fallback_namespace_manager(self):
        q = parse("SELECT ?s WHERE { ?s a ex:Thing }")
        assert q.where.patterns[0].triples[0].object == IRI(EX + "Thing")

    def test_unknown_prefix_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse("SELECT ?s WHERE { ?s a missing:Thing }")

    def test_expression_projection(self):
        q = parse("SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }")
        assert q.projections[0].variable == Variable("n")
        assert q.projections[0].expression is not None

    def test_predicate_object_and_object_lists(self):
        q = parse("SELECT ?s WHERE { ?s ex:p ex:a , ex:b ; ex:q ex:c . }")
        assert len(q.where.patterns[0].triples) == 3

    def test_a_shorthand(self):
        q = parse("SELECT ?s WHERE { ?s a ex:Thing }")
        triple = q.where.patterns[0].triples[0]
        assert str(triple.predicate).endswith("#type")

    def test_literal_objects(self):
        q = parse('SELECT ?s WHERE { ?s ex:p "text" ; ex:q 5 ; ex:r true }')
        objects = [t.object for t in q.where.patterns[0].triples]
        assert Literal("text") in objects
        assert any(isinstance(o, Literal) and o.value == 5 for o in objects)
        assert any(isinstance(o, Literal) and o.value is True for o in objects)

    def test_solution_modifiers(self):
        q = parse("SELECT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) LIMIT 5 OFFSET 2")
        assert q.limit == 5 and q.offset == 2
        assert q.order_by[0].descending

    def test_group_by_and_having(self):
        q = parse(
            "SELECT ?p (COUNT(?s) AS ?n) WHERE { ?s ?p ?o } "
            "GROUP BY ?p HAVING (COUNT(?s) > 1)"
        )
        assert len(q.group_by) == 1
        assert len(q.having) == 1

    def test_trailing_garbage_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse("SELECT ?s WHERE { ?s ?p ?o } garbage")

    def test_missing_projection_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse("SELECT WHERE { ?s ?p ?o }")


class TestPatternParsing:
    def test_filter_expression(self):
        q = parse("SELECT ?s WHERE { ?s ex:age ?a . FILTER (?a > 5) }")
        assert any(isinstance(p, FilterPattern) for p in q.where.patterns)

    def test_filter_not_exists(self):
        q = parse("SELECT ?s WHERE { ?s ?p ?o . FILTER NOT EXISTS { ?s a ex:Hidden } }")
        filter_pattern = [p for p in q.where.patterns if isinstance(p, FilterPattern)][0]
        assert isinstance(filter_pattern.expression, ExistsExpr)
        assert filter_pattern.expression.negated

    def test_optional(self):
        q = parse("SELECT ?s WHERE { ?s ?p ?o . OPTIONAL { ?s ex:alt ?alt } }")
        assert any(isinstance(p, OptionalPattern) for p in q.where.patterns)

    def test_union(self):
        q = parse("SELECT ?s WHERE { { ?s a ex:A } UNION { ?s a ex:B } }")
        assert any(isinstance(p, UnionPattern) for p in q.where.patterns)

    def test_bind(self):
        q = parse("SELECT ?s WHERE { BIND (ex:a AS ?s) }")
        bind = q.where.patterns[0]
        assert isinstance(bind, BindPattern)
        assert bind.variable == Variable("s")

    def test_values_single_variable(self):
        q = parse("SELECT ?s WHERE { VALUES ?s { ex:a ex:b } }")
        values = q.where.patterns[0]
        assert isinstance(values, ValuesPattern)
        assert len(values.rows) == 2

    def test_values_multi_variable(self):
        q = parse("SELECT ?s WHERE { VALUES (?s ?o) { (ex:a 1) (ex:b UNDEF) } }")
        values = q.where.patterns[0]
        assert values.rows[1][1] is None

    def test_nested_group(self):
        q = parse("SELECT ?s WHERE { { ?s a ex:A . ?s ex:p ?o } }")
        assert isinstance(q.where.patterns[0], GroupPattern)

    def test_property_path_plus(self):
        q = parse("SELECT ?c WHERE { ?c ex:subClassOf+ ex:Root }")
        predicate = q.where.patterns[0].triples[0].predicate
        assert isinstance(predicate, ModifiedPath)
        assert predicate.modifier == "+"

    def test_property_path_sequence(self):
        q = parse("SELECT ?c WHERE { ?c ex:p/ex:q ?d }")
        assert isinstance(q.where.patterns[0].triples[0].predicate, SequencePath)

    def test_parenthesised_path(self):
        q = parse("SELECT ?c WHERE { ?c (ex:subClassOf+) ex:Root }")
        assert isinstance(q.where.patterns[0].triples[0].predicate, ModifiedPath)

    def test_blank_node_object(self):
        q = parse("SELECT ?s WHERE { ?s ex:p [ ex:q ex:r ] }")
        assert len(q.where.patterns[0].triples) == 2


class TestOtherQueryForms:
    def test_ask(self):
        q = parse("ASK { ?s a ex:Thing }")
        assert isinstance(q, AskQuery)

    def test_construct(self):
        q = parse("CONSTRUCT { ?s ex:copied ?o } WHERE { ?s ex:p ?o }")
        assert isinstance(q, ConstructQuery)
        assert len(q.template) == 1

    def test_unknown_query_form_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse("DELETE WHERE { ?s ?p ?o }")
