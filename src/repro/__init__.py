"""Reproduction of "Semantic Modeling for Food Recommendation Explanations" (FEO).

The package is organised bottom-up:

* :mod:`repro.rdf` — RDF data model and triple store (the RDFLib substitute);
* :mod:`repro.sparql` — SPARQL 1.1 subset engine;
* :mod:`repro.owl` — OWL-RL-style materialising reasoner (the Pellet substitute);
* :mod:`repro.ontology` — the Explanation Ontology subset, the food ontology
  and FEO itself;
* :mod:`repro.foodkg` — the synthetic FoodKG (curated catalogue + generator);
* :mod:`repro.users` / :mod:`repro.recommender` — user modelling and the
  Health Coach substitute;
* :mod:`repro.core` — scenario assembly, fact/foil semantics, the explanation
  generators and the :class:`~repro.core.engine.ExplanationEngine` facade;
* :mod:`repro.evaluation` — competency-question and coverage evaluation;
* :mod:`repro.service` — the multi-user serving layer
  (:class:`~repro.service.ExplanationService`): prepared queries, cached
  reasoning, batched requests and session management.
"""

from .core.engine import ExplanationEngine
from .core.questions import parse_question
from .foodkg.catalog import build_core_catalog
from .recommender.health_coach import HealthCoach
from .service import ExplanationRequest, ExplanationResponse, ExplanationService
from .users.context import SystemContext
from .users.personas import paper_context, paper_user
from .users.profile import UserProfile

__version__ = "1.1.0"

__all__ = [
    "ExplanationEngine",
    "ExplanationRequest",
    "ExplanationResponse",
    "ExplanationService",
    "HealthCoach",
    "SystemContext",
    "UserProfile",
    "__version__",
    "build_core_catalog",
    "paper_context",
    "paper_user",
    "parse_question",
]
