"""Coverage matrix: personas × explanation types.

Experiment E10 in DESIGN.md: for every persona and every Table I
explanation type, can the pipeline produce a non-empty explanation for a
representative question?  This quantifies the paper's claim that FEO's
modular structure "lends itself to a variety of explanations".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import ExplanationEngine
from ..core.questions import ContrastiveQuestion, WhatIfConditionQuestion, WhyQuestion
from ..users.context import SystemContext
from ..users.personas import all_personas
from ..users.profile import UserProfile

__all__ = ["CoverageCell", "CoverageMatrix", "compute_coverage"]


@dataclass(frozen=True)
class CoverageCell:
    """One persona × explanation-type outcome."""

    persona: str
    explanation_type: str
    covered: bool
    item_count: int


@dataclass
class CoverageMatrix:
    """All coverage cells plus convenience accessors."""

    cells: List[CoverageCell] = field(default_factory=list)

    def covered(self, persona: str, explanation_type: str) -> bool:
        for cell in self.cells:
            if cell.persona == persona and cell.explanation_type == explanation_type:
                return cell.covered
        raise KeyError((persona, explanation_type))

    def coverage_by_type(self) -> Dict[str, float]:
        """Fraction of personas covered, per explanation type."""
        totals: Dict[str, List[int]] = {}
        for cell in self.cells:
            bucket = totals.setdefault(cell.explanation_type, [0, 0])
            bucket[1] += 1
            if cell.covered:
                bucket[0] += 1
        return {etype: covered / total for etype, (covered, total) in sorted(totals.items())}

    def overall_coverage(self) -> float:
        if not self.cells:
            return 0.0
        return sum(1 for cell in self.cells if cell.covered) / len(self.cells)

    def to_table(self) -> str:
        """Render the matrix as an aligned text table."""
        personas = sorted({cell.persona for cell in self.cells})
        types = sorted({cell.explanation_type for cell in self.cells})
        width = max((len(p) for p in personas), default=8)
        header = "persona".ljust(width) + "  " + "  ".join(t[:12].ljust(12) for t in types)
        lines = [header, "-" * len(header)]
        for persona in personas:
            row = [persona.ljust(width)]
            for etype in types:
                mark = "yes" if self.covered(persona, etype) else "-"
                row.append(mark.ljust(12))
            lines.append("  ".join(row))
        return "\n".join(lines)


def _question_for(
    engine: ExplanationEngine, user: UserProfile, context: SystemContext
) -> Dict[str, object]:
    """Pick a representative question per explanation type for one persona."""
    liked = next((name for name in user.likes if name in engine.catalog.recipes), None)
    recipe = liked or next(iter(engine.catalog.recipes))
    other = next(name for name in engine.catalog.recipes if name != recipe)
    condition = user.conditions[0] if user.conditions else "pregnancy"
    why = WhyQuestion(text=f"Why should I eat {recipe}?", recipe=recipe)
    # Case-based explanations compare against other users' recommendations, so
    # they are asked about this persona's own top recommendation.
    top = engine.recommender.recommend_one(user, context)
    case_recipe = top.recipe if top is not None else recipe
    return {
        "contextual": why,
        "contrastive": ContrastiveQuestion(
            text=f"Why should I eat {recipe} over {other}?", primary=recipe, secondary=other),
        "counterfactual": WhatIfConditionQuestion(
            text=f"What if I was {condition.replace('_', ' ')}?", condition=condition),
        "scientific": why,
        "statistical": why,
        "case_based": WhyQuestion(text=f"Why should I eat {case_recipe}?", recipe=case_recipe),
        "trace_based": why,
        "everyday": why,
        "simulation_based": why,
    }


def compute_coverage(
    engine: Optional[ExplanationEngine] = None,
    personas: Optional[Dict[str, Tuple[UserProfile, SystemContext]]] = None,
    explanation_types: Optional[Sequence[str]] = None,
) -> CoverageMatrix:
    """Compute the persona × explanation-type coverage matrix."""
    engine = engine if engine is not None else ExplanationEngine()
    personas = personas if personas is not None else all_personas()
    matrix = CoverageMatrix()
    for persona_key, (user, context) in personas.items():
        questions = _question_for(engine, user, context)
        types = explanation_types if explanation_types is not None else sorted(questions)
        for explanation_type in types:
            question = questions[explanation_type]
            recommendation = None
            if explanation_type == "trace_based":
                recommendation = engine.recommender.recommend_one(user, context)
            explanation = engine.explain(
                question, user, context,
                explanation_type=explanation_type, recommendation=recommendation,
            )
            matrix.cells.append(CoverageCell(
                persona=persona_key,
                explanation_type=explanation_type,
                covered=not explanation.is_empty,
                item_count=len(explanation.items),
            ))
    return matrix
