"""Evaluation harness: competency questions, coverage matrix, metrics, report."""

from .coverage import CoverageCell, CoverageMatrix, compute_coverage
from .metrics import OntologyMetrics, QueryMetrics, ontology_metrics, query_metrics
from .report import EvaluationReport, run_evaluation

__all__ = [
    "CoverageCell",
    "CoverageMatrix",
    "EvaluationReport",
    "OntologyMetrics",
    "QueryMetrics",
    "compute_coverage",
    "ontology_metrics",
    "query_metrics",
    "run_evaluation",
]
