"""Ontology, query and reasoning metrics.

The paper's evaluation is qualitative (competency questions); these
metrics quantify the artefacts involved — how large the ontology is, how
complex the competency-question queries are, and how much work the
reasoner does — which is what the ablation benchmarks report.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional

from ..owl.vocabulary import (
    OWL_CLASS,
    OWL_DATATYPE_PROPERTY,
    OWL_EQUIVALENT_CLASS,
    OWL_NAMED_INDIVIDUAL,
    OWL_OBJECT_PROPERTY,
    RDF_TYPE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)
from ..rdf.graph import Graph
from ..rdf.terms import IRI

__all__ = ["OntologyMetrics", "QueryMetrics", "ontology_metrics", "query_metrics"]


@dataclass(frozen=True)
class OntologyMetrics:
    """Size statistics of an ontology (or ontology + instance) graph."""

    triples: int
    classes: int
    object_properties: int
    datatype_properties: int
    named_individuals: int
    subclass_axioms: int
    subproperty_axioms: int
    equivalence_axioms: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "triples": self.triples,
            "classes": self.classes,
            "object_properties": self.object_properties,
            "datatype_properties": self.datatype_properties,
            "named_individuals": self.named_individuals,
            "subclass_axioms": self.subclass_axioms,
            "subproperty_axioms": self.subproperty_axioms,
            "equivalence_axioms": self.equivalence_axioms,
        }


def ontology_metrics(graph: Graph) -> OntologyMetrics:
    """Compute :class:`OntologyMetrics` for ``graph``."""
    return OntologyMetrics(
        triples=len(graph),
        classes=sum(1 for s in graph.subjects(RDF_TYPE, OWL_CLASS) if isinstance(s, IRI)),
        object_properties=sum(1 for _ in graph.subjects(RDF_TYPE, OWL_OBJECT_PROPERTY)),
        datatype_properties=sum(1 for _ in graph.subjects(RDF_TYPE, OWL_DATATYPE_PROPERTY)),
        named_individuals=sum(1 for _ in graph.subjects(RDF_TYPE, OWL_NAMED_INDIVIDUAL)),
        subclass_axioms=sum(1 for _ in graph.triples((None, RDFS_SUBCLASSOF, None))),
        subproperty_axioms=sum(1 for _ in graph.triples((None, RDFS_SUBPROPERTYOF, None))),
        equivalence_axioms=sum(1 for _ in graph.triples((None, OWL_EQUIVALENT_CLASS, None))),
    )


@dataclass(frozen=True)
class QueryMetrics:
    """Syntactic complexity of a SPARQL query (the paper stresses query simplicity)."""

    triple_patterns: int
    filters: int
    not_exists: int
    optionals: int
    property_paths: int
    variables: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "triple_patterns": self.triple_patterns,
            "filters": self.filters,
            "not_exists": self.not_exists,
            "optionals": self.optionals,
            "property_paths": self.property_paths,
            "variables": self.variables,
        }


def query_metrics(query_text: str) -> QueryMetrics:
    """Rough syntactic complexity measures for ``query_text``."""
    body = re.sub(r"PREFIX[^\n]*\n", "", query_text)
    filters = len(re.findall(r"\bFILTER\b", body, re.IGNORECASE))
    not_exists = len(re.findall(r"\bNOT\s+EXISTS\b", body, re.IGNORECASE))
    optionals = len(re.findall(r"\bOPTIONAL\b", body, re.IGNORECASE))
    paths = len(re.findall(r"[\w:]+[+*]", body))
    variables = len(set(re.findall(r"\?[A-Za-z_][A-Za-z0-9_]*", body)))
    # Triple patterns: lines inside WHERE ending with '.' that are not filters.
    pattern_lines = [
        line for line in body.splitlines()
        if line.strip().endswith(".")
        and not re.search(r"\bFILTER\b|\bPREFIX\b", line, re.IGNORECASE)
        and re.search(r"\?|<", line)
    ]
    return QueryMetrics(
        triple_patterns=len(pattern_lines),
        filters=filters,
        not_exists=not_exists,
        optionals=optionals,
        property_paths=paths,
        variables=variables,
    )
