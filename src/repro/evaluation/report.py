"""Evaluation report: competency questions + coverage + metrics in one text artifact."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.competency import (
    CompetencyResult,
    CompetencySuite,
    EXTENDED_COMPETENCY_QUESTIONS,
    PAPER_COMPETENCY_QUESTIONS,
)
from ..core.engine import ExplanationEngine
from ..core.queries import contextual_query, contrastive_query, counterfactual_query
from ..rdf.terms import IRI
from .coverage import CoverageMatrix, compute_coverage
from .metrics import ontology_metrics, query_metrics

__all__ = ["EvaluationReport", "run_evaluation"]


@dataclass
class EvaluationReport:
    """Everything the evaluation produces, with a text rendering."""

    competency_results: List[CompetencyResult]
    coverage: CoverageMatrix
    ontology_stats: Dict[str, int]
    query_stats: Dict[str, Dict[str, int]]

    @property
    def all_passed(self) -> bool:
        return all(result.passed for result in self.competency_results)

    def to_text(self) -> str:
        lines: List[str] = []
        lines.append("FEO reproduction — evaluation report")
        lines.append("=" * 48)
        lines.append("")
        lines.append("Competency questions (Section V):")
        for result in self.competency_results:
            status = "PASS" if result.passed else "FAIL"
            lines.append(f"  [{status}] {result.question.identifier}: "
                         f"{result.question.question.text} "
                         f"({len(result.explanation.items)} evidence items)")
            if result.missing:
                lines.append(f"         missing: {[b.subject for b in result.missing]}")
        lines.append("")
        lines.append("Coverage (personas x explanation types):")
        lines.append(self.coverage.to_table())
        lines.append(f"  overall coverage: {self.coverage.overall_coverage():.0%}")
        lines.append("")
        lines.append("Ontology metrics:")
        for key, value in self.ontology_stats.items():
            lines.append(f"  {key}: {value}")
        lines.append("")
        lines.append("Competency-question query complexity:")
        for name, stats in self.query_stats.items():
            rendered = ", ".join(f"{k}={v}" for k, v in stats.items())
            lines.append(f"  {name}: {rendered}")
        return "\n".join(lines)


def run_evaluation(
    engine: Optional[ExplanationEngine] = None,
    include_extended: bool = True,
) -> EvaluationReport:
    """Run the full evaluation and return the report."""
    engine = engine if engine is not None else ExplanationEngine()
    suite = CompetencySuite(engine)
    questions = tuple(PAPER_COMPETENCY_QUESTIONS)
    if include_extended:
        questions = questions + tuple(EXTENDED_COMPETENCY_QUESTIONS)
    competency_results = suite.run(questions)
    coverage = compute_coverage(engine)
    ontology_stats = ontology_metrics(engine.builder._base).as_dict()
    placeholder = IRI("https://purl.org/heals/feo#Question")
    query_stats = {
        "CQ1 (contextual)": query_metrics(contextual_query(placeholder)).as_dict(),
        "CQ2 (contrastive)": query_metrics(contrastive_query(placeholder)).as_dict(),
        "CQ3 (counterfactual)": query_metrics(counterfactual_query(placeholder)).as_dict(),
    }
    return EvaluationReport(
        competency_results=competency_results,
        coverage=coverage,
        ontology_stats=ontology_stats,
        query_stats=query_stats,
    )
