"""Sample personas used by tests, examples and the coverage benchmarks.

``paper_user`` / ``paper_context`` reconstruct the (implicit) scenario of
the paper's evaluation section: the recommender runs in autumn in the
north-east US, and its user likes Broccoli Cheddar Soup but is allergic to
broccoli — which is exactly what makes the contrastive competency question
interesting.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import UnknownEntityError
from .context import SystemContext
from .profile import UserProfile

__all__ = ["paper_user", "paper_context", "PERSONAS", "persona", "all_personas"]


def paper_user() -> UserProfile:
    """The user implied by the paper's three competency questions."""
    return UserProfile(
        identifier="user-paper",
        name="Alex",
        likes=("Broccoli Cheddar Soup", "Sushi"),
        dislikes=("Bacon",),
        allergies=("Broccoli",),
        diets=("vegetarian",),
        goals=("high_folate",),
        budget="medium",
    )


def paper_context() -> SystemContext:
    """The system context implied by the paper (autumn, north-east US)."""
    return SystemContext(season="autumn", region="northeast_us", meal_time="dinner")


_PERSONA_SPECS: Dict[str, Tuple[UserProfile, SystemContext]] = {}


def _register(key: str, profile: UserProfile, context: SystemContext) -> None:
    _PERSONA_SPECS[key] = (profile, context)


_register("paper", paper_user(), paper_context())

_register(
    "pregnant_user",
    UserProfile(
        identifier="user-pregnant",
        name="Priya",
        likes=("Sushi", "Spinach Frittata"),
        allergies=(),
        conditions=("pregnancy",),
        goals=("high_folate",),
        budget="medium",
    ),
    SystemContext(season="spring", region="west_coast_us", meal_time="lunch"),
)

_register(
    "diabetic_user",
    UserProfile(
        identifier="user-diabetic",
        name="Sam",
        likes=("Oatmeal with Berries", "Lentil Soup"),
        dislikes=("Sushi",),
        conditions=("diabetes",),
        goals=("low_carb", "high_fiber"),
        budget="low",
    ),
    SystemContext(season="winter", region="midwest_us", meal_time="breakfast"),
)

_register(
    "hypertensive_user",
    UserProfile(
        identifier="user-hypertensive",
        name="Jordan",
        likes=("Beef Tacos", "Chicken Noodle Soup"),
        allergies=("Shrimp",),
        conditions=("hypertension",),
        goals=("low_sodium",),
        budget="medium",
    ),
    SystemContext(season="summer", region="south_us", meal_time="dinner"),
)

_register(
    "vegan_athlete",
    UserProfile(
        identifier="user-vegan-athlete",
        name="Kai",
        likes=("Tempeh Buddha Bowl", "Edamame Quinoa Salad"),
        dislikes=("Mushroom",),
        diets=("vegan",),
        goals=("high_protein",),
        budget="high",
    ),
    SystemContext(season="summer", region="west_coast_us", meal_time="lunch"),
)

_register(
    "gluten_free_user",
    UserProfile(
        identifier="user-celiac",
        name="Morgan",
        likes=("Black Bean Tacos",),
        allergies=("Peanut Butter",),
        conditions=("celiac_disease",),
        diets=("gluten_free",),
        budget="low",
    ),
    SystemContext(season="autumn", region="northeast_us", meal_time="dinner"),
)

#: All registered persona keys.
PERSONAS: List[str] = list(_PERSONA_SPECS)


def persona(key: str) -> Tuple[UserProfile, SystemContext]:
    """Return the (profile, context) pair registered under ``key``."""
    try:
        return _PERSONA_SPECS[key]
    except KeyError as exc:
        raise UnknownEntityError(f"Unknown persona {key!r}; available: {PERSONAS}") from exc


def all_personas() -> Dict[str, Tuple[UserProfile, SystemContext]]:
    """All personas as a dictionary (copies are cheap: profiles are frozen)."""
    return dict(_PERSONA_SPECS)
