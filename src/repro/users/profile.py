"""User profiles: the 'user semantics' side of FEO's auxiliary modelling.

A :class:`UserProfile` captures everything the paper says a food
recommender knows about its user — likes, dislikes, allergies, diets,
health conditions, nutritional goals and a budget level.  Profiles are
plain data: the scenario builder is responsible for turning them into RDF.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

__all__ = ["UserProfile"]

_KNOWN_CONDITIONS = {
    "pregnancy", "diabetes", "hypertension", "lactose_intolerance",
    "celiac_disease", "high_cholesterol",
}
_KNOWN_GOALS = {
    "high_folate", "low_sodium", "high_protein", "low_carb", "high_fiber", "weight_loss",
}
_BUDGET_LEVELS = {"low", "medium", "high"}


@dataclass(frozen=True)
class UserProfile:
    """Everything the recommender (and hence FEO) knows about one user."""

    identifier: str
    name: str = ""
    likes: Tuple[str, ...] = ()
    dislikes: Tuple[str, ...] = ()
    allergies: Tuple[str, ...] = ()
    diets: Tuple[str, ...] = ()
    conditions: Tuple[str, ...] = ()
    goals: Tuple[str, ...] = ()
    budget: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.identifier:
            raise ValueError("UserProfile requires a non-empty identifier")
        unknown_conditions = set(self.conditions) - _KNOWN_CONDITIONS
        if unknown_conditions:
            raise ValueError(f"Unknown health conditions: {sorted(unknown_conditions)}")
        unknown_goals = set(self.goals) - _KNOWN_GOALS
        if unknown_goals:
            raise ValueError(f"Unknown nutritional goals: {sorted(unknown_goals)}")
        if self.budget is not None and self.budget not in _BUDGET_LEVELS:
            raise ValueError(f"Unknown budget level {self.budget!r}")

    # ------------------------------------------------------------------
    def with_condition(self, condition: str) -> "UserProfile":
        """Return a copy with ``condition`` added (used by what-if questions)."""
        if condition in self.conditions:
            return self
        return replace(self, conditions=self.conditions + (condition,))

    def without_condition(self, condition: str) -> "UserProfile":
        """Return a copy with ``condition`` removed."""
        return replace(self, conditions=tuple(c for c in self.conditions if c != condition))

    def with_goal(self, goal: str) -> "UserProfile":
        if goal in self.goals:
            return self
        return replace(self, goals=self.goals + (goal,))

    def likes_food(self, name: str) -> bool:
        return name in self.likes

    def dislikes_food(self, name: str) -> bool:
        return name in self.dislikes

    def is_allergic_to(self, name: str) -> bool:
        return name in self.allergies

    def has_condition(self, condition: str) -> bool:
        return condition in self.conditions

    def summary(self) -> Dict[str, List[str]]:
        """A plain-dict view used by templates and reports."""
        return {
            "likes": list(self.likes),
            "dislikes": list(self.dislikes),
            "allergies": list(self.allergies),
            "diets": list(self.diets),
            "conditions": list(self.conditions),
            "goals": list(self.goals),
            "budget": [self.budget] if self.budget else [],
        }
