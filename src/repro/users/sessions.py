"""Multi-user session tracking for the explanation service.

The paper's health-coach scenario is interactive: one user asks a stream
of follow-up questions against the same ontology.  A :class:`UserSession`
pins a ``(profile, context)`` pair under a stable identifier so a service
can answer many questions for the same user without re-shipping the
profile on every request, and keeps a small interaction history for
conversational features (e.g. "explain that differently").

:class:`SessionRegistry` is the thread-safe container the
:class:`repro.service.ExplanationService` uses to serve concurrent
sessions.  Its population is bounded twice over:

* a **capacity cap** (``max_sessions``) evicts the least-recently-active
  session, as before;
* an **idle TTL** (``idle_ttl``) lazily expires sessions that have not
  been touched for that many seconds, so a long-lived service facing
  millions of short-lived users no longer accumulates every session it
  has ever opened up to the cap.

Eviction is **transparent** for persona-addressed sessions: opening a
session with a ``persona`` key records a tiny rebuild spec (the key, not
the session), and a later :meth:`SessionRegistry.get` for an evicted id
re-opens the session from its persona's canonical profile instead of
raising.  Incremental profile growth made through ``update_scenario`` is
lost on rebuild — the session restarts from the persona baseline, exactly
as if the user had signed in again — which is the documented trade-off
for bounding memory.  Sessions opened with an explicit profile have no
spec and still raise :class:`~repro.errors.UnknownEntityError` (a
:class:`KeyError` subclass) after eviction.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import UnknownEntityError
from .context import SystemContext
from .profile import UserProfile

__all__ = ["UserSession", "SessionRegistry"]

_session_counter = itertools.count(1)


@dataclass
class UserSession:
    """One user's live interaction with the explanation service."""

    session_id: str
    user: UserProfile
    context: SystemContext
    #: The persona key this session was opened from, if any — the rebuild
    #: handle that lets the registry resurrect the session after eviction.
    persona: Optional[str] = None
    created_at: float = field(default_factory=time.time)
    last_active: float = field(default_factory=time.time)
    questions_asked: int = 0
    history: List[str] = field(default_factory=list)

    def record_question(self, question_text: str, keep_last: int = 50) -> None:
        """Note that the session asked ``question_text`` (bounded history)."""
        self.questions_asked += 1
        self.last_active = time.time()
        self.history.append(question_text)
        if len(self.history) > keep_last:
            del self.history[: len(self.history) - keep_last]

    def summary(self) -> Dict[str, object]:
        """A dictionary view for logs and the ``serve`` CLI."""
        return {
            "session_id": self.session_id,
            "user": self.user.identifier,
            "questions_asked": self.questions_asked,
            "last_active": self.last_active,
        }


class SessionRegistry:
    """Thread-safe registry of live :class:`UserSession` objects.

    Sessions are kept in least-recently-active order; opening a session
    beyond ``max_sessions`` evicts the stalest one, and (with ``idle_ttl``
    set) any access first expires sessions idle longer than the TTL.
    Evicted persona-addressed sessions rebuild transparently on the next
    :meth:`get` (see the module docstring).
    """

    def __init__(self, max_sessions: int = 1024,
                 idle_ttl: Optional[float] = None,
                 max_rebuild_specs: int = 8192) -> None:
        if max_sessions <= 0:
            raise ValueError("max_sessions must be positive")
        if idle_ttl is not None and idle_ttl <= 0:
            raise ValueError("idle_ttl must be positive (or None to disable)")
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.max_rebuild_specs = max_rebuild_specs
        self._sessions: "OrderedDict[str, UserSession]" = OrderedDict()
        #: session_id -> persona key, for transparent post-eviction rebuilds.
        #: Bounded LRU of its own: a spec is a two-string entry, so the cap
        #: can comfortably exceed ``max_sessions``.
        self._rebuild_specs: "OrderedDict[str, str]" = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0
        self.ttl_evictions = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    def _expire_idle_locked(self, now: float) -> None:
        """Drop sessions idle beyond the TTL (caller holds the lock).

        The registry is ordered least-recently-*accessed* first and
        ``last_active`` only moves forward on access, so expiry scans from
        the front and stops at the first live session.
        """
        if self.idle_ttl is None:
            return
        horizon = now - self.idle_ttl
        while self._sessions:
            session = next(iter(self._sessions.values()))
            if session.last_active >= horizon:
                break
            self._sessions.popitem(last=False)
            self.ttl_evictions += 1

    def _record_spec_locked(self, session_id: str, persona: str) -> None:
        self._rebuild_specs.pop(session_id, None)
        self._rebuild_specs[session_id] = persona
        while len(self._rebuild_specs) > self.max_rebuild_specs:
            self._rebuild_specs.popitem(last=False)

    # ------------------------------------------------------------------
    def open(self, user: UserProfile, context: SystemContext,
             session_id: Optional[str] = None,
             persona: Optional[str] = None) -> UserSession:
        """Create (or replace) a session for ``user`` and return it.

        ``persona`` (a :data:`repro.users.personas.PERSONAS` key) marks the
        session as rebuildable after eviction.
        """
        if session_id is None:
            session_id = f"session-{next(_session_counter)}"
        session = UserSession(session_id=session_id, user=user, context=context,
                              persona=persona)
        with self._lock:
            self._expire_idle_locked(time.time())
            self._sessions.pop(session_id, None)
            self._sessions[session_id] = session
            if persona is not None:
                self._record_spec_locked(session_id, persona)
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                self.evictions += 1
        return session

    def get(self, session_id: str) -> UserSession:
        """Return the live session, marking it most-recently-active.

        An evicted persona-addressed session is transparently re-opened
        from its persona's canonical profile (counted in :attr:`rebuilds`).
        Raises :class:`~repro.errors.UnknownEntityError` for ids that were
        never opened, or whose
        profile cannot be rebuilt.
        """
        with self._lock:
            self._expire_idle_locked(time.time())
            session = self._sessions.get(session_id)
            if session is not None:
                self._sessions.move_to_end(session_id)
                return session
            persona_key = self._rebuild_specs.get(session_id)
            if persona_key is None:
                raise UnknownEntityError(f"Unknown session {session_id!r}")
        # Rebuild outside the lock: persona lookup builds fresh profile and
        # context objects.  A concurrent rebuild of the same id is harmless
        # (both produce equal sessions; last publish wins).
        from .personas import persona as persona_lookup

        user, context = persona_lookup(persona_key)
        session = UserSession(session_id=session_id, user=user, context=context,
                              persona=persona_key)
        with self._lock:
            existing = self._sessions.get(session_id)
            if existing is not None:
                self._sessions.move_to_end(session_id)
                return existing
            self._sessions[session_id] = session
            self.rebuilds += 1
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                self.evictions += 1
        return session

    def close(self, session_id: str) -> Optional[UserSession]:
        """Remove and return the session, or ``None`` if it was not live.

        Closing also drops the rebuild spec: an explicitly closed session
        stays closed.
        """
        with self._lock:
            self._rebuild_specs.pop(session_id, None)
            return self._sessions.pop(session_id, None)

    def evict_idle(self) -> int:
        """Force a TTL sweep now; returns how many sessions were expired."""
        with self._lock:
            before = self.ttl_evictions
            self._expire_idle_locked(time.time())
            return self.ttl_evictions - before

    def active(self) -> List[UserSession]:
        """All live sessions, least-recently-active first."""
        with self._lock:
            return list(self._sessions.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, session_id: object) -> bool:
        with self._lock:
            return session_id in self._sessions
