"""Multi-user session tracking for the explanation service.

The paper's health-coach scenario is interactive: one user asks a stream
of follow-up questions against the same ontology.  A :class:`UserSession`
pins a ``(profile, context)`` pair under a stable identifier so a service
can answer many questions for the same user without re-shipping the
profile on every request, and keeps a small interaction history for
conversational features (e.g. "explain that differently").

:class:`SessionRegistry` is the thread-safe container the
:class:`repro.service.ExplanationService` uses to serve concurrent
sessions; it evicts the least-recently-active session beyond
``max_sessions``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .context import SystemContext
from .profile import UserProfile

__all__ = ["UserSession", "SessionRegistry"]

_session_counter = itertools.count(1)


@dataclass
class UserSession:
    """One user's live interaction with the explanation service."""

    session_id: str
    user: UserProfile
    context: SystemContext
    created_at: float = field(default_factory=time.time)
    last_active: float = field(default_factory=time.time)
    questions_asked: int = 0
    history: List[str] = field(default_factory=list)

    def record_question(self, question_text: str, keep_last: int = 50) -> None:
        """Note that the session asked ``question_text`` (bounded history)."""
        self.questions_asked += 1
        self.last_active = time.time()
        self.history.append(question_text)
        if len(self.history) > keep_last:
            del self.history[: len(self.history) - keep_last]

    def summary(self) -> Dict[str, object]:
        """A dictionary view for logs and the ``serve`` CLI."""
        return {
            "session_id": self.session_id,
            "user": self.user.identifier,
            "questions_asked": self.questions_asked,
            "last_active": self.last_active,
        }


class SessionRegistry:
    """Thread-safe registry of live :class:`UserSession` objects.

    Sessions are kept in least-recently-active order; opening a session
    beyond ``max_sessions`` evicts the stalest one (a service holding a
    scenario cache does not want an unbounded session population either).
    """

    def __init__(self, max_sessions: int = 1024) -> None:
        if max_sessions <= 0:
            raise ValueError("max_sessions must be positive")
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[str, UserSession]" = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0

    def open(self, user: UserProfile, context: SystemContext,
             session_id: Optional[str] = None) -> UserSession:
        """Create (or replace) a session for ``user`` and return it."""
        if session_id is None:
            session_id = f"session-{next(_session_counter)}"
        session = UserSession(session_id=session_id, user=user, context=context)
        with self._lock:
            self._sessions.pop(session_id, None)
            self._sessions[session_id] = session
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                self.evictions += 1
        return session

    def get(self, session_id: str) -> UserSession:
        """Return the live session, marking it most-recently-active.

        Raises :class:`KeyError` for unknown (or already evicted) ids.
        """
        with self._lock:
            session = self._sessions[session_id]
            self._sessions.move_to_end(session_id)
            return session

    def close(self, session_id: str) -> Optional[UserSession]:
        """Remove and return the session, or ``None`` if it was not live."""
        with self._lock:
            return self._sessions.pop(session_id, None)

    def active(self) -> List[UserSession]:
        """All live sessions, least-recently-active first."""
        with self._lock:
            return list(self._sessions.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, session_id: object) -> bool:
        with self._lock:
            return session_id in self._sessions
