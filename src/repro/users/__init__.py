"""User and system-context modelling (the FEO 'ecosystem')."""

from .context import SystemContext
from .personas import PERSONAS, all_personas, paper_context, paper_user, persona
from .profile import UserProfile
from .sessions import SessionRegistry, UserSession

__all__ = [
    "PERSONAS",
    "SessionRegistry",
    "SystemContext",
    "UserProfile",
    "UserSession",
    "all_personas",
    "paper_context",
    "paper_user",
    "persona",
]
