"""User and system-context modelling (the FEO 'ecosystem')."""

from .context import SystemContext
from .personas import PERSONAS, all_personas, paper_context, paper_user, persona
from .profile import UserProfile

__all__ = [
    "PERSONAS",
    "SystemContext",
    "UserProfile",
    "all_personas",
    "paper_context",
    "paper_user",
    "persona",
]
