"""System context: the 'system semantics' side of FEO's auxiliary modelling.

The paper's contextual explanations surface *external* factors — the
season and region the recommender system is operating in, the meal time
and the available budget.  :class:`SystemContext` carries exactly those.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

__all__ = ["SystemContext"]

_SEASONS = {"spring", "summer", "autumn", "winter"}
_MEAL_TIMES = {"breakfast", "lunch", "dinner", "snack"}
_BUDGETS = {"low", "medium", "high"}

#: Months (1-12) mapped to meteorological seasons in the northern hemisphere.
_MONTH_TO_SEASON = {
    12: "winter", 1: "winter", 2: "winter",
    3: "spring", 4: "spring", 5: "spring",
    6: "summer", 7: "summer", 8: "summer",
    9: "autumn", 10: "autumn", 11: "autumn",
}


@dataclass(frozen=True)
class SystemContext:
    """The environment the recommender system is running in."""

    season: str = "autumn"
    region: str = "northeast_us"
    meal_time: Optional[str] = None
    budget: Optional[str] = None
    system_name: str = "health-coach"

    def __post_init__(self) -> None:
        if self.season not in _SEASONS:
            raise ValueError(f"Unknown season {self.season!r}")
        if self.meal_time is not None and self.meal_time not in _MEAL_TIMES:
            raise ValueError(f"Unknown meal time {self.meal_time!r}")
        if self.budget is not None and self.budget not in _BUDGETS:
            raise ValueError(f"Unknown budget level {self.budget!r}")

    # ------------------------------------------------------------------
    @classmethod
    def for_month(cls, month: int, region: str = "northeast_us", **kwargs) -> "SystemContext":
        """Build a context whose season is derived from a calendar month."""
        if month not in _MONTH_TO_SEASON:
            raise ValueError(f"Month must be 1-12, got {month}")
        return cls(season=_MONTH_TO_SEASON[month], region=region, **kwargs)

    def with_season(self, season: str) -> "SystemContext":
        return replace(self, season=season)

    def with_region(self, region: str) -> "SystemContext":
        return replace(self, region=region)

    def summary(self) -> Dict[str, str]:
        out = {"season": self.season, "region": self.region, "system": self.system_name}
        if self.meal_time:
            out["meal_time"] = self.meal_time
        if self.budget:
            out["budget"] = self.budget
        return out
