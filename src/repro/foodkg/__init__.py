"""Synthetic FoodKG substrate: catalogue records, generator and RDF loader."""

from .catalog import PAPER_INGREDIENTS, PAPER_RECIPES, build_core_catalog
from .generator import SyntheticCatalogGenerator, generate_catalog
from .loader import FoodKGLoader, load_catalog
from .schema import (
    ConditionRule,
    FoodCatalog,
    IngredientRecord,
    NutrientProfile,
    RecipeRecord,
    slugify,
)

__all__ = [
    "ConditionRule",
    "FoodCatalog",
    "FoodKGLoader",
    "IngredientRecord",
    "NutrientProfile",
    "PAPER_INGREDIENTS",
    "PAPER_RECIPES",
    "RecipeRecord",
    "SyntheticCatalogGenerator",
    "build_core_catalog",
    "generate_catalog",
    "load_catalog",
    "slugify",
]
