"""Seeded synthetic expansion of the food catalogue.

The public FoodKG contains on the order of a million recipes; the paper's
ontology is evaluated against a handful of them, but the design discussion
(choosing Pellet because the ontology is individual-heavy) is really about
scale.  The :class:`SyntheticCatalogGenerator` produces arbitrarily many
additional recipes and ingredients with the same schema as the curated
catalogue so the scaling benchmarks (DESIGN.md experiment E9) can sweep
knowledge-graph size deterministically.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .catalog import build_core_catalog
from .schema import FoodCatalog, IngredientRecord, NutrientProfile, RecipeRecord

__all__ = ["SyntheticCatalogGenerator", "generate_catalog"]

_SEASONS = ("spring", "summer", "autumn", "winter")
_REGIONS = ("northeast_us", "midwest_us", "west_coast_us", "south_us", "global")
_ALLERGENS = ("dairy", "gluten", "fish", "shellfish", "tree_nuts", "peanuts", "soy", "eggs")
_NUTRIENTS = ("protein", "fiber", "folate", "vitamin_c", "vitamin_a", "iron", "calcium",
              "potassium", "omega3", "carbohydrate")
_DIET_POOL = ("vegetarian", "vegan", "gluten_free", "pescatarian", "keto", "paleo")
_CUISINES = ("american", "italian", "mexican", "indian", "chinese", "japanese",
             "mediterranean", "french", "thai", "fusion")
_MEALS = ("breakfast", "lunch", "dinner", "snack")
_COSTS = ("low", "medium", "high")

_ADJECTIVES = ("Roasted", "Spicy", "Creamy", "Crispy", "Hearty", "Fresh", "Smoky",
               "Zesty", "Savory", "Rustic", "Garden", "Harvest", "Golden", "Classic")
_FORMS = ("Bowl", "Stew", "Salad", "Bake", "Skillet", "Wrap", "Curry", "Soup",
          "Casserole", "Stir Fry", "Pilaf", "Tacos", "Pasta", "Frittata")


class SyntheticCatalogGenerator:
    """Deterministically expands a catalogue with synthetic entities."""

    def __init__(self, seed: int = 7) -> None:
        self._random = random.Random(seed)

    # ------------------------------------------------------------------
    def ingredient(self, index: int) -> IngredientRecord:
        """Generate one synthetic ingredient."""
        rng = self._random
        name = f"Synthetic Ingredient {index:04d}"
        seasons = tuple(rng.sample(_SEASONS, k=rng.randint(0, 2)))
        regions = tuple(rng.sample(_REGIONS, k=rng.randint(1, 2)))
        allergens = tuple(rng.sample(_ALLERGENS, k=1)) if rng.random() < 0.2 else ()
        nutrients = tuple(rng.sample(_NUTRIENTS, k=rng.randint(1, 3)))
        nutrition = NutrientProfile(
            calories=round(rng.uniform(10, 300), 1),
            protein=round(rng.uniform(0, 25), 1),
            carbohydrates=round(rng.uniform(0, 50), 1),
            fat=round(rng.uniform(0, 20), 1),
            fiber=round(rng.uniform(0, 10), 1),
            sodium=round(rng.uniform(0, 500), 1),
        )
        return IngredientRecord(name, seasons, regions, allergens, nutrients, nutrition)

    def recipe(self, index: int, ingredient_pool: Sequence[str]) -> RecipeRecord:
        """Generate one synthetic recipe drawing from ``ingredient_pool``."""
        rng = self._random
        adjective = rng.choice(_ADJECTIVES)
        form = rng.choice(_FORMS)
        name = f"{adjective} {form} {index:04d}"
        count = rng.randint(4, 9)
        ingredients = tuple(rng.sample(list(ingredient_pool), k=min(count, len(ingredient_pool))))
        diets = tuple(rng.sample(_DIET_POOL, k=rng.randint(0, 2)))
        return RecipeRecord(
            name=name,
            ingredients=ingredients,
            cuisine=rng.choice(_CUISINES),
            meal_types=tuple(rng.sample(_MEALS, k=rng.randint(1, 2))),
            diets=diets,
            cost_level=rng.choice(_COSTS),
            cook_time_minutes=rng.randint(10, 90),
            servings=rng.randint(1, 8),
            tags=("synthetic",),
        )

    # ------------------------------------------------------------------
    def expand(
        self,
        catalog: FoodCatalog,
        extra_ingredients: int = 0,
        extra_recipes: int = 0,
    ) -> FoodCatalog:
        """Add synthetic ingredients and recipes to ``catalog`` in place."""
        start_index = len(catalog.ingredients)
        for offset in range(extra_ingredients):
            catalog.add_ingredient(self.ingredient(start_index + offset))
        pool = list(catalog.ingredients)
        start_index = len(catalog.recipes)
        for offset in range(extra_recipes):
            catalog.add_recipe(self.recipe(start_index + offset, pool))
        return catalog


def generate_catalog(
    extra_ingredients: int = 0,
    extra_recipes: int = 0,
    seed: int = 7,
    base: Optional[FoodCatalog] = None,
) -> FoodCatalog:
    """Return the curated catalogue expanded with synthetic entities.

    With both counts at zero this is exactly the curated core catalogue.
    """
    catalog = base if base is not None else build_core_catalog()
    generator = SyntheticCatalogGenerator(seed=seed)
    return generator.expand(catalog, extra_ingredients, extra_recipes)
