"""Dataclasses describing the (synthetic) FoodKG content.

The public FoodKG is a large scraped knowledge graph (recipes from
Recipe1M, nutrition from USDA).  We cannot ship it, so the reproduction
uses these in-memory records: a curated core catalogue containing every
entity the paper names plus a seeded synthetic generator for scaling
experiments.  The RDF loader turns these records into FEO-conformant
triples.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "slugify",
    "NutrientProfile",
    "IngredientRecord",
    "RecipeRecord",
    "ConditionRule",
    "FoodCatalog",
]


def slugify(name: str) -> str:
    """Turn a human-readable name into the CamelCase local name used in IRIs.

    >>> slugify("Cauliflower Potato Curry")
    'CauliflowerPotatoCurry'
    """
    words = re.split(r"[^A-Za-z0-9]+", name)
    return "".join(word.capitalize() if not word.isupper() else word for word in words if word)


@dataclass(frozen=True)
class NutrientProfile:
    """Per-serving nutrition facts (the subset the recommender scores on)."""

    calories: float = 0.0
    protein: float = 0.0
    carbohydrates: float = 0.0
    fat: float = 0.0
    fiber: float = 0.0
    sodium: float = 0.0

    def scaled(self, factor: float) -> "NutrientProfile":
        """Return a profile scaled by ``factor`` (e.g. per-portion adjustments)."""
        return NutrientProfile(
            calories=self.calories * factor,
            protein=self.protein * factor,
            carbohydrates=self.carbohydrates * factor,
            fat=self.fat * factor,
            fiber=self.fiber * factor,
            sodium=self.sodium * factor,
        )

    def combined(self, other: "NutrientProfile") -> "NutrientProfile":
        """Sum two profiles (used when aggregating ingredient nutrition)."""
        return NutrientProfile(
            calories=self.calories + other.calories,
            protein=self.protein + other.protein,
            carbohydrates=self.carbohydrates + other.carbohydrates,
            fat=self.fat + other.fat,
            fiber=self.fiber + other.fiber,
            sodium=self.sodium + other.sodium,
        )


@dataclass(frozen=True)
class IngredientRecord:
    """One ingredient with availability, allergen and nutrition annotations."""

    name: str
    seasons: Tuple[str, ...] = ()
    regions: Tuple[str, ...] = ()
    allergens: Tuple[str, ...] = ()
    nutrients: Tuple[str, ...] = ()
    nutrition: NutrientProfile = field(default_factory=NutrientProfile)
    tags: Tuple[str, ...] = ()

    @property
    def slug(self) -> str:
        return slugify(self.name)


@dataclass(frozen=True)
class RecipeRecord:
    """One recipe: ingredients plus meal/cuisine/diet/cost metadata."""

    name: str
    ingredients: Tuple[str, ...]
    cuisine: str = "international"
    meal_types: Tuple[str, ...] = ("dinner",)
    diets: Tuple[str, ...] = ()
    cost_level: str = "medium"
    cook_time_minutes: int = 30
    servings: int = 4
    nutrition: Optional[NutrientProfile] = None
    tags: Tuple[str, ...] = ()

    @property
    def slug(self) -> str:
        return slugify(self.name)


@dataclass(frozen=True)
class ConditionRule:
    """Health-domain knowledge: a condition or goal forbids / recommends foods."""

    subject: str            # condition or goal key, e.g. "pregnancy", "low_sodium"
    kind: str               # "condition" or "goal"
    forbids: Tuple[str, ...] = ()
    recommends: Tuple[str, ...] = ()
    rationale: str = ""


@dataclass
class FoodCatalog:
    """A complete catalogue: ingredients, recipes and health rules."""

    ingredients: Dict[str, IngredientRecord] = field(default_factory=dict)
    recipes: Dict[str, RecipeRecord] = field(default_factory=dict)
    condition_rules: List[ConditionRule] = field(default_factory=list)
    diets: List[str] = field(default_factory=list)
    allergens: List[str] = field(default_factory=list)
    regions: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add_ingredient(self, ingredient: IngredientRecord) -> None:
        self.ingredients[ingredient.name] = ingredient
        for allergen in ingredient.allergens:
            if allergen not in self.allergens:
                self.allergens.append(allergen)
        for region in ingredient.regions:
            if region not in self.regions:
                self.regions.append(region)

    def add_recipe(self, recipe: RecipeRecord) -> None:
        missing = [name for name in recipe.ingredients if name not in self.ingredients]
        if missing:
            raise KeyError(f"Recipe {recipe.name!r} uses unknown ingredients: {missing}")
        self.recipes[recipe.name] = recipe
        for diet in recipe.diets:
            if diet not in self.diets:
                self.diets.append(diet)

    def add_rule(self, rule: ConditionRule) -> None:
        self.condition_rules.append(rule)

    # ------------------------------------------------------------------
    def recipe(self, name: str) -> RecipeRecord:
        return self.recipes[name]

    def ingredient(self, name: str) -> IngredientRecord:
        return self.ingredients[name]

    def recipe_ingredients(self, name: str) -> List[IngredientRecord]:
        return [self.ingredients[i] for i in self.recipes[name].ingredients]

    def recipe_allergens(self, name: str) -> List[str]:
        out: List[str] = []
        for ingredient in self.recipe_ingredients(name):
            for allergen in ingredient.allergens:
                if allergen not in out:
                    out.append(allergen)
        return out

    def recipe_seasons(self, name: str) -> List[str]:
        out: List[str] = []
        for ingredient in self.recipe_ingredients(name):
            for season in ingredient.seasons:
                if season not in out:
                    out.append(season)
        return out

    def recipe_nutrition(self, name: str) -> NutrientProfile:
        recipe = self.recipes[name]
        if recipe.nutrition is not None:
            return recipe.nutrition
        total = NutrientProfile()
        for ingredient in self.recipe_ingredients(name):
            total = total.combined(ingredient.nutrition)
        return total

    def recipes_containing(self, ingredient_name: str) -> List[RecipeRecord]:
        return [r for r in self.recipes.values() if ingredient_name in r.ingredients]

    def rules_for(self, subject: str) -> List[ConditionRule]:
        return [rule for rule in self.condition_rules if rule.subject == subject]

    def stats(self) -> Dict[str, int]:
        """Simple size statistics used by the scaling benchmarks."""
        return {
            "ingredients": len(self.ingredients),
            "recipes": len(self.recipes),
            "condition_rules": len(self.condition_rules),
            "diets": len(self.diets),
            "allergens": len(self.allergens),
            "regions": len(self.regions),
        }
