"""Loading a :class:`FoodCatalog` into an RDF graph with FEO semantics.

The loader mints IRIs in the FoodKG namespace for recipes, ingredients,
diets, allergens, nutrients, cuisines, meal types and regions, and
attaches them to the FEO/What-To-Make vocabulary: recipe→ingredient edges,
seasonal and regional availability, allergen content, nutrition facts and
the health-domain ``feo:forbids`` / ``feo:recommends`` rules.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import UnknownEntityError
from ..ontology import feo, food
from ..rdf.graph import Graph
from ..rdf.namespace import FOODKG, RDFS
from ..rdf.terms import IRI, Literal
from .schema import FoodCatalog, slugify

__all__ = ["FoodKGLoader", "load_catalog"]

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
_RDFS_LABEL = IRI(RDFS.label)


class FoodKGLoader:
    """Translates catalogue records into triples on a target graph."""

    def __init__(self, graph: Optional[Graph] = None) -> None:
        self.graph = graph if graph is not None else Graph()

    # -- IRI minting -------------------------------------------------------
    @staticmethod
    def recipe_iri(name: str) -> IRI:
        return IRI(FOODKG[slugify(name)])

    @staticmethod
    def ingredient_iri(name: str) -> IRI:
        return IRI(FOODKG[slugify(name)])

    @staticmethod
    def diet_iri(name: str) -> IRI:
        return IRI(FOODKG[slugify(name) + "Diet"])

    @staticmethod
    def allergen_iri(name: str) -> IRI:
        return IRI(FOODKG[slugify(name) + "Allergen"])

    @staticmethod
    def nutrient_iri(name: str) -> IRI:
        return IRI(FOODKG[slugify(name) + "Nutrient"])

    @staticmethod
    def cuisine_iri(name: str) -> IRI:
        return IRI(FOODKG[slugify(name) + "Cuisine"])

    @staticmethod
    def meal_type_iri(name: str) -> IRI:
        return IRI(FOODKG[slugify(name) + "Meal"])

    @staticmethod
    def region_iri(name: str) -> IRI:
        return IRI(FOODKG[slugify(name) + "Region"])

    @staticmethod
    def season_iri(name: str) -> IRI:
        season = feo.SEASONS.get(name.lower())
        if season is None:
            raise UnknownEntityError(f"Unknown season {name!r}")
        return season

    @staticmethod
    def budget_iri(level: str) -> IRI:
        budget = feo.BUDGET_LEVELS.get(level.lower())
        if budget is None:
            raise UnknownEntityError(f"Unknown budget level {level!r}")
        return budget

    def subject_iri(self, rule_subject: str, kind: str) -> IRI:
        """IRI of a condition or goal named in a :class:`ConditionRule`."""
        if kind == "condition":
            iri = feo.HEALTH_CONDITIONS.get(rule_subject)
        else:
            iri = feo.NUTRITIONAL_GOALS.get(rule_subject)
        if iri is None:
            raise UnknownEntityError(f"Unknown {kind} {rule_subject!r}")
        return iri

    def food_iri(self, catalog: FoodCatalog, name: str) -> IRI:
        """IRI of a catalogue food, whether it is a recipe or an ingredient."""
        if name in catalog.recipes:
            return self.recipe_iri(name)
        if name in catalog.ingredients:
            return self.ingredient_iri(name)
        raise UnknownEntityError(f"Unknown food {name!r}")

    # -- loading -------------------------------------------------------------
    def load(self, catalog: FoodCatalog, include_nutrition: bool = True) -> Graph:
        """Load the whole catalogue and return the graph."""
        self._load_ingredients(catalog)
        self._load_recipes(catalog, include_nutrition)
        self._load_condition_rules(catalog)
        return self.graph

    def _add(self, s, p, o) -> None:
        self.graph.add((s, p, o))

    def _load_ingredients(self, catalog: FoodCatalog) -> None:
        for record in catalog.ingredients.values():
            iri = self.ingredient_iri(record.name)
            self._add(iri, _RDF_TYPE, food.Ingredient)
            self._add(iri, _RDFS_LABEL, Literal(record.name, language="en"))
            for season in record.seasons:
                self._add(iri, feo.availableInSeason, self.season_iri(season))
            for region in record.regions:
                region_iri = self.region_iri(region)
                self._add(region_iri, _RDF_TYPE, feo.LocationCharacteristic)
                self._add(region_iri, _RDFS_LABEL,
                          Literal(region.replace("_", " ").title(), language="en"))
                self._add(iri, feo.availableInRegion, region_iri)
            for allergen in record.allergens:
                allergen_iri = self.allergen_iri(allergen)
                self._add(allergen_iri, _RDF_TYPE, food.Allergen)
                self._add(iri, feo.containsAllergen, allergen_iri)
            for nutrient in record.nutrients:
                nutrient_iri = self.nutrient_iri(nutrient)
                self._add(nutrient_iri, _RDF_TYPE, food.Nutrient)
                self._add(iri, food.hasNutrient, nutrient_iri)

    def _load_recipes(self, catalog: FoodCatalog, include_nutrition: bool) -> None:
        for record in catalog.recipes.values():
            iri = self.recipe_iri(record.name)
            self._add(iri, _RDF_TYPE, food.Recipe)
            self._add(iri, _RDFS_LABEL, Literal(record.name, language="en"))
            for ingredient in record.ingredients:
                self._add(iri, food.hasIngredient, self.ingredient_iri(ingredient))
            for diet in record.diets:
                diet_iri = self.diet_iri(diet)
                self._add(diet_iri, _RDF_TYPE, food.Diet)
                self._add(diet_iri, _RDFS_LABEL,
                          Literal(diet.replace("_", " ").title(), language="en"))
                self._add(iri, food.suitableForDiet, diet_iri)
            cuisine_iri = self.cuisine_iri(record.cuisine)
            self._add(cuisine_iri, _RDF_TYPE, food.Cuisine)
            self._add(iri, food.hasCuisine, cuisine_iri)
            for meal in record.meal_types:
                meal_iri = self.meal_type_iri(meal)
                self._add(meal_iri, _RDF_TYPE, food.MealType)
                self._add(iri, food.hasMealType, meal_iri)
            self._add(iri, feo.requiresBudget, self.budget_iri(record.cost_level))
            self._add(iri, food.hasCookTime, Literal(record.cook_time_minutes))
            self._add(iri, food.serves, Literal(record.servings))
            if include_nutrition:
                nutrition = catalog.recipe_nutrition(record.name)
                self._add(iri, food.hasCalories, Literal(round(nutrition.calories, 1)))
                self._add(iri, food.hasProtein, Literal(round(nutrition.protein, 1)))
                self._add(iri, food.hasCarbohydrates, Literal(round(nutrition.carbohydrates, 1)))
                self._add(iri, food.hasFat, Literal(round(nutrition.fat, 1)))
                self._add(iri, food.hasFiber, Literal(round(nutrition.fiber, 1)))
                self._add(iri, food.hasSodium, Literal(round(nutrition.sodium, 1)))

    def _load_condition_rules(self, catalog: FoodCatalog) -> None:
        for rule in catalog.condition_rules:
            subject = self.subject_iri(rule.subject, rule.kind)
            for name in rule.forbids:
                self._add(subject, feo.forbids, self.food_iri(catalog, name))
            for name in rule.recommends:
                self._add(subject, feo.recommends, self.food_iri(catalog, name))


def load_catalog(
    catalog: FoodCatalog,
    graph: Optional[Graph] = None,
    include_nutrition: bool = True,
) -> Graph:
    """Convenience wrapper: load ``catalog`` into ``graph`` (new graph if omitted)."""
    loader = FoodKGLoader(graph)
    return loader.load(catalog, include_nutrition=include_nutrition)
