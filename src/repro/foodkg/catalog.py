"""The curated core of the synthetic FoodKG.

Every entity the paper names appears here with the attributes its
competency questions rely on:

* *Cauliflower Potato Curry* — cauliflower is available in the system's
  current season (autumn), driving the contextual explanation (Listing 1);
* *Butternut Squash Soup* vs *Broccoli Cheddar Soup* — butternut squash is
  in season while the example user is allergic to broccoli, driving the
  contrastive explanation (Listing 2);
* *Sushi* and *Spinach Frittata* — pregnancy forbids raw fish and
  recommends folate-rich spinach, driving the counterfactual explanation
  (Listing 3).

Around those anchors sits a broader catalogue (≈90 ingredients, ≈45
recipes, health rules for six conditions and six goals) so the recommender
and the scaling benchmarks have realistic material to work with.
"""

from __future__ import annotations

from .schema import ConditionRule, FoodCatalog, IngredientRecord, NutrientProfile, RecipeRecord

__all__ = ["build_core_catalog", "PAPER_RECIPES", "PAPER_INGREDIENTS"]

#: Recipes that appear verbatim in the paper's evaluation.
PAPER_RECIPES = [
    "Cauliflower Potato Curry",
    "Butternut Squash Soup",
    "Broccoli Cheddar Soup",
    "Sushi",
    "Spinach Frittata",
]

#: Ingredients that appear verbatim in the paper's evaluation.
PAPER_INGREDIENTS = ["Cauliflower", "Butternut Squash", "Broccoli", "Raw Fish", "Spinach"]


def _np(calories=0.0, protein=0.0, carbohydrates=0.0, fat=0.0, fiber=0.0, sodium=0.0):
    return NutrientProfile(calories, protein, carbohydrates, fat, fiber, sodium)


_INGREDIENTS = [
    # name, seasons, regions, allergens, nutrients, nutrition, tags
    ("Cauliflower", ("autumn", "winter"), ("northeast_us", "midwest_us"), (), ("vitamin_c", "fiber"), _np(25, 2, 5, 0.3, 2), ("vegetable",)),
    ("Potato", ("autumn", "winter"), ("northeast_us", "midwest_us"), (), ("potassium", "carbohydrate"), _np(160, 4, 37, 0.2, 4), ("vegetable", "starch")),
    ("Butternut Squash", ("autumn",), ("northeast_us", "midwest_us"), (), ("vitamin_a", "fiber"), _np(82, 2, 22, 0.2, 7), ("vegetable",)),
    ("Broccoli", ("autumn", "spring"), ("west_coast_us", "northeast_us"), (), ("vitamin_c", "folate", "fiber"), _np(55, 4, 11, 0.6, 5), ("vegetable",)),
    ("Cheddar Cheese", (), ("midwest_us",), ("dairy",), ("calcium", "protein"), _np(113, 7, 0.4, 9, 0, 180), ("dairy",)),
    ("Raw Fish", (), ("west_coast_us", "global"), ("fish",), ("protein", "omega3"), _np(140, 24, 0, 5, 0, 50), ("seafood", "raw")),
    ("Sushi Rice", (), ("global",), (), ("carbohydrate",), _np(200, 4, 45, 0.4, 1), ("grain",)),
    ("Nori Seaweed", (), ("global",), (), ("iodine",), _np(10, 1, 1, 0, 0.3, 20), ("seafood",)),
    ("Spinach", ("spring", "autumn"), ("northeast_us", "west_coast_us"), (), ("folate", "iron", "vitamin_a"), _np(23, 3, 4, 0.4, 2, 80), ("vegetable", "leafy_green")),
    ("Egg", (), ("global",), ("eggs",), ("protein", "choline"), _np(72, 6, 0.4, 5, 0, 70), ("protein",)),
    ("Onion", ("summer", "autumn"), ("global",), (), ("fiber",), _np(44, 1, 10, 0.1, 2), ("vegetable", "aromatic")),
    ("Garlic", ("summer",), ("global",), (), ("manganese",), _np(5, 0.2, 1, 0, 0.1), ("aromatic",)),
    ("Tomato", ("summer",), ("global",), (), ("vitamin_c", "lycopene"), _np(22, 1, 5, 0.2, 1.5), ("vegetable",)),
    ("Coconut Milk", (), ("global",), ("tree_nuts",), ("fat",), _np(230, 2, 6, 24, 0, 15), ("dairy_alternative",)),
    ("Curry Powder", (), ("global",), (), (), _np(20, 1, 4, 0.9, 2), ("spice",)),
    ("Vegetable Broth", (), ("global",), (), ("sodium",), _np(12, 0.5, 2, 0.1, 0, 600), ("liquid",)),
    ("Chicken Breast", (), ("global",), (), ("protein",), _np(165, 31, 0, 3.6, 0, 74), ("meat", "poultry")),
    ("Salmon", (), ("west_coast_us",), ("fish",), ("protein", "omega3"), _np(208, 20, 0, 13, 0, 59), ("seafood",)),
    ("Shrimp", (), ("south_us",), ("shellfish",), ("protein",), _np(99, 24, 0.2, 0.3, 0, 111), ("seafood",)),
    ("Lentils", (), ("global",), (), ("folate", "protein", "fiber", "iron"), _np(230, 18, 40, 0.8, 16, 4), ("legume",)),
    ("Chickpeas", (), ("global",), (), ("folate", "protein", "fiber"), _np(269, 15, 45, 4, 12, 11), ("legume",)),
    ("Black Beans", (), ("south_us", "global"), (), ("folate", "protein", "fiber"), _np(227, 15, 41, 0.9, 15, 2), ("legume",)),
    ("Quinoa", (), ("global",), (), ("protein", "fiber", "magnesium"), _np(222, 8, 39, 3.6, 5, 13), ("grain", "whole_grain")),
    ("Brown Rice", (), ("global",), (), ("fiber", "carbohydrate"), _np(218, 5, 46, 1.6, 3.5, 2), ("grain", "whole_grain")),
    ("White Rice", (), ("global",), (), ("carbohydrate",), _np(205, 4, 45, 0.4, 0.6, 2), ("grain",)),
    ("Oats", (), ("midwest_us", "global"), ("gluten",), ("fiber", "protein"), _np(154, 6, 27, 3, 4, 2), ("grain", "whole_grain")),
    ("Whole Wheat Pasta", (), ("global",), ("gluten",), ("fiber", "carbohydrate"), _np(174, 7.5, 37, 0.8, 6, 4), ("grain", "whole_grain")),
    ("Wheat Flour", (), ("midwest_us", "global"), ("gluten",), ("carbohydrate",), _np(455, 13, 95, 1.2, 3.4, 2), ("grain",)),
    ("Butter", (), ("global",), ("dairy",), ("fat",), _np(102, 0.1, 0, 12, 0, 2), ("dairy", "fat")),
    ("Olive Oil", (), ("global",), (), ("fat",), _np(119, 0, 0, 14, 0), ("fat",)),
    ("Milk", (), ("global",), ("dairy",), ("calcium", "protein"), _np(103, 8, 12, 2.4, 0, 107), ("dairy",)),
    ("Greek Yogurt", (), ("global",), ("dairy",), ("protein", "calcium", "probiotics"), _np(100, 17, 6, 0.7, 0, 61), ("dairy",)),
    ("Soft Cheese", (), ("global",), ("dairy",), ("calcium", "fat"), _np(75, 4, 1, 6, 0, 178), ("dairy", "raw")),
    ("Feta Cheese", (), ("global",), ("dairy",), ("calcium",), _np(75, 4, 1.2, 6, 0, 316), ("dairy",)),
    ("Mozzarella", (), ("global",), ("dairy",), ("calcium", "protein"), _np(85, 6, 0.6, 6, 0, 176), ("dairy",)),
    ("Parmesan", (), ("global",), ("dairy",), ("calcium", "protein"), _np(111, 10, 0.9, 7, 0, 333), ("dairy",)),
    ("Tofu", (), ("global",), ("soy",), ("protein", "calcium"), _np(94, 10, 2.3, 6, 0.4, 9), ("protein", "soy")),
    ("Tempeh", (), ("global",), ("soy",), ("protein", "fiber"), _np(162, 15, 8, 9, 0, 9), ("protein", "soy")),
    ("Peanut Butter", (), ("south_us", "global"), ("peanuts",), ("protein", "fat"), _np(188, 8, 6, 16, 2, 136), ("nut",)),
    ("Almonds", (), ("west_coast_us",), ("tree_nuts",), ("protein", "fiber", "vitamin_e"), _np(164, 6, 6, 14, 3.5), ("nut",)),
    ("Walnuts", (), ("west_coast_us",), ("tree_nuts",), ("omega3", "fat"), _np(185, 4, 4, 18, 2), ("nut",)),
    ("Banana", (), ("global",), (), ("potassium", "carbohydrate"), _np(105, 1.3, 27, 0.4, 3, 1), ("fruit",)),
    ("Apple", ("autumn",), ("northeast_us", "midwest_us"), (), ("fiber", "vitamin_c"), _np(95, 0.5, 25, 0.3, 4, 2), ("fruit",)),
    ("Blueberries", ("summer",), ("northeast_us",), (), ("vitamin_c", "antioxidants"), _np(84, 1, 21, 0.5, 3.6, 1), ("fruit",)),
    ("Strawberries", ("spring", "summer"), ("west_coast_us",), (), ("vitamin_c", "folate"), _np(49, 1, 12, 0.5, 3, 2), ("fruit",)),
    ("Avocado", (), ("west_coast_us",), (), ("fat", "fiber", "folate", "potassium"), _np(240, 3, 13, 22, 10, 10), ("fruit", "fat")),
    ("Lemon", ("winter",), ("west_coast_us",), (), ("vitamin_c",), _np(17, 0.6, 5, 0.2, 1.6, 1), ("fruit", "citrus")),
    ("Kale", ("autumn", "winter"), ("northeast_us", "west_coast_us"), (), ("vitamin_c", "vitamin_k", "folate"), _np(33, 3, 6, 0.6, 2.6, 25), ("vegetable", "leafy_green")),
    ("Carrot", ("autumn", "winter"), ("global",), (), ("vitamin_a", "fiber"), _np(25, 0.6, 6, 0.1, 1.7, 42), ("vegetable",)),
    ("Celery", ("autumn",), ("global",), (), ("fiber",), _np(6, 0.3, 1.2, 0.1, 0.6, 32), ("vegetable",)),
    ("Bell Pepper", ("summer",), ("global",), (), ("vitamin_c",), _np(31, 1, 6, 0.3, 2.1, 4), ("vegetable",)),
    ("Zucchini", ("summer",), ("global",), (), ("vitamin_c",), _np(33, 2.4, 6, 0.6, 2, 16), ("vegetable",)),
    ("Mushroom", ("autumn",), ("global",), (), ("vitamin_d", "selenium"), _np(15, 2.2, 2.3, 0.2, 0.7, 4), ("vegetable",)),
    ("Sweet Potato", ("autumn", "winter"), ("south_us",), (), ("vitamin_a", "fiber", "potassium"), _np(112, 2, 26, 0.1, 3.9, 72), ("vegetable", "starch")),
    ("Pumpkin", ("autumn",), ("midwest_us", "northeast_us"), (), ("vitamin_a", "fiber"), _np(49, 1.8, 12, 0.2, 2.7, 2), ("vegetable",)),
    ("Green Beans", ("summer",), ("global",), (), ("fiber", "vitamin_c"), _np(31, 1.8, 7, 0.2, 2.7, 6), ("vegetable",)),
    ("Peas", ("spring",), ("global",), (), ("protein", "fiber", "folate"), _np(118, 8, 21, 0.6, 7, 7), ("vegetable", "legume")),
    ("Asparagus", ("spring",), ("northeast_us",), (), ("folate", "vitamin_k"), _np(27, 3, 5, 0.2, 2.8, 3), ("vegetable",)),
    ("Beet", ("autumn", "winter"), ("northeast_us", "midwest_us"), (), ("folate", "fiber"), _np(59, 2.2, 13, 0.2, 3.8, 106), ("vegetable",)),
    ("Cabbage", ("autumn", "winter"), ("global",), (), ("vitamin_c", "fiber"), _np(22, 1.1, 5, 0.1, 2.2, 16), ("vegetable",)),
    ("Cucumber", ("summer",), ("global",), (), (), _np(16, 0.7, 4, 0.1, 0.5, 2), ("vegetable",)),
    ("Ginger", (), ("global",), (), (), _np(4, 0.1, 0.9, 0, 0.1, 1), ("spice", "aromatic")),
    ("Turmeric", (), ("global",), (), ("curcumin",), _np(8, 0.3, 1.4, 0.2, 0.5, 1), ("spice",)),
    ("Cumin", (), ("global",), (), ("iron",), _np(8, 0.4, 0.9, 0.5, 0.2, 4), ("spice",)),
    ("Basil", ("summer",), ("global",), (), ("vitamin_k",), _np(1, 0.1, 0.1, 0, 0.1), ("herb",)),
    ("Cilantro", (), ("global",), (), ("vitamin_k",), _np(1, 0.1, 0.1, 0, 0.1), ("herb",)),
    ("Salt", (), ("global",), (), ("sodium",), _np(0, 0, 0, 0, 0, 2300), ("seasoning", "high_sodium")),
    ("Black Pepper", (), ("global",), (), (), _np(6, 0.2, 1.5, 0.1, 0.6, 1), ("seasoning",)),
    ("Sugar", (), ("global",), (), ("carbohydrate",), _np(49, 0, 13, 0, 0), ("sweetener", "added_sugar")),
    ("Honey", (), ("global",), (), ("carbohydrate",), _np(64, 0.1, 17, 0, 0, 1), ("sweetener", "added_sugar")),
    ("Maple Syrup", ("spring",), ("northeast_us",), (), ("carbohydrate", "manganese"), _np(52, 0, 13, 0, 0, 2), ("sweetener", "added_sugar")),
    ("Dark Chocolate", (), ("global",), ("dairy",), ("antioxidants", "iron"), _np(170, 2, 13, 12, 3, 7), ("sweet",)),
    ("Soy Sauce", (), ("global",), ("soy", "gluten"), ("sodium",), _np(9, 1.3, 0.8, 0, 0.1, 879), ("condiment", "high_sodium")),
    ("Bread", (), ("global",), ("gluten",), ("carbohydrate",), _np(79, 3.1, 15, 1, 0.8, 147), ("grain",)),
    ("Corn Tortilla", (), ("south_us",), (), ("carbohydrate", "fiber"), _np(52, 1.4, 11, 0.7, 1.5, 11), ("grain",)),
    ("Ground Beef", (), ("midwest_us",), (), ("protein", "iron"), _np(218, 24, 0, 13, 0, 76), ("meat", "red_meat")),
    ("Ground Turkey", (), ("global",), (), ("protein",), _np(170, 21, 0, 9, 0, 78), ("meat", "poultry")),
    ("Bacon", (), ("global",), (), ("protein", "fat"), _np(43, 3, 0.1, 3.3, 0, 137), ("meat", "processed")),
    ("Alcohol", (), ("global",), (), (), _np(123, 0, 4, 0, 0, 5), ("beverage", "alcoholic")),
    ("Coffee", (), ("global",), (), ("caffeine",), _np(2, 0.3, 0, 0, 0, 5), ("beverage", "caffeinated")),
    ("Orange", ("winter",), ("west_coast_us", "south_us"), (), ("vitamin_c", "folate"), _np(62, 1.2, 15, 0.2, 3.1), ("fruit", "citrus")),
    ("Edamame", (), ("global",), ("soy",), ("protein", "folate", "fiber"), _np(188, 18, 14, 8, 8, 9), ("legume", "soy")),
    ("Cranberries", ("autumn",), ("northeast_us",), (), ("vitamin_c", "antioxidants"), _np(46, 0.5, 12, 0.1, 3.6, 2), ("fruit",)),
    ("Wild Rice", ("autumn",), ("midwest_us",), (), ("protein", "fiber"), _np(166, 7, 35, 0.6, 3, 5), ("grain", "whole_grain")),
]


_RECIPES = [
    # name, ingredients, cuisine, meal_types, diets, cost, cook_time, servings, tags
    ("Cauliflower Potato Curry",
     ("Cauliflower", "Potato", "Onion", "Garlic", "Tomato", "Coconut Milk", "Curry Powder", "Ginger", "Turmeric", "Cumin"),
     "indian", ("dinner", "lunch"), ("vegetarian", "vegan", "gluten_free"), "low", 40, 4, ("comfort",)),
    ("Butternut Squash Soup",
     ("Butternut Squash", "Onion", "Garlic", "Vegetable Broth", "Olive Oil", "Black Pepper"),
     "american", ("dinner", "lunch"), ("vegetarian", "vegan", "gluten_free"), "low", 35, 4, ("soup", "seasonal")),
    ("Broccoli Cheddar Soup",
     ("Broccoli", "Cheddar Cheese", "Onion", "Milk", "Butter", "Wheat Flour", "Vegetable Broth"),
     "american", ("dinner", "lunch"), ("vegetarian",), "medium", 35, 4, ("soup", "comfort")),
    ("Sushi",
     ("Raw Fish", "Sushi Rice", "Nori Seaweed", "Soy Sauce", "Cucumber"),
     "japanese", ("dinner", "lunch"), ("pescatarian",), "high", 50, 2, ("raw",)),
    ("Spinach Frittata",
     ("Spinach", "Egg", "Onion", "Feta Cheese", "Olive Oil"),
     "italian", ("breakfast", "lunch"), ("vegetarian", "gluten_free"), "low", 25, 4, ("high_folate",)),
    ("Lentil Soup",
     ("Lentils", "Carrot", "Celery", "Onion", "Garlic", "Vegetable Broth", "Cumin"),
     "mediterranean", ("dinner", "lunch"), ("vegetarian", "vegan", "gluten_free"), "low", 45, 6, ("soup", "high_folate")),
    ("Chickpea Spinach Stew",
     ("Chickpeas", "Spinach", "Tomato", "Onion", "Garlic", "Olive Oil", "Cumin"),
     "mediterranean", ("dinner",), ("vegetarian", "vegan", "gluten_free"), "low", 35, 4, ("high_folate",)),
    ("Grilled Salmon Bowl",
     ("Salmon", "Quinoa", "Avocado", "Spinach", "Lemon", "Olive Oil"),
     "american", ("dinner",), ("pescatarian", "gluten_free"), "high", 30, 2, ("omega3",)),
    ("Shrimp Stir Fry",
     ("Shrimp", "Bell Pepper", "Broccoli", "Soy Sauce", "Garlic", "Ginger", "Brown Rice"),
     "chinese", ("dinner",), ("pescatarian",), "medium", 25, 4, ()),
    ("Chicken Quinoa Salad",
     ("Chicken Breast", "Quinoa", "Spinach", "Tomato", "Cucumber", "Olive Oil", "Lemon"),
     "mediterranean", ("lunch",), ("gluten_free",), "medium", 30, 2, ("high_protein",)),
    ("Vegetable Stir Fry with Tofu",
     ("Tofu", "Broccoli", "Bell Pepper", "Carrot", "Soy Sauce", "Garlic", "Ginger", "Brown Rice"),
     "chinese", ("dinner",), ("vegetarian", "vegan"), "low", 30, 4, ()),
    ("Black Bean Tacos",
     ("Black Beans", "Corn Tortilla", "Avocado", "Tomato", "Onion", "Cilantro"),
     "mexican", ("dinner", "lunch"), ("vegetarian", "vegan", "gluten_free"), "low", 20, 4, ("high_folate",)),
    ("Oatmeal with Berries",
     ("Oats", "Milk", "Blueberries", "Honey", "Walnuts"),
     "american", ("breakfast",), ("vegetarian",), "low", 10, 1, ("whole_grain",)),
    ("Greek Yogurt Parfait",
     ("Greek Yogurt", "Strawberries", "Honey", "Almonds", "Oats"),
     "american", ("breakfast", "snack"), ("vegetarian", "gluten_free"), "low", 5, 1, ("high_protein",)),
    ("Avocado Toast",
     ("Bread", "Avocado", "Egg", "Lemon", "Black Pepper"),
     "american", ("breakfast",), ("vegetarian",), "medium", 10, 1, ()),
    ("Kale Caesar Salad",
     ("Kale", "Parmesan", "Bread", "Olive Oil", "Lemon", "Garlic"),
     "italian", ("lunch",), ("vegetarian",), "medium", 15, 2, ()),
    ("Pumpkin Risotto",
     ("Pumpkin", "White Rice", "Onion", "Parmesan", "Butter", "Vegetable Broth"),
     "italian", ("dinner",), ("vegetarian", "gluten_free"), "medium", 45, 4, ("seasonal",)),
    ("Sweet Potato Black Bean Chili",
     ("Sweet Potato", "Black Beans", "Tomato", "Onion", "Garlic", "Cumin", "Bell Pepper"),
     "american", ("dinner",), ("vegetarian", "vegan", "gluten_free"), "low", 50, 6, ("seasonal",)),
    ("Roasted Beet Salad",
     ("Beet", "Feta Cheese", "Walnuts", "Spinach", "Olive Oil", "Lemon"),
     "mediterranean", ("lunch",), ("vegetarian", "gluten_free"), "medium", 50, 2, ("high_folate", "seasonal")),
    ("Mushroom Barley Soup",
     ("Mushroom", "Carrot", "Celery", "Onion", "Vegetable Broth", "Wheat Flour"),
     "american", ("dinner", "lunch"), ("vegetarian",), "low", 45, 4, ("soup", "seasonal")),
    ("Asparagus Quiche",
     ("Asparagus", "Egg", "Milk", "Wheat Flour", "Butter", "Mozzarella"),
     "french", ("breakfast", "lunch"), ("vegetarian",), "medium", 60, 6, ("seasonal",)),
    ("Pea Risotto",
     ("Peas", "White Rice", "Onion", "Parmesan", "Butter", "Vegetable Broth"),
     "italian", ("dinner",), ("vegetarian", "gluten_free"), "medium", 40, 4, ("seasonal",)),
    ("Apple Walnut Salad",
     ("Apple", "Walnuts", "Kale", "Feta Cheese", "Olive Oil", "Maple Syrup"),
     "american", ("lunch",), ("vegetarian", "gluten_free"), "medium", 15, 2, ("seasonal",)),
    ("Turkey Chili",
     ("Ground Turkey", "Black Beans", "Tomato", "Onion", "Garlic", "Bell Pepper", "Cumin"),
     "american", ("dinner",), ("gluten_free",), "medium", 55, 6, ("high_protein",)),
    ("Beef Tacos",
     ("Ground Beef", "Corn Tortilla", "Cheddar Cheese", "Tomato", "Onion", "Cilantro"),
     "mexican", ("dinner",), (), "medium", 25, 4, ()),
    ("Bacon Egg Breakfast Sandwich",
     ("Bacon", "Egg", "Bread", "Cheddar Cheese", "Butter"),
     "american", ("breakfast",), (), "medium", 15, 1, ("processed",)),
    ("Tempeh Buddha Bowl",
     ("Tempeh", "Quinoa", "Kale", "Avocado", "Carrot", "Soy Sauce"),
     "fusion", ("lunch", "dinner"), ("vegetarian", "vegan"), "medium", 30, 2, ("high_protein",)),
    ("Edamame Quinoa Salad",
     ("Edamame", "Quinoa", "Cucumber", "Carrot", "Soy Sauce", "Ginger"),
     "fusion", ("lunch",), ("vegetarian", "vegan"), "low", 20, 2, ("high_folate", "high_protein")),
    ("Peanut Butter Banana Smoothie",
     ("Peanut Butter", "Banana", "Milk", "Honey", "Oats"),
     "american", ("breakfast", "snack"), ("vegetarian",), "low", 5, 1, ()),
    ("Whole Wheat Pasta Primavera",
     ("Whole Wheat Pasta", "Zucchini", "Bell Pepper", "Tomato", "Parmesan", "Olive Oil", "Basil"),
     "italian", ("dinner",), ("vegetarian",), "medium", 30, 4, ("whole_grain",)),
    ("Salmon Avocado Sushi Bowl",
     ("Salmon", "Sushi Rice", "Avocado", "Nori Seaweed", "Cucumber", "Soy Sauce"),
     "japanese", ("dinner", "lunch"), ("pescatarian",), "high", 35, 2, ()),
    ("Wild Rice Cranberry Pilaf",
     ("Wild Rice", "Cranberries", "Onion", "Celery", "Walnuts", "Vegetable Broth"),
     "american", ("dinner",), ("vegetarian", "vegan"), "medium", 55, 4, ("seasonal",)),
    ("Vegetarian Lentil Curry",
     ("Lentils", "Coconut Milk", "Tomato", "Onion", "Garlic", "Curry Powder", "Spinach", "Brown Rice"),
     "indian", ("dinner",), ("vegetarian", "vegan", "gluten_free"), "low", 45, 4, ("high_folate",)),
    ("Caprese Salad",
     ("Tomato", "Mozzarella", "Basil", "Olive Oil"),
     "italian", ("lunch", "snack"), ("vegetarian", "gluten_free"), "medium", 10, 2, ("summer",)),
    ("Stuffed Bell Peppers",
     ("Bell Pepper", "Brown Rice", "Ground Turkey", "Tomato", "Onion", "Mozzarella"),
     "american", ("dinner",), ("gluten_free",), "medium", 60, 4, ()),
    ("Banana Oat Pancakes",
     ("Banana", "Oats", "Egg", "Milk", "Maple Syrup"),
     "american", ("breakfast",), ("vegetarian",), "low", 20, 2, ("whole_grain",)),
    ("Roasted Cauliflower Tacos",
     ("Cauliflower", "Corn Tortilla", "Avocado", "Cabbage", "Cilantro", "Lemon"),
     "mexican", ("dinner",), ("vegetarian", "vegan", "gluten_free"), "low", 35, 4, ("seasonal",)),
    ("Minestrone Soup",
     ("Tomato", "Carrot", "Celery", "Onion", "Whole Wheat Pasta", "Green Beans", "Vegetable Broth"),
     "italian", ("dinner", "lunch"), ("vegetarian", "vegan"), "low", 45, 6, ("soup",)),
    ("Chicken Noodle Soup",
     ("Chicken Breast", "Carrot", "Celery", "Onion", "Whole Wheat Pasta", "Vegetable Broth"),
     "american", ("dinner", "lunch"), (), "medium", 45, 6, ("soup", "comfort")),
    ("Tofu Scramble",
     ("Tofu", "Spinach", "Onion", "Turmeric", "Bell Pepper", "Olive Oil"),
     "american", ("breakfast",), ("vegetarian", "vegan", "gluten_free"), "low", 15, 2, ("high_protein",)),
    ("Shrimp Tacos",
     ("Shrimp", "Corn Tortilla", "Cabbage", "Avocado", "Cilantro", "Lemon"),
     "mexican", ("dinner",), ("pescatarian", "gluten_free"), "high", 25, 4, ()),
    ("Berry Spinach Smoothie",
     ("Spinach", "Blueberries", "Banana", "Greek Yogurt", "Honey"),
     "american", ("breakfast", "snack"), ("vegetarian", "gluten_free"), "low", 5, 1, ("high_folate",)),
    ("Zucchini Noodles with Pesto",
     ("Zucchini", "Basil", "Olive Oil", "Parmesan", "Garlic", "Walnuts"),
     "italian", ("dinner",), ("vegetarian", "gluten_free"), "medium", 20, 2, ("low_carb",)),
    ("Kale White Bean Soup",
     ("Kale", "Chickpeas", "Carrot", "Onion", "Garlic", "Vegetable Broth", "Olive Oil"),
     "mediterranean", ("dinner", "lunch"), ("vegetarian", "vegan", "gluten_free"), "low", 40, 4, ("soup", "seasonal")),
    ("Dark Chocolate Oat Bites",
     ("Oats", "Dark Chocolate", "Peanut Butter", "Honey", "Banana"),
     "american", ("snack", "dessert"), ("vegetarian",), "low", 15, 6, ("sweet",)),
]


_CONDITION_RULES = [
    ConditionRule(
        "pregnancy", "condition",
        forbids=("Raw Fish", "Alcohol", "Soft Cheese"),
        recommends=("Spinach", "Lentils", "Orange", "Edamame"),
        rationale="Raw fish, alcohol and unpasteurised soft cheeses carry infection risks in "
                  "pregnancy; folate-rich foods support neural-tube development.",
    ),
    ConditionRule(
        "diabetes", "condition",
        forbids=("Sugar", "Honey", "Maple Syrup"),
        recommends=("Oats", "Quinoa", "Lentils", "Broccoli"),
        rationale="Added sugars spike blood glucose; whole grains and legumes have a low "
                  "glycaemic index.",
    ),
    ConditionRule(
        "hypertension", "condition",
        forbids=("Salt", "Soy Sauce", "Bacon"),
        recommends=("Banana", "Spinach", "Beet", "Oats"),
        rationale="High-sodium foods raise blood pressure; potassium-rich foods lower it.",
    ),
    ConditionRule(
        "lactose_intolerance", "condition",
        forbids=("Milk", "Soft Cheese", "Cheddar Cheese"),
        recommends=("Coconut Milk", "Tofu"),
        rationale="Lactose-containing dairy triggers symptoms; plant alternatives do not.",
    ),
    ConditionRule(
        "celiac_disease", "condition",
        forbids=("Wheat Flour", "Bread", "Whole Wheat Pasta", "Soy Sauce"),
        recommends=("Quinoa", "Brown Rice", "Corn Tortilla"),
        rationale="Gluten damages the small intestine in celiac disease.",
    ),
    ConditionRule(
        "high_cholesterol", "condition",
        forbids=("Butter", "Bacon", "Ground Beef"),
        recommends=("Oats", "Almonds", "Salmon", "Avocado"),
        rationale="Saturated fats raise LDL; soluble fibre and unsaturated fats lower it.",
    ),
    ConditionRule(
        "high_folate", "goal",
        recommends=("Spinach", "Lentils", "Asparagus", "Edamame", "Black Beans"),
        rationale="These foods are among the richest natural folate sources.",
    ),
    ConditionRule(
        "low_sodium", "goal",
        forbids=("Salt", "Soy Sauce", "Bacon", "Feta Cheese"),
        recommends=("Banana", "Apple", "Brown Rice"),
        rationale="Reducing high-sodium foods is the primary lever for a low-sodium diet.",
    ),
    ConditionRule(
        "high_protein", "goal",
        recommends=("Chicken Breast", "Greek Yogurt", "Lentils", "Tofu", "Egg", "Salmon"),
        rationale="These foods provide the most protein per serving in the catalogue.",
    ),
    ConditionRule(
        "low_carb", "goal",
        forbids=("White Rice", "Bread", "Sugar", "Potato"),
        recommends=("Zucchini", "Avocado", "Egg", "Salmon"),
        rationale="Low-carbohydrate eating avoids starches and added sugar.",
    ),
    ConditionRule(
        "high_fiber", "goal",
        recommends=("Lentils", "Black Beans", "Oats", "Avocado", "Sweet Potato"),
        rationale="Legumes, whole grains and certain vegetables are the best fibre sources.",
    ),
    ConditionRule(
        "weight_loss", "goal",
        forbids=("Sugar", "Bacon", "Dark Chocolate"),
        recommends=("Broccoli", "Spinach", "Greek Yogurt", "Quinoa"),
        rationale="Energy-dense processed foods are limited; high-volume low-calorie foods "
                  "support satiety.",
    ),
]


def build_core_catalog() -> FoodCatalog:
    """Build the curated catalogue used throughout tests, examples and benches."""
    catalog = FoodCatalog()
    for name, seasons, regions, allergens, nutrients, nutrition, tags in _INGREDIENTS:
        catalog.add_ingredient(IngredientRecord(
            name=name,
            seasons=tuple(seasons),
            regions=tuple(regions),
            allergens=tuple(allergens),
            nutrients=tuple(nutrients),
            nutrition=nutrition,
            tags=tuple(tags),
        ))
    for name, ingredients, cuisine, meal_types, diets, cost, cook_time, servings, tags in _RECIPES:
        catalog.add_recipe(RecipeRecord(
            name=name,
            ingredients=tuple(ingredients),
            cuisine=cuisine,
            meal_types=tuple(meal_types),
            diets=tuple(diets),
            cost_level=cost,
            cook_time_minutes=cook_time,
            servings=servings,
            tags=tuple(tags),
        ))
    for rule in _CONDITION_RULES:
        catalog.add_rule(rule)
    return catalog
