"""Process-pool closure: partitioned fixpoint rounds and bulk materialisation.

The semi-naive engine in :mod:`repro.owl.reasoner` is the last hot path
pinned to one core.  This module fans it out two ways:

**Partitioned fixpoint** (:func:`run_parallel`, surfaced as
:meth:`~repro.owl.reasoner.Reasoner.run_parallel`).  Each round's rule
evaluation is *candidate generation* (pure joins against the round-start
graph state) followed by a *fold* (adding candidates through the
journal-aware graph API, which is what maintains fingerprints, predicate
counters and rule-firing counts).  Candidate generation is the
parallelisable part: the delta is split by predicate ID (property rules —
oversized predicate groups are sliced further) and classification
candidates by individual-ID range, partitions are evaluated in
``ProcessPoolExecutor`` workers, and the coordinator folds the returned
``(int, int, int)`` triples per rule family in the exact serial family
order.  Because candidates are a pure function of ``(delta, round-start
state)`` and folds dedup, the fixed point *and the per-rule firing counts*
are identical to :meth:`Reasoner.run` by construction — ``run()`` stays
the single-core differential oracle.

Workers are ``fork``-children: they inherit the coordinator's working
graph, reasoner (including the compiled class-expression matchers, which
are closures and deliberately never pickled) and the module-level
:data:`_WORKER` context.  Per round they receive only the *fold batches*
they have not yet applied — the coordinator keeps the batch history and a
per-worker applied watermark (reported back with every result), and
updates ``_WORKER.applied`` parent-side after each fold so that a worker
forked mid-generation inherits a graph/watermark pair that is consistent
by construction.  Catch-up application is idempotent (graph adds dedup),
so late workers and arbitrary task scheduling are safe.  Workers
pre-filter candidates already present in their synced graph, which keeps
the coordinator's serial fold proportional to genuinely-new triples.

**Bulk materialisation** (:func:`bulk_materialise`, surfaced as
:meth:`~repro.owl.closure.MaterializationCache.materialise_many` and
:meth:`~repro.core.scenario.ScenarioBuilder.build_many`).  Fleet warm-up
closes *many independent scenario graphs*; here the unit of parallelism
is a whole closure.  Each fork-child runs the plain serial ``run()`` on
one inherited graph and ships back the closure's encoded storage
(triple set, the three permutation indexes, predicate counters, content
hash), which the coordinator adopts wholesale over the shared term
dictionary — pickling pre-built indexes is C-speed, so the coordinator's
serial share per scenario is a fraction of reasoning it out.  If a child
interned new terms (its dictionary diverged), it falls back to shipping
``(new terms, derived triples)`` and the coordinator re-interns and folds
through the journal path instead.

**Fallbacks.**  Both engines degrade to the serial oracle rather than
fail: ``workers <= 1``, a missing ``fork`` start method, or non-monotone
classification axioms (mirroring ``supports_incremental_extension``)
fall back wholesale; rounds whose delta is below the cost-model
``threshold`` are evaluated serially on the coordinator (pool overhead
would exceed the work); a partition whose worker dies or raises
(including injected ``worker_pool`` faults, see
:mod:`repro.testing.faults`) is retried serially on the coordinator with
an identical evaluation context; a broken pool downgrades the remaining
rounds to serial.  Every decision is counted in :func:`parallel_stats`.

Fork caveat: pools must be created from a moment when no other thread
holds locks the children might need (the classic fork-with-threads
hazard).  The serving layer therefore only uses pool workers during
cold-start warm-up, before request traffic starts.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..rdf.dictionary import KIND_IRI
from ..rdf.graph import EncodedTriple, Graph
from ..testing import faults

__all__ = [
    "run_parallel",
    "bulk_materialise",
    "parallel_stats",
    "reset_parallel_stats",
    "ParallelStats",
    "DEFAULT_THRESHOLD",
]

#: Cost-model floor: a round whose delta holds fewer triples than this is
#: evaluated serially on the coordinator — pool dispatch, catch-up
#: shipping and result pickling would cost more than the evaluation.
DEFAULT_THRESHOLD = 512

#: Fold order for phase-A families: the serial engine's property families
#: followed by its type families.  Folding concatenated partitions in this
#: order reproduces the serial firing counts exactly.
_PHASE_A_FAMILIES = (
    "subPropertyOf", "inverseOf", "symmetric", "transitive",
    "propertyChain", "domain-range", "subClassOf-types",
)

#: Serialises publishing the fork-inherited globals with spawning the pool
#: that inherits them, so two concurrent parallel runs (or a run and a
#: bulk pass) can never fork each other's state mid-publish.
_FORK_GUARD = threading.Lock()


class ParallelStats:
    """Thread-safe process-wide counters for the parallel engines.

    Like :func:`repro.sparql.planner.planner_stats` these are
    *process-local*: pool workers never touch them — everything a worker
    learns travels back through its task result and is folded (and
    counted) on the coordinator.
    """

    _FIELDS = ("parallel_closures", "pool_rounds", "serial_rounds",
               "pool_retries", "pool_fallbacks", "bulk_pool_closures")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.parallel_closures = 0
        self.pool_rounds = 0
        self.serial_rounds = 0
        self.pool_retries = 0
        self.pool_fallbacks = 0
        self.bulk_pool_closures = 0
        self.partition_skew = 0.0

    def record_round(self, pooled: bool, skew: float = 0.0) -> None:
        with self._lock:
            if pooled:
                self.pool_rounds += 1
                if skew > self.partition_skew:
                    self.partition_skew = skew
            else:
                self.serial_rounds += 1

    def record_closure(self, pooled: bool) -> None:
        with self._lock:
            if pooled:
                self.parallel_closures += 1
            else:
                self.pool_fallbacks += 1

    def record_retry(self, count: int = 1) -> None:
        with self._lock:
            self.pool_retries += count

    def record_bulk(self, count: int) -> None:
        with self._lock:
            self.bulk_pool_closures += count

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            stats: Dict[str, float] = {name: getattr(self, name)
                                       for name in self._FIELDS}
            stats["partition_skew"] = round(self.partition_skew, 3)
            return stats

    def reset(self) -> None:
        with self._lock:
            for name in self._FIELDS:
                setattr(self, name, 0)
            self.partition_skew = 0.0


_STATS = ParallelStats()


def parallel_stats() -> Dict[str, float]:
    """A snapshot of the process-wide parallel-closure counters."""
    return _STATS.snapshot()


def reset_parallel_stats() -> None:
    """Zero the process-wide parallel-closure counters (tests)."""
    _STATS.reset()


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _resolve_workers(workers: Optional[int]) -> int:
    if workers is None:
        return os.cpu_count() or 1
    return max(1, int(workers))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerContext:
    """Fork-inherited coordinator state.

    ``graph`` is the coordinator's *live* working graph and ``applied``
    the number of fold batches it reflects; the coordinator updates
    ``applied`` immediately after every fold, and forks only happen
    between folds (pool spawning is driven by task submission), so any
    child inherits a consistent pair.  After the fork the child owns its
    copies and catches up by applying the batch history it is shipped.
    """

    __slots__ = ("reasoner", "graph", "enc", "applied",
                 "ancestor_cache", "type_index")

    def __init__(self, reasoner, graph: Graph, enc) -> None:
        self.reasoner = reasoner
        self.graph = graph
        self.enc = enc
        self.applied = 0
        self.ancestor_cache: Dict[int, Tuple[int, ...]] = {}
        self.type_index: Optional[Dict[int, Set[int]]] = None


_WORKER: Optional[_WorkerContext] = None


class _WorkerDesync(RuntimeError):
    """A worker could not reproduce the coordinator's evaluation state
    (missing history, or it interned terms the coordinator doesn't have);
    the coordinator retries the partition serially."""


def _catch_up(ctx: _WorkerContext, first_index: int,
              batches: Sequence[Sequence[EncodedTriple]]) -> None:
    """Apply the fold batches this worker hasn't seen yet.

    ``batches[i]`` is global batch ``first_index + i``.  Application is
    idempotent (adds dedup), so a worker forked with a newer graph than
    its shipped suffix simply re-applies no-ops.
    """
    start = ctx.applied - first_index
    if start < 0:
        raise _WorkerDesync(
            f"worker at batch {ctx.applied} shipped history from {first_index}")
    pending = batches[start:]
    if not pending:
        return
    graph = ctx.graph
    type_index = ctx.type_index
    rdf_type = ctx.enc.rdf_type
    kinds = ctx.enc.dictionary.kinds
    for batch in pending:
        graph.add_encoded_many(batch)
        if type_index is not None:
            for s, p, o in batch:
                if p == rdf_type and kinds[o] == KIND_IRI:
                    entry = type_index.get(s)
                    if entry is None:
                        type_index[s] = {o}
                    else:
                        entry.add(o)
    ctx.applied += len(pending)


def _eval_partition(kind: str, payload, first_index: int,
                    batches: Sequence[Sequence[EncodedTriple]],
                    round_no: int, part_no: int):
    """Pool-worker task: evaluate one partition against synced state.

    Returns ``(pid, applied, families)`` where ``families`` is a tuple of
    candidate lists pre-filtered against the worker's graph (dropping
    candidates that are already present is correctness-neutral — they
    would fold as non-counted duplicates — and shrinks the coordinator's
    serial fold).
    """
    ctx = _WORKER
    if ctx is None:
        raise _WorkerDesync("worker has no inherited context")
    injector = faults.ACTIVE
    if injector is not None:
        injector.fire("worker_pool", kind=kind, round=round_no,
                      partition=part_no, pid=os.getpid())
    terms_before = len(ctx.enc.dictionary.terms)
    _catch_up(ctx, first_index, batches)
    reasoner, graph, enc = ctx.reasoner, ctx.graph, ctx.enc
    if kind == "delta":
        subs, invs, syms, trans, chains = \
            reasoner._property_candidates_encoded(graph, payload, enc)
        drs, types = reasoner._type_candidates_encoded(
            graph, payload, enc, ctx.ancestor_cache)
        families = (subs, invs, syms, trans, chains, drs, types)
    else:  # "classify"
        if ctx.type_index is None:
            ctx.type_index = reasoner._type_index_ids(graph, enc)
        families = (reasoner._classification_candidates_encoded(
            graph, payload, enc, ctx.type_index),)
    if len(enc.dictionary.terms) != terms_before:
        # The evaluation interned terms locally; their IDs are unknown to
        # the coordinator, so the result cannot be folded.
        raise _WorkerDesync("worker interned new terms during evaluation")
    triples = graph._triples
    filtered = tuple([t for t in family if t not in triples]
                     for family in families)
    return os.getpid(), ctx.applied, filtered


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def _partition_delta(delta: Sequence[EncodedTriple],
                     bins: int) -> Tuple[List[List[EncodedTriple]], float]:
    """Split a round's delta by predicate ID, LPT-packed into ``bins``.

    Groups larger than the per-bin target are sliced (a single dominant
    predicate — e.g. a transitive closure — must not serialise the round).
    Returns the non-empty partitions and the skew ``max/mean``.
    """
    groups: Dict[int, List[EncodedTriple]] = {}
    for triple in delta:
        groups.setdefault(triple[1], []).append(triple)
    target = max(1, -(-len(delta) // bins))
    units: List[List[EncodedTriple]] = []
    for group in groups.values():
        if len(group) > target:
            units.extend(group[i:i + target]
                         for i in range(0, len(group), target))
        else:
            units.append(group)
    units.sort(key=len, reverse=True)
    parts: List[List[EncodedTriple]] = [[] for _ in range(bins)]
    sizes = [0] * bins
    for unit in units:
        slot = sizes.index(min(sizes))
        parts[slot].extend(unit)
        sizes[slot] += len(unit)
    parts = [part for part in parts if part]
    mean = len(delta) / len(parts)
    skew = (max(sizes) / mean) if mean else 1.0
    return parts, skew


def _partition_candidates(candidates: Set[int],
                          bins: int) -> List[List[int]]:
    """Split classification candidates into contiguous individual-ID
    ranges of equal count."""
    ordered = sorted(candidates)
    size = max(1, -(-len(ordered) // bins))
    return [ordered[i:i + size] for i in range(0, len(ordered), size)]


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class _PhasePool:
    """The per-generation pool plus the catch-up bookkeeping around it."""

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self.executor: Optional[ProcessPoolExecutor] = None
        self.broken = False
        self.history: List[List[EncodedTriple]] = []
        self.applied_by_pid: Dict[int, int] = {}
        self.spawn_floor = 0

    def ensure(self) -> bool:
        """Create the pool lazily; ``False`` if it can't be created."""
        if self.executor is not None:
            return True
        if self.broken:
            return False
        try:
            context = multiprocessing.get_context("fork")
            self.executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context)
            # Any process forked from here on inherits at least this many
            # applied batches (_WORKER.applied is kept current parentside).
            self.spawn_floor = len(self.history)
        except (OSError, ValueError):
            self.broken = True
            return False
        return True

    def floor(self) -> int:
        """The lowest batch index any live worker might still need.

        Workers report their watermark with every result; a worker that
        has never reported forked no earlier than pool creation, so
        ``spawn_floor`` bounds it.
        """
        known = list(self.applied_by_pid.values())
        if len(known) < self.workers:
            known.append(self.spawn_floor)
        return min(known) if known else 0

    def push_batch(self, batch: List[EncodedTriple]) -> None:
        self.history.append(batch)
        if _WORKER is not None:
            _WORKER.applied = len(self.history)

    def shutdown(self) -> None:
        if self.executor is not None:
            self.executor.shutdown(wait=not self.broken, cancel_futures=True)
            self.executor = None

    def run_phase(self, kind: str, parts: List[list], round_no: int,
                  serial_eval: Callable[[str, list], Tuple[list, ...]]
                  ) -> List[Tuple[list, ...]]:
        """Evaluate ``parts`` in the pool; retry failures serially.

        Failed partitions (injected faults, worker crashes, a broken
        pool) are re-evaluated on the coordinator through ``serial_eval``
        — the coordinator's graph is at the exact round state the workers
        evaluated against, so the retry is differentially equivalent.
        """
        results: List[Optional[Tuple[list, ...]]] = [None] * len(parts)
        floor = self.floor()
        suffix = self.history[floor:]
        futures = {}
        if self.executor is not None and not self.broken:
            try:
                with _FORK_GUARD:
                    for index, part in enumerate(parts):
                        future = self.executor.submit(
                            _eval_partition, kind, part, floor, suffix,
                            round_no, index)
                        futures[future] = index
            except (RuntimeError, OSError):
                self.broken = True
        for future, index in futures.items():
            try:
                pid, applied, families = future.result()
            except (KeyboardInterrupt, SystemExit):
                raise
            except BrokenProcessPool:
                self.broken = True
            except BaseException:
                # Includes injected worker faults; the partition is
                # retried below.
                pass
            else:
                previous = self.applied_by_pid.get(pid, 0)
                self.applied_by_pid[pid] = max(previous, applied)
                results[index] = families
        retries = 0
        for index, part in enumerate(parts):
            if results[index] is None:
                retries += 1
                results[index] = serial_eval(kind, part)
        if retries:
            _STATS.record_retry(retries)
        return results  # type: ignore[return-value]


def run_parallel(reasoner, workers: Optional[int] = None,
                 threshold: Optional[int] = None) -> Graph:
    """Materialise ``reasoner.base_graph``'s closure with pooled rounds.

    See the module docstring for the architecture; see
    :meth:`repro.owl.reasoner.Reasoner.run_parallel` for the contract.
    """
    workers = _resolve_workers(workers)
    threshold = DEFAULT_THRESHOLD if threshold is None else max(1, int(threshold))
    if (workers <= 1 or not _fork_available()
            or not reasoner._monotone_classification
            or len(reasoner.base_graph) < threshold):
        _STATS.record_closure(pooled=False)
        return reasoner.run()

    from .reasoner import ReasoningReport

    start = time.perf_counter()
    working = reasoner.base_graph.copy()
    reasoner.report = ReasoningReport(input_triples=len(reasoner.base_graph))
    reasoner._materialise_schema(working)

    global _WORKER
    pool = _PhasePool(workers)
    pooled_rounds = 0
    with _FORK_GUARD:
        _WORKER = _WorkerContext(reasoner, working,
                                 reasoner._encoded_axioms(working))
    try:
        pooled_rounds = _parallel_fixpoint(reasoner, working, pool, threshold)
    finally:
        pool.shutdown()
        with _FORK_GUARD:
            _WORKER = None
    reasoner.report.inferred_triples = len(working) - reasoner.report.input_triples
    reasoner.report.elapsed_seconds = time.perf_counter() - start
    _STATS.record_closure(pooled=pooled_rounds > 0)
    if reasoner.check_consistency:
        reasoner._check_consistency(working)
    return working


def _parallel_fixpoint(reasoner, working: Graph, pool: _PhasePool,
                       threshold: int) -> int:
    """The pooled mirror of ``Reasoner._fixpoint_encoded``.

    Returns the number of pooled rounds; ``reasoner.report.iterations``
    is set to the total round count.
    """
    enc = reasoner._encoded_axioms(working)
    ancestor_cache: Dict[int, Tuple[int, ...]] = {}
    reasoner._active_type_index = None
    pooled_rounds = 0

    def serial_eval(kind: str, part: list) -> Tuple[list, ...]:
        if kind == "delta":
            subs, invs, syms, trans, chains = \
                reasoner._property_candidates_encoded(working, part, enc)
            drs, types = reasoner._type_candidates_encoded(
                working, part, enc, ancestor_cache)
            return (subs, invs, syms, trans, chains, drs, types)
        return (reasoner._classification_candidates_encoded(
            working, part, enc, reasoner._active_type_index),)

    delta: Sequence[EncodedTriple] = list(working._triples)
    iteration = 0
    try:
        while delta and iteration < reasoner.max_iterations:
            iteration += 1
            initial = iteration == 1
            out: List[EncodedTriple] = []
            pooled = len(delta) >= threshold and pool.ensure()
            if not pooled:
                # Serial round through the exact oracle code path; its
                # folds still enter the history so workers stay in sync.
                reasoner._apply_property_rules_encoded(working, delta, out, enc)
                reasoner._apply_type_rules_encoded(
                    working, delta, out, enc, ancestor_cache)
                phase_a = len(out)
                reasoner._apply_restriction_rules_encoded(
                    working, delta, out, check_everything=initial)
                pool.push_batch(out[:phase_a])
                pool.push_batch(out[phase_a:])
                _STATS.record_round(pooled=False)
                delta = out
                continue

            pooled_rounds += 1
            # Phase A: property + per-triple type rules over delta
            # partitions, evaluated against the round-start state.
            parts, skew = _partition_delta(delta, pool.workers)
            results = pool.run_phase("delta", parts, iteration, serial_eval)
            merged: List[List[EncodedTriple]] = [[] for _ in _PHASE_A_FAMILIES]
            for families in results:
                for slot, family in enumerate(families):
                    merged[slot].extend(family)
            for family, rule in zip(merged, _PHASE_A_FAMILIES):
                reasoner._add_all_encoded(working, family, rule, out, enc)
            pool.push_batch(list(out))
            _STATS.record_round(pooled=True, skew=skew)

            # Phase B: restriction classification over candidate ID
            # ranges, against the post-phase-A state the workers reach by
            # applying the batch just pushed.
            if reasoner._has_restrictions:
                if initial:
                    candidates = reasoner._individuals_ids(working, enc)
                else:
                    candidates = reasoner._restriction_candidates_ids(
                        working, delta, enc)
                if candidates:
                    if reasoner._active_type_index is None:
                        reasoner._active_type_index = \
                            reasoner._type_index_ids(working, enc)
                    phase_a = len(out)
                    cparts = _partition_candidates(candidates, pool.workers)
                    cresults = pool.run_phase(
                        "classify", cparts, iteration, serial_eval)
                    additions: List[EncodedTriple] = []
                    for families in cresults:
                        additions.extend(families[0])
                    reasoner._add_all_encoded(
                        working, additions, "classification", out, enc)
                    # Consequence emission is cheap and reads the freshly
                    # updated type index: keep it on the coordinator.
                    consequences = reasoner._restriction_consequences_encoded(
                        working, candidates, enc, reasoner._active_type_index)
                    reasoner._add_all_encoded(
                        working, consequences, "restriction-consequences",
                        out, enc)
                    pool.push_batch(out[phase_a:])
            delta = out
    finally:
        reasoner._active_type_index = None
    reasoner.report.iterations = iteration
    return pooled_rounds


# ----------------------------------------------------------------------
# Bulk (scenario-level) materialisation
# ----------------------------------------------------------------------
class _BulkJobs:
    """Fork-inherited state for one ``bulk_materialise`` pass."""

    __slots__ = ("graphs", "factory")

    def __init__(self, graphs: Sequence[Graph], factory) -> None:
        self.graphs = graphs
        self.factory = factory


_BULK: Optional[_BulkJobs] = None


def _bulk_close(index: int):
    """Pool-worker task: close one inherited graph, ship the storage back.

    The fast payload adopts the closure's encoded storage wholesale on
    the coordinator (valid because the child shares the parent's term-ID
    space and term hashes under ``fork``).  If the child interned new
    terms its IDs have diverged, so it degrades to a ``(new terms,
    derived triples)`` payload the coordinator re-interns and folds.
    """
    jobs = _BULK
    if jobs is None:
        raise _WorkerDesync("bulk worker has no inherited jobs")
    injector = faults.ACTIVE
    if injector is not None:
        injector.fire("worker_pool", kind="bulk", partition=index,
                      pid=os.getpid())
    graph = jobs.graphs[index]
    terms_before = len(graph.dictionary.terms)
    from .reasoner import Reasoner
    reasoner = (jobs.factory(graph) if jobs.factory is not None
                else Reasoner(graph))
    closure = reasoner.run()
    if len(closure.dictionary.terms) != terms_before:
        new_terms = list(closure.dictionary.terms[terms_before:])
        asserted = graph._triples
        derived = [t for t in closure._triples if t not in asserted]
        return ("remap", index, terms_before, new_terms, derived)
    return ("adopt", index, closure._triples, closure._spo, closure._pos,
            closure._osp, closure._pred_counts, closure._content_hash)


def _adopt_closure(source: Graph, payload) -> Graph:
    """Rebuild a worker-produced closure over the coordinator's dictionary."""
    _, _, triples, spo, pos, osp, pred_counts, content_hash = payload
    clone = Graph(identifier=source.identifier)
    clone.namespace_manager = source.namespace_manager.copy()
    clone._dict = source._dict
    clone._triples = triples
    clone._spo = spo
    clone._pos = pos
    clone._osp = osp
    clone._pred_counts = pred_counts
    clone._content_hash = content_hash
    return clone


def _remap_closure(source: Graph, payload) -> Graph:
    """Fold a diverged worker closure through the journal-aware add path."""
    _, _, terms_before, new_terms, derived = payload
    dictionary = source.dictionary
    id_map: Dict[int, int] = {}
    for offset, term in enumerate(new_terms):
        id_map[terms_before + offset] = dictionary.intern(term)
    remap = id_map.get
    closure = source.copy()
    closure.add_encoded_many(
        [(remap(s, s), remap(p, p), remap(o, o)) for s, p, o in derived])
    return closure


def bulk_materialise(graphs: Sequence[Graph], reasoner_factory=None,
                     workers: Optional[int] = None
                     ) -> Iterator[Tuple[int, Graph]]:
    """Yield ``(index, closure)`` for every graph, pooled when possible.

    Results arrive in completion order.  Falls back to serial closure for
    ``workers <= 1``, a single job, or a missing ``fork`` start method;
    individual failed jobs (injected faults, worker crashes) are retried
    serially on the coordinator, and a broken pool drains the remaining
    jobs serially.  The caller owns cache/single-flight semantics — this
    is pure closure production.
    """
    from .reasoner import Reasoner

    workers = _resolve_workers(workers)
    workers = min(workers, len(graphs))

    def close_serial(index: int) -> Graph:
        graph = graphs[index]
        reasoner = (reasoner_factory(graph) if reasoner_factory is not None
                    else Reasoner(graph))
        return reasoner.run()

    if workers <= 1 or len(graphs) < 2 or not _fork_available():
        for index in range(len(graphs)):
            yield index, close_serial(index)
        return

    global _BULK
    pending: List[int] = []
    futures = {}
    executor: Optional[ProcessPoolExecutor] = None
    try:
        try:
            with _FORK_GUARD:
                _BULK = _BulkJobs(graphs, reasoner_factory)
                context = multiprocessing.get_context("fork")
                executor = ProcessPoolExecutor(
                    max_workers=workers, mp_context=context)
                futures = {executor.submit(_bulk_close, index): index
                           for index in range(len(graphs))}
        except (OSError, ValueError, RuntimeError):
            # Pool never came up: close everything serially.
            for index in range(len(graphs)):
                yield index, close_serial(index)
            return
        broken = False
        pooled = 0
        for future in as_completed(futures):
            index = futures[future]
            try:
                payload = future.result()
            except (KeyboardInterrupt, SystemExit):
                raise
            except BrokenProcessPool:
                broken = True
                pending.append(index)
                continue
            except BaseException:
                pending.append(index)
                continue
            source = graphs[index]
            if payload[0] == "adopt":
                closure = _adopt_closure(source, payload)
            else:
                closure = _remap_closure(source, payload)
            pooled += 1
            yield index, closure
        if pooled:
            _STATS.record_bulk(pooled)
        if pending:
            _STATS.record_retry(len(pending))
            if broken and executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
                executor = None
            for index in pending:
                yield index, close_serial(index)
    finally:
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        with _FORK_GUARD:
            _BULK = None
