"""OWL reasoning substrate: the project's substitute for the Pellet reasoner.

The central entry point is :class:`Reasoner`, which materialises the
deductive closure of an ontology-plus-instances graph so that SPARQL
queries over the result see inferred types, inverse property assertions,
transitive closures and restriction-based classifications — exactly the
pipeline the paper describes (reason first, export inferred axioms, then
query).
"""

from .axioms import AxiomIndex, EquivalenceAxiom, SubClassAxiom
from .closure import MaterializationCache, closure_cache, materialize
from .expressions import (
    AllValuesFrom,
    ClassExpression,
    ComplementOf,
    HasValue,
    IntersectionOf,
    MinCardinality,
    NamedClass,
    OneOf,
    SomeValuesFrom,
    UnionOf,
    parse_class_expression,
)
from .hierarchy import ClassHierarchy, PropertyHierarchy, render_tree
from .parallel import (
    ParallelStats,
    bulk_materialise,
    parallel_stats,
    reset_parallel_stats,
)
from .reasoner import InconsistentOntologyError, Reasoner, ReasoningReport
from . import vocabulary

__all__ = [
    "AllValuesFrom",
    "AxiomIndex",
    "ClassExpression",
    "ClassHierarchy",
    "ComplementOf",
    "EquivalenceAxiom",
    "HasValue",
    "InconsistentOntologyError",
    "IntersectionOf",
    "MaterializationCache",
    "MinCardinality",
    "NamedClass",
    "OneOf",
    "ParallelStats",
    "PropertyHierarchy",
    "Reasoner",
    "ReasoningReport",
    "SomeValuesFrom",
    "SubClassAxiom",
    "UnionOf",
    "bulk_materialise",
    "closure_cache",
    "materialize",
    "parallel_stats",
    "parse_class_expression",
    "render_tree",
    "reset_parallel_stats",
    "vocabulary",
]
