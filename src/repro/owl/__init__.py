"""OWL reasoning substrate: the project's substitute for the Pellet reasoner.

The central entry point is :class:`Reasoner`, which materialises the
deductive closure of an ontology-plus-instances graph so that SPARQL
queries over the result see inferred types, inverse property assertions,
transitive closures and restriction-based classifications — exactly the
pipeline the paper describes (reason first, export inferred axioms, then
query).
"""

from .axioms import AxiomIndex, EquivalenceAxiom, SubClassAxiom
from .closure import MaterializationCache, closure_cache, materialize
from .expressions import (
    AllValuesFrom,
    ClassExpression,
    ComplementOf,
    HasValue,
    IntersectionOf,
    MinCardinality,
    NamedClass,
    OneOf,
    SomeValuesFrom,
    UnionOf,
    parse_class_expression,
)
from .hierarchy import ClassHierarchy, PropertyHierarchy, render_tree
from .reasoner import InconsistentOntologyError, Reasoner, ReasoningReport
from . import vocabulary

__all__ = [
    "AllValuesFrom",
    "AxiomIndex",
    "ClassExpression",
    "ClassHierarchy",
    "ComplementOf",
    "EquivalenceAxiom",
    "HasValue",
    "InconsistentOntologyError",
    "IntersectionOf",
    "MaterializationCache",
    "MinCardinality",
    "NamedClass",
    "OneOf",
    "PropertyHierarchy",
    "Reasoner",
    "ReasoningReport",
    "SomeValuesFrom",
    "SubClassAxiom",
    "UnionOf",
    "closure_cache",
    "materialize",
    "parse_class_expression",
    "render_tree",
    "vocabulary",
]
