"""Cached OWL materialisation keyed by graph fingerprint.

Running the :class:`~repro.owl.reasoner.Reasoner` is by far the most
expensive stage of the explanation pipeline — it iterates rule application
over the whole ontology + knowledge graph + scenario individuals until a
fixed point.  An interactive service, however, sees the *same* scenario
graph over and over: the same user asking the same (or a re-asked)
question assembles a triple-identical graph, so its deductive closure is
also identical.

:class:`MaterializationCache` exploits that: it keys the materialised
closure by :meth:`repro.rdf.graph.Graph.fingerprint` — an O(1),
incrementally-maintained content hash — so a repeated scenario build skips
reasoning entirely, and *any* mutation of the input graph changes the
fingerprint and naturally invalidates the entry.

The cached closure graph is shared between hits and must be treated as
read-only by callers.  Deterministic post-passes that need to write into
the closure (e.g. :func:`repro.core.facts_foils.annotate_facts_and_foils`)
are supplied via ``post_process`` so they run *before* the graph is
published to the cache — hits never observe a partially-processed graph.
Callers that need a private copy can pass ``copy=True``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from ..rdf.graph import Graph
from .reasoner import Reasoner

__all__ = ["MaterializationCache", "materialize", "closure_cache"]

Fingerprint = Tuple[int, int]


class MaterializationCache:
    """A bounded, thread-safe LRU cache of materialised closures.

    ``max_size`` bounds memory: each entry is a full closure graph (tens of
    thousands of triples for the core FEO knowledge graph), so the default
    is deliberately small — a service mostly benefits from the temporal
    locality of repeated and batched requests, not from an unbounded
    history.
    """

    def __init__(self, max_size: int = 16) -> None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.max_size = max_size
        self._entries: "OrderedDict[Fingerprint, Graph]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def materialize(
        self,
        graph: Graph,
        reasoner_factory: Optional[Callable[[Graph], Reasoner]] = None,
        copy: bool = False,
        post_process: Optional[Callable[[Graph], object]] = None,
    ) -> Graph:
        """Return the deductive closure of ``graph``, reasoning only on a miss.

        ``reasoner_factory`` customises reasoner construction (defaults to
        ``Reasoner(graph)``).  ``post_process`` is applied to a freshly
        reasoned closure *before* it is cached, so concurrent hits can
        never observe a partially-processed graph; it must be
        deterministic for a given input fingerprint.  With ``copy=True``
        the caller receives a private copy instead of the shared cached
        instance.
        """
        key = graph.fingerprint()
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached.copy() if copy else cached
        reasoner = reasoner_factory(graph) if reasoner_factory is not None else Reasoner(graph)
        closure = reasoner.run()
        if post_process is not None:
            post_process(closure)
        with self._lock:
            self.misses += 1
            self._entries[key] = closure
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
        return closure.copy() if copy else closure

    def invalidate(self, graph: Graph) -> bool:
        """Drop the entry for ``graph``'s current fingerprint, if present."""
        with self._lock:
            return self._entries.pop(graph.fingerprint(), None) is not None

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Current ``size`` / ``hits`` / ``misses`` counters."""
        with self._lock:
            return {"size": len(self._entries), "hits": self.hits, "misses": self.misses}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide default cache behind :func:`materialize`.
_DEFAULT_CACHE = MaterializationCache()


def closure_cache() -> MaterializationCache:
    """The process-wide default :class:`MaterializationCache`."""
    return _DEFAULT_CACHE


def materialize(graph: Graph, copy: bool = False) -> Graph:
    """Materialise ``graph``'s closure through the process-wide cache."""
    return _DEFAULT_CACHE.materialize(graph, copy=copy)
