"""Cached OWL materialisation keyed by graph fingerprint.

Running the :class:`~repro.owl.reasoner.Reasoner` is by far the most
expensive stage of the explanation pipeline — it iterates rule application
over the whole ontology + knowledge graph + scenario individuals until a
fixed point.  An interactive service, however, sees the *same* scenario
graph over and over: the same user asking the same (or a re-asked)
question assembles a triple-identical graph, so its deductive closure is
also identical.

:class:`MaterializationCache` exploits that: it keys the materialised
closure by :meth:`repro.rdf.graph.Graph.fingerprint` — an O(1),
incrementally-maintained content hash — so a repeated scenario build skips
reasoning entirely, and *any* mutation of the input graph changes the
fingerprint and naturally invalidates the entry.

Beyond exact repeats, the cache has an **incremental path**
(:meth:`MaterializationCache.extend`): when a scenario graph is a strict
superset of a graph whose closure is cached — a live scenario gained a
restriction, preference or recommendation — the cached closure is copied
and grown via :meth:`repro.owl.reasoner.Reasoner.extend` with just the
added triples, instead of re-materialising from scratch.  Each entry
remembers which triples its ``post_process`` pass appended so the
extension starts from the *pure* deductive closure (the closed-world
fact/foil annotations are stripped, the delta is reasoned in, and the
post-pass is re-run on the result).

The cached closure graph is shared between hits and must be treated as
read-only by callers; the incremental path never mutates a published
entry.  Deterministic post-passes that need to write into the closure
(e.g. :func:`repro.core.facts_foils.annotate_facts_and_foils`) are
supplied via ``post_process`` so they run *before* the graph is published
to the cache — hits never observe a partially-processed graph.  Callers
that need a private copy can pass ``copy=True``.

Misses are **single-flight** (concurrent first-touch requests for one
fingerprint trigger exactly one materialisation), and entries round-trip
through the persistent snapshot store via
:meth:`MaterializationCache.export_entries` /
:meth:`MaterializationCache.install`, which is how shards cold-start
with warm closures.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from ..rdf.graph import Graph, Triple
from .reasoner import Reasoner

__all__ = ["MaterializationCache", "materialize", "closure_cache"]

Fingerprint = Tuple[int, int]


@dataclass(frozen=True)
class _CacheEntry:
    """One published closure plus the triples its post-process pass added.

    ``post_added`` lets :meth:`MaterializationCache.extend` recover the pure
    reasoner output from the published (annotated) graph without storing a
    second copy of the closure.  ``source`` is a (copy-on-write) copy of
    the asserted graph the closure was reasoned from; it is what lets
    :meth:`MaterializationCache.export_entries` hand warm closures to the
    snapshot store, which re-keys them by re-fingerprinting the asserted
    graph in the loading process.
    """

    closure: Graph
    post_added: Tuple[Triple, ...] = ()
    source: Optional[Graph] = None


class MaterializationCache:
    """A bounded, thread-safe LRU cache of materialised closures.

    ``max_size`` bounds memory: each entry is a full closure graph (tens of
    thousands of triples for the core FEO knowledge graph), so the default
    is deliberately small — a service mostly benefits from the temporal
    locality of repeated and batched requests, not from an unbounded
    history.
    """

    def __init__(self, max_size: int = 16) -> None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.max_size = max_size
        self._entries: "OrderedDict[Fingerprint, _CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self._in_flight: Dict[Fingerprint, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.extensions = 0
        self.single_flight_waits = 0
        self.bulk_hits = 0
        self.bulk_builds = 0

    def materialize(
        self,
        graph: Graph,
        reasoner_factory: Optional[Callable[[Graph], Reasoner]] = None,
        copy: bool = False,
        post_process: Optional[Callable[[Graph], object]] = None,
    ) -> Graph:
        """Return the deductive closure of ``graph``, reasoning only on a miss.

        ``reasoner_factory`` customises reasoner construction (defaults to
        ``Reasoner(graph)``).  ``post_process`` is applied to a freshly
        reasoned closure *before* it is cached, so concurrent hits can
        never observe a partially-processed graph; it must be
        deterministic for a given input fingerprint.  With ``copy=True``
        the caller receives a private copy instead of the shared cached
        instance.

        Misses are **single-flight**: when several threads ask for the
        same fingerprint at once (the first-touch dog-pile a cold shard
        sees), exactly one reasons while the rest wait on its result —
        each wait is counted in ``single_flight_waits``.  A waiter that
        wakes to find no entry (the build failed, or the entry was
        already evicted) claims the build itself, so a failure never
        strands the waiters.
        """
        key = graph.fingerprint()
        while True:
            claimed = False
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self.hits += 1
                    self._entries.move_to_end(key)
                    return cached.closure.copy() if copy else cached.closure
                event = self._in_flight.get(key)
                if event is None:
                    event = self._in_flight[key] = threading.Event()
                    claimed = True
                else:
                    self.single_flight_waits += 1
            if claimed:
                break
            event.wait()
        try:
            reasoner = reasoner_factory(graph) if reasoner_factory is not None else Reasoner(graph)
            closure = reasoner.run()
            post_added = self._post_process(closure, post_process)
            with self._lock:
                self.misses += 1
                self._publish(key, _CacheEntry(closure, post_added, graph.copy()))
            return closure.copy() if copy else closure
        finally:
            with self._lock:
                self._in_flight.pop(key, None)
            event.set()

    def materialise_many(
        self,
        graphs: Sequence[Graph],
        reasoner_factory: Optional[Callable[[Graph], Reasoner]] = None,
        workers: int = 1,
        post_process: Optional[Sequence[Optional[Callable[[Graph], object]]]] = None,
        copy: bool = False,
    ) -> "list[Graph]":
        """Materialise many graphs in one pass, pooling the misses.

        The bulk mirror of :meth:`materialize`: every graph is looked up
        by fingerprint (hits count in ``bulk_hits``), and the misses are
        closed together through :func:`repro.owl.parallel.bulk_materialise`
        — with ``workers > 1`` each miss is reasoned in a ``fork`` pool
        child and the coordinator adopts the returned closure storage
        (``bulk_builds`` counts them).  ``post_process`` is per-graph,
        aligned with ``graphs`` (scenario annotation passes differ per
        scenario); each closure is post-processed and published before the
        next pool result is consumed, so concurrent readers see the same
        guarantees as :meth:`materialize`.

        Single-flight claims are shared with :meth:`materialize`: a pool
        build and a concurrent per-request build of the same key never
        duplicate work — whichever claims first builds, and each bulk key
        is released as soon as its entry is published (not at the end of
        the whole pass).  A key another thread is already building is
        waited for after the pool pass, with the usual claim-on-wake
        fallback.  Returns the closures aligned with ``graphs``.
        """
        keys = [graph.fingerprint() for graph in graphs]
        posts = list(post_process) if post_process is not None else [None] * len(graphs)
        if len(posts) != len(graphs):
            raise ValueError("post_process must align with graphs")
        results: "list[Optional[Graph]]" = [None] * len(graphs)
        claimed: Dict[Fingerprint, threading.Event] = {}
        claimed_indices: "list[int]" = []
        waiting: "list[int]" = []
        with self._lock:
            for index, key in enumerate(keys):
                cached = self._entries.get(key)
                if cached is not None:
                    self.bulk_hits += 1
                    self._entries.move_to_end(key)
                    results[index] = cached.closure
                    continue
                if key in claimed:
                    # Duplicate input fingerprint: the first occurrence's
                    # build covers it.
                    waiting.append(index)
                    continue
                event = self._in_flight.get(key)
                if event is None:
                    claimed[key] = self._in_flight[key] = threading.Event()
                    claimed_indices.append(index)
                else:
                    self.single_flight_waits += 1
                    waiting.append(index)
        try:
            if claimed_indices:
                from .parallel import bulk_materialise

                build_graphs = [graphs[i] for i in claimed_indices]
                for position, closure in bulk_materialise(
                        build_graphs, reasoner_factory=reasoner_factory,
                        workers=workers):
                    index = claimed_indices[position]
                    key = keys[index]
                    post_added = self._post_process(closure, posts[index])
                    with self._lock:
                        self.bulk_builds += 1
                        self._publish(key, _CacheEntry(
                            closure, post_added, graphs[index].copy()))
                        event = self._in_flight.pop(key, None)
                    if event is not None:
                        event.set()
                    results[index] = closure
        finally:
            # A failed pass must not strand concurrent waiters.
            with self._lock:
                for key, event in claimed.items():
                    if self._in_flight.get(key) is event:
                        del self._in_flight[key]
                        event.set()
        for index in waiting:
            results[index] = self.materialize(
                graphs[index], reasoner_factory=reasoner_factory,
                post_process=posts[index])
        if copy:
            return [closure.copy() for closure in results]  # type: ignore[union-attr]
        return results  # type: ignore[return-value]

    def extend(
        self,
        graph: Graph,
        base_fingerprint: Fingerprint,
        added_triples: Iterable[Triple],
        reasoner_factory: Optional[Callable[[Graph], Reasoner]] = None,
        copy: bool = False,
        post_process: Optional[Callable[[Graph], object]] = None,
    ) -> Graph:
        """Closure of ``graph`` by incremental extension of a cached base.

        ``graph`` is the already-mutated asserted graph, ``base_fingerprint``
        the fingerprint it had when the cached closure was materialised, and
        ``added_triples`` the delta between the two (e.g. a
        :class:`~repro.rdf.graph.ChangeJournal`'s additions).  If the target
        fingerprint is already cached this is a plain hit; if the base entry
        is gone (evicted or never built) it falls back to a full
        :meth:`materialize`.  Otherwise the base closure is copied, its
        post-process annotations stripped, the delta reasoned in with
        :meth:`Reasoner.extend`, and ``post_process`` re-applied — so the
        result is indistinguishable from a from-scratch materialisation of
        ``graph``.  The shared base entry itself is never mutated.
        """
        key = graph.fingerprint()
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached.closure.copy() if copy else cached.closure
            base = self._entries.get(base_fingerprint)
        if base is None:
            return self.materialize(
                graph, reasoner_factory=reasoner_factory, copy=copy,
                post_process=post_process)
        reasoner = reasoner_factory(graph) if reasoner_factory is not None else Reasoner(graph)
        if not reasoner.supports_incremental_extension:
            # Closed-world classification axioms make in-place extension
            # unsound (additions can invalidate matches); reason from the
            # asserted graph instead.
            return self.materialize(
                graph, reasoner_factory=reasoner_factory, copy=copy,
                post_process=post_process)
        extended = base.closure.copy()
        for triple in base.post_added:
            extended.remove(triple)
        reasoner.extend(extended, added_triples)
        post_added = self._post_process(extended, post_process)
        with self._lock:
            self.extensions += 1
            self._publish(key, _CacheEntry(extended, post_added, graph.copy()))
        return extended.copy() if copy else extended

    # ------------------------------------------------------------------
    @staticmethod
    def _post_process(closure: Graph,
                      post_process: Optional[Callable[[Graph], object]]) -> Tuple[Triple, ...]:
        """Run the post-pass, journalling what it adds for later stripping."""
        if post_process is None:
            return ()
        with closure.start_journal() as journal:
            post_process(closure)
            return journal.added()

    def _publish(self, key: Fingerprint, entry: _CacheEntry) -> None:
        """Insert under the lock, enforcing the LRU bound."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_size:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    def install(self, asserted: Graph, closure: Graph,
                post_added: Iterable[Triple] = ()) -> Fingerprint:
        """Publish an externally-built closure, keyed by ``asserted``'s
        current fingerprint.

        This is the snapshot cold-start hook: entries loaded from a
        snapshot file are installed here so the first request for the
        same scenario is a cache hit instead of a materialisation.
        Counts as neither a hit nor a miss.  Returns the key used.
        """
        key = asserted.fingerprint()
        with self._lock:
            self._publish(key, _CacheEntry(closure, tuple(post_added), asserted))
        return key

    def export_entries(self) -> "list[Tuple[Graph, Graph, Tuple[Triple, ...]]]":
        """``(asserted, closure, post_added)`` for every exportable entry.

        Entries published before the cache recorded source graphs (or
        installed without one) are skipped.  Ordered least- to
        most-recently used, like the underlying LRU.
        """
        with self._lock:
            return [(entry.source, entry.closure, entry.post_added)
                    for entry in self._entries.values()
                    if entry.source is not None]

    # ------------------------------------------------------------------
    def invalidate(self, graph: Graph) -> bool:
        """Drop the entry for ``graph``'s current fingerprint, if present."""
        with self._lock:
            return self._entries.pop(graph.fingerprint(), None) is not None

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.extensions = 0
            self.single_flight_waits = 0
            self.bulk_hits = 0
            self.bulk_builds = 0

    def stats(self) -> Dict[str, int]:
        """Current size / hit / miss / extension / single-flight / bulk
        counters."""
        with self._lock:
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "extensions": self.extensions,
                "single_flight_waits": self.single_flight_waits,
                "bulk_hits": self.bulk_hits,
                "bulk_builds": self.bulk_builds,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide default cache behind :func:`materialize`.
_DEFAULT_CACHE = MaterializationCache()


def closure_cache() -> MaterializationCache:
    """The process-wide default :class:`MaterializationCache`."""
    return _DEFAULT_CACHE


def materialize(graph: Graph, copy: bool = False) -> Graph:
    """Materialise ``graph``'s closure through the process-wide cache."""
    return _DEFAULT_CACHE.materialize(graph, copy=copy)
