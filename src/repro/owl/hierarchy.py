"""Class- and property-hierarchy views over a (possibly inferred) graph.

These helpers answer the structural questions behind Figure 1 and Figure 2
of the paper: the subclass tree rooted at ``feo:Characteristic`` and the
sub-property lattice around ``isCharacteristicOf`` / ``isOpposedBy``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import IRI
from .vocabulary import RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF

__all__ = ["ClassHierarchy", "PropertyHierarchy", "render_tree"]


class _Hierarchy:
    """Shared logic for subclass and sub-property hierarchies."""

    def __init__(self, graph: Graph, predicate: IRI) -> None:
        self._graph = graph
        self._predicate = predicate
        self._parents: Dict[IRI, Set[IRI]] = defaultdict(set)
        self._children: Dict[IRI, Set[IRI]] = defaultdict(set)
        for sub, sup in graph.subject_objects(predicate):
            if isinstance(sub, IRI) and isinstance(sup, IRI) and sub != sup:
                self._parents[sub].add(sup)
                self._children[sup].add(sub)

    def parents(self, node: IRI) -> Set[IRI]:
        """Direct (asserted or inferred) parents of ``node``."""
        return set(self._parents.get(node, set()))

    def children(self, node: IRI) -> Set[IRI]:
        """Direct children of ``node``."""
        return set(self._children.get(node, set()))

    def ancestors(self, node: IRI) -> Set[IRI]:
        """Transitive parents of ``node`` (node excluded)."""
        seen: Set[IRI] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            for parent in self._parents.get(current, ()):
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return seen

    def descendants(self, node: IRI) -> Set[IRI]:
        """Transitive children of ``node`` (node excluded)."""
        seen: Set[IRI] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            for child in self._children.get(current, ()):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return seen

    def direct_children(self, node: IRI) -> Set[IRI]:
        """Children that are not reachable through another child (tree view)."""
        children = self.children(node)
        redundant: Set[IRI] = set()
        for child in children:
            for other in children:
                if child != other and child in self.descendants(other):
                    redundant.add(child)
        return children - redundant

    def roots(self) -> Set[IRI]:
        """Nodes with no parents."""
        nodes = set(self._parents) | set(self._children)
        return {node for node in nodes if not self._parents.get(node)}

    def is_a(self, node: IRI, ancestor: IRI) -> bool:
        """True if ``node`` is (transitively) below ``ancestor`` or equal to it."""
        return node == ancestor or ancestor in self.ancestors(node)

    def tree(self, root: IRI, max_depth: int = 20) -> Dict:
        """A nested ``{node: {child: {...}}}`` dictionary rooted at ``root``."""

        def build(node: IRI, depth: int, seen: Set[IRI]) -> Dict:
            if depth >= max_depth:
                return {}
            result: Dict = {}
            for child in sorted(self.direct_children(node), key=str):
                if child in seen:
                    continue
                result[child] = build(child, depth + 1, seen | {child})
            return result

        return {root: build(root, 0, {root})}


class ClassHierarchy(_Hierarchy):
    """The ``rdfs:subClassOf`` hierarchy of a graph."""

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph, RDFS_SUBCLASSOF)


class PropertyHierarchy(_Hierarchy):
    """The ``rdfs:subPropertyOf`` hierarchy of a graph."""

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph, RDFS_SUBPROPERTYOF)


def render_tree(tree: Dict, namespace_manager=None, indent: str = "") -> str:
    """Render a nested tree dictionary as indented text (Figure 1 style)."""
    lines: List[str] = []

    def label(node) -> str:
        if namespace_manager is not None and isinstance(node, IRI):
            compact = namespace_manager.qname(node)
            if compact:
                return compact
        return str(node)

    def walk(subtree: Dict, depth: int) -> None:
        for node, children in subtree.items():
            lines.append("  " * depth + ("- " if depth else "") + label(node))
            walk(children, depth + 1)

    walk(tree, 0)
    return "\n".join(lines)
