"""Class expressions: the fragment of OWL the Food Explanation Ontology uses.

A class expression is either a named class, a property restriction
(``someValuesFrom`` / ``allValuesFrom`` / ``hasValue`` / ``minCardinality``),
a boolean combination (intersection, union, complement) or an enumeration
(``oneOf``).  Expressions are parsed out of their RDF encoding by
:func:`parse_class_expression` and the reasoner checks individual
membership with :meth:`ClassExpression.matches`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..rdf.collection import read_collection
from ..rdf.dictionary import KIND_LITERAL, TermDictionary
from ..rdf.graph import Graph
from ..rdf.terms import BNode, IRI, Literal
from .vocabulary import (
    OWL_ALL_VALUES_FROM,
    OWL_CARDINALITY,
    OWL_COMPLEMENT_OF,
    OWL_HAS_VALUE,
    OWL_INTERSECTION_OF,
    OWL_MIN_CARDINALITY,
    OWL_ON_PROPERTY,
    OWL_ONE_OF,
    OWL_RESTRICTION,
    OWL_SOME_VALUES_FROM,
    OWL_THING,
    OWL_UNION_OF,
    RDF_TYPE,
)

__all__ = [
    "ClassExpression",
    "NamedClass",
    "SomeValuesFrom",
    "AllValuesFrom",
    "HasValue",
    "MinCardinality",
    "IntersectionOf",
    "UnionOf",
    "ComplementOf",
    "OneOf",
    "compile_consequences",
    "compile_matcher",
    "parse_class_expression",
]


class ClassExpression:
    """Base class for the supported OWL class expressions."""

    def matches(self, graph: Graph, individual, type_index) -> bool:
        """Return ``True`` if ``individual`` is an instance of this expression.

        ``type_index`` maps individuals to their (already inferred) set of
        named classes, so named-class membership checks are O(1).
        """
        raise NotImplementedError

    def named_classes(self) -> Set[IRI]:
        """All named classes referenced by this expression (for dependency tracking)."""
        return set()

    def properties(self) -> Set[IRI]:
        """All properties referenced by this expression."""
        return set()


@dataclass(frozen=True)
class NamedClass(ClassExpression):
    iri: IRI

    def matches(self, graph, individual, type_index) -> bool:
        if self.iri == OWL_THING:
            return True
        return self.iri in type_index.get(individual, ())

    def named_classes(self) -> Set[IRI]:
        return {self.iri}


@dataclass(frozen=True)
class SomeValuesFrom(ClassExpression):
    """``onProperty some filler`` — an existential restriction."""

    property: IRI
    filler: ClassExpression

    def matches(self, graph, individual, type_index) -> bool:
        for _, _, value in graph.triples((individual, self.property, None)):
            if self.filler.matches(graph, value, type_index):
                return True
        return False

    def named_classes(self) -> Set[IRI]:
        return self.filler.named_classes()

    def properties(self) -> Set[IRI]:
        return {self.property} | self.filler.properties()


@dataclass(frozen=True)
class AllValuesFrom(ClassExpression):
    """``onProperty only filler`` — a universal restriction.

    Membership checking uses the closed-world reading (every asserted value
    is in the filler); this matches how the explanation pipeline uses it.
    """

    property: IRI
    filler: ClassExpression

    def matches(self, graph, individual, type_index) -> bool:
        for _, _, value in graph.triples((individual, self.property, None)):
            if not self.filler.matches(graph, value, type_index):
                return False
        return True

    def named_classes(self) -> Set[IRI]:
        return self.filler.named_classes()

    def properties(self) -> Set[IRI]:
        return {self.property} | self.filler.properties()


@dataclass(frozen=True)
class HasValue(ClassExpression):
    """``onProperty value v``."""

    property: IRI
    value: object

    def matches(self, graph, individual, type_index) -> bool:
        return (individual, self.property, self.value) in graph

    def properties(self) -> Set[IRI]:
        return {self.property}


@dataclass(frozen=True)
class MinCardinality(ClassExpression):
    """``onProperty min n`` (unqualified)."""

    property: IRI
    cardinality: int

    def matches(self, graph, individual, type_index) -> bool:
        count = sum(1 for _ in graph.triples((individual, self.property, None)))
        return count >= self.cardinality

    def properties(self) -> Set[IRI]:
        return {self.property}


@dataclass(frozen=True)
class IntersectionOf(ClassExpression):
    operands: Tuple[ClassExpression, ...]

    def matches(self, graph, individual, type_index) -> bool:
        return all(op.matches(graph, individual, type_index) for op in self.operands)

    def named_classes(self) -> Set[IRI]:
        out: Set[IRI] = set()
        for operand in self.operands:
            out |= operand.named_classes()
        return out

    def properties(self) -> Set[IRI]:
        out: Set[IRI] = set()
        for operand in self.operands:
            out |= operand.properties()
        return out


@dataclass(frozen=True)
class UnionOf(ClassExpression):
    operands: Tuple[ClassExpression, ...]

    def matches(self, graph, individual, type_index) -> bool:
        return any(op.matches(graph, individual, type_index) for op in self.operands)

    def named_classes(self) -> Set[IRI]:
        out: Set[IRI] = set()
        for operand in self.operands:
            out |= operand.named_classes()
        return out

    def properties(self) -> Set[IRI]:
        out: Set[IRI] = set()
        for operand in self.operands:
            out |= operand.properties()
        return out


@dataclass(frozen=True)
class ComplementOf(ClassExpression):
    """Negation, read closed-world for membership checks."""

    operand: ClassExpression

    def matches(self, graph, individual, type_index) -> bool:
        return not self.operand.matches(graph, individual, type_index)

    def named_classes(self) -> Set[IRI]:
        return self.operand.named_classes()

    def properties(self) -> Set[IRI]:
        return self.operand.properties()


@dataclass(frozen=True)
class OneOf(ClassExpression):
    members: FrozenSet[object]

    def matches(self, graph, individual, type_index) -> bool:
        return individual in self.members


def parse_class_expression(graph: Graph, node) -> Optional[ClassExpression]:
    """Parse the class expression rooted at ``node`` in ``graph``.

    Returns ``None`` when ``node`` does not describe a supported expression
    (the caller then ignores the axiom rather than failing).
    """
    if isinstance(node, IRI):
        return NamedClass(node)
    if not isinstance(node, BNode):
        return None

    intersection = graph.value(node, OWL_INTERSECTION_OF)
    if intersection is not None:
        operands = _parse_operands(graph, intersection)
        return IntersectionOf(tuple(operands)) if operands else None
    union = graph.value(node, OWL_UNION_OF)
    if union is not None:
        operands = _parse_operands(graph, union)
        return UnionOf(tuple(operands)) if operands else None
    complement = graph.value(node, OWL_COMPLEMENT_OF)
    if complement is not None:
        inner = parse_class_expression(graph, complement)
        return ComplementOf(inner) if inner is not None else None
    one_of = graph.value(node, OWL_ONE_OF)
    if one_of is not None:
        members = read_collection(graph, one_of)
        return OneOf(frozenset(members))

    if (node, RDF_TYPE, OWL_RESTRICTION) in graph or graph.value(node, OWL_ON_PROPERTY) is not None:
        prop = graph.value(node, OWL_ON_PROPERTY)
        if not isinstance(prop, IRI):
            return None
        some = graph.value(node, OWL_SOME_VALUES_FROM)
        if some is not None:
            filler = parse_class_expression(graph, some)
            return SomeValuesFrom(prop, filler) if filler is not None else None
        only = graph.value(node, OWL_ALL_VALUES_FROM)
        if only is not None:
            filler = parse_class_expression(graph, only)
            return AllValuesFrom(prop, filler) if filler is not None else None
        has_value = graph.value(node, OWL_HAS_VALUE)
        if has_value is not None:
            return HasValue(prop, has_value)
        for predicate in (OWL_MIN_CARDINALITY, OWL_CARDINALITY):
            cardinality = graph.value(node, predicate)
            if isinstance(cardinality, Literal):
                try:
                    return MinCardinality(prop, int(cardinality.value))
                except (TypeError, ValueError):
                    return None
    return None


def _parse_operands(graph: Graph, list_head) -> List[ClassExpression]:
    operands: List[ClassExpression] = []
    for member in read_collection(graph, list_head):
        parsed = parse_class_expression(graph, member)
        if parsed is not None:
            operands.append(parsed)
    return operands


# ---------------------------------------------------------------------------
# Encoded-domain compilation
# ---------------------------------------------------------------------------
def compile_matcher(expression: ClassExpression, dictionary: TermDictionary):
    """Compile ``expression`` into a membership predicate over encoded IDs.

    The returned callable ``matcher(graph, individual_id, type_index)``
    mirrors :meth:`ClassExpression.matches` exactly, but every operand is
    an integer from ``dictionary`` and ``type_index`` maps individual IDs
    to sets of named-class IDs — so the reasoner's classification loop
    probes the graph's integer indexes directly instead of hashing terms.
    Expression constants are interned once, at compile time.
    """
    intern = dictionary.intern
    if isinstance(expression, NamedClass):
        if expression.iri == OWL_THING:
            return lambda graph, individual, type_index: True
        cls_id = intern(expression.iri)

        def named_matcher(graph, individual, type_index, _cls=cls_id):
            types = type_index.get(individual)
            return types is not None and _cls in types
        return named_matcher
    if isinstance(expression, SomeValuesFrom):
        prop_id = intern(expression.property)
        filler = compile_matcher(expression.filler, dictionary)

        def some_matcher(graph, individual, type_index, _p=prop_id, _f=filler):
            by_pred = graph._spo.get(individual)
            if not by_pred:
                return False
            values = by_pred.get(_p)
            if not values:
                return False
            for value in values:
                if _f(graph, value, type_index):
                    return True
            return False
        return some_matcher
    if isinstance(expression, AllValuesFrom):
        prop_id = intern(expression.property)
        filler = compile_matcher(expression.filler, dictionary)

        def all_matcher(graph, individual, type_index, _p=prop_id, _f=filler):
            by_pred = graph._spo.get(individual)
            if not by_pred:
                return True
            for value in by_pred.get(_p, ()):
                if not _f(graph, value, type_index):
                    return False
            return True
        return all_matcher
    if isinstance(expression, HasValue):
        prop_id = intern(expression.property)
        value_id = intern(expression.value)

        def has_value_matcher(graph, individual, type_index,
                              _p=prop_id, _v=value_id):
            return (individual, _p, _v) in graph._triples
        return has_value_matcher
    if isinstance(expression, MinCardinality):
        prop_id = intern(expression.property)
        minimum = expression.cardinality

        def min_card_matcher(graph, individual, type_index,
                             _p=prop_id, _n=minimum):
            by_pred = graph._spo.get(individual)
            if not by_pred:
                return 0 >= _n
            return len(by_pred.get(_p, ())) >= _n
        return min_card_matcher
    if isinstance(expression, IntersectionOf):
        operands = tuple(compile_matcher(op, dictionary) for op in expression.operands)

        def intersection_matcher(graph, individual, type_index, _ops=operands):
            for op in _ops:
                if not op(graph, individual, type_index):
                    return False
            return True
        return intersection_matcher
    if isinstance(expression, UnionOf):
        operands = tuple(compile_matcher(op, dictionary) for op in expression.operands)

        def union_matcher(graph, individual, type_index, _ops=operands):
            for op in _ops:
                if op(graph, individual, type_index):
                    return True
            return False
        return union_matcher
    if isinstance(expression, ComplementOf):
        operand = compile_matcher(expression.operand, dictionary)
        return lambda graph, individual, type_index, _op=operand: not _op(
            graph, individual, type_index)
    if isinstance(expression, OneOf):
        member_ids = frozenset(intern(member) for member in expression.members)
        return lambda graph, individual, type_index, _m=member_ids: individual in _m
    # Unknown expression kind: never matches (mirrors the conservative
    # behaviour of the parser, which drops unsupported axioms).
    return lambda graph, individual, type_index: False


def compile_consequences(expression: ClassExpression, dictionary: TermDictionary,
                         rdf_type_id: Optional[int] = None):
    """Compile the *consequence* direction of ``expression`` into ID space.

    The returned callable ``emit(graph, individual_id, out)`` appends the
    encoded triples entailed by ``individual`` being an instance of the
    expression — the ID-domain mirror of the reasoner's
    ``_expression_consequences`` (``hasValue`` value assertion,
    ``allValuesFrom`` filler typing, intersection distribution).
    ``SomeValuesFrom`` / ``UnionOf`` have no deterministic consequences
    without introducing fresh individuals, so they emit nothing.
    """
    intern = dictionary.intern
    kinds = dictionary.kinds
    if rdf_type_id is None:
        rdf_type_id = intern(RDF_TYPE)
    if isinstance(expression, HasValue):
        prop_id = intern(expression.property)
        value_id = intern(expression.value)
        return lambda graph, individual, out, _p=prop_id, _v=value_id: out.append(
            (individual, _p, _v))
    if isinstance(expression, AllValuesFrom) and isinstance(expression.filler, NamedClass):
        prop_id = intern(expression.property)
        filler_id = intern(expression.filler.iri)

        def all_values_emit(graph, individual, out, _p=prop_id, _f=filler_id,
                            _t=rdf_type_id, _kinds=kinds):
            by_pred = graph._spo.get(individual)
            if by_pred:
                for value in by_pred.get(_p, ()):
                    if _kinds[value] != KIND_LITERAL:
                        out.append((value, _t, _f))
        return all_values_emit
    if isinstance(expression, IntersectionOf):
        emitters = []
        for operand in expression.operands:
            if isinstance(operand, NamedClass):
                operand_id = intern(operand.iri)
                emitters.append(
                    lambda graph, individual, out, _c=operand_id, _t=rdf_type_id:
                    out.append((individual, _t, _c)))
            else:
                emitters.append(compile_consequences(operand, dictionary, rdf_type_id))

        def intersection_emit(graph, individual, out, _emitters=tuple(emitters)):
            for emit in _emitters:
                emit(graph, individual, out)
        return intersection_emit
    if isinstance(expression, NamedClass):
        cls_id = intern(expression.iri)
        return lambda graph, individual, out, _c=cls_id, _t=rdf_type_id: out.append(
            (individual, _t, _c))
    return lambda graph, individual, out: None
