"""A forward-chaining OWL-RL-style materialising reasoner.

This is the project's substitute for the Pellet reasoner used in the paper.
The paper's pipeline is: *build ontology + instances → run reasoner → export
the graph with inferred axioms → run SPARQL over the inferred graph*.
:class:`Reasoner` implements exactly that contract:

>>> reasoner = Reasoner(graph)
>>> inferred = reasoner.run()          # graph including inferred triples
>>> inferred.query(...)                 # SPARQL over the materialisation

Supported inference (the fragment FEO exercises, see DESIGN.md):

* class hierarchy: ``rdfs:subClassOf`` transitivity and type propagation,
  ``owl:equivalentClass`` (both between named classes and to restrictions);
* property hierarchy: ``rdfs:subPropertyOf`` closure and assertion
  propagation, ``owl:equivalentProperty``;
* property semantics: ``owl:inverseOf``, ``owl:TransitiveProperty``,
  ``owl:SymmetricProperty``, ``owl:propertyChainAxiom``, ``rdfs:domain``,
  ``rdfs:range``;
* restriction classification: individuals satisfying ``someValuesFrom`` /
  ``hasValue`` / ``intersectionOf`` / ``unionOf`` / ``oneOf`` expressions
  that are equivalent to (or subclasses of) a named class are typed with
  that class, and the usual consequences flow the other way
  (``hasValue`` value assertion, ``allValuesFrom`` filler typing).

Evaluation strategy
-------------------

:meth:`Reasoner.run` uses **semi-naive (delta-driven) evaluation**: after an
initial round over the whole graph, each rule family consumes only the
triples derived in the previous round and joins them against the full graph
through the SPO/POS/OSP indexes, instead of rescanning every triple per
iteration.  The property- and type-centric rule families run entirely in
the **encoded domain**: the graph's dictionary-encoded ``(int, int, int)``
triples are joined through integer-keyed indexes, with the axiom tables
translated into the same ID space once per run
(:class:`_EncodedAxioms`), and terms are only decoded where the
restriction machinery genuinely needs them (class-expression matching and
consistency checking).  The same rules over term objects survive as
:meth:`Reasoner.run_term` — the pre-encoding engine, kept as a comparison
baseline and a second oracle — and the historical fixed-point loop as
:meth:`Reasoner.run_naive`, the reference oracle the differential test
suite compares against.

Because each round's work is proportional to its delta, the same machinery
supports **incremental closure maintenance**: :meth:`Reasoner.extend` grows
an already-materialised closure by seeding the delta queue with freshly
asserted triples, which is what the scenario-update path of the explanation
service rides on (see :mod:`repro.owl.closure`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..rdf.dictionary import KIND_IRI, KIND_LITERAL, TermDictionary
from ..rdf.graph import EncodedTriple, Graph, Triple
from ..rdf.terms import BNode, IRI, Literal
from .axioms import AxiomIndex
from .expressions import (
    AllValuesFrom,
    ClassExpression,
    ComplementOf,
    HasValue,
    IntersectionOf,
    NamedClass,
    SomeValuesFrom,
    UnionOf,
    compile_consequences,
    compile_matcher,
)
from .vocabulary import (
    OWL_ALL_VALUES_FROM,
    OWL_CARDINALITY,
    OWL_CLASS,
    OWL_COMPLEMENT_OF,
    OWL_DATATYPE_PROPERTY,
    OWL_DISJOINT_WITH,
    OWL_EQUIVALENT_CLASS,
    OWL_EQUIVALENT_PROPERTY,
    OWL_FUNCTIONAL_PROPERTY,
    OWL_HAS_VALUE,
    OWL_INTERSECTION_OF,
    OWL_INVERSE_FUNCTIONAL_PROPERTY,
    OWL_INVERSE_OF,
    OWL_MAX_CARDINALITY,
    OWL_MIN_CARDINALITY,
    OWL_NOTHING,
    OWL_OBJECT_PROPERTY,
    OWL_ONE_OF,
    OWL_ON_PROPERTY,
    OWL_PROPERTY_CHAIN_AXIOM,
    OWL_RESTRICTION,
    OWL_SAME_AS,
    OWL_SOME_VALUES_FROM,
    OWL_SYMMETRIC_PROPERTY,
    OWL_THING,
    OWL_TRANSITIVE_PROPERTY,
    OWL_UNION_OF,
    RDF_FIRST,
    RDF_PROPERTY,
    RDF_REST,
    RDF_TYPE,
    RDFS_CLASS,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)

__all__ = ["Reasoner", "ReasoningReport", "InconsistentOntologyError"]


class InconsistentOntologyError(Exception):
    """Raised when a consistency check fails (e.g. disjointness violation)."""


#: Predicates whose triples define the axiom schema.  A delta containing one
#: of these invalidates the :class:`AxiomIndex`, so :meth:`Reasoner.extend`
#: falls back to a full re-closure instead of a delta-proportional update.
_SCHEMA_PREDICATES = frozenset({
    RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF, RDFS_DOMAIN, RDFS_RANGE,
    OWL_EQUIVALENT_CLASS, OWL_EQUIVALENT_PROPERTY, OWL_INVERSE_OF,
    OWL_PROPERTY_CHAIN_AXIOM, OWL_DISJOINT_WITH, OWL_ON_PROPERTY,
    OWL_SOME_VALUES_FROM, OWL_ALL_VALUES_FROM, OWL_HAS_VALUE,
    OWL_MIN_CARDINALITY, OWL_MAX_CARDINALITY, OWL_CARDINALITY,
    OWL_INTERSECTION_OF, OWL_UNION_OF, OWL_COMPLEMENT_OF, OWL_ONE_OF,
    RDF_FIRST, RDF_REST,
})

#: ``rdf:type`` objects that turn a type assertion into a schema statement
#: (declaring a property characteristic or a class/restriction).
_SCHEMA_TYPES = frozenset({
    OWL_CLASS, OWL_RESTRICTION, OWL_TRANSITIVE_PROPERTY,
    OWL_SYMMETRIC_PROPERTY, OWL_FUNCTIONAL_PROPERTY,
    OWL_INVERSE_FUNCTIONAL_PROPERTY, OWL_OBJECT_PROPERTY,
    OWL_DATATYPE_PROPERTY, RDF_PROPERTY, RDFS_CLASS,
})

#: Predicates whose subjects/objects never count as individuals.
_SCHEMA_ONLY_PREDICATES = frozenset({RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF})


def _expression_is_monotone(expression: ClassExpression) -> bool:
    """Whether adding triples can only ever turn ``matches`` False -> True.

    ``AllValuesFrom`` and ``ComplementOf`` are closed-world: a new triple can
    *invalidate* a previously satisfied match, so classifications derived
    from them cannot be incrementally maintained by a monotone delta pass
    (a stale type in the base closure would need retraction).
    """
    if isinstance(expression, (AllValuesFrom, ComplementOf)):
        return False
    if isinstance(expression, (IntersectionOf, UnionOf)):
        return all(_expression_is_monotone(op) for op in expression.operands)
    if isinstance(expression, SomeValuesFrom):
        return _expression_is_monotone(expression.filler)
    return True


def _expression_levels(expression: ClassExpression) -> int:
    """How many property edges separate an individual from the deepest node
    whose triples the expression's ``matches`` inspects.

    This bounds the reverse-reachability expansion needed to find every
    individual whose membership in the expression may have changed after a
    delta (see :meth:`Reasoner._restriction_candidates`).
    """
    if isinstance(expression, (SomeValuesFrom, AllValuesFrom)):
        return 1 + _expression_levels(expression.filler)
    if isinstance(expression, (IntersectionOf, UnionOf)):
        return max((_expression_levels(op) for op in expression.operands), default=0)
    if isinstance(expression, ComplementOf):
        return _expression_levels(expression.operand)
    return 0


@dataclass
class ReasoningReport:
    """Statistics describing one materialisation run."""

    input_triples: int = 0
    inferred_triples: int = 0
    iterations: int = 0
    elapsed_seconds: float = 0.0
    rule_firings: Dict[str, int] = field(default_factory=dict)

    def record(self, rule: str, count: int = 1) -> None:
        if count:
            self.rule_firings[rule] = self.rule_firings.get(rule, 0) + count


class _EncodedAxioms:
    """The axiom lookup tables translated into one dictionary's ID space.

    Built once per (axiom state, term dictionary) pair and cached on the
    reasoner, so every semi-naive round joins its delta against plain
    integer-keyed dictionaries — no term hashing, no decoding.  The
    dictionary is append-only, so translated IDs stay valid for the life
    of the graph family.
    """

    __slots__ = (
        "dictionary", "superproperties", "inverse_of", "symmetric",
        "transitive", "chain_steps", "domains", "ranges",
        "rdf_type", "rdfs_subclassof", "owl_same_as",
        "equivalences", "complex_subclasses", "complex_superclasses",
        "restriction_properties", "schema_only_preds",
    )

    def __init__(self, reasoner: "Reasoner", dictionary: TermDictionary) -> None:
        intern = dictionary.intern
        self.dictionary = dictionary
        axioms = reasoner.axioms
        self.superproperties: Dict[int, Tuple[int, ...]] = {
            intern(prop): tuple(intern(sup) for sup in supers)
            for prop, supers in reasoner._superproperties.items() if supers
        }
        self.inverse_of: Dict[int, Tuple[int, ...]] = {
            intern(prop): tuple(intern(inv) for inv in inverses)
            for prop, inverses in axioms.inverse_of.items() if inverses
        }
        self.symmetric: Set[int] = {intern(prop) for prop in axioms.symmetric}
        self.transitive: Set[int] = {intern(prop) for prop in axioms.transitive}
        self.chain_steps: Dict[int, List[Tuple[int, Tuple[int, ...], int]]] = {}
        for step, entries in reasoner._chain_steps.items():
            self.chain_steps[intern(step)] = [
                (intern(head), tuple(intern(link) for link in chain), position)
                for head, chain, position in entries
            ]
        self.domains: Dict[int, Tuple[int, ...]] = {
            intern(prop): tuple(intern(cls) for cls in classes)
            for prop, classes in axioms.domains.items() if classes
        }
        self.ranges: Dict[int, Tuple[int, ...]] = {
            intern(prop): tuple(intern(cls) for cls in classes)
            for prop, classes in axioms.ranges.items() if classes
        }
        self.rdf_type = intern(RDF_TYPE)
        self.rdfs_subclassof = intern(RDFS_SUBCLASSOF)
        self.owl_same_as = intern(OWL_SAME_AS)
        # Restriction machinery, compiled to ID space: membership matchers
        # for the classification direction and consequence emitters for the
        # superclass direction (see repro.owl.expressions).
        self.equivalences: List[Tuple[int, object]] = [
            (intern(axiom.named), compile_matcher(axiom.expression, dictionary))
            for axiom in axioms.equivalences
        ]
        self.complex_subclasses: List[Tuple[int, object]] = [
            (intern(named), compile_matcher(expression, dictionary))
            for expression, named in axioms.complex_subclasses
        ]
        self.complex_superclasses: List[Tuple[int, object]] = [
            (intern(axiom.sub),
             compile_consequences(axiom.super_expression, dictionary, self.rdf_type))
            for axiom in axioms.complex_superclasses
        ]
        self.restriction_properties: FrozenSet[int] = frozenset(
            intern(prop) for prop in reasoner._restriction_properties)
        self.schema_only_preds: FrozenSet[int] = frozenset(
            (self.rdfs_subclassof, intern(RDFS_SUBPROPERTYOF)))


class Reasoner:
    """Materialises the deductive closure of a graph under the axioms it contains."""

    def __init__(
        self,
        graph: Graph,
        axioms: Optional[AxiomIndex] = None,
        max_iterations: int = 100,
        check_consistency: bool = True,
    ) -> None:
        self.base_graph = graph
        self.axioms = axioms or AxiomIndex.from_graph(graph)
        self.max_iterations = max_iterations
        self.check_consistency = check_consistency
        self.report = ReasoningReport()
        # Live type index shared by the rule families during a fixpoint run;
        # None outside of one (the naive oracle path rebuilds its own).  The
        # encoded engine keys it by term IDs, the term engine by terms.
        self._active_type_index: Optional[Dict[object, Set]] = None
        self._prepare_axiom_state()

    def _prepare_axiom_state(self) -> None:
        """Precompute the lookup structures the delta-driven rules join on.

        Everything here depends only on :attr:`axioms`, so it is rebuilt
        exactly when the axiom index is (construction, or a schema-bearing
        :meth:`extend`).
        """
        axioms = self.axioms
        self._superproperties: Dict[IRI, Set[IRI]] = {
            prop: axioms.superproperty_closure(prop) - {prop}
            for prop in axioms.subproperty_of
        }
        # Map each property to every (head, chain, position) it appears in,
        # so a delta triple can be joined into the chain at its position.
        chain_steps: Dict[IRI, List[Tuple[IRI, List[IRI], int]]] = {}
        for head, chains in axioms.property_chains.items():
            for chain in chains:
                for position, step in enumerate(chain):
                    chain_steps.setdefault(step, []).append((head, chain, position))
        self._chain_steps = chain_steps
        # Restriction bookkeeping: the union of properties any class
        # expression inspects, and the deepest nesting level, bound the
        # reverse expansion that finds re-classification candidates.
        expressions = [axiom.expression for axiom in axioms.equivalences]
        expressions.extend(expr for expr, _ in axioms.complex_subclasses)
        expressions.extend(axiom.super_expression for axiom in axioms.complex_superclasses)
        properties: Set[IRI] = set()
        depth = 0
        for expression in expressions:
            properties |= expression.properties()
            depth = max(depth, _expression_levels(expression))
        properties -= _SCHEMA_ONLY_PREDICATES
        self._restriction_properties = properties
        self._restriction_depth = depth
        self._has_restrictions = bool(expressions)
        # Only the classification direction matters for monotonicity: the
        # consequence direction (complex_superclasses) derives triples from
        # established named-class membership, which additions never revoke.
        self._monotone_classification = all(
            _expression_is_monotone(axiom.expression) for axiom in axioms.equivalences
        ) and all(
            _expression_is_monotone(expr) for expr, _ in axioms.complex_subclasses
        )
        # ID-space translation of the tables above; rebuilt lazily per
        # dictionary the first time an encoded fixpoint runs.
        self._enc_axioms: Optional[_EncodedAxioms] = None

    def _encoded_axioms(self, graph: Graph) -> _EncodedAxioms:
        """The axiom tables in ``graph``'s dictionary ID space (cached)."""
        state = self._enc_axioms
        if state is None or state.dictionary is not graph.dictionary:
            state = _EncodedAxioms(self, graph.dictionary)
            self._enc_axioms = state
        return state

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self) -> Graph:
        """Return a new graph containing the input plus all inferred triples.

        Semi-naive evaluation over encoded triples: the first round treats
        every input triple as the delta; later rounds only process what the
        previous round derived.  The rule joins run on the graph's
        dictionary-encoded ID tuples (the copy shares the base graph's
        dictionary, so nothing is re-encoded).
        """
        start = time.perf_counter()
        working = self.base_graph.copy()
        self.report = ReasoningReport(input_triples=len(self.base_graph))

        self._materialise_schema(working)
        self.report.iterations = self._fixpoint_encoded(
            working, list(working._triples), initial=True)
        self.report.inferred_triples = len(working) - self.report.input_triples
        self.report.elapsed_seconds = time.perf_counter() - start

        if self.check_consistency:
            self._check_consistency(working)
        return working

    def run_parallel(self, workers: Optional[int] = None,
                     threshold: Optional[int] = None) -> Graph:
        """:meth:`run`, with each round's rule evaluation fanned out over a
        process pool (see :mod:`repro.owl.parallel`).

        The fixed point, the rule-firing counts in :attr:`report` and the
        resulting graph (fingerprint, pred-counters, indexes) are identical
        to :meth:`run` — workers only *propose* candidate triples; every
        fold happens on the coordinator through the normal journal-aware
        add path.  Falls back to plain :meth:`run` automatically when the
        pool cannot pay for itself (``workers <= 1``, a graph smaller than
        the cost-model threshold, no ``fork`` start method) or when the
        schema has non-monotone classification axioms, mirroring
        :attr:`supports_incremental_extension`.
        """
        from .parallel import run_parallel as _run_parallel
        return _run_parallel(self, workers=workers, threshold=threshold)

    def run_term(self) -> Graph:
        """The term-object semi-naive engine (the pre-encoding ``run()``).

        Identical rules and round structure to :meth:`run`, but every join
        hashes and compares full term objects through the graph's
        term-level API.  Kept as the baseline the encoded engine's speedup
        gate measures against, and as a second differential oracle.
        """
        start = time.perf_counter()
        working = self.base_graph.copy()
        self.report = ReasoningReport(input_triples=len(self.base_graph))

        self._materialise_schema(working)
        self.report.iterations = self._fixpoint(working, list(working), initial=True)
        self.report.inferred_triples = len(working) - self.report.input_triples
        self.report.elapsed_seconds = time.perf_counter() - start

        if self.check_consistency:
            self._check_consistency(working)
        return working

    def extend(self, closure: Graph, added_triples: Iterable[Triple]) -> Graph:
        """Incrementally grow an existing materialised ``closure`` in place.

        ``closure`` must be a fixed point under this reasoner's axioms (a
        previous :meth:`run` / :meth:`extend` result) and ``added_triples``
        the newly asserted base triples; afterwards ``closure`` equals a
        full :meth:`run` over *base + added*.  Work is proportional to the
        consequences of the delta — plus, when the delta reaches restriction
        machinery, one type-index pass over the closure — unless the delta
        carries schema triples (new axioms), in which case the axiom index
        is rebuilt from the extended graph and everything is re-closed.

        Incremental extension requires every classification axiom to be
        monotone (see :attr:`supports_incremental_extension`): closed-world
        expressions like ``allValuesFrom`` / ``complementOf`` can be
        *invalidated* by additions, which a forward pass cannot retract.
        A :class:`ValueError` is raised otherwise — including when the delta
        itself introduces such an axiom, in which case ``closure`` has
        already been partially mutated and must be discarded.  (The cache
        layer checks the flag up front and falls back to a full
        materialisation from the asserted graph instead.)

        The caller owns ``closure``: pass a private copy when the original
        (e.g. a shared cache entry) must stay untouched.
        """
        if not self._monotone_classification:
            raise ValueError(
                "incremental extension is unsound for closed-world "
                "(allValuesFrom/complementOf) classification axioms; "
                "re-run the reasoner over the asserted graph instead"
            )
        start = time.perf_counter()
        self.report = ReasoningReport(input_triples=len(closure))
        schema_changed = False
        journal = closure.start_journal()
        try:
            fresh: List[Triple] = []
            for triple in added_triples:
                before = len(closure)
                closure.add(triple)
                if len(closure) > before:
                    fresh.append(triple)
            if fresh:
                if any(self._is_schema_triple(triple) for triple in fresh):
                    # New axioms can re-fire any rule against any old triple, so
                    # a delta-proportional update is unsound here: rebuild the
                    # index and re-close everything.
                    schema_changed = True
                    self.axioms = AxiomIndex.from_graph(closure)
                    self._prepare_axiom_state()
                    if not self._monotone_classification:
                        raise ValueError(
                            "the delta introduces closed-world classification "
                            "axioms; the closure cannot be extended in place — "
                            "re-run the reasoner over the asserted graph"
                        )
                    self._materialise_schema(closure)
                    self.report.iterations = self._fixpoint_encoded(
                        closure, list(closure._triples), initial=True)
                else:
                    fresh_ids = [closure.encode_triple(triple) for triple in fresh]
                    self.report.iterations = self._fixpoint_encoded(closure, fresh_ids)
            all_added = journal.added()
        finally:
            journal.close()
        self.report.inferred_triples = len(closure) - self.report.input_triples
        self.report.elapsed_seconds = time.perf_counter() - start
        if self.check_consistency:
            if schema_changed:
                self._check_consistency(closure)
            else:
                # New violations need a newly added type, so only re-check
                # individuals the extension typed.
                self._check_consistency(
                    closure, {s for s, p, _ in all_added if p == RDF_TYPE})
        return closure

    @property
    def supports_incremental_extension(self) -> bool:
        """``True`` when :meth:`extend` is sound under the current axioms
        (every classification axiom is monotone)."""
        return self._monotone_classification

    @staticmethod
    def _is_schema_triple(triple: Triple) -> bool:
        _, p, o = triple
        return p in _SCHEMA_PREDICATES or (p == RDF_TYPE and o in _SCHEMA_TYPES)

    def run_naive(self) -> Graph:
        """The original naive fixed-point loop (re-applies every rule family
        over the entire graph each iteration).

        Kept as the reference oracle for the differential test suite and the
        scaling benchmarks; :meth:`run` must produce the identical closure.
        """
        start = time.perf_counter()
        working = self.base_graph.copy()
        self.report = ReasoningReport(input_triples=len(self.base_graph))

        self._materialise_schema(working)

        iteration = 0
        changed = True
        while changed and iteration < self.max_iterations:
            iteration += 1
            before = len(working)
            self._naive_property_rules(working)
            self._naive_type_rules(working)
            self._naive_restriction_rules(working)
            changed = len(working) > before
        self.report.iterations = iteration
        self.report.inferred_triples = len(working) - self.report.input_triples
        self.report.elapsed_seconds = time.perf_counter() - start

        if self.check_consistency:
            self._check_consistency(working)
        return working

    # ------------------------------------------------------------------
    # Semi-naive fixpoint
    # ------------------------------------------------------------------
    def _fixpoint(self, graph: Graph, delta: Sequence[Triple], initial: bool = False) -> int:
        """Drive rule rounds until no rule derives a new triple.

        Each round hands the previous round's additions to every rule family;
        triples a family adds are seen by the other families next round (the
        round granularity only affects how firings are batched, not the fixed
        point).  ``initial`` marks a round whose delta is the whole graph, so
        restriction classification can skip candidate discovery and check
        every individual, exactly like the naive first iteration.
        """
        iteration = 0
        ancestor_cache: Dict[IRI, Set[IRI]] = {}
        # The shared type index is built lazily — only once restriction rules
        # actually have candidates — and _add_all keeps it fresh as rules
        # fire, so restriction rounds never rescan the graph and deltas that
        # touch no restriction machinery skip the build entirely.
        self._active_type_index = None
        try:
            while delta and iteration < self.max_iterations:
                iteration += 1
                out: List[Triple] = []
                self._apply_property_rules(graph, delta, out)
                self._apply_type_rules(graph, delta, out, ancestor_cache)
                self._apply_restriction_rules(
                    graph, delta, out, check_everything=initial and iteration == 1)
                delta = out
        finally:
            self._active_type_index = None
        return iteration

    # ------------------------------------------------------------------
    # Encoded semi-naive fixpoint (the production engine)
    # ------------------------------------------------------------------
    def _fixpoint_encoded(self, graph: Graph, delta: Sequence[EncodedTriple],
                          initial: bool = False) -> int:
        """:meth:`_fixpoint`, but the deltas are encoded ID triples.

        Round structure, rule order and the resulting fixed point are
        identical to the term engine; only the representation differs, so
        the differential suites hold for both.  Restriction classification
        still works on terms (class expressions match against the
        term-level API); its inputs and outputs are decoded/encoded at
        that boundary only.
        """
        enc = self._encoded_axioms(graph)
        iteration = 0
        ancestor_cache: Dict[int, Tuple[int, ...]] = {}
        self._active_type_index = None
        try:
            while delta and iteration < self.max_iterations:
                iteration += 1
                out: List[EncodedTriple] = []
                self._apply_property_rules_encoded(graph, delta, out, enc)
                self._apply_type_rules_encoded(graph, delta, out, enc, ancestor_cache)
                self._apply_restriction_rules_encoded(
                    graph, delta, out, check_everything=initial and iteration == 1)
                delta = out
        finally:
            self._active_type_index = None
        return iteration

    def _property_candidates_encoded(
            self, graph: Graph, delta: Sequence[EncodedTriple],
            enc: _EncodedAxioms) -> Tuple[List[EncodedTriple], ...]:
        """Property-family candidate triples derived from ``delta``.

        Pure candidate generation: every join reads the *pre-round* graph
        state and nothing is added here.  The serial fold and the parallel
        partition workers share this exact code path, which is what makes
        ``run_parallel`` firing-counts equal to ``run()`` by construction —
        per family, the set of candidates is a function of (delta, graph
        state at round start) only, so concatenating partition results
        reproduces the serial candidate set.
        """
        spo = graph._spo
        pos = graph._pos
        kinds = enc.dictionary.kinds
        superproperties = enc.superproperties
        inverse_of = enc.inverse_of
        symmetric = enc.symmetric
        transitive = enc.transitive
        chain_steps = enc.chain_steps
        sub_adds: List[EncodedTriple] = []
        inv_adds: List[EncodedTriple] = []
        sym_adds: List[EncodedTriple] = []
        trans_adds: List[EncodedTriple] = []
        chain_adds: List[EncodedTriple] = []

        for s, p, o in delta:
            # Sub-property propagation: (x p y), p ⊑ q  =>  (x q y)
            supers = superproperties.get(p)
            if supers:
                for sup in supers:
                    sub_adds.append((s, sup, o))
            if kinds[o] == KIND_LITERAL:
                continue
            # Inverse properties: (x p y), p inverseOf q  =>  (y q x)
            inverses = inverse_of.get(p)
            if inverses:
                for inverse in inverses:
                    inv_adds.append((o, inverse, s))
            # Symmetric properties.
            if p in symmetric:
                sym_adds.append((o, p, s))
            # Transitive properties: join the new edge with the closure on
            # both sides; multi-hop paths cascade through later rounds.
            if p in transitive:
                by_pred = spo.get(o)
                if by_pred:
                    for nxt in by_pred.get(p, ()):
                        if kinds[nxt] != KIND_LITERAL:
                            trans_adds.append((s, p, nxt))
                by_obj = pos.get(p)
                if by_obj:
                    for prev in by_obj.get(s, ()):
                        trans_adds.append((prev, p, o))
            # Property chains: p1 o p2 ⊑ q — plug the new edge into every
            # position it can occupy and walk the rest of the chain.
            steps = chain_steps.get(p)
            if steps:
                for head, chain, position in steps:
                    for left, right in self._chain_matches_encoded(
                            graph, chain, position, s, o, kinds):
                        chain_adds.append((left, head, right))
        return sub_adds, inv_adds, sym_adds, trans_adds, chain_adds

    def _apply_property_rules_encoded(self, graph: Graph,
                                      delta: Sequence[EncodedTriple],
                                      out: List[EncodedTriple],
                                      enc: _EncodedAxioms) -> None:
        """The property rule family joined through the integer indexes."""
        sub_adds, inv_adds, sym_adds, trans_adds, chain_adds = \
            self._property_candidates_encoded(graph, delta, enc)
        self._add_all_encoded(graph, sub_adds, "subPropertyOf", out, enc)
        self._add_all_encoded(graph, inv_adds, "inverseOf", out, enc)
        self._add_all_encoded(graph, sym_adds, "symmetric", out, enc)
        self._add_all_encoded(graph, trans_adds, "transitive", out, enc)
        self._add_all_encoded(graph, chain_adds, "propertyChain", out, enc)

    def _chain_matches_encoded(self, graph: Graph, chain: Tuple[int, ...],
                               position: int, s: int, o: int,
                               kinds: List[int]) -> List[Tuple[int, int]]:
        """(start, end) ID pairs completed by the edge ``(s, chain[position], o)``."""
        spo = graph._spo
        pos = graph._pos
        lefts: Set[int] = {s}
        for step in reversed(chain[:position]):
            previous: Set[int] = set()
            by_obj = pos.get(step)
            if by_obj:
                for node in lefts:
                    subjects = by_obj.get(node)
                    if subjects:
                        previous.update(subjects)
            lefts = previous
            if not lefts:
                return []
        rights: Set[int] = {o}
        for step in chain[position + 1:]:
            following: Set[int] = set()
            for node in rights:
                by_pred = spo.get(node)
                if by_pred:
                    for value in by_pred.get(step, ()):
                        if kinds[value] != KIND_LITERAL:
                            following.add(value)
            rights = following
            if not rights:
                return []
        return [(left, right) for left in lefts for right in rights]

    def _type_candidates_encoded(
            self, graph: Graph, delta: Sequence[EncodedTriple],
            enc: _EncodedAxioms,
            ancestor_cache: Dict[int, Tuple[int, ...]]
    ) -> Tuple[List[EncodedTriple], List[EncodedTriple]]:
        """Domain/range and subclass-propagation candidates from ``delta``.

        Like :meth:`_property_candidates_encoded` this is pure candidate
        generation shared by the serial fold and the pool workers.  The
        only graph state it consults is the subClassOf fragment, which is
        static for the whole fixpoint (no rule derives ``subClassOf``), so
        partition workers evaluating against their round-start snapshot see
        exactly what the serial engine sees.
        """
        spo = graph._spo
        kinds = enc.dictionary.kinds
        terms = enc.dictionary.terms
        intern = enc.dictionary.intern
        domains = enc.domains
        ranges = enc.ranges
        rdf_type = enc.rdf_type
        rdfs_subclassof = enc.rdfs_subclassof
        dr_adds: List[EncodedTriple] = []
        type_adds: List[EncodedTriple] = []
        for s, p, o in delta:
            # Domain / range typing.
            domain_classes = domains.get(p)
            if domain_classes:
                for domain in domain_classes:
                    dr_adds.append((s, rdf_type, domain))
            if kinds[o] != KIND_LITERAL:
                range_classes = ranges.get(p)
                if range_classes:
                    for range_ in range_classes:
                        dr_adds.append((o, rdf_type, range_))
            # Type propagation along the class hierarchy (static per fixpoint:
            # no rule derives subClassOf, so the ancestor cache stays valid).
            if p == rdf_type and kinds[o] == KIND_IRI:
                ancestors = ancestor_cache.get(o)
                if ancestors is None:
                    found: Set[int] = set()
                    by_pred = spo.get(o)
                    if by_pred:
                        for ancestor in by_pred.get(rdfs_subclassof, ()):
                            if kinds[ancestor] == KIND_IRI:
                                found.add(ancestor)
                    for ancestor_term in self.axioms.superclass_closure(terms[o]):
                        ancestor = intern(ancestor_term)
                        if ancestor != o:
                            found.add(ancestor)
                    ancestors = tuple(found)
                    ancestor_cache[o] = ancestors
                for ancestor in ancestors:
                    type_adds.append((s, rdf_type, ancestor))
        return dr_adds, type_adds

    def _apply_type_rules_encoded(self, graph: Graph,
                                  delta: Sequence[EncodedTriple],
                                  out: List[EncodedTriple],
                                  enc: _EncodedAxioms,
                                  ancestor_cache: Dict[int, Tuple[int, ...]]) -> None:
        dr_adds, type_adds = self._type_candidates_encoded(
            graph, delta, enc, ancestor_cache)
        self._add_all_encoded(graph, dr_adds, "domain-range", out, enc)
        self._add_all_encoded(graph, type_adds, "subClassOf-types", out, enc)

    def _type_index_ids(self, graph: Graph, enc: _EncodedAxioms) -> Dict[int, Set[int]]:
        """``individual ID -> named-class IDs`` built from the POS index."""
        index: Dict[int, Set[int]] = {}
        kinds = enc.dictionary.kinds
        by_obj = graph._pos.get(enc.rdf_type)
        if by_obj:
            for cls, subjects in by_obj.items():
                if kinds[cls] != KIND_IRI:
                    continue
                for subject in subjects:
                    entry = index.get(subject)
                    if entry is None:
                        index[subject] = {cls}
                    else:
                        entry.add(cls)
        return index

    def _individuals_ids(self, graph: Graph, enc: _EncodedAxioms) -> Set[int]:
        """The encoded mirror of :meth:`_individuals`."""
        individuals: Set[int] = set()
        kinds = enc.dictionary.kinds
        rdf_type = enc.rdf_type
        schema_only = enc.schema_only_preds
        for s, p, o in graph._triples:
            if p in schema_only:
                continue
            individuals.add(s)
            if p != rdf_type and kinds[o] != KIND_LITERAL:
                individuals.add(o)
        return individuals

    def _restriction_candidates_ids(self, graph: Graph,
                                    delta: Sequence[EncodedTriple],
                                    enc: _EncodedAxioms) -> Set[int]:
        """The encoded mirror of :meth:`_restriction_candidates`: the delta's
        touched nodes expanded backwards through the restriction properties."""
        kinds = enc.dictionary.kinds
        rdf_type = enc.rdf_type
        schema_only = enc.schema_only_preds
        nodes: Set[int] = set()
        for s, p, o in delta:
            if p in schema_only:
                continue
            nodes.add(s)
            if p != rdf_type and kinds[o] != KIND_LITERAL:
                nodes.add(o)
        properties = enc.restriction_properties
        osp = graph._osp
        frontier = set(nodes)
        for _ in range(self._restriction_depth):
            if not frontier:
                break
            reached: Set[int] = set()
            for node in frontier:
                by_subj = osp.get(node)
                if not by_subj:
                    continue
                for subject, preds in by_subj.items():
                    if subject not in nodes and not properties.isdisjoint(preds):
                        nodes.add(subject)
                        reached.add(subject)
            frontier = reached
        return nodes

    def _apply_restriction_rules_encoded(self, graph: Graph,
                                         delta: Sequence[EncodedTriple],
                                         out: List[EncodedTriple],
                                         check_everything: bool = False) -> None:
        """Restriction classification over compiled ID-space matchers.

        The class expressions were compiled into closures over integer IDs
        when the encoded axiom state was built, so candidate discovery,
        membership checks and consequence emission all run on the integer
        indexes — no term is decoded anywhere in this family.
        """
        if not self._has_restrictions:
            return
        enc = self._enc_axioms
        if check_everything:
            candidates = self._individuals_ids(graph, enc)
        else:
            candidates = self._restriction_candidates_ids(graph, delta, enc)
            if not candidates:
                return
        type_index = self._active_type_index
        if type_index is None:
            # First round with candidates: build once (additions since the
            # fixpoint started are already in the graph, so they're covered);
            # _add_all_encoded maintains it from here on.
            type_index = self._active_type_index = self._type_index_ids(graph, enc)

        # (a) classification: expression ≡/⊒ named class — if an individual
        # satisfies the expression it gains the named type.
        additions = self._classification_candidates_encoded(
            graph, candidates, enc, type_index)
        self._add_all_encoded(graph, additions, "classification", out, enc)

        # (b) consequence direction: named class ⊑ expression.  The shared
        # type index already reflects the (a) classifications.
        additions = self._restriction_consequences_encoded(
            graph, candidates, enc, type_index)
        self._add_all_encoded(graph, additions, "restriction-consequences", out, enc)

    def _classification_candidates_encoded(
            self, graph: Graph, candidates: Iterable[int],
            enc: _EncodedAxioms,
            type_index: Dict[int, Set[int]]) -> List[EncodedTriple]:
        """Named-class memberships the compiled matchers grant ``candidates``.

        Pure candidate generation over a fixed (graph, type_index) state —
        the partitionable half of restriction classification.  Splitting
        ``candidates`` by individual and concatenating the results is
        equivalent to one serial pass because each individual is matched
        independently.
        """
        empty: Set[int] = set()
        additions: List[EncodedTriple] = []
        rdf_type = enc.rdf_type
        for named, matcher in enc.equivalences:
            for individual in candidates:
                if named in type_index.get(individual, empty):
                    continue
                if matcher(graph, individual, type_index):
                    additions.append((individual, rdf_type, named))
        for named, matcher in enc.complex_subclasses:
            for individual in candidates:
                if named in type_index.get(individual, empty):
                    continue
                if matcher(graph, individual, type_index):
                    additions.append((individual, rdf_type, named))
        return additions

    def _restriction_consequences_encoded(
            self, graph: Graph, candidates: Iterable[int],
            enc: _EncodedAxioms,
            type_index: Dict[int, Set[int]]) -> List[EncodedTriple]:
        """Triples the consequence emitters derive for typed ``candidates``."""
        empty: Set[int] = set()
        additions: List[EncodedTriple] = []
        for sub, emit in enc.complex_superclasses:
            for member in candidates:
                if sub in type_index.get(member, empty):
                    emit(graph, member, additions)
        return additions

    def _add_all_encoded(self, graph: Graph, triples: List[EncodedTriple],
                         rule: str, out: List[EncodedTriple],
                         enc: _EncodedAxioms) -> None:
        """Add encoded ``triples``, counting effective firings; genuinely new
        triples land in ``out`` as the next round's delta."""
        if not triples:
            return
        same_as = enc.owl_same_as
        batch = [t for t in triples if t[1] != same_as or t[0] != t[2]]
        start = len(out)
        added = graph.add_encoded_many(batch, out)
        self.report.record(rule, added)
        type_index = self._active_type_index
        if type_index is not None and added:
            rdf_type = enc.rdf_type
            kinds = enc.dictionary.kinds
            for s, p, o in out[start:]:
                if p == rdf_type and kinds[o] == KIND_IRI:
                    entry = type_index.get(s)
                    if entry is None:
                        type_index[s] = {o}
                    else:
                        entry.add(o)

    # ------------------------------------------------------------------
    # Schema closure
    # ------------------------------------------------------------------
    def _materialise_schema(self, graph: Graph) -> None:
        """Add the transitive closures of subClassOf / subPropertyOf."""
        added = 0
        for cls in list(self.axioms.named_subclass_of):
            for ancestor in self.axioms.superclass_closure(cls):
                if ancestor != cls:
                    before = len(graph)
                    graph.add((cls, RDFS_SUBCLASSOF, ancestor))
                    added += len(graph) - before
        for prop in list(self.axioms.subproperty_of):
            for ancestor in self.axioms.superproperty_closure(prop):
                if ancestor != prop:
                    before = len(graph)
                    graph.add((prop, RDFS_SUBPROPERTYOF, ancestor))
                    added += len(graph) - before
        self.report.record("schema-closure", added)

    # ------------------------------------------------------------------
    # Property-centric rules (delta-driven)
    # ------------------------------------------------------------------
    def _apply_property_rules(self, graph: Graph, delta: Sequence[Triple],
                              out: List[Triple]) -> None:
        """Fire the property rules for the delta, joining it against ``graph``."""
        axioms = self.axioms
        sub_adds: List[Triple] = []
        inv_adds: List[Triple] = []
        sym_adds: List[Triple] = []
        trans_adds: List[Triple] = []
        chain_adds: List[Triple] = []

        for s, p, o in delta:
            # Sub-property propagation: (x p y), p ⊑ q  =>  (x q y)
            supers = self._superproperties.get(p)
            if supers:
                for sup in supers:
                    sub_adds.append((s, sup, o))
            if isinstance(o, Literal):
                continue
            # Inverse properties: (x p y), p inverseOf q  =>  (y q x)
            for inverse in axioms.inverse_of.get(p, ()):
                inv_adds.append((o, inverse, s))
            # Symmetric properties.
            if p in axioms.symmetric:
                sym_adds.append((o, p, s))
            # Transitive properties: join the new edge with the closure on
            # both sides; multi-hop paths cascade through later rounds.
            if p in axioms.transitive:
                for nxt in graph.objects(o, p):
                    if not isinstance(nxt, Literal):
                        trans_adds.append((s, p, nxt))
                for prev in graph.subjects(p, s):
                    trans_adds.append((prev, p, o))
            # Property chains: p1 o p2 ⊑ q — plug the new edge into every
            # position it can occupy and walk the rest of the chain in the graph.
            for head, chain, position in self._chain_steps.get(p, ()):
                for left, right in self._chain_matches(graph, chain, position, s, o):
                    chain_adds.append((left, head, right))

        self._add_all(graph, sub_adds, "subPropertyOf", out)
        self._add_all(graph, inv_adds, "inverseOf", out)
        self._add_all(graph, sym_adds, "symmetric", out)
        self._add_all(graph, trans_adds, "transitive", out)
        self._add_all(graph, chain_adds, "propertyChain", out)

    def _chain_matches(self, graph: Graph, chain: List[IRI], position: int,
                       s, o) -> List[Tuple[object, object]]:
        """(start, end) pairs completed by the edge ``(s, chain[position], o)``."""
        lefts: Set[object] = {s}
        for step in reversed(chain[:position]):
            previous: Set[object] = set()
            for node in lefts:
                previous.update(graph.subjects(step, node))
            lefts = previous
            if not lefts:
                return []
        rights: Set[object] = {o}
        for step in chain[position + 1:]:
            following: Set[object] = set()
            for node in rights:
                for value in graph.objects(node, step):
                    if not isinstance(value, Literal):
                        following.add(value)
            rights = following
            if not rights:
                return []
        return [(left, right) for left in lefts for right in rights]

    # ------------------------------------------------------------------
    # Type-centric rules (delta-driven)
    # ------------------------------------------------------------------
    def _apply_type_rules(self, graph: Graph, delta: Sequence[Triple],
                          out: List[Triple],
                          ancestor_cache: Dict[IRI, Set[IRI]]) -> None:
        axioms = self.axioms
        dr_adds: List[Triple] = []
        type_adds: List[Triple] = []
        for s, p, o in delta:
            # Domain / range typing.
            for domain in axioms.domains.get(p, ()):
                dr_adds.append((s, RDF_TYPE, domain))
            if not isinstance(o, Literal):
                for range_ in axioms.ranges.get(p, ()):
                    dr_adds.append((o, RDF_TYPE, range_))
            # Type propagation along the class hierarchy (static per fixpoint:
            # no rule derives subClassOf, so the ancestor cache stays valid).
            if p == RDF_TYPE and isinstance(o, IRI):
                ancestors = ancestor_cache.get(o)
                if ancestors is None:
                    ancestors = {
                        ancestor
                        for ancestor in graph.objects(o, RDFS_SUBCLASSOF)
                        if isinstance(ancestor, IRI)
                    }
                    ancestors |= axioms.superclass_closure(o) - {o}
                    ancestor_cache[o] = ancestors
                for ancestor in ancestors:
                    type_adds.append((s, RDF_TYPE, ancestor))
        self._add_all(graph, dr_adds, "domain-range", out)
        self._add_all(graph, type_adds, "subClassOf-types", out)

    # ------------------------------------------------------------------
    # Restriction / expression classification (delta-driven)
    # ------------------------------------------------------------------
    def _type_index(self, graph: Graph) -> Dict[object, Set[IRI]]:
        index: Dict[object, Set[IRI]] = {}
        for s, _, o in graph.triples((None, RDF_TYPE, None)):
            if isinstance(o, IRI):
                index.setdefault(s, set()).add(o)
        return index

    def _individuals(self, graph: Graph) -> Set[object]:
        individuals: Set[object] = set()
        for s, p, o in graph:
            if p in _SCHEMA_ONLY_PREDICATES:
                continue
            if isinstance(s, (IRI, BNode)):
                individuals.add(s)
            if p == RDF_TYPE:
                continue
            if isinstance(o, (IRI, BNode)):
                individuals.add(o)
        return individuals

    def _restriction_candidates(self, graph: Graph, delta: Sequence[Triple]) -> Set[object]:
        """Individuals whose class-expression membership may have changed.

        Every expression's verdict for an individual depends only on triples
        of nodes within :func:`_expression_levels` property hops of it, so
        the touched nodes of the delta, expanded that many hops backwards
        through the restriction properties, form a sound candidate set.
        Candidate collection mirrors :meth:`_individuals` so no node that the
        naive pass would skip (e.g. a class appearing only as a type object)
        can be classified here.
        """
        nodes: Set[object] = set()
        for s, p, o in delta:
            if p in _SCHEMA_ONLY_PREDICATES:
                continue
            if isinstance(s, (IRI, BNode)):
                nodes.add(s)
            if p != RDF_TYPE and isinstance(o, (IRI, BNode)):
                nodes.add(o)
        properties = self._restriction_properties
        frontier = set(nodes)
        for _ in range(self._restriction_depth):
            if not frontier:
                break
            reached: Set[object] = set()
            for node in frontier:
                for subject, predicate in graph.subject_predicates(node):
                    if predicate in properties and subject not in nodes:
                        nodes.add(subject)
                        reached.add(subject)
            frontier = reached
        return nodes

    def _apply_restriction_rules(self, graph: Graph, delta: Sequence[Triple],
                                 out: List[Triple],
                                 check_everything: bool = False) -> None:
        if not self._has_restrictions:
            return
        if check_everything:
            candidates = self._individuals(graph)
        else:
            candidates = self._restriction_candidates(graph, delta)
            if not candidates:
                return
        type_index = self._active_type_index
        if type_index is None:
            # First round with candidates: build once (additions since the
            # fixpoint started are already in the graph, so they're covered);
            # _add_all maintains it from here on.
            type_index = self._active_type_index = self._type_index(graph)

        # (a) classification: expression ≡/⊒ named class — if an individual
        # satisfies the expression it gains the named type.
        additions: List[Triple] = []
        for axiom in self.axioms.equivalences:
            for individual in candidates:
                if axiom.named in type_index.get(individual, set()):
                    continue
                if axiom.expression.matches(graph, individual, type_index):
                    additions.append((individual, RDF_TYPE, axiom.named))
        for expression, named in self.axioms.complex_subclasses:
            for individual in candidates:
                if named in type_index.get(individual, set()):
                    continue
                if expression.matches(graph, individual, type_index):
                    additions.append((individual, RDF_TYPE, named))
        self._add_all(graph, additions, "classification", out)

        # (b) consequence direction: named class ⊑ expression.  _add_all has
        # already folded the (a) classifications into the shared type index.
        additions = []
        for axiom in self.axioms.complex_superclasses:
            for member in candidates:
                if axiom.sub in type_index.get(member, ()):
                    additions.extend(self._expression_consequences(
                        graph, member, axiom.super_expression, type_index))
        self._add_all(graph, additions, "restriction-consequences", out)

    def _expression_consequences(
        self,
        graph: Graph,
        individual,
        expression: ClassExpression,
        type_index,
    ) -> List[Triple]:
        """Triples entailed by ``individual`` being an instance of ``expression``."""
        out: List[Triple] = []
        if isinstance(expression, HasValue):
            out.append((individual, expression.property, expression.value))
        elif isinstance(expression, AllValuesFrom):
            filler = expression.filler
            if isinstance(filler, NamedClass):
                for _, _, value in graph.triples((individual, expression.property, None)):
                    if not isinstance(value, Literal):
                        out.append((value, RDF_TYPE, filler.iri))
        elif isinstance(expression, IntersectionOf):
            for operand in expression.operands:
                if isinstance(operand, NamedClass):
                    out.append((individual, RDF_TYPE, operand.iri))
                else:
                    out.extend(self._expression_consequences(graph, individual, operand, type_index))
        elif isinstance(expression, NamedClass):
            out.append((individual, RDF_TYPE, expression.iri))
        # SomeValuesFrom / UnionOf have no deterministic consequences without
        # introducing fresh individuals (beyond OWL-RL), so they are skipped.
        return out

    # ------------------------------------------------------------------
    # Naive rule families (reference oracle for run_naive)
    # ------------------------------------------------------------------
    def _naive_property_rules(self, graph: Graph) -> None:
        additions: List[Triple] = []

        # Sub-property propagation: (x p y), p ⊑ q  =>  (x q y)
        for prop in list(self.axioms.subproperty_of):
            supers = self.axioms.superproperty_closure(prop) - {prop}
            if not supers:
                continue
            for s, _, o in list(graph.triples((None, prop, None))):
                for sup in supers:
                    additions.append((s, sup, o))
        self._add_all(graph, additions, "subPropertyOf")

        # Inverse properties: (x p y), p inverseOf q  =>  (y q x)
        additions = []
        for prop, inverses in self.axioms.inverse_of.items():
            for s, _, o in list(graph.triples((None, prop, None))):
                if isinstance(o, Literal):
                    continue
                for inverse in inverses:
                    additions.append((o, inverse, s))
        self._add_all(graph, additions, "inverseOf")

        # Symmetric properties.
        additions = []
        for prop in self.axioms.symmetric:
            for s, _, o in list(graph.triples((None, prop, None))):
                if not isinstance(o, Literal):
                    additions.append((o, prop, s))
        self._add_all(graph, additions, "symmetric")

        # Transitive properties: closure via repeated join.
        additions = []
        for prop in self.axioms.transitive:
            pairs = [(s, o) for s, _, o in graph.triples((None, prop, None)) if not isinstance(o, Literal)]
            successors: Dict[object, Set[object]] = {}
            for s, o in pairs:
                successors.setdefault(s, set()).add(o)
            for s, o in pairs:
                for nxt in successors.get(o, ()):
                    additions.append((s, prop, nxt))
        self._add_all(graph, additions, "transitive")

        # Property chains: p1 o p2 ⊑ q.
        additions = []
        for prop, chains in self.axioms.property_chains.items():
            for chain in chains:
                pairs = self._evaluate_chain(graph, chain)
                for s, o in pairs:
                    additions.append((s, prop, o))
        self._add_all(graph, additions, "propertyChain")

    def _evaluate_chain(self, graph: Graph, chain: List[IRI]) -> Set[Tuple[object, object]]:
        current: Optional[Set[Tuple[object, object]]] = None
        for step in chain:
            step_pairs = {
                (s, o) for s, _, o in graph.triples((None, step, None)) if not isinstance(o, Literal)
            }
            if current is None:
                current = step_pairs
                continue
            by_mid: Dict[object, Set[object]] = {}
            for mid, o in step_pairs:
                by_mid.setdefault(mid, set()).add(o)
            joined: Set[Tuple[object, object]] = set()
            for s, mid in current:
                for o in by_mid.get(mid, ()):
                    joined.add((s, o))
            current = joined
        return current or set()

    def _naive_type_rules(self, graph: Graph) -> None:
        additions: List[Triple] = []

        # Domain / range typing.
        for prop, domains in self.axioms.domains.items():
            for s, _, _ in list(graph.triples((None, prop, None))):
                for domain in domains:
                    additions.append((s, RDF_TYPE, domain))
        for prop, ranges in self.axioms.ranges.items():
            for _, _, o in list(graph.triples((None, prop, None))):
                if isinstance(o, Literal):
                    continue
                for range_ in ranges:
                    additions.append((o, RDF_TYPE, range_))
        self._add_all(graph, additions, "domain-range")

        # Type propagation along the (already materialised) class hierarchy.
        additions = []
        superclass_cache: Dict[IRI, Set[IRI]] = {}
        for individual, _, cls in list(graph.triples((None, RDF_TYPE, None))):
            if not isinstance(cls, IRI):
                continue
            ancestors = superclass_cache.get(cls)
            if ancestors is None:
                ancestors = {
                    ancestor
                    for ancestor in graph.objects(cls, RDFS_SUBCLASSOF)
                    if isinstance(ancestor, IRI)
                }
                ancestors |= self.axioms.superclass_closure(cls) - {cls}
                superclass_cache[cls] = ancestors
            for ancestor in ancestors:
                additions.append((individual, RDF_TYPE, ancestor))
        self._add_all(graph, additions, "subClassOf-types")

    def _naive_restriction_rules(self, graph: Graph) -> None:
        type_index = self._type_index(graph)
        individuals = self._individuals(graph)

        additions: List[Triple] = []
        for axiom in self.axioms.equivalences:
            for individual in individuals:
                if axiom.named in type_index.get(individual, set()):
                    continue
                if axiom.expression.matches(graph, individual, type_index):
                    additions.append((individual, RDF_TYPE, axiom.named))
        for expression, named in self.axioms.complex_subclasses:
            for individual in individuals:
                if named in type_index.get(individual, set()):
                    continue
                if expression.matches(graph, individual, type_index):
                    additions.append((individual, RDF_TYPE, named))
        self._add_all(graph, additions, "classification")

        type_index = self._type_index(graph)
        additions = []
        for axiom in self.axioms.complex_superclasses:
            members = [ind for ind, types in type_index.items() if axiom.sub in types]
            if not members:
                continue
            for member in members:
                additions.extend(self._expression_consequences(graph, member, axiom.super_expression, type_index))
        self._add_all(graph, additions, "restriction-consequences")

    # ------------------------------------------------------------------
    def _check_consistency(self, graph: Graph,
                           individuals: Optional[Set[object]] = None) -> None:
        """Raise on disjointness violations; ``individuals`` scopes the check."""
        if individuals is None:
            type_index = self._type_index(graph)
        else:
            if not individuals:
                return
            type_index = {
                individual: {o for o in graph.objects(individual, RDF_TYPE)
                             if isinstance(o, IRI)}
                for individual in individuals
            }
        for left, right in self.axioms.disjoint_classes:
            for individual, types in type_index.items():
                if left in types and right in types:
                    raise InconsistentOntologyError(
                        f"{individual} is an instance of disjoint classes {left} and {right}"
                    )
        for individual, types in type_index.items():
            if OWL_NOTHING in types:
                raise InconsistentOntologyError(f"{individual} is typed owl:Nothing")

    # ------------------------------------------------------------------
    def _add_all(self, graph: Graph, triples: Iterable[Triple], rule: str,
                 out: Optional[List[Triple]] = None) -> None:
        """Add ``triples``, counting effective firings; ``out`` collects the
        genuinely new triples as the next round's delta."""
        added = 0
        type_index = self._active_type_index
        for triple in triples:
            s, p, o = triple
            if s == o and p in (OWL_SAME_AS,):
                continue
            before = len(graph)
            graph.add(triple)
            if len(graph) > before:
                added += 1
                if out is not None:
                    out.append(triple)
                if type_index is not None and p == RDF_TYPE and isinstance(o, IRI):
                    type_index.setdefault(s, set()).add(o)
        self.report.record(rule, added)

    # ------------------------------------------------------------------
    def inferred_only(self) -> Graph:
        """Return only the triples added by reasoning (for inspection/tests)."""
        closed = self.run()
        result = Graph()
        result.namespace_manager = self.base_graph.namespace_manager.copy()
        base = set(self.base_graph)
        result.addN(t for t in closed if t not in base)
        return result
