"""A forward-chaining OWL-RL-style materialising reasoner.

This is the project's substitute for the Pellet reasoner used in the paper.
The paper's pipeline is: *build ontology + instances → run reasoner → export
the graph with inferred axioms → run SPARQL over the inferred graph*.
:class:`Reasoner` implements exactly that contract:

>>> reasoner = Reasoner(graph)
>>> inferred = reasoner.run()          # graph including inferred triples
>>> inferred.query(...)                 # SPARQL over the materialisation

Supported inference (the fragment FEO exercises, see DESIGN.md):

* class hierarchy: ``rdfs:subClassOf`` transitivity and type propagation,
  ``owl:equivalentClass`` (both between named classes and to restrictions);
* property hierarchy: ``rdfs:subPropertyOf`` closure and assertion
  propagation, ``owl:equivalentProperty``;
* property semantics: ``owl:inverseOf``, ``owl:TransitiveProperty``,
  ``owl:SymmetricProperty``, ``owl:propertyChainAxiom``, ``rdfs:domain``,
  ``rdfs:range``;
* restriction classification: individuals satisfying ``someValuesFrom`` /
  ``hasValue`` / ``intersectionOf`` / ``unionOf`` / ``oneOf`` expressions
  that are equivalent to (or subclasses of) a named class are typed with
  that class, and the usual consequences flow the other way
  (``hasValue`` value assertion, ``allValuesFrom`` filler typing).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..rdf.graph import Graph, Triple
from ..rdf.terms import BNode, IRI, Literal
from .axioms import AxiomIndex
from .expressions import (
    AllValuesFrom,
    ClassExpression,
    HasValue,
    IntersectionOf,
    NamedClass,
    SomeValuesFrom,
    UnionOf,
)
from .vocabulary import (
    OWL_NOTHING,
    OWL_SAME_AS,
    OWL_THING,
    RDF_TYPE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)

__all__ = ["Reasoner", "ReasoningReport", "InconsistentOntologyError"]


class InconsistentOntologyError(Exception):
    """Raised when a consistency check fails (e.g. disjointness violation)."""


@dataclass
class ReasoningReport:
    """Statistics describing one materialisation run."""

    input_triples: int = 0
    inferred_triples: int = 0
    iterations: int = 0
    elapsed_seconds: float = 0.0
    rule_firings: Dict[str, int] = field(default_factory=dict)

    def record(self, rule: str, count: int = 1) -> None:
        if count:
            self.rule_firings[rule] = self.rule_firings.get(rule, 0) + count


class Reasoner:
    """Materialises the deductive closure of a graph under the axioms it contains."""

    def __init__(
        self,
        graph: Graph,
        axioms: Optional[AxiomIndex] = None,
        max_iterations: int = 100,
        check_consistency: bool = True,
    ) -> None:
        self.base_graph = graph
        self.axioms = axioms or AxiomIndex.from_graph(graph)
        self.max_iterations = max_iterations
        self.check_consistency = check_consistency
        self.report = ReasoningReport()

    # ------------------------------------------------------------------
    def run(self) -> Graph:
        """Return a new graph containing the input plus all inferred triples."""
        start = time.perf_counter()
        working = self.base_graph.copy()
        self.report.input_triples = len(self.base_graph)

        self._materialise_schema(working)

        iteration = 0
        changed = True
        while changed and iteration < self.max_iterations:
            iteration += 1
            before = len(working)
            self._apply_property_rules(working)
            self._apply_type_rules(working)
            self._apply_restriction_rules(working)
            changed = len(working) > before
        self.report.iterations = iteration
        self.report.inferred_triples = len(working) - self.report.input_triples
        self.report.elapsed_seconds = time.perf_counter() - start

        if self.check_consistency:
            self._check_consistency(working)
        return working

    # ------------------------------------------------------------------
    # Schema closure
    # ------------------------------------------------------------------
    def _materialise_schema(self, graph: Graph) -> None:
        """Add the transitive closures of subClassOf / subPropertyOf."""
        added = 0
        for cls in list(self.axioms.named_subclass_of):
            for ancestor in self.axioms.superclass_closure(cls):
                if ancestor != cls:
                    before = len(graph)
                    graph.add((cls, RDFS_SUBCLASSOF, ancestor))
                    added += len(graph) - before
        for prop in list(self.axioms.subproperty_of):
            for ancestor in self.axioms.superproperty_closure(prop):
                if ancestor != prop:
                    before = len(graph)
                    graph.add((prop, RDFS_SUBPROPERTYOF, ancestor))
                    added += len(graph) - before
        self.report.record("schema-closure", added)

    # ------------------------------------------------------------------
    # Property-centric rules
    # ------------------------------------------------------------------
    def _apply_property_rules(self, graph: Graph) -> None:
        additions: List[Triple] = []

        # Sub-property propagation: (x p y), p ⊑ q  =>  (x q y)
        for prop in list(self.axioms.subproperty_of):
            supers = self.axioms.superproperty_closure(prop) - {prop}
            if not supers:
                continue
            for s, _, o in list(graph.triples((None, prop, None))):
                for sup in supers:
                    additions.append((s, sup, o))
        self._add_all(graph, additions, "subPropertyOf")

        # Inverse properties: (x p y), p inverseOf q  =>  (y q x)
        additions = []
        for prop, inverses in self.axioms.inverse_of.items():
            for s, _, o in list(graph.triples((None, prop, None))):
                if isinstance(o, Literal):
                    continue
                for inverse in inverses:
                    additions.append((o, inverse, s))
        self._add_all(graph, additions, "inverseOf")

        # Symmetric properties.
        additions = []
        for prop in self.axioms.symmetric:
            for s, _, o in list(graph.triples((None, prop, None))):
                if not isinstance(o, Literal):
                    additions.append((o, prop, s))
        self._add_all(graph, additions, "symmetric")

        # Transitive properties: closure via repeated join.
        additions = []
        for prop in self.axioms.transitive:
            pairs = [(s, o) for s, _, o in graph.triples((None, prop, None)) if not isinstance(o, Literal)]
            successors: Dict[object, Set[object]] = {}
            for s, o in pairs:
                successors.setdefault(s, set()).add(o)
            for s, o in pairs:
                for nxt in successors.get(o, ()):
                    if nxt != s or True:  # keep reflexive results out of loops below
                        additions.append((s, prop, nxt))
        self._add_all(graph, additions, "transitive")

        # Property chains: p1 o p2 ⊑ q.
        additions = []
        for prop, chains in self.axioms.property_chains.items():
            for chain in chains:
                pairs = self._evaluate_chain(graph, chain)
                for s, o in pairs:
                    additions.append((s, prop, o))
        self._add_all(graph, additions, "propertyChain")

    def _evaluate_chain(self, graph: Graph, chain: List[IRI]) -> Set[Tuple[object, object]]:
        current: Optional[Set[Tuple[object, object]]] = None
        for step in chain:
            step_pairs = {
                (s, o) for s, _, o in graph.triples((None, step, None)) if not isinstance(o, Literal)
            }
            if current is None:
                current = step_pairs
                continue
            by_mid: Dict[object, Set[object]] = {}
            for mid, o in step_pairs:
                by_mid.setdefault(mid, set()).add(o)
            joined: Set[Tuple[object, object]] = set()
            for s, mid in current:
                for o in by_mid.get(mid, ()):
                    joined.add((s, o))
            current = joined
        return current or set()

    # ------------------------------------------------------------------
    # Type-centric rules
    # ------------------------------------------------------------------
    def _apply_type_rules(self, graph: Graph) -> None:
        additions: List[Triple] = []

        # Domain / range typing.
        for prop, domains in self.axioms.domains.items():
            for s, _, _ in list(graph.triples((None, prop, None))):
                for domain in domains:
                    additions.append((s, RDF_TYPE, domain))
        for prop, ranges in self.axioms.ranges.items():
            for _, _, o in list(graph.triples((None, prop, None))):
                if isinstance(o, Literal):
                    continue
                for range_ in ranges:
                    additions.append((o, RDF_TYPE, range_))
        self._add_all(graph, additions, "domain-range")

        # Type propagation along the (already materialised) class hierarchy.
        additions = []
        superclass_cache: Dict[IRI, Set[IRI]] = {}
        for individual, _, cls in list(graph.triples((None, RDF_TYPE, None))):
            if not isinstance(cls, IRI):
                continue
            ancestors = superclass_cache.get(cls)
            if ancestors is None:
                ancestors = {
                    ancestor
                    for ancestor in graph.objects(cls, RDFS_SUBCLASSOF)
                    if isinstance(ancestor, IRI)
                }
                ancestors |= self.axioms.superclass_closure(cls) - {cls}
                superclass_cache[cls] = ancestors
            for ancestor in ancestors:
                additions.append((individual, RDF_TYPE, ancestor))
        self._add_all(graph, additions, "subClassOf-types")

    # ------------------------------------------------------------------
    # Restriction / expression classification
    # ------------------------------------------------------------------
    def _type_index(self, graph: Graph) -> Dict[object, Set[IRI]]:
        index: Dict[object, Set[IRI]] = {}
        for s, _, o in graph.triples((None, RDF_TYPE, None)):
            if isinstance(o, IRI):
                index.setdefault(s, set()).add(o)
        return index

    def _individuals(self, graph: Graph) -> Set[object]:
        individuals: Set[object] = set()
        schema_preds = {RDFS_SUBCLASSOF, RDFS_SUBPROPERTYOF}
        for s, p, o in graph:
            if p in schema_preds:
                continue
            if isinstance(s, (IRI, BNode)):
                individuals.add(s)
            if p == RDF_TYPE:
                continue
            if isinstance(o, (IRI, BNode)):
                individuals.add(o)
        return individuals

    def _apply_restriction_rules(self, graph: Graph) -> None:
        type_index = self._type_index(graph)
        individuals = self._individuals(graph)

        # (a) classification: expression ≡/⊒ named class — if an individual
        # satisfies the expression it gains the named type.
        additions: List[Triple] = []
        for axiom in self.axioms.equivalences:
            for individual in individuals:
                if axiom.named in type_index.get(individual, set()):
                    continue
                if axiom.expression.matches(graph, individual, type_index):
                    additions.append((individual, RDF_TYPE, axiom.named))
        for expression, named in self.axioms.complex_subclasses:
            for individual in individuals:
                if named in type_index.get(individual, set()):
                    continue
                if expression.matches(graph, individual, type_index):
                    additions.append((individual, RDF_TYPE, named))
        self._add_all(graph, additions, "classification")

        # (b) consequence direction: named class ⊑ expression.
        type_index = self._type_index(graph)
        additions = []
        for axiom in self.axioms.complex_superclasses:
            members = [ind for ind, types in type_index.items() if axiom.sub in types]
            if not members:
                continue
            for member in members:
                additions.extend(self._expression_consequences(graph, member, axiom.super_expression, type_index))
        self._add_all(graph, additions, "restriction-consequences")

    def _expression_consequences(
        self,
        graph: Graph,
        individual,
        expression: ClassExpression,
        type_index,
    ) -> List[Triple]:
        """Triples entailed by ``individual`` being an instance of ``expression``."""
        out: List[Triple] = []
        if isinstance(expression, HasValue):
            out.append((individual, expression.property, expression.value))
        elif isinstance(expression, AllValuesFrom):
            filler = expression.filler
            if isinstance(filler, NamedClass):
                for _, _, value in graph.triples((individual, expression.property, None)):
                    if not isinstance(value, Literal):
                        out.append((value, RDF_TYPE, filler.iri))
        elif isinstance(expression, IntersectionOf):
            for operand in expression.operands:
                if isinstance(operand, NamedClass):
                    out.append((individual, RDF_TYPE, operand.iri))
                else:
                    out.extend(self._expression_consequences(graph, individual, operand, type_index))
        elif isinstance(expression, NamedClass):
            out.append((individual, RDF_TYPE, expression.iri))
        # SomeValuesFrom / UnionOf have no deterministic consequences without
        # introducing fresh individuals (beyond OWL-RL), so they are skipped.
        return out

    # ------------------------------------------------------------------
    def _check_consistency(self, graph: Graph) -> None:
        type_index = self._type_index(graph)
        for left, right in self.axioms.disjoint_classes:
            for individual, types in type_index.items():
                if left in types and right in types:
                    raise InconsistentOntologyError(
                        f"{individual} is an instance of disjoint classes {left} and {right}"
                    )
        for individual, types in type_index.items():
            if OWL_NOTHING in types:
                raise InconsistentOntologyError(f"{individual} is typed owl:Nothing")

    # ------------------------------------------------------------------
    def _add_all(self, graph: Graph, triples: Iterable[Triple], rule: str) -> None:
        before = len(graph)
        for s, p, o in triples:
            if s == o and p in (OWL_SAME_AS,):
                continue
            graph.add((s, p, o))
        self.report.record(rule, len(graph) - before)

    # ------------------------------------------------------------------
    def inferred_only(self) -> Graph:
        """Return only the triples added by reasoning (for inspection/tests)."""
        closed = self.run()
        result = Graph()
        result.namespace_manager = self.base_graph.namespace_manager.copy()
        base = set(self.base_graph)
        result.addN(t for t in closed if t not in base)
        return result
