"""Extraction of schema axioms from an ontology graph.

The reasoner does not work on raw triples for schema reasoning; instead the
:class:`AxiomIndex` pulls the relevant axioms into Python structures once,
which keeps the fixpoint loop tight even for individual-heavy graphs (the
reason the paper picks Pellet is exactly that its ontology has many
individuals — our design addresses the same bottleneck).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..rdf.collection import read_collection
from ..rdf.graph import Graph
from ..rdf.terms import BNode, IRI
from .expressions import ClassExpression, NamedClass, parse_class_expression
from .vocabulary import (
    OWL_CLASS,
    OWL_DISJOINT_WITH,
    OWL_EQUIVALENT_CLASS,
    OWL_EQUIVALENT_PROPERTY,
    OWL_FUNCTIONAL_PROPERTY,
    OWL_INVERSE_FUNCTIONAL_PROPERTY,
    OWL_INVERSE_OF,
    OWL_PROPERTY_CHAIN_AXIOM,
    OWL_SYMMETRIC_PROPERTY,
    OWL_TRANSITIVE_PROPERTY,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASSOF,
    RDFS_SUBPROPERTYOF,
)

__all__ = ["AxiomIndex", "EquivalenceAxiom", "SubClassAxiom"]


@dataclass(frozen=True)
class SubClassAxiom:
    """``sub ⊑ sup`` where ``sup`` may be a complex expression."""

    sub: IRI
    super_expression: ClassExpression


@dataclass(frozen=True)
class EquivalenceAxiom:
    """``named ≡ expression`` — drives classification of individuals."""

    named: IRI
    expression: ClassExpression


@dataclass
class AxiomIndex:
    """All schema axioms of an ontology, indexed for the rule engine."""

    named_subclass_of: Dict[IRI, Set[IRI]] = field(default_factory=lambda: defaultdict(set))
    complex_superclasses: List[SubClassAxiom] = field(default_factory=list)
    complex_subclasses: List[Tuple[ClassExpression, IRI]] = field(default_factory=list)
    equivalences: List[EquivalenceAxiom] = field(default_factory=list)
    subproperty_of: Dict[IRI, Set[IRI]] = field(default_factory=lambda: defaultdict(set))
    inverse_of: Dict[IRI, Set[IRI]] = field(default_factory=lambda: defaultdict(set))
    transitive: Set[IRI] = field(default_factory=set)
    symmetric: Set[IRI] = field(default_factory=set)
    functional: Set[IRI] = field(default_factory=set)
    inverse_functional: Set[IRI] = field(default_factory=set)
    domains: Dict[IRI, Set[IRI]] = field(default_factory=lambda: defaultdict(set))
    ranges: Dict[IRI, Set[IRI]] = field(default_factory=lambda: defaultdict(set))
    property_chains: Dict[IRI, List[List[IRI]]] = field(default_factory=lambda: defaultdict(list))
    disjoint_classes: List[Tuple[IRI, IRI]] = field(default_factory=list)
    declared_classes: Set[IRI] = field(default_factory=set)

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "AxiomIndex":
        """Extract every supported axiom from ``graph``."""
        index = cls()

        for cls_iri in graph.subjects(RDF_TYPE, OWL_CLASS):
            if isinstance(cls_iri, IRI):
                index.declared_classes.add(cls_iri)

        for sub, sup in graph.subject_objects(RDFS_SUBCLASSOF):
            expression = parse_class_expression(graph, sup)
            if isinstance(sub, IRI):
                index.declared_classes.add(sub)
                if isinstance(sup, IRI):
                    index.named_subclass_of[sub].add(sup)
                    index.declared_classes.add(sup)
                elif expression is not None:
                    index.complex_superclasses.append(SubClassAxiom(sub, expression))
            elif isinstance(sub, BNode) and isinstance(sup, IRI):
                sub_expression = parse_class_expression(graph, sub)
                if sub_expression is not None:
                    index.complex_subclasses.append((sub_expression, sup))

        for left, right in graph.subject_objects(OWL_EQUIVALENT_CLASS):
            index._add_equivalence(graph, left, right)
            index._add_equivalence(graph, right, left)

        for sub, sup in graph.subject_objects(RDFS_SUBPROPERTYOF):
            if isinstance(sub, IRI) and isinstance(sup, IRI):
                index.subproperty_of[sub].add(sup)
        for left, right in graph.subject_objects(OWL_EQUIVALENT_PROPERTY):
            if isinstance(left, IRI) and isinstance(right, IRI):
                index.subproperty_of[left].add(right)
                index.subproperty_of[right].add(left)

        for left, right in graph.subject_objects(OWL_INVERSE_OF):
            if isinstance(left, IRI) and isinstance(right, IRI):
                index.inverse_of[left].add(right)
                index.inverse_of[right].add(left)

        for prop in graph.subjects(RDF_TYPE, OWL_TRANSITIVE_PROPERTY):
            if isinstance(prop, IRI):
                index.transitive.add(prop)
        for prop in graph.subjects(RDF_TYPE, OWL_SYMMETRIC_PROPERTY):
            if isinstance(prop, IRI):
                index.symmetric.add(prop)
        for prop in graph.subjects(RDF_TYPE, OWL_FUNCTIONAL_PROPERTY):
            if isinstance(prop, IRI):
                index.functional.add(prop)
        for prop in graph.subjects(RDF_TYPE, OWL_INVERSE_FUNCTIONAL_PROPERTY):
            if isinstance(prop, IRI):
                index.inverse_functional.add(prop)

        for prop, domain in graph.subject_objects(RDFS_DOMAIN):
            if isinstance(prop, IRI) and isinstance(domain, IRI):
                index.domains[prop].add(domain)
        for prop, range_ in graph.subject_objects(RDFS_RANGE):
            if isinstance(prop, IRI) and isinstance(range_, IRI):
                index.ranges[prop].add(range_)

        for prop, chain_head in graph.subject_objects(OWL_PROPERTY_CHAIN_AXIOM):
            if isinstance(prop, IRI):
                chain = [step for step in read_collection(graph, chain_head) if isinstance(step, IRI)]
                if chain:
                    index.property_chains[prop].append(chain)

        for left, right in graph.subject_objects(OWL_DISJOINT_WITH):
            if isinstance(left, IRI) and isinstance(right, IRI):
                index.disjoint_classes.append((left, right))

        return index

    def _add_equivalence(self, graph: Graph, named, other) -> None:
        if not isinstance(named, IRI):
            return
        self.declared_classes.add(named)
        expression = parse_class_expression(graph, other)
        if expression is None:
            return
        if isinstance(expression, NamedClass):
            # Named ≡ Named is just mutual subclassing.
            self.named_subclass_of[named].add(expression.iri)
            return
        self.equivalences.append(EquivalenceAxiom(named, expression))
        # The expression also entails membership propagation in the other
        # direction (named ⊑ expression); record it for completeness so
        # hasValue/someValuesFrom consequences can be materialised.
        self.complex_superclasses.append(SubClassAxiom(named, expression))

    # ------------------------------------------------------------------
    def superclass_closure(self, cls: IRI) -> Set[IRI]:
        """All named superclasses of ``cls`` (reflexive-transitive)."""
        seen: Set[IRI] = {cls}
        stack = [cls]
        while stack:
            current = stack.pop()
            for parent in self.named_subclass_of.get(current, ()):
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return seen

    def superproperty_closure(self, prop: IRI) -> Set[IRI]:
        """All named superproperties of ``prop`` (reflexive-transitive)."""
        seen: Set[IRI] = {prop}
        stack = [prop]
        while stack:
            current = stack.pop()
            for parent in self.subproperty_of.get(current, ()):
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)
        return seen

    def subclasses_of(self, cls: IRI) -> Set[IRI]:
        """All named classes that are (transitively) subclasses of ``cls``."""
        result: Set[IRI] = set()
        for candidate in set(self.named_subclass_of) | self.declared_classes:
            if cls in self.superclass_closure(candidate) and candidate != cls:
                result.add(candidate)
        return result
