"""Typed errors shared across the serving stack.

The HTTP transport used to map *any* ``KeyError``/``ValueError``/
``TypeError`` escaping a handler to a 400 — which meant an internal bug
(a broken index, a ``None`` where a graph was expected) masqueraded as a
client error and never surfaced in logs.  This module gives each failure
mode the transport has to distinguish its own exception family:

* :class:`RequestError` — the request itself is invalid (HTTP 400);
* :class:`UnavailableError` — the service cannot take the request right
  now but a retry may succeed (HTTP 503 with ``Retry-After``): shard
  queue backpressure, an open circuit breaker, a draining fleet, or a
  typed transient failure such as a lost worker;
* :class:`DeadlineExceededError` — the request's deadline expired before
  a result was produced (HTTP 504);
* anything else escaping a handler is an internal bug and must surface
  as a logged 500, never be reclassified as the client's fault.

The module is deliberately a leaf (no intra-package imports): it is
raised from the foodkg loaders, the user registry, the question parser,
the engine and the serving layer, and caught in the CLI and the HTTP
server, so it must be importable from anywhere without cycles.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "RequestError",
    "UnknownEntityError",
    "UnavailableError",
    "ShardUnavailableError",
    "ServiceDrainingError",
    "TransientServingError",
    "WorkerLostError",
    "DeadlineExceededError",
]


class RequestError(ValueError):
    """The request itself is invalid; the caller should fix it and retry.

    Transports map this family — and only this family — to a client error
    (HTTP 400).  Anything else escaping a handler is an internal bug and
    must surface as a 500 with a logged traceback, never be silently
    reclassified as the client's fault.
    """


class UnknownEntityError(RequestError, KeyError):
    """A request names an entity that does not exist.

    Covers unknown foods, health conditions, personas, session ids and
    explanation types.  Subclasses :class:`KeyError` too, so existing
    lookup-style call sites (``except KeyError``) keep working unchanged
    while transports can narrow to :class:`RequestError`.
    """

    def __str__(self) -> str:
        # KeyError.__str__ renders repr(args[0]); these are prose messages.
        return Exception.__str__(self)


class UnavailableError(RuntimeError):
    """The service cannot take this request right now; retry later.

    The retryable 503 family: admission-control backpressure, an open
    per-shard circuit breaker, a draining fleet, and typed transient
    failures.  ``retry_after`` (seconds) tells a well-behaved client when
    a retry has a chance instead of letting it hot-loop; transports
    surface it both as the HTTP ``Retry-After`` header and as a
    machine-readable field of the JSON payload, alongside ``reason``.
    """

    #: Machine-readable discriminator for the 503 payload's ``reason``
    #: field; subclasses override it.
    reason = "unavailable"

    def __init__(self, message: str, *, reason: Optional[str] = None,
                 retry_after: Optional[float] = None,
                 scope: str = "service", shard: Optional[int] = None) -> None:
        super().__init__(message)
        if reason is not None:
            self.reason = reason
        self.retry_after = retry_after
        self.scope = scope
        self.shard = shard

    def to_payload(self) -> Dict[str, Any]:
        """The transport-friendly (JSON-serialisable) view of the rejection."""
        return {
            "error": self.reason,
            "reason": self.reason,
            "message": str(self),
            "scope": self.scope,
            "shard": self.shard,
            "retry_after": self.retry_after,
            "retryable": True,
        }


class ShardUnavailableError(UnavailableError):
    """A shard's circuit breaker is open: fail fast instead of queueing.

    Raised when sustained failures or deadline misses opened the shard's
    breaker (or while a half-open probe is already in flight).  Callers
    should back off for :attr:`retry_after` seconds — the cooldown the
    breaker will wait before probing the shard again.
    """

    reason = "breaker_open"


class ServiceDrainingError(UnavailableError):
    """The service is draining (or stopped): new work is rejected.

    Also set on the futures of queued-but-unstarted work that a bounded
    :meth:`stop(timeout=...)` cancelled when the drain deadline expired.
    """

    reason = "draining"


class TransientServingError(UnavailableError):
    """A request failed for a reason unrelated to the request itself.

    The typed "infrastructure hiccup" family: the work was accepted but
    did not complete because of a fault in the serving machinery (a lost
    worker, an injected chaos fault) rather than anything the client
    sent.  An **idempotent** retry may succeed — the sharded service
    retries asks (never updates) on this family with jittered
    exponential backoff.
    """

    reason = "transient"


class WorkerLostError(TransientServingError):
    """The worker executing (or about to execute) this request died.

    The request was never (fully) executed, so retrying an idempotent
    ask is safe.  The watchdog restarts the worker independently.
    """

    reason = "worker_lost"


class DeadlineExceededError(RuntimeError):
    """The request's deadline expired before a result was produced.

    Raised to the caller when the per-request timeout elapses, and set on
    queued work that expired before a worker picked it up (expired work
    is skipped, never executed).  Transports map it to HTTP 504.
    """

    def __init__(self, message: str, *, timeout: Optional[float] = None,
                 shard: Optional[int] = None) -> None:
        super().__init__(message)
        self.timeout = timeout
        self.shard = shard

    def to_payload(self) -> Dict[str, Any]:
        """The transport-friendly (JSON-serialisable) view of the timeout."""
        return {
            "error": "deadline_exceeded",
            "reason": "deadline_exceeded",
            "message": str(self),
            "timeout": self.timeout,
            "shard": self.shard,
            "retryable": True,
        }
