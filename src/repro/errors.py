"""Typed request-validation errors shared across the serving stack.

The HTTP transport used to map *any* ``KeyError``/``ValueError``/
``TypeError`` escaping a handler to a 400 — which meant an internal bug
(a broken index, a ``None`` where a graph was expected) masqueraded as a
client error and never surfaced in logs.  This module gives "the request
itself is invalid" its own exception family so transports can map exactly
that family to 400 and let everything else crash loudly as a 500.

The module is deliberately a leaf (no intra-package imports): it is
raised from the foodkg loaders, the user registry, the question parser
and the engine, and caught in the CLI and the HTTP server, so it must be
importable from anywhere without cycles.
"""

from __future__ import annotations

__all__ = ["RequestError", "UnknownEntityError"]


class RequestError(ValueError):
    """The request itself is invalid; the caller should fix it and retry.

    Transports map this family — and only this family — to a client error
    (HTTP 400).  Anything else escaping a handler is an internal bug and
    must surface as a 500 with a logged traceback, never be silently
    reclassified as the client's fault.
    """


class UnknownEntityError(RequestError, KeyError):
    """A request names an entity that does not exist.

    Covers unknown foods, health conditions, personas, session ids and
    explanation types.  Subclasses :class:`KeyError` too, so existing
    lookup-style call sites (``except KeyError``) keep working unchanged
    while transports can narrow to :class:`RequestError`.
    """

    def __str__(self) -> str:
        # KeyError.__str__ renders repr(args[0]); these are prose messages.
        return Exception.__str__(self)
