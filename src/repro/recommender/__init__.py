"""The Health Coach substitute: the recommender whose outputs FEO explains."""

from .constraints import ConstraintChecker, ConstraintViolation
from .health_coach import HealthCoach, Recommendation
from .scoring import ContentBasedScorer, DEFAULT_WEIGHTS, ScoreBreakdown
from .trace import RecommendationTrace, TraceStep

__all__ = [
    "ConstraintChecker",
    "ConstraintViolation",
    "ContentBasedScorer",
    "DEFAULT_WEIGHTS",
    "HealthCoach",
    "Recommendation",
    "RecommendationTrace",
    "ScoreBreakdown",
    "TraceStep",
]
