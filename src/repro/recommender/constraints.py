"""Hard constraint filtering for the Health Coach substitute.

Constraints remove candidate recipes outright: allergens the user reacts
to, foods forbidden by a health condition or goal, declared dislikes and
diet incompatibilities.  Each violation is recorded so that explanations
(and the recommender trace) can cite the reason a recipe was excluded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..foodkg.schema import FoodCatalog, RecipeRecord
from ..users.profile import UserProfile

__all__ = ["ConstraintViolation", "ConstraintChecker"]


@dataclass(frozen=True)
class ConstraintViolation:
    """One reason a recipe is unsuitable for a user."""

    recipe: str
    kind: str          # "allergy", "condition", "goal", "dislike", "diet"
    subject: str       # the allergy/condition/goal/diet involved
    detail: str        # the offending ingredient or missing diet

    def describe(self) -> str:
        if self.kind == "allergy":
            return f"{self.recipe} contains {self.detail}, which the user is allergic to"
        if self.kind in ("condition", "goal"):
            label = self.subject.replace("_", " ")
            return f"{self.recipe} contains {self.detail}, which is not advised for {label}"
        if self.kind == "dislike":
            return f"{self.recipe} contains {self.detail}, which the user dislikes"
        return f"{self.recipe} is not suitable for the user's {self.detail} diet"


class ConstraintChecker:
    """Evaluates a user's hard constraints against catalogue recipes."""

    def __init__(self, catalog: FoodCatalog) -> None:
        self._catalog = catalog

    # ------------------------------------------------------------------
    def violations(self, recipe: RecipeRecord, user: UserProfile) -> List[ConstraintViolation]:
        """Every constraint the recipe violates for this user."""
        out: List[ConstraintViolation] = []
        ingredients = set(recipe.ingredients)
        ingredient_allergens = {
            allergen
            for name in recipe.ingredients
            for allergen in self._catalog.ingredients[name].allergens
        }

        for allergy in user.allergies:
            if allergy in ingredients:
                out.append(ConstraintViolation(recipe.name, "allergy", allergy, allergy))
            elif allergy.lower() in {a.lower() for a in ingredient_allergens}:
                out.append(ConstraintViolation(recipe.name, "allergy", allergy, allergy))

        for dislike in user.dislikes:
            if dislike in ingredients:
                out.append(ConstraintViolation(recipe.name, "dislike", dislike, dislike))

        for condition in user.conditions:
            for rule in self._catalog.rules_for(condition):
                for forbidden in rule.forbids:
                    if forbidden in ingredients or forbidden == recipe.name:
                        out.append(ConstraintViolation(recipe.name, "condition", condition, forbidden))

        for goal in user.goals:
            for rule in self._catalog.rules_for(goal):
                for forbidden in rule.forbids:
                    if forbidden in ingredients or forbidden == recipe.name:
                        out.append(ConstraintViolation(recipe.name, "goal", goal, forbidden))

        for diet in user.diets:
            if diet not in recipe.diets:
                out.append(ConstraintViolation(recipe.name, "diet", diet, diet))

        return out

    def is_allowed(self, recipe: RecipeRecord, user: UserProfile) -> bool:
        """True if the recipe violates none of the user's hard constraints."""
        return not self.violations(recipe, user)

    def partition(
        self, recipes: List[RecipeRecord], user: UserProfile
    ) -> Tuple[List[RecipeRecord], Dict[str, List[ConstraintViolation]]]:
        """Split recipes into (allowed, {recipe name: violations})."""
        allowed: List[RecipeRecord] = []
        rejected: Dict[str, List[ConstraintViolation]] = {}
        for recipe in recipes:
            violations = self.violations(recipe, user)
            if violations:
                rejected[recipe.name] = violations
            else:
                allowed.append(recipe)
        return allowed, rejected
