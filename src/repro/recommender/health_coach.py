"""The Health Coach substitute: the black-box whose outputs FEO explains.

The paper evaluates FEO against recommendations produced by the 'Health
Coach' application (Rastogi et al., ISWC 2020 demo).  That system is not
public, so :class:`HealthCoach` plays its role: given a user profile and a
system context it filters the catalogue by hard constraints, scores the
remaining recipes and returns ranked :class:`Recommendation` records, each
carrying the trace FEO's trace-based explanations consume.  FEO itself is
recommender-agnostic, so any component with this output shape exercises
the same explanation pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..foodkg.schema import FoodCatalog
from ..users.context import SystemContext
from ..users.profile import UserProfile
from .constraints import ConstraintChecker, ConstraintViolation
from .scoring import ContentBasedScorer, ScoreBreakdown
from .trace import RecommendationTrace

__all__ = ["Recommendation", "HealthCoach"]


@dataclass
class Recommendation:
    """One ranked recommendation with its score breakdown and trace."""

    recipe: str
    rank: int
    score: float
    breakdown: ScoreBreakdown
    trace: RecommendationTrace
    user_id: str
    context: Dict[str, str] = field(default_factory=dict)

    def reasons(self) -> List[str]:
        return list(self.breakdown.reasons)


class HealthCoach:
    """A transparent content-based + constraint-filtering recommender."""

    def __init__(
        self,
        catalog: FoodCatalog,
        scorer: Optional[ContentBasedScorer] = None,
        checker: Optional[ConstraintChecker] = None,
    ) -> None:
        self.catalog = catalog
        self.scorer = scorer or ContentBasedScorer(catalog)
        self.checker = checker or ConstraintChecker(catalog)

    # ------------------------------------------------------------------
    def recommend(
        self,
        user: UserProfile,
        context: SystemContext,
        top_k: int = 5,
    ) -> List[Recommendation]:
        """Return the ``top_k`` recommendations for ``user`` in ``context``."""
        trace = RecommendationTrace()
        candidates = list(self.catalog.recipes.values())
        trace.add("candidate-generation",
                  f"considered {len(candidates)} catalogue recipes",
                  count=len(candidates))

        allowed, rejected = self.checker.partition(candidates, user)
        trace.add("constraint-filter",
                  f"removed {len(rejected)} recipes violating hard constraints "
                  f"(allergies, conditions, diets)",
                  removed=sorted(rejected),
                  kept=len(allowed))

        ranked = self.scorer.rank(allowed, user, context)
        trace.add("scoring",
                  f"scored {len(ranked)} remaining recipes with content-based features "
                  f"(likes, seasonality, goals, diet, budget)",
                  scored=len(ranked))

        top = ranked[:top_k]
        trace.add("selection", f"selected the top {len(top)} recipes", top=[b.recipe for b in top])

        recommendations = []
        for rank, breakdown in enumerate(top, start=1):
            recommendations.append(Recommendation(
                recipe=breakdown.recipe,
                rank=rank,
                score=breakdown.total,
                breakdown=breakdown,
                trace=trace,
                user_id=user.identifier,
                context=context.summary(),
            ))
        return recommendations

    def recommend_one(self, user: UserProfile, context: SystemContext) -> Optional[Recommendation]:
        """The single best recommendation (or ``None`` if everything is filtered)."""
        results = self.recommend(user, context, top_k=1)
        return results[0] if results else None

    # ------------------------------------------------------------------
    def why_not(self, recipe_name: str, user: UserProfile) -> List[ConstraintViolation]:
        """The hard-constraint reasons a given recipe would be rejected."""
        recipe = self.catalog.recipes.get(recipe_name)
        if recipe is None:
            raise KeyError(f"Unknown recipe {recipe_name!r}")
        return self.checker.violations(recipe, user)

    def compare(
        self,
        recipe_a: str,
        recipe_b: str,
        user: UserProfile,
        context: SystemContext,
    ) -> Dict[str, ScoreBreakdown]:
        """Score two recipes side by side (input to contrastive explanations)."""
        out: Dict[str, ScoreBreakdown] = {}
        for name in (recipe_a, recipe_b):
            recipe = self.catalog.recipes.get(name)
            if recipe is None:
                raise KeyError(f"Unknown recipe {name!r}")
            out[name] = self.scorer.score(recipe, user, context)
        return out
