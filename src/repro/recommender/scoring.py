"""Content-based scoring for the Health Coach substitute.

The original Health Coach application uses machine-learning models; FEO is
deliberately agnostic about what produces the recommendation.  This scorer
is a transparent content-based stand-in: it rewards overlap with the
user's likes, seasonal and regional availability, goal-aligned nutrients,
diet fit, budget fit and meal-time fit, and penalises disliked
ingredients.  Every component is reported so traces and explanations can
cite them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..foodkg.schema import FoodCatalog, RecipeRecord
from ..users.context import SystemContext
from ..users.profile import UserProfile

__all__ = ["ScoreBreakdown", "ContentBasedScorer", "DEFAULT_WEIGHTS"]

#: Relative weight of each scoring component.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "liked_recipe": 3.0,
    "liked_ingredient_overlap": 1.0,
    "disliked_ingredient": -2.0,
    "seasonal": 1.5,
    "regional": 0.75,
    "goal_nutrient": 1.25,
    "goal_recommended_food": 1.5,
    "condition_recommended_food": 1.5,
    "diet_match": 1.0,
    "budget_match": 0.5,
    "meal_time_match": 0.5,
}

_GOAL_NUTRIENTS = {
    "high_folate": "folate",
    "high_protein": "protein",
    "high_fiber": "fiber",
}


@dataclass
class ScoreBreakdown:
    """The total score of one recipe and the contribution of each component."""

    recipe: str
    total: float = 0.0
    components: Dict[str, float] = field(default_factory=dict)
    reasons: List[str] = field(default_factory=list)

    def add(self, component: str, value: float, reason: str) -> None:
        if value == 0:
            return
        self.components[component] = self.components.get(component, 0.0) + value
        self.total += value
        self.reasons.append(reason)


class ContentBasedScorer:
    """Scores catalogue recipes for a (user, context) pair."""

    def __init__(self, catalog: FoodCatalog, weights: Optional[Dict[str, float]] = None) -> None:
        self._catalog = catalog
        self._weights = dict(DEFAULT_WEIGHTS)
        if weights:
            self._weights.update(weights)

    # ------------------------------------------------------------------
    def score(self, recipe: RecipeRecord, user: UserProfile, context: SystemContext) -> ScoreBreakdown:
        """Return the full score breakdown of ``recipe`` for ``user`` in ``context``."""
        breakdown = ScoreBreakdown(recipe=recipe.name)
        weights = self._weights
        catalog = self._catalog
        ingredients = [catalog.ingredients[name] for name in recipe.ingredients]

        if user.likes_food(recipe.name):
            breakdown.add("liked_recipe", weights["liked_recipe"],
                          f"the user likes {recipe.name}")

        liked_ingredients = [i.name for i in ingredients if user.likes_food(i.name)]
        if liked_ingredients:
            breakdown.add("liked_ingredient_overlap",
                          weights["liked_ingredient_overlap"] * len(liked_ingredients),
                          f"contains liked ingredients: {', '.join(liked_ingredients)}")

        disliked = [i.name for i in ingredients if user.dislikes_food(i.name)]
        if disliked:
            breakdown.add("disliked_ingredient",
                          weights["disliked_ingredient"] * len(disliked),
                          f"contains disliked ingredients: {', '.join(disliked)}")

        seasonal = [i.name for i in ingredients if context.season in i.seasons]
        if seasonal:
            breakdown.add("seasonal", weights["seasonal"],
                          f"uses ingredients in season ({context.season}): {', '.join(seasonal)}")

        regional = [i.name for i in ingredients if context.region in i.regions]
        if regional:
            breakdown.add("regional", weights["regional"],
                          f"uses ingredients available in {context.region}")

        for goal in user.goals:
            nutrient = _GOAL_NUTRIENTS.get(goal)
            if nutrient:
                providers = [i.name for i in ingredients if nutrient in i.nutrients]
                if providers:
                    breakdown.add("goal_nutrient", weights["goal_nutrient"],
                                  f"rich in {nutrient} ({', '.join(providers)}) supporting the "
                                  f"{goal.replace('_', ' ')} goal")
            for rule in catalog.rules_for(goal):
                recommended = [name for name in rule.recommends
                               if name in recipe.ingredients or name == recipe.name]
                if recommended:
                    breakdown.add("goal_recommended_food", weights["goal_recommended_food"],
                                  f"contains foods recommended for {goal.replace('_', ' ')}: "
                                  f"{', '.join(recommended)}")

        for condition in user.conditions:
            for rule in catalog.rules_for(condition):
                recommended = [name for name in rule.recommends
                               if name in recipe.ingredients or name == recipe.name]
                if recommended:
                    breakdown.add("condition_recommended_food",
                                  weights["condition_recommended_food"],
                                  f"contains foods recommended for {condition.replace('_', ' ')}: "
                                  f"{', '.join(recommended)}")

        matching_diets = [diet for diet in user.diets if diet in recipe.diets]
        if matching_diets:
            breakdown.add("diet_match", weights["diet_match"] * len(matching_diets),
                          f"fits the user's {', '.join(matching_diets)} diet")

        if user.budget and recipe.cost_level == user.budget:
            breakdown.add("budget_match", weights["budget_match"],
                          f"matches the user's {user.budget} budget")
        elif user.budget == "low" and recipe.cost_level == "low":
            breakdown.add("budget_match", weights["budget_match"], "is a low-cost recipe")

        if context.meal_time and context.meal_time in recipe.meal_types:
            breakdown.add("meal_time_match", weights["meal_time_match"],
                          f"is suitable for {context.meal_time}")

        return breakdown

    def rank(self, recipes: List[RecipeRecord], user: UserProfile, context: SystemContext) -> List[ScoreBreakdown]:
        """Score and sort ``recipes`` best-first (ties broken alphabetically)."""
        scored = [self.score(recipe, user, context) for recipe in recipes]
        return sorted(scored, key=lambda b: (-b.total, b.recipe))
