"""Machine-readable traces of a recommender run.

FEO is a *post-hoc* explanation framework: it does not look inside the
recommender, but trace-based explanations (one of the Table I types) need
a record of the steps the system took.  :class:`RecommendationTrace`
captures those steps so the trace-based generator can replay them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceStep", "RecommendationTrace"]


@dataclass(frozen=True)
class TraceStep:
    """One step of the recommendation pipeline."""

    stage: str               # e.g. "candidate-generation", "constraint-filter", "scoring"
    description: str
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class RecommendationTrace:
    """The ordered list of steps that produced one recommendation list."""

    steps: List[TraceStep] = field(default_factory=list)

    def add(self, stage: str, description: str, **detail: Any) -> TraceStep:
        step = TraceStep(stage=stage, description=description, detail=dict(detail))
        self.steps.append(step)
        return step

    def stages(self) -> List[str]:
        return [step.stage for step in self.steps]

    def for_stage(self, stage: str) -> List[TraceStep]:
        return [step for step in self.steps if step.stage == stage]

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def as_sentences(self) -> List[str]:
        """Human-readable rendering used by trace-based explanations."""
        return [f"[{step.stage}] {step.description}" for step in self.steps]
