"""An indexed, in-memory, dictionary-encoded RDF graph.

The :class:`Graph` is the project's storage engine.  Internally every
triple is a compact ``(int, int, int)`` tuple of term IDs assigned by a
shared :class:`~repro.rdf.dictionary.TermDictionary`; the SPO/POS/OSP
permutation indexes, the per-predicate cardinality counters, the change
journals and the O(1) content fingerprint all operate on those integer
tuples.  The public API stays term-level — :meth:`add` encodes at the
boundary and :meth:`triples` decodes on the way out — so callers keep
seeing :class:`~repro.rdf.terms.Term` objects, while the OWL reasoner and
the SPARQL planner ride the encoded fast path (:meth:`triples_ids`,
:meth:`add_encoded`, the raw index attributes) and only decode for
presentation.

One dictionary serves a whole graph family: :meth:`copy` shares it with
the clone, so scenario copies and cached closures reuse the base graph's
interned terms and encoded triples flow between family members without
re-encoding.

Mutations can be observed through a :class:`ChangeJournal`
(:meth:`Graph.start_journal`): callers capture "what was added since the
closure was built" and hand that delta to the incremental reasoning path
(:meth:`repro.owl.reasoner.Reasoner.extend`) instead of re-materialising.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from .dictionary import TermDictionary
from .namespace import RDF, NamespaceManager
from .terms import BNode, IRI, Literal, Term

__all__ = ["Triple", "EncodedTriple", "Graph", "ChangeJournal", "ReadOnlyGraphUnion"]

Node = Union[IRI, BNode, Literal]
Triple = Tuple[Node, IRI, Node]
TriplePattern = Tuple[Optional[Node], Optional[IRI], Optional[Node]]
#: The internal storage form: three term IDs from the graph's dictionary.
EncodedTriple = Tuple[int, int, int]
EncodedPattern = Tuple[Optional[int], Optional[int], Optional[int]]


def _check_term(term: Any, position: str, allow_literal: bool) -> Node:
    if isinstance(term, Literal):
        if not allow_literal:
            raise TypeError(f"Literals are not allowed in the {position} position")
        return term
    if isinstance(term, (IRI, BNode)):
        return term
    raise TypeError(
        f"Invalid RDF term in {position} position: {term!r} (type {type(term).__name__})"
    )


class ChangeJournal:
    """The net triple changes made to one :class:`Graph` since a point in time.

    Obtained from :meth:`Graph.start_journal`.  Only *effective* mutations
    are recorded (adding a triple the graph already holds, or removing an
    absent one, is invisible), and an add followed by a remove of the same
    triple cancels out — :meth:`added` and :meth:`removed` always describe
    the net difference from the graph state at journal start, in first-change
    order.  Recording happens in the encoded domain (ID tuples), so journals
    add no decode cost to mutations; the deltas are decoded once, when read.

    Usable as a context manager::

        with graph.start_journal() as journal:
            graph.add(...)
        delta = journal.added()
    """

    def __init__(self, graph: "Graph") -> None:
        self._graph: Optional["Graph"] = graph
        self._dict: TermDictionary = graph._dict
        self._added: Dict[EncodedTriple, None] = {}
        self._removed: Dict[EncodedTriple, None] = {}

    # Called by Graph on effective mutations only.
    def _record_add(self, triple: EncodedTriple) -> None:
        if triple in self._removed:
            del self._removed[triple]
        else:
            self._added[triple] = None

    def _record_remove(self, triple: EncodedTriple) -> None:
        if triple in self._added:
            del self._added[triple]
        else:
            self._removed[triple] = None

    # ------------------------------------------------------------------
    def added(self) -> Tuple[Triple, ...]:
        """Triples present now but not at journal start."""
        terms = self._dict.terms
        return tuple((terms[s], terms[p], terms[o]) for s, p, o in self._added)

    def removed(self) -> Tuple[Triple, ...]:
        """Triples present at journal start but not now."""
        terms = self._dict.terms
        return tuple((terms[s], terms[p], terms[o]) for s, p, o in self._removed)

    @property
    def clean(self) -> bool:
        """``True`` when the graph is (net) unchanged since journal start."""
        return not self._added and not self._removed

    @property
    def active(self) -> bool:
        """``True`` until :meth:`close` detaches the journal from its graph."""
        return self._graph is not None

    def close(self) -> None:
        """Stop recording; the captured delta stays readable."""
        if self._graph is not None:
            self._graph._journals.remove(self)
            self._graph = None

    def __enter__(self) -> "ChangeJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


#: Sentinel distinguishing "key absent from the COW map" (fully private)
#: from ``None`` (entry dict shared) in :meth:`Graph._index_add`.
_COW_PRIVATE: object = object()


class Graph:
    """A set of RDF triples with SPO/POS/OSP indexes and namespace bindings.

    Storage is dictionary-encoded: ``_triples`` holds ``(int, int, int)``
    ID tuples and the three permutation indexes are keyed by IDs.  The
    encoded surface (``triples_ids`` / ``add_encoded`` / ``_spo`` /
    ``_pos`` / ``_osp`` and :attr:`dictionary`) is read by the reasoner
    and the query planner; everything else goes through the term-level
    methods, which encode/decode at the boundary.
    """

    def __init__(self, identifier: Optional[IRI] = None, bind_defaults: bool = True) -> None:
        self.identifier = identifier or IRI(f"urn:graph:{id(self)}")
        self.namespace_manager = NamespaceManager(bind_defaults=bind_defaults)
        self._dict = TermDictionary()
        self._triples: Set[EncodedTriple] = set()
        self._spo: Dict[int, Dict[int, Set[int]]] = {}
        self._pos: Dict[int, Dict[int, Set[int]]] = {}
        self._osp: Dict[int, Dict[int, Set[int]]] = {}
        # Two-level copy-on-write bookkeeping per index.  After a copy()
        # both family members share every inner entry: ``cow[key] is
        # None`` means the entry *dict* (and every leaf set under it) is
        # shared; ``cow[key] == {mids...}`` means the dict is private but
        # those mids' leaf sets are still shared; a key absent from the
        # dict is fully private.  Un-sharing is lazy at both levels, so a
        # write costs one shallow dict copy plus the touched leaf set —
        # never a deep copy of a whole entry (the old behaviour, which
        # made the first write to a popular predicate's POS entry copy
        # thousands of leaf sets).
        self._spo_cow: Dict[int, Optional[Set[int]]] = {}
        self._pos_cow: Dict[int, Optional[Set[int]]] = {}
        self._osp_cow: Dict[int, Optional[Set[int]]] = {}
        # Total triple count per predicate, maintained incrementally so the
        # query planner's cardinality estimates stay O(1).
        self._pred_counts: Dict[int, int] = {}
        # Order-independent content hash, maintained incrementally so that
        # fingerprint() is O(1).  XOR is its own inverse, so add/remove of
        # the same triple cancel out exactly.  Each triple contributes a
        # hash derived from its terms' content hashes (cached per ID in the
        # dictionary), so equal triple sets fingerprint equally even across
        # graph families with different ID assignments.
        self._content_hash: int = 0
        self._journals: List[ChangeJournal] = []

    # ------------------------------------------------------------------
    # The encoded surface
    # ------------------------------------------------------------------
    @property
    def dictionary(self) -> TermDictionary:
        """The term dictionary shared by this graph's family."""
        return self._dict

    def encode_triple(self, triple: Triple) -> Optional[EncodedTriple]:
        """The encoded form of a term triple, or ``None`` if any term is
        unknown to the dictionary (in which case the graph cannot hold it)."""
        lookup = self._dict.ids.get
        s = lookup(triple[0])
        if s is None:
            return None
        p = lookup(triple[1])
        if p is None:
            return None
        o = lookup(triple[2])
        if o is None:
            return None
        return (s, p, o)

    def decode_triple(self, triple: EncodedTriple) -> Triple:
        """The term form of an encoded triple."""
        terms = self._dict.terms
        return (terms[triple[0]], terms[triple[1]], terms[triple[2]])

    def add_encoded(self, triple: EncodedTriple) -> bool:
        """Add one already-encoded triple; ``True`` if it was genuinely new.

        The IDs must come from this graph's dictionary.  No term
        validation happens here — this is the internal fast path the
        reasoner's rule engine feeds derived triples through.
        """
        if triple in self._triples:
            return False
        s, p, o = triple
        self._triples.add(triple)
        hashes = self._dict.hashes
        self._content_hash ^= hash((hashes[s], hashes[p], hashes[o]))
        self._pred_counts[p] = self._pred_counts.get(p, 0) + 1
        self._index_add(self._spo, self._spo_cow, s, p, o)
        self._index_add(self._pos, self._pos_cow, p, o, s)
        self._index_add(self._osp, self._osp_cow, o, s, p)
        if self._journals:
            for journal in self._journals:
                journal._record_add(triple)
        return True

    @staticmethod
    def _index_add(index: Dict[int, Dict[int, Set[int]]],
                   cow: Dict[int, Optional[Set[int]]],
                   key: int, mid: int, leaf: int) -> None:
        """Insert into one permutation index, un-sharing COW state first.

        Un-sharing is lazy at both levels: the first write to a shared
        key shallow-copies its entry dict (leaf sets stay shared, tracked
        in ``cow[key]``), and each leaf set is copied only when *it* is
        first written.  A write is therefore O(buckets) once plus the
        touched bucket — never the sum of all buckets.
        """
        entry = index.get(key)
        if entry is None:
            index[key] = {mid: {leaf}}
            return
        shared = cow.get(key, _COW_PRIVATE)
        if shared is not _COW_PRIVATE:
            if shared is None:  # the entry dict itself is still shared
                entry = dict(entry)
                index[key] = entry
                shared = cow[key] = set(entry)
            leaves = entry.get(mid)
            if leaves is None:
                entry[mid] = {leaf}
            elif mid in shared:
                leaves = set(leaves)
                leaves.add(leaf)
                entry[mid] = leaves
                shared.discard(mid)
                if not shared:
                    del cow[key]
            else:
                leaves.add(leaf)
            return
        leaves = entry.get(mid)
        if leaves is None:
            entry[mid] = {leaf}
        else:
            leaves.add(leaf)

    def add_encoded_many(self, batch: Iterable[EncodedTriple],
                         out: Optional[List[EncodedTriple]] = None) -> int:
        """Add a batch of encoded triples with one set of bound locals.

        Returns the number of genuinely new triples; ``out`` (if given)
        collects them in order — the shape the reasoner's semi-naive
        rounds need for the next delta.
        """
        triples = self._triples
        spo, pos, osp = self._spo, self._pos, self._osp
        spo_cow, pos_cow, osp_cow = self._spo_cow, self._pos_cow, self._osp_cow
        index_add = self._index_add
        pred_counts = self._pred_counts
        hashes = self._dict.hashes
        journals = self._journals
        content_hash = self._content_hash
        added = 0
        append = out.append if out is not None else None
        for triple in batch:
            if triple in triples:
                continue
            s, p, o = triple
            triples.add(triple)
            content_hash ^= hash((hashes[s], hashes[p], hashes[o]))
            pred_counts[p] = pred_counts.get(p, 0) + 1
            index_add(spo, spo_cow, s, p, o)
            index_add(pos, pos_cow, p, o, s)
            index_add(osp, osp_cow, o, s, p)
            if journals:
                for journal in journals:
                    journal._record_add(triple)
            if append is not None:
                append(triple)
            added += 1
        self._content_hash = content_hash
        return added

    def triples_ids(self, pattern: EncodedPattern = (None, None, None)) -> Iterator[EncodedTriple]:
        """Yield encoded triples matching an encoded pattern (``None`` = wildcard)."""
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            if (s, p, o) in self._triples:
                yield (s, p, o)
            return
        if s is not None:
            by_pred = self._spo.get(s)
            if not by_pred:
                return
            if p is not None:
                for obj in by_pred.get(p, ()):
                    if o is None or obj == o:
                        yield (s, p, obj)
            else:
                for pred, objects in by_pred.items():
                    for obj in objects:
                        if o is None or obj == o:
                            yield (s, pred, obj)
            return
        if p is not None:
            by_obj = self._pos.get(p)
            if not by_obj:
                return
            if o is not None:
                for subj in by_obj.get(o, ()):
                    yield (subj, p, o)
            else:
                for obj, subjects in by_obj.items():
                    for subj in subjects:
                        yield (subj, p, obj)
            return
        if o is not None:
            by_subj = self._osp.get(o)
            if not by_subj:
                return
            for subj, preds in by_subj.items():
                for pred in preds:
                    yield (subj, pred, o)
            return
        yield from self._triples

    def _encode_pattern(self, pattern: TriplePattern) -> Optional[EncodedPattern]:
        """Encode a term pattern; ``None`` if a bound term is unknown
        (no triple can match)."""
        lookup = self._dict.ids.get
        s, p, o = pattern
        if s is not None:
            s = lookup(s)
            if s is None:
                return None
        if p is not None:
            p = lookup(p)
            if p is None:
                return None
        if o is not None:
            o = lookup(o)
            if o is None:
                return None
        return (s, p, o)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> "Graph":
        """Add one ``(subject, predicate, object)`` triple."""
        s, p, o = triple
        s = _check_term(s, "subject", allow_literal=False)
        p = _check_term(p, "predicate", allow_literal=False)
        o = _check_term(o, "object", allow_literal=True)
        if not isinstance(p, IRI):
            raise TypeError("Predicates must be IRIs")
        intern = self._dict.intern
        self.add_encoded((intern(s), intern(p), intern(o)))
        return self

    def addN(self, triples: Iterable[Triple]) -> "Graph":
        """Add many triples at once (bulk-load fast path).

        Encoding happens in one pass with locally-bound lookups; when the
        source is a same-family :class:`Graph` the already-encoded triples
        are inserted directly, skipping validation and re-encoding, and
        when no journal is attached the per-triple journal bookkeeping is
        skipped entirely.
        """
        if isinstance(triples, Graph) and triples._dict is self._dict:
            self.add_encoded_many(triples._triples)
            return self
        intern = self._dict.intern
        if not self._journals:
            # Journal-free bulk path: encode and insert without the
            # per-triple journal checks (and per-call overhead) of add().
            self.add_encoded_many(
                (intern(_check_term(s, "subject", allow_literal=False)),
                 intern(_check_predicate(p)),
                 intern(_check_term(o, "object", allow_literal=True)))
                for s, p, o in triples
            )
            return self
        for triple in triples:
            self.add(triple)
        return self

    def remove(self, pattern: TriplePattern) -> "Graph":
        """Remove every triple matching ``pattern`` (``None`` is a wildcard)."""
        encoded = self._encode_pattern(pattern)
        if encoded is None:
            return self
        for triple in list(self.triples_ids(encoded)):
            self._discard(triple)
        return self

    def _discard(self, triple: EncodedTriple) -> None:
        if triple not in self._triples:
            return
        s, p, o = triple
        self._triples.discard(triple)
        hashes = self._dict.hashes
        self._content_hash ^= hash((hashes[s], hashes[p], hashes[o]))
        remaining = self._pred_counts.get(p, 0) - 1
        if remaining > 0:
            self._pred_counts[p] = remaining
        else:
            self._pred_counts.pop(p, None)
        for index, cow, key, mid in ((self._spo, self._spo_cow, s, p),
                                     (self._pos, self._pos_cow, p, o),
                                     (self._osp, self._osp_cow, o, s)):
            shared = cow.get(key, _COW_PRIVATE)
            if shared is _COW_PRIVATE:
                continue
            if shared is None:  # un-share the entry dict, keep leaves shared
                entry = dict(index[key])
                index[key] = entry
                shared = cow[key] = set(entry)
            if mid in shared:
                index[key][mid] = set(index[key][mid])
                shared.discard(mid)
            if not shared:
                del cow[key]
        self._spo[s][p].discard(o)
        if not self._spo[s][p]:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
                self._spo_cow.pop(s, None)
        self._pos[p][o].discard(s)
        if not self._pos[p][o]:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
                self._pos_cow.pop(p, None)
        self._osp[o][s].discard(p)
        if not self._osp[o][s]:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
                self._osp_cow.pop(o, None)
        if self._journals:
            for journal in self._journals:
                journal._record_remove(triple)

    def set(self, triple: Triple) -> "Graph":
        """Replace any existing ``(s, p, *)`` triples with the given one."""
        s, p, _ = triple
        self.remove((s, p, None))
        return self.add(triple)

    def clear(self) -> None:
        """Remove every triple (namespace bindings and dictionary are kept)."""
        if self._journals:
            for triple in self._triples:
                for journal in self._journals:
                    journal._record_remove(triple)
        self._triples.clear()
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._spo_cow.clear()
        self._pos_cow.clear()
        self._osp_cow.clear()
        self._pred_counts.clear()
        self._content_hash = 0

    def start_journal(self) -> ChangeJournal:
        """Attach and return a :class:`ChangeJournal` recording net mutations.

        Several journals can be active at once; :meth:`copy` does not carry
        journals over to the clone.  Close the journal when done so the
        graph stops paying the per-mutation recording cost.
        """
        journal = ChangeJournal(self)
        self._journals.append(journal)
        return journal

    def fingerprint(self) -> Tuple[int, int]:
        """A cheap ``(size, content-hash)`` key identifying the graph's contents.

        The hash is order-independent and maintained incrementally on every
        mutation, so this call is O(1).  Each triple contributes a hash built
        from its terms' content hashes (cached in the dictionary), not from
        its ID assignment, so two graphs with equal triple sets always
        produce the same fingerprint within one process — even when they
        belong to different graph families; any mutation changes it, which
        is what the materialisation cache in :mod:`repro.owl.closure` uses
        for invalidation.  Fingerprints are not stable across processes
        (Python string hashing is salted).
        """
        return (len(self._triples), self._content_hash)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        """Yield every triple matching the pattern; ``None`` acts as a wildcard."""
        encoded = self._encode_pattern(pattern)
        if encoded is None:
            return
        terms = self._dict.terms
        for s, p, o in self.triples_ids(encoded):
            yield (terms[s], terms[p], terms[o])

    def cardinality(self, pattern: TriplePattern = (None, None, None)) -> int:
        """The exact number of triples matching ``pattern``, without scanning.

        Every answer comes from the permutation indexes (dictionary and set
        sizes) or the per-predicate counters, so the cost is O(1) for the
        common shapes and at worst O(distinct predicates of one node) for
        ``(s, ?, ?)`` / ``(?, ?, o)``.  This is the statistic the SPARQL
        query planner (:mod:`repro.sparql.planner`) uses to order joins.
        """
        encoded = self._encode_pattern(pattern)
        if encoded is None:
            return 0
        s, p, o = encoded
        if s is None and p is None and o is None:
            return len(self._triples)
        if s is not None and p is not None and o is not None:
            return 1 if (s, p, o) in self._triples else 0
        if s is not None:
            by_pred = self._spo.get(s)
            if not by_pred:
                return 0
            if p is not None:
                return len(by_pred.get(p, ()))
            if o is not None:
                by_subj = self._osp.get(o)
                return len(by_subj.get(s, ())) if by_subj else 0
            return sum(len(objs) for objs in by_pred.values())
        if p is not None:
            if o is not None:
                by_obj = self._pos.get(p)
                return len(by_obj.get(o, ())) if by_obj else 0
            return self._pred_counts.get(p, 0)
        by_subj = self._osp.get(o)
        if not by_subj:
            return 0
        return sum(len(preds) for preds in by_subj.values())

    def index_stats(self) -> Dict[str, int]:
        """O(1) whole-graph statistics: distinct subjects/predicates/objects.

        Used by the query planner to approximate how much a bound join
        variable shrinks a pattern's result.
        """
        return {
            "triples": len(self._triples),
            "subjects": len(self._spo),
            "predicates": len(self._pos),
            "objects": len(self._osp),
        }

    def predicate_stats(self, predicate: IRI) -> Dict[str, int]:
        """Per-predicate statistics: total triples and distinct objects."""
        pid = self._dict.ids.get(predicate)
        if pid is None:
            return {"count": 0, "distinct_objects": 0}
        return {
            "count": self._pred_counts.get(pid, 0),
            "distinct_objects": len(self._pos.get(pid, ())),
        }

    def store_stats(self) -> Dict[str, int]:
        """Storage-engine counters: dictionary interning plus triple count."""
        stats = self._dict.stats()
        stats["encoded_triples"] = len(self._triples)
        return stats

    def __contains__(self, pattern: TriplePattern) -> bool:
        encoded = self._encode_pattern(pattern)
        if encoded is None:
            return False
        return next(self.triples_ids(encoded), None) is not None

    def __iter__(self) -> Iterator[Triple]:
        terms = self._dict.terms
        return ((terms[s], terms[p], terms[o]) for s, p, o in self._triples)

    def __len__(self) -> int:
        return len(self._triples)

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def subjects(self, predicate: Optional[IRI] = None, obj: Optional[Node] = None) -> Iterator[Node]:
        """Yield distinct subjects of triples matching ``(?, predicate, obj)``."""
        encoded = self._encode_pattern((None, predicate, obj))
        if encoded is None:
            return
        terms = self._dict.terms
        seen: Set[int] = set()
        for s, _, _ in self.triples_ids(encoded):
            if s not in seen:
                seen.add(s)
                yield terms[s]

    def predicates(self, subject: Optional[Node] = None, obj: Optional[Node] = None) -> Iterator[IRI]:
        """Yield distinct predicates of triples matching ``(subject, ?, obj)``."""
        encoded = self._encode_pattern((subject, None, obj))
        if encoded is None:
            return
        terms = self._dict.terms
        seen: Set[int] = set()
        for _, p, _ in self.triples_ids(encoded):
            if p not in seen:
                seen.add(p)
                yield terms[p]

    def objects(self, subject: Optional[Node] = None, predicate: Optional[IRI] = None) -> Iterator[Node]:
        """Yield distinct objects of triples matching ``(subject, predicate, ?)``."""
        encoded = self._encode_pattern((subject, predicate, None))
        if encoded is None:
            return
        terms = self._dict.terms
        seen: Set[int] = set()
        for _, _, o in self.triples_ids(encoded):
            if o not in seen:
                seen.add(o)
                yield terms[o]

    def subject_objects(self, predicate: Optional[IRI] = None) -> Iterator[Tuple[Node, Node]]:
        """Yield ``(subject, object)`` pairs for every triple with ``predicate``."""
        for s, _, o in self.triples((None, predicate, None)):
            yield s, o

    def subject_predicates(self, obj: Optional[Node] = None) -> Iterator[Tuple[Node, IRI]]:
        """Yield ``(subject, predicate)`` pairs for every triple with object ``obj``."""
        for s, p, _ in self.triples((None, None, obj)):
            yield s, p

    def predicate_objects(self, subject: Optional[Node] = None) -> Iterator[Tuple[IRI, Node]]:
        """Yield ``(predicate, object)`` pairs for every triple with ``subject``."""
        for _, p, o in self.triples((subject, None, None)):
            yield p, o

    def value(
        self,
        subject: Optional[Node] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[Node] = None,
        default: Any = None,
    ) -> Any:
        """Return one term completing the pattern, or ``default``."""
        provided = sum(term is not None for term in (subject, predicate, obj))
        if provided != 2:
            raise ValueError("Graph.value requires exactly two bound positions")
        for s, p, o in self.triples((subject, predicate, obj)):
            if subject is None:
                return s
            if predicate is None:
                return p
            return o
        return default

    def types_of(self, node: Node) -> Set[IRI]:
        """Return all ``rdf:type`` values of ``node``."""
        return {o for o in self.objects(node, IRI(RDF.type)) if isinstance(o, IRI)}

    def instances_of(self, cls: IRI) -> Set[Node]:
        """Return all individuals declared with ``rdf:type cls``."""
        return set(self.subjects(IRI(RDF.type), cls))

    # ------------------------------------------------------------------
    # Namespaces
    # ------------------------------------------------------------------
    def bind(self, prefix: str, namespace: str, replace: bool = True) -> None:
        """Bind ``prefix`` to ``namespace`` for serialisation and qnames."""
        self.namespace_manager.bind(prefix, namespace, replace=replace)

    def namespaces(self) -> Iterator[Tuple[str, str]]:
        """Iterate over the bound ``(prefix, namespace)`` pairs."""
        return self.namespace_manager.namespaces()

    def qname(self, iri: IRI) -> str:
        """Compact ``iri`` to ``prefix:local`` form, or its N3 form if unbound."""
        compact = self.namespace_manager.qname(iri)
        return compact if compact is not None else iri.n3()

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return an independent graph with the same triples and namespaces.

        The clone **shares this graph's term dictionary** (the dictionary
        is append-only, so sharing is safe) and the permutation indexes
        are copied **copy-on-write**: only the outer dictionaries are
        duplicated here, the per-key entries stay shared until one side
        mutates them (see :meth:`_index_add`).  The triple set and the
        predicate counters are still copied eagerly, so a copy costs one
        flat set copy plus O(index keys) — the expensive part of the old
        structural copy, the per-entry nested dict/set duplication, is
        deferred to the entries a mutation actually touches.  Journals
        are not carried over to the clone.
        """
        clone = Graph(identifier=self.identifier)
        clone.namespace_manager = self.namespace_manager.copy()
        clone._dict = self._dict
        clone._triples = set(self._triples)
        clone._content_hash = self._content_hash
        clone._spo = dict(self._spo)
        clone._pos = dict(self._pos)
        clone._osp = dict(self._osp)
        # Every inner entry (dict and leaf sets) is now shared between
        # the two graphs: mark everything dict-shared (value ``None``) on
        # both sides so each un-shares lazily before its first write.
        # Any finer-grained state from an earlier copy is superseded —
        # over-marking as shared is always safe, it only costs the next
        # write a shallow copy.
        clone._spo_cow = dict.fromkeys(clone._spo)
        clone._pos_cow = dict.fromkeys(clone._pos)
        clone._osp_cow = dict.fromkeys(clone._osp)
        self._spo_cow = dict.fromkeys(self._spo)
        self._pos_cow = dict.fromkeys(self._pos)
        self._osp_cow = dict.fromkeys(self._osp)
        clone._pred_counts = dict(self._pred_counts)
        return clone

    def _encoded_view_of(self, other: "Graph") -> Set[EncodedTriple]:
        """``other``'s triples in *this* graph's ID space.

        Free for same-family graphs; cross-family triples are translated
        through the term dictionary (terms unknown to this family cannot
        be held by this graph, so they are simply absent from the view).
        """
        if other._dict is self._dict:
            return other._triples
        lookup = self._dict.ids.get
        view: Set[EncodedTriple] = set()
        terms = other._dict.terms
        for s, p, o in other._triples:
            es = lookup(terms[s])
            if es is None:
                continue
            ep = lookup(terms[p])
            if ep is None:
                continue
            eo = lookup(terms[o])
            if eo is None:
                continue
            view.add((es, ep, eo))
        return view

    def __add__(self, other: "Graph") -> "Graph":
        result = self.copy()
        result.addN(other)
        return result

    def __iadd__(self, other: Iterable[Triple]) -> "Graph":
        self.addN(other)
        return self

    def __sub__(self, other: "Graph") -> "Graph":
        result = Graph()
        result.namespace_manager = self.namespace_manager.copy()
        result._dict = self._dict
        if isinstance(other, Graph):
            other_ids = self._encoded_view_of(other)
            result.add_encoded_many(t for t in self._triples if t not in other_ids)
        else:
            other_set = set(other)
            result.addN(t for t in self if t not in other_set)
        return result

    def __and__(self, other: "Graph") -> "Graph":
        result = Graph()
        result.namespace_manager = self.namespace_manager.copy()
        result._dict = self._dict
        if isinstance(other, Graph):
            other_ids = self._encoded_view_of(other)
            result.add_encoded_many(t for t in self._triples if t in other_ids)
        else:
            other_set = set(other)
            result.addN(t for t in self if t in other_set)
        return result

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Graph):
            if other._dict is self._dict:
                return self._triples == other._triples
            if len(self._triples) != len(other._triples):
                return False
            return self._triples == self._encoded_view_of(other)
        return NotImplemented

    def __hash__(self) -> int:  # identity hash: graphs are mutable containers
        return id(self)

    # ------------------------------------------------------------------
    # Serialisation entry points (implemented in the serializer modules)
    # ------------------------------------------------------------------
    def serialize(self, format: str = "turtle") -> str:
        """Serialise the graph to a string (``turtle`` or ``ntriples``)."""
        from . import ntriples, turtle

        if format in ("turtle", "ttl"):
            return turtle.serialize(self)
        if format in ("ntriples", "nt"):
            return ntriples.serialize(self)
        raise ValueError(f"Unsupported serialisation format: {format!r}")

    def parse(self, data: str, format: str = "turtle") -> "Graph":
        """Parse serialised RDF into this graph."""
        from . import ntriples, turtle

        if format in ("turtle", "ttl"):
            turtle.parse(data, graph=self)
        elif format in ("ntriples", "nt"):
            ntriples.parse(data, graph=self)
        else:
            raise ValueError(f"Unsupported parse format: {format!r}")
        return self

    def query(self, query_text: str, initBindings: Optional[Dict[str, Node]] = None):
        """Evaluate a SPARQL query against this graph.

        Returns a :class:`repro.sparql.results.Result`.
        """
        from ..sparql import query as sparql_query

        return sparql_query(self, query_text, init_bindings=initBindings)

    def to_snapshot(self, path, closures=()) -> Dict[str, int]:
        """Write this graph (and optional closure entries) to a binary
        snapshot file — see :mod:`repro.storage.snapshot`.

        Returns the save summary (term/triple/closure counts, file size).
        """
        from ..storage.snapshot import save_snapshot

        return save_snapshot(path, self, closures=closures)

    @classmethod
    def from_snapshot(cls, path) -> "Graph":
        """Rebuild a graph from a snapshot file written by :meth:`to_snapshot`.

        Raises :class:`repro.storage.snapshot.SnapshotError` for invalid or
        corrupted files; a partial graph is never returned.  Use
        :func:`repro.storage.snapshot.load_snapshot` directly to also
        recover the persisted closure entries.
        """
        from ..storage.snapshot import load_snapshot

        return load_snapshot(path).graph

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def all_nodes(self) -> Set[Node]:
        """Every subject and object appearing in the graph."""
        ids: Set[int] = set()
        for s, _, o in self._triples:
            ids.add(s)
            ids.add(o)
        terms = self._dict.terms
        return {terms[i] for i in ids}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Graph identifier={self.identifier} triples={len(self)}>"


def _check_predicate(p: Any) -> IRI:
    if isinstance(p, IRI):
        return p
    _check_term(p, "predicate", allow_literal=False)
    raise TypeError("Predicates must be IRIs")


class ReadOnlyGraphUnion:
    """A lightweight read-only view over several graphs.

    Used when querying a base ontology graph together with an inferred
    graph without materialising the union.  The view is term-level: its
    members may belong to different graph families (different term
    dictionaries), so matching and deduplication happen on decoded terms.
    """

    def __init__(self, *graphs: Graph) -> None:
        if not graphs:
            raise ValueError("ReadOnlyGraphUnion requires at least one graph")
        self.graphs: List[Graph] = list(graphs)
        self.namespace_manager = graphs[0].namespace_manager

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        seen: Set[Triple] = set()
        for graph in self.graphs:
            for triple in graph.triples(pattern):
                if triple not in seen:
                    seen.add(triple)
                    yield triple

    def __contains__(self, pattern: TriplePattern) -> bool:
        return any(pattern in graph for graph in self.graphs)

    def cardinality(self, pattern: TriplePattern = (None, None, None)) -> int:
        """Upper-bound cardinality: the member sums (overlap counted twice).

        An over-estimate is fine for the query planner's join ordering, and
        summing keeps the call as cheap as the members' O(1) lookups.
        """
        return sum(graph.cardinality(pattern) for graph in self.graphs)

    def index_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {"triples": 0, "subjects": 0, "predicates": 0, "objects": 0}
        for graph in self.graphs:
            for key, value in graph.index_stats().items():
                totals[key] += value
        return totals

    def predicate_stats(self, predicate: IRI) -> Dict[str, int]:
        totals: Dict[str, int] = {"count": 0, "distinct_objects": 0}
        for graph in self.graphs:
            for key, value in graph.predicate_stats(predicate).items():
                totals[key] += value
        return totals

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __len__(self) -> int:
        return len(set().union(*(set(g) for g in self.graphs)))

    def objects(self, subject=None, predicate=None):
        seen: Set[Node] = set()
        for _, _, o in self.triples((subject, predicate, None)):
            if o not in seen:
                seen.add(o)
                yield o

    def subjects(self, predicate=None, obj=None):
        seen: Set[Node] = set()
        for s, _, _ in self.triples((None, predicate, obj)):
            if s not in seen:
                seen.add(s)
                yield s

    def value(self, subject=None, predicate=None, obj=None, default=None):
        for graph in self.graphs:
            result = graph.value(subject, predicate, obj, default=None)
            if result is not None:
                return result
        return default

    def query(self, query_text: str, initBindings: Optional[Dict[str, Node]] = None):
        from ..sparql import query as sparql_query

        return sparql_query(self, query_text, init_bindings=initBindings)
