"""An indexed, in-memory RDF graph.

The :class:`Graph` keeps three permutation indexes (SPO, POS, OSP) so that
any triple pattern with at least one bound position is answered by a
dictionary lookup rather than a scan.  This is the store that the OWL
reasoner materialises into and the SPARQL engine evaluates against, so
pattern-matching performance matters for the scaling benchmarks.

Mutations can be observed through a :class:`ChangeJournal`
(:meth:`Graph.start_journal`): callers capture "what was added since the
closure was built" and hand that delta to the incremental reasoning path
(:meth:`repro.owl.reasoner.Reasoner.extend`) instead of re-materialising.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from .namespace import RDF, NamespaceManager
from .terms import BNode, IRI, Literal, Term

__all__ = ["Triple", "Graph", "ChangeJournal", "ReadOnlyGraphUnion"]

Node = Union[IRI, BNode, Literal]
Triple = Tuple[Node, IRI, Node]
TriplePattern = Tuple[Optional[Node], Optional[IRI], Optional[Node]]


def _check_term(term: Any, position: str, allow_literal: bool) -> Node:
    if isinstance(term, Literal):
        if not allow_literal:
            raise TypeError(f"Literals are not allowed in the {position} position")
        return term
    if isinstance(term, (IRI, BNode)):
        return term
    raise TypeError(
        f"Invalid RDF term in {position} position: {term!r} (type {type(term).__name__})"
    )


class ChangeJournal:
    """The net triple changes made to one :class:`Graph` since a point in time.

    Obtained from :meth:`Graph.start_journal`.  Only *effective* mutations
    are recorded (adding a triple the graph already holds, or removing an
    absent one, is invisible), and an add followed by a remove of the same
    triple cancels out — :meth:`added` and :meth:`removed` always describe
    the net difference from the graph state at journal start, in first-change
    order.  Journals are cheap; the graph pays one list walk per effective
    mutation only while at least one journal is attached.

    Usable as a context manager::

        with graph.start_journal() as journal:
            graph.add(...)
        delta = journal.added()
    """

    def __init__(self, graph: "Graph") -> None:
        self._graph: Optional["Graph"] = graph
        self._added: Dict[Triple, None] = {}
        self._removed: Dict[Triple, None] = {}

    # Called by Graph on effective mutations only.
    def _record_add(self, triple: Triple) -> None:
        if triple in self._removed:
            del self._removed[triple]
        else:
            self._added[triple] = None

    def _record_remove(self, triple: Triple) -> None:
        if triple in self._added:
            del self._added[triple]
        else:
            self._removed[triple] = None

    # ------------------------------------------------------------------
    def added(self) -> Tuple[Triple, ...]:
        """Triples present now but not at journal start."""
        return tuple(self._added)

    def removed(self) -> Tuple[Triple, ...]:
        """Triples present at journal start but not now."""
        return tuple(self._removed)

    @property
    def clean(self) -> bool:
        """``True`` when the graph is (net) unchanged since journal start."""
        return not self._added and not self._removed

    @property
    def active(self) -> bool:
        """``True`` until :meth:`close` detaches the journal from its graph."""
        return self._graph is not None

    def close(self) -> None:
        """Stop recording; the captured delta stays readable."""
        if self._graph is not None:
            self._graph._journals.remove(self)
            self._graph = None

    def __enter__(self) -> "ChangeJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class Graph:
    """A set of RDF triples with SPO/POS/OSP indexes and namespace bindings."""

    def __init__(self, identifier: Optional[IRI] = None, bind_defaults: bool = True) -> None:
        self.identifier = identifier or IRI(f"urn:graph:{id(self)}")
        self.namespace_manager = NamespaceManager(bind_defaults=bind_defaults)
        self._triples: Set[Triple] = set()
        self._spo: Dict[Node, Dict[IRI, Set[Node]]] = {}
        self._pos: Dict[IRI, Dict[Node, Set[Node]]] = {}
        self._osp: Dict[Node, Dict[Node, Set[IRI]]] = {}
        # Total triple count per predicate, maintained incrementally so the
        # query planner's cardinality estimates stay O(1).
        self._pred_counts: Dict[IRI, int] = {}
        # Order-independent content hash, maintained incrementally so that
        # fingerprint() is O(1).  XOR is its own inverse, so add/remove of
        # the same triple cancel out exactly.
        self._content_hash: int = 0
        self._journals: List[ChangeJournal] = []

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> "Graph":
        """Add one ``(subject, predicate, object)`` triple."""
        s, p, o = triple
        s = _check_term(s, "subject", allow_literal=False)
        p = _check_term(p, "predicate", allow_literal=False)
        o = _check_term(o, "object", allow_literal=True)
        if not isinstance(p, IRI):
            raise TypeError("Predicates must be IRIs")
        triple = (s, p, o)
        if triple in self._triples:
            return self
        self._triples.add(triple)
        self._content_hash ^= hash(triple)
        self._pred_counts[p] = self._pred_counts.get(p, 0) + 1
        self._spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        if self._journals:
            for journal in self._journals:
                journal._record_add(triple)
        return self

    def addN(self, triples: Iterable[Triple]) -> "Graph":
        """Add many triples at once."""
        for triple in triples:
            self.add(triple)
        return self

    def remove(self, pattern: TriplePattern) -> "Graph":
        """Remove every triple matching ``pattern`` (``None`` is a wildcard)."""
        for triple in list(self.triples(pattern)):
            self._discard(triple)
        return self

    def _discard(self, triple: Triple) -> None:
        if triple not in self._triples:
            return
        s, p, o = triple
        self._triples.discard(triple)
        self._content_hash ^= hash(triple)
        remaining = self._pred_counts.get(p, 0) - 1
        if remaining > 0:
            self._pred_counts[p] = remaining
        else:
            self._pred_counts.pop(p, None)
        self._spo[s][p].discard(o)
        if not self._spo[s][p]:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        self._pos[p][o].discard(s)
        if not self._pos[p][o]:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        self._osp[o][s].discard(p)
        if not self._osp[o][s]:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        if self._journals:
            for journal in self._journals:
                journal._record_remove(triple)

    def set(self, triple: Triple) -> "Graph":
        """Replace any existing ``(s, p, *)`` triples with the given one."""
        s, p, _ = triple
        self.remove((s, p, None))
        return self.add(triple)

    def clear(self) -> None:
        """Remove every triple (namespace bindings are kept)."""
        if self._journals:
            for triple in self._triples:
                for journal in self._journals:
                    journal._record_remove(triple)
        self._triples.clear()
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._pred_counts.clear()
        self._content_hash = 0

    def start_journal(self) -> ChangeJournal:
        """Attach and return a :class:`ChangeJournal` recording net mutations.

        Several journals can be active at once; :meth:`copy` does not carry
        journals over to the clone.  Close the journal when done so the
        graph stops paying the per-mutation recording cost.
        """
        journal = ChangeJournal(self)
        self._journals.append(journal)
        return journal

    def fingerprint(self) -> Tuple[int, int]:
        """A cheap ``(size, content-hash)`` key identifying the graph's contents.

        The hash is order-independent and maintained incrementally on every
        mutation, so this call is O(1).  Two graphs with equal triple sets
        always produce the same fingerprint within one process; any mutation
        changes it, which is what the materialisation cache in
        :mod:`repro.owl.closure` uses for invalidation.  Fingerprints are not
        stable across processes (Python string hashing is salted).
        """
        return (len(self._triples), self._content_hash)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        """Yield every triple matching the pattern; ``None`` acts as a wildcard."""
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            if (s, p, o) in self._triples:
                yield (s, p, o)
            return
        if s is not None:
            by_pred = self._spo.get(s)
            if not by_pred:
                return
            if p is not None:
                for obj in by_pred.get(p, ()):
                    if o is None or obj == o:
                        yield (s, p, obj)
            else:
                for pred, objects in by_pred.items():
                    for obj in objects:
                        if o is None or obj == o:
                            yield (s, pred, obj)
            return
        if p is not None:
            by_obj = self._pos.get(p)
            if not by_obj:
                return
            if o is not None:
                for subj in by_obj.get(o, ()):
                    yield (subj, p, o)
            else:
                for obj, subjects in by_obj.items():
                    for subj in subjects:
                        yield (subj, p, obj)
            return
        if o is not None:
            by_subj = self._osp.get(o)
            if not by_subj:
                return
            for subj, preds in by_subj.items():
                for pred in preds:
                    yield (subj, pred, o)
            return
        yield from self._triples

    def cardinality(self, pattern: TriplePattern = (None, None, None)) -> int:
        """The exact number of triples matching ``pattern``, without scanning.

        Every answer comes from the permutation indexes (dictionary and set
        sizes) or the per-predicate counters, so the cost is O(1) for the
        common shapes and at worst O(distinct predicates of one node) for
        ``(s, ?, ?)`` / ``(?, ?, o)``.  This is the statistic the SPARQL
        query planner (:mod:`repro.sparql.planner`) uses to order joins.
        """
        s, p, o = pattern
        if s is None and p is None and o is None:
            return len(self._triples)
        if s is not None and p is not None and o is not None:
            return 1 if (s, p, o) in self._triples else 0
        if s is not None:
            by_pred = self._spo.get(s)
            if not by_pred:
                return 0
            if p is not None:
                return len(by_pred.get(p, ()))
            if o is not None:
                by_subj = self._osp.get(o)
                return len(by_subj.get(s, ())) if by_subj else 0
            return sum(len(objs) for objs in by_pred.values())
        if p is not None:
            if o is not None:
                by_obj = self._pos.get(p)
                return len(by_obj.get(o, ())) if by_obj else 0
            return self._pred_counts.get(p, 0)
        by_subj = self._osp.get(o)
        if not by_subj:
            return 0
        return sum(len(preds) for preds in by_subj.values())

    def index_stats(self) -> Dict[str, int]:
        """O(1) whole-graph statistics: distinct subjects/predicates/objects.

        Used by the query planner to approximate how much a bound join
        variable shrinks a pattern's result.
        """
        return {
            "triples": len(self._triples),
            "subjects": len(self._spo),
            "predicates": len(self._pos),
            "objects": len(self._osp),
        }

    def predicate_stats(self, predicate: IRI) -> Dict[str, int]:
        """Per-predicate statistics: total triples and distinct objects."""
        return {
            "count": self._pred_counts.get(predicate, 0),
            "distinct_objects": len(self._pos.get(predicate, ())),
        }

    def __contains__(self, pattern: TriplePattern) -> bool:
        return next(self.triples(pattern), None) is not None

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __len__(self) -> int:
        return len(self._triples)

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def subjects(self, predicate: Optional[IRI] = None, obj: Optional[Node] = None) -> Iterator[Node]:
        """Yield distinct subjects of triples matching ``(?, predicate, obj)``."""
        seen: Set[Node] = set()
        for s, _, _ in self.triples((None, predicate, obj)):
            if s not in seen:
                seen.add(s)
                yield s

    def predicates(self, subject: Optional[Node] = None, obj: Optional[Node] = None) -> Iterator[IRI]:
        """Yield distinct predicates of triples matching ``(subject, ?, obj)``."""
        seen: Set[IRI] = set()
        for _, p, _ in self.triples((subject, None, obj)):
            if p not in seen:
                seen.add(p)
                yield p

    def objects(self, subject: Optional[Node] = None, predicate: Optional[IRI] = None) -> Iterator[Node]:
        """Yield distinct objects of triples matching ``(subject, predicate, ?)``."""
        seen: Set[Node] = set()
        for _, _, o in self.triples((subject, predicate, None)):
            if o not in seen:
                seen.add(o)
                yield o

    def subject_objects(self, predicate: Optional[IRI] = None) -> Iterator[Tuple[Node, Node]]:
        """Yield ``(subject, object)`` pairs for every triple with ``predicate``."""
        for s, _, o in self.triples((None, predicate, None)):
            yield s, o

    def subject_predicates(self, obj: Optional[Node] = None) -> Iterator[Tuple[Node, IRI]]:
        """Yield ``(subject, predicate)`` pairs for every triple with object ``obj``."""
        for s, p, _ in self.triples((None, None, obj)):
            yield s, p

    def predicate_objects(self, subject: Optional[Node] = None) -> Iterator[Tuple[IRI, Node]]:
        """Yield ``(predicate, object)`` pairs for every triple with ``subject``."""
        for _, p, o in self.triples((subject, None, None)):
            yield p, o

    def value(
        self,
        subject: Optional[Node] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[Node] = None,
        default: Any = None,
    ) -> Any:
        """Return one term completing the pattern, or ``default``."""
        provided = sum(term is not None for term in (subject, predicate, obj))
        if provided != 2:
            raise ValueError("Graph.value requires exactly two bound positions")
        for s, p, o in self.triples((subject, predicate, obj)):
            if subject is None:
                return s
            if predicate is None:
                return p
            return o
        return default

    def types_of(self, node: Node) -> Set[IRI]:
        """Return all ``rdf:type`` values of ``node``."""
        return {o for o in self.objects(node, IRI(RDF.type)) if isinstance(o, IRI)}

    def instances_of(self, cls: IRI) -> Set[Node]:
        """Return all individuals declared with ``rdf:type cls``."""
        return set(self.subjects(IRI(RDF.type), cls))

    # ------------------------------------------------------------------
    # Namespaces
    # ------------------------------------------------------------------
    def bind(self, prefix: str, namespace: str, replace: bool = True) -> None:
        """Bind ``prefix`` to ``namespace`` for serialisation and qnames."""
        self.namespace_manager.bind(prefix, namespace, replace=replace)

    def namespaces(self) -> Iterator[Tuple[str, str]]:
        """Iterate over the bound ``(prefix, namespace)`` pairs."""
        return self.namespace_manager.namespaces()

    def qname(self, iri: IRI) -> str:
        """Compact ``iri`` to ``prefix:local`` form, or its N3 form if unbound."""
        compact = self.namespace_manager.qname(iri)
        return compact if compact is not None else iri.n3()

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return an independent graph with the same triples and namespaces.

        The permutation indexes are copied structurally (no per-triple
        validation or re-hashing), so copying is much cheaper than
        re-adding; journals are not carried over to the clone.
        """
        clone = Graph(identifier=self.identifier)
        clone.namespace_manager = self.namespace_manager.copy()
        clone._triples = set(self._triples)
        clone._content_hash = self._content_hash
        clone._spo = {s: {p: set(objs) for p, objs in by_pred.items()}
                      for s, by_pred in self._spo.items()}
        clone._pos = {p: {o: set(subjs) for o, subjs in by_obj.items()}
                      for p, by_obj in self._pos.items()}
        clone._osp = {o: {s: set(preds) for s, preds in by_subj.items()}
                      for o, by_subj in self._osp.items()}
        clone._pred_counts = dict(self._pred_counts)
        return clone

    def __add__(self, other: "Graph") -> "Graph":
        result = self.copy()
        result.addN(other)
        return result

    def __iadd__(self, other: Iterable[Triple]) -> "Graph":
        self.addN(other)
        return self

    def __sub__(self, other: "Graph") -> "Graph":
        result = Graph()
        result.namespace_manager = self.namespace_manager.copy()
        other_set = set(other)
        result.addN(t for t in self._triples if t not in other_set)
        return result

    def __and__(self, other: "Graph") -> "Graph":
        result = Graph()
        result.namespace_manager = self.namespace_manager.copy()
        other_set = set(other)
        result.addN(t for t in self._triples if t in other_set)
        return result

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Graph):
            return self._triples == other._triples
        return NotImplemented

    def __hash__(self) -> int:  # identity hash: graphs are mutable containers
        return id(self)

    # ------------------------------------------------------------------
    # Serialisation entry points (implemented in the serializer modules)
    # ------------------------------------------------------------------
    def serialize(self, format: str = "turtle") -> str:
        """Serialise the graph to a string (``turtle`` or ``ntriples``)."""
        from . import ntriples, turtle

        if format in ("turtle", "ttl"):
            return turtle.serialize(self)
        if format in ("ntriples", "nt"):
            return ntriples.serialize(self)
        raise ValueError(f"Unsupported serialisation format: {format!r}")

    def parse(self, data: str, format: str = "turtle") -> "Graph":
        """Parse serialised RDF into this graph."""
        from . import ntriples, turtle

        if format in ("turtle", "ttl"):
            turtle.parse(data, graph=self)
        elif format in ("ntriples", "nt"):
            ntriples.parse(data, graph=self)
        else:
            raise ValueError(f"Unsupported parse format: {format!r}")
        return self

    def query(self, query_text: str, initBindings: Optional[Dict[str, Node]] = None):
        """Evaluate a SPARQL query against this graph.

        Returns a :class:`repro.sparql.results.Result`.
        """
        from ..sparql import query as sparql_query

        return sparql_query(self, query_text, init_bindings=initBindings)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def all_nodes(self) -> Set[Node]:
        """Every subject and object appearing in the graph."""
        nodes: Set[Node] = set()
        for s, _, o in self._triples:
            nodes.add(s)
            nodes.add(o)
        return nodes

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Graph identifier={self.identifier} triples={len(self)}>"


class ReadOnlyGraphUnion:
    """A lightweight read-only view over several graphs.

    Used when querying a base ontology graph together with an inferred
    graph without materialising the union.
    """

    def __init__(self, *graphs: Graph) -> None:
        if not graphs:
            raise ValueError("ReadOnlyGraphUnion requires at least one graph")
        self.graphs: List[Graph] = list(graphs)
        self.namespace_manager = graphs[0].namespace_manager

    def triples(self, pattern: TriplePattern = (None, None, None)) -> Iterator[Triple]:
        seen: Set[Triple] = set()
        for graph in self.graphs:
            for triple in graph.triples(pattern):
                if triple not in seen:
                    seen.add(triple)
                    yield triple

    def __contains__(self, pattern: TriplePattern) -> bool:
        return any(pattern in graph for graph in self.graphs)

    def cardinality(self, pattern: TriplePattern = (None, None, None)) -> int:
        """Upper-bound cardinality: the member sums (overlap counted twice).

        An over-estimate is fine for the query planner's join ordering, and
        summing keeps the call as cheap as the members' O(1) lookups.
        """
        return sum(graph.cardinality(pattern) for graph in self.graphs)

    def index_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {"triples": 0, "subjects": 0, "predicates": 0, "objects": 0}
        for graph in self.graphs:
            for key, value in graph.index_stats().items():
                totals[key] += value
        return totals

    def predicate_stats(self, predicate: IRI) -> Dict[str, int]:
        totals: Dict[str, int] = {"count": 0, "distinct_objects": 0}
        for graph in self.graphs:
            for key, value in graph.predicate_stats(predicate).items():
                totals[key] += value
        return totals

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __len__(self) -> int:
        return len(set().union(*(set(g) for g in self.graphs)))

    def objects(self, subject=None, predicate=None):
        seen: Set[Node] = set()
        for _, _, o in self.triples((subject, predicate, None)):
            if o not in seen:
                seen.add(o)
                yield o

    def subjects(self, predicate=None, obj=None):
        seen: Set[Node] = set()
        for s, _, _ in self.triples((None, predicate, obj)):
            if s not in seen:
                seen.add(s)
                yield s

    def value(self, subject=None, predicate=None, obj=None, default=None):
        for graph in self.graphs:
            result = graph.value(subject, predicate, obj, default=None)
            if result is not None:
                return result
        return default

    def query(self, query_text: str, initBindings: Optional[Dict[str, Node]] = None):
        from ..sparql import query as sparql_query

        return sparql_query(self, query_text, init_bindings=initBindings)
