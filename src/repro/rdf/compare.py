"""Graph comparison utilities: diffing and blank-node-aware isomorphism.

The isomorphism check is a pragmatic colour-refinement algorithm: blank
nodes are assigned signatures from the ground triples around them and the
signatures are refined until stable.  This is sound and complete for the
graphs this project produces (no pathological automorphism cases).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from .graph import Graph, Triple
from .terms import BNode

__all__ = ["graph_diff", "isomorphic"]


def graph_diff(first: Graph, second: Graph) -> Tuple[Graph, Graph, Graph]:
    """Return ``(both, only_first, only_second)`` graphs of ground triples."""
    first_set = set(first)
    second_set = set(second)
    both, only_first, only_second = Graph(), Graph(), Graph()
    both.addN(first_set & second_set)
    only_first.addN(first_set - second_set)
    only_second.addN(second_set - first_set)
    return both, only_first, only_second


def _signature(graph: Graph, colours: Dict[BNode, str]) -> Set[str]:
    def colour(term) -> str:
        if isinstance(term, BNode):
            return colours.get(term, "_")
        return term.n3()

    return {f"{colour(s)}|{colour(p)}|{colour(o)}" for s, p, o in graph}


def _refine_colours(graph: Graph) -> Dict[BNode, str]:
    colours: Dict[BNode, str] = {}
    bnodes = {t for triple in graph for t in triple if isinstance(t, BNode)}
    for node in bnodes:
        colours[node] = "init"
    for _ in range(max(1, len(bnodes))):
        new_colours: Dict[BNode, str] = {}
        for node in bnodes:
            parts = []
            for s, p, o in graph.triples((node, None, None)):
                other = colours.get(o, o.n3()) if isinstance(o, BNode) else o.n3()
                parts.append(f"out|{p}|{other}")
            for s, p, o in graph.triples((None, None, node)):
                other = colours.get(s, s.n3()) if isinstance(s, BNode) else s.n3()
                parts.append(f"in|{p}|{other}")
            new_colours[node] = "|".join(sorted(parts))
        if new_colours == colours:
            break
        colours = new_colours
    return colours


def isomorphic(first: Graph, second: Graph) -> bool:
    """Return ``True`` if the graphs are equal up to blank-node relabelling."""
    if len(first) != len(second):
        return False
    first_colours = _refine_colours(first)
    second_colours = _refine_colours(second)
    return _signature(first, first_colours) == _signature(second, second_colours)
