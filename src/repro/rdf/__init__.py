"""Pure-Python RDF substrate: terms, graphs, namespaces, Turtle and N-Triples.

This package replaces the RDFLib dependency that the original paper's
tooling assumes; only the surface actually exercised by the Food
Explanation Ontology pipeline is implemented, but it is implemented
faithfully (indexed triple store, Turtle/N-Triples round-tripping,
namespace management and blank-node-aware graph comparison).
"""

from .collection import make_collection, read_collection
from .compare import graph_diff, isomorphic
from .dictionary import TermDictionary
from .graph import ChangeJournal, EncodedTriple, Graph, ReadOnlyGraphUnion, Triple
from .namespace import (
    DC,
    DEFAULT_PREFIXES,
    EO,
    FEO,
    FOAF,
    FOOD,
    FOODKG,
    OWL,
    PROV,
    RDF,
    RDFS,
    SIO,
    SKOS,
    XSD,
    Namespace,
    NamespaceManager,
)
from .terms import (
    BNode,
    IRI,
    Identifier,
    Literal,
    Term,
    URIRef,
    Variable,
    XSD_BOOLEAN,
    XSD_DATE,
    XSD_DATETIME,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_FLOAT,
    XSD_INTEGER,
    XSD_STRING,
)

__all__ = [
    "BNode",
    "ChangeJournal",
    "DC",
    "DEFAULT_PREFIXES",
    "EO",
    "EncodedTriple",
    "FEO",
    "FOAF",
    "FOOD",
    "FOODKG",
    "Graph",
    "IRI",
    "Identifier",
    "Literal",
    "Namespace",
    "NamespaceManager",
    "OWL",
    "PROV",
    "RDF",
    "RDFS",
    "ReadOnlyGraphUnion",
    "SIO",
    "SKOS",
    "Term",
    "TermDictionary",
    "Triple",
    "URIRef",
    "Variable",
    "XSD",
    "XSD_BOOLEAN",
    "XSD_DATE",
    "XSD_DATETIME",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_FLOAT",
    "XSD_INTEGER",
    "XSD_STRING",
    "graph_diff",
    "isomorphic",
    "make_collection",
    "read_collection",
]
