"""Namespace helpers and the well-known vocabularies used by the project.

``Namespace`` supports attribute and item access to mint IRIs, exactly as
users of rdflib expect::

    FEO = Namespace("https://purl.org/heals/feo#")
    FEO.Characteristic      # -> IRI('https://purl.org/heals/feo#Characteristic')
    FEO["LikedFoods"]       # -> IRI('https://purl.org/heals/feo#LikedFoods')

A :class:`NamespaceManager` maintains prefix bindings for serialisation and
for resolving prefixed names in the SPARQL and Turtle parsers.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .terms import IRI

__all__ = [
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "FOAF",
    "DC",
    "PROV",
    "SKOS",
    "EO",
    "FEO",
    "FOOD",
    "FOODKG",
    "SIO",
    "DEFAULT_PREFIXES",
]


class Namespace(str):
    """A base IRI from which terms can be minted via attribute access."""

    def __new__(cls, base: str):
        return str.__new__(cls, base)

    def term(self, name: str) -> IRI:
        return IRI(str(self) + name)

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name) -> IRI:
        if isinstance(name, str):
            return self.term(name)
        return str.__getitem__(self, name)

    def __contains__(self, item) -> bool:
        if isinstance(item, str):
            return item.startswith(str(self))
        return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"Namespace({str.__repr__(self)})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
DC = Namespace("http://purl.org/dc/terms/")
PROV = Namespace("http://www.w3.org/ns/prov#")
SKOS = Namespace("http://www.w3.org/2004/02/skos/core#")
SIO = Namespace("http://semanticscience.org/resource/")

# Project vocabularies (IRIs follow the paper's published namespaces).
EO = Namespace("https://purl.org/heals/eo#")
FEO = Namespace("https://purl.org/heals/feo#")
FOOD = Namespace("http://purl.org/heals/food/")
FOODKG = Namespace("http://idea.rpi.edu/heals/kb/")

DEFAULT_PREFIXES: Dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "owl": OWL,
    "xsd": XSD,
    "foaf": FOAF,
    "dcterms": DC,
    "prov": PROV,
    "skos": SKOS,
    "sio": SIO,
    "eo": EO,
    "feo": FEO,
    "food": FOOD,
    "foodkg": FOODKG,
}


class NamespaceManager:
    """Tracks prefix ↔ namespace bindings for a graph."""

    def __init__(self, bind_defaults: bool = True) -> None:
        self._prefix_to_ns: Dict[str, str] = {}
        self._ns_to_prefix: Dict[str, str] = {}
        if bind_defaults:
            for prefix, namespace in DEFAULT_PREFIXES.items():
                self.bind(prefix, namespace)

    def bind(self, prefix: str, namespace: str, replace: bool = True) -> None:
        """Bind ``prefix`` to ``namespace``; later bindings win when ``replace``."""
        namespace = str(namespace)
        if not replace and prefix in self._prefix_to_ns:
            return
        old = self._prefix_to_ns.get(prefix)
        if old is not None and self._ns_to_prefix.get(old) == prefix:
            del self._ns_to_prefix[old]
        self._prefix_to_ns[prefix] = namespace
        self._ns_to_prefix[namespace] = prefix

    def namespaces(self) -> Iterator[Tuple[str, str]]:
        yield from sorted(self._prefix_to_ns.items())

    def expand(self, qname: str) -> IRI:
        """Expand a prefixed name (``feo:Characteristic``) to a full IRI."""
        if ":" not in qname:
            raise ValueError(f"Not a prefixed name: {qname!r}")
        prefix, local = qname.split(":", 1)
        try:
            namespace = self._prefix_to_ns[prefix]
        except KeyError as exc:
            raise KeyError(f"Unknown prefix: {prefix!r}") from exc
        return IRI(namespace + local)

    def qname(self, iri: IRI) -> Optional[str]:
        """Compact ``iri`` to a prefixed name if a binding covers it."""
        text = str(iri)
        best: Optional[Tuple[str, str]] = None
        for namespace, prefix in self._ns_to_prefix.items():
            if text.startswith(namespace) and len(namespace) > (len(best[0]) if best else -1):
                best = (namespace, prefix)
        if best is None:
            return None
        namespace, prefix = best
        local = text[len(namespace):]
        if not local or any(ch in local for ch in "/#?"):
            return None
        return f"{prefix}:{local}"

    def prefix_for(self, namespace: str) -> Optional[str]:
        return self._ns_to_prefix.get(str(namespace))

    def namespace_for(self, prefix: str) -> Optional[str]:
        return self._prefix_to_ns.get(prefix)

    def copy(self) -> "NamespaceManager":
        clone = NamespaceManager(bind_defaults=False)
        for prefix, namespace in self._prefix_to_ns.items():
            clone.bind(prefix, namespace)
        return clone
