"""Turtle parsing and serialisation.

The parser implements the subset of Turtle that real ontology files use:
prefix and base directives, prefixed names, ``a`` for ``rdf:type``,
predicate-object lists (``;``), object lists (``,``), blank-node property
lists (``[...]``), RDF collections (``(...)``), typed and language-tagged
literals, numbers and booleans.  It is a hand-written recursive-descent
parser over a regex tokenizer, which keeps the error messages readable.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .graph import Graph, Node
from .namespace import RDF
from .terms import BNode, IRI, Literal, XSD_BOOLEAN, XSD_DECIMAL, XSD_DOUBLE, XSD_INTEGER

__all__ = ["parse", "serialize", "TurtleParseError"]

RDF_TYPE = IRI(RDF.type)
RDF_FIRST = IRI(RDF.first)
RDF_REST = IRI(RDF.rest)
RDF_NIL = IRI(RDF.nil)


class TurtleParseError(ValueError):
    """Raised for malformed Turtle input, with line information."""


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<TRIPLE_STRING>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\")
  | (?P<STRING>"(?:[^"\\\n]|\\.)*")
  | (?P<SQ_STRING>'(?:[^'\\\n]|\\.)*')
  | (?P<IRIREF><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<PREFIX_DIRECTIVE>@prefix|@base|PREFIX|BASE|@PREFIX|prefix|base)
  | (?P<DOUBLE>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
  | (?P<DECIMAL>[+-]?\d*\.\d+)
  | (?P<INTEGER>[+-]?\d+)
  | (?P<BOOLEAN>\btrue\b|\bfalse\b)
  | (?P<BLANK>_:[A-Za-z0-9][A-Za-z0-9_.-]*)
  | (?P<PNAME>[A-Za-z][\w.-]*)?:(?P<LOCAL>[A-Za-z0-9_]
        (?:[\w.-]*[\w-])?)?
  | (?P<A>\ba\b)
  | (?P<LANGTAG>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<DTYPE>\^\^)
  | (?P<PUNCT>[;,.\[\]()])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value", "line")

    def __init__(self, kind: str, value: str, line: int) -> None:
        self.kind = kind
        self.value = value
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Token({self.kind}, {self.value!r}, line={self.line})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    length = len(text)
    while pos < length:
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise TurtleParseError(f"Line {line}: unexpected character {text[pos]!r}")
        kind = match.lastgroup
        value = match.group(0)
        line += value.count("\n")
        pos = match.end()
        if kind in ("WS", "COMMENT"):
            continue
        if kind == "LOCAL":
            kind = "PNAME"
        if kind is None:
            kind = "PNAME" if ":" in value else "UNKNOWN"
        tokens.append(_Token(kind, value, line))
    tokens.append(_Token("EOF", "", line))
    return tokens


_STR_UNESCAPE = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "'": "'",
    "\\": "\\",
    "b": "\b",
    "f": "\f",
}


def _unescape_string(text: str) -> str:
    text = re.sub(r"\\u([0-9A-Fa-f]{4})", lambda m: chr(int(m.group(1), 16)), text)
    text = re.sub(r"\\U([0-9A-Fa-f]{8})", lambda m: chr(int(m.group(1), 16)), text)
    return re.sub(r"\\(.)", lambda m: _STR_UNESCAPE.get(m.group(1), m.group(1)), text)


class _Parser:
    def __init__(self, tokens: List[_Token], graph: Graph) -> None:
        self.tokens = tokens
        self.index = 0
        self.graph = graph
        self.base: Optional[str] = None

    # -- token helpers --------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.index]

    def next(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect_punct(self, char: str) -> None:
        token = self.next()
        if token.kind != "PUNCT" or token.value != char:
            raise TurtleParseError(
                f"Line {token.line}: expected {char!r}, found {token.value!r}"
            )

    def error(self, message: str) -> TurtleParseError:
        token = self.peek()
        return TurtleParseError(f"Line {token.line}: {message} (at {token.value!r})")

    # -- grammar ---------------------------------------------------------
    def parse(self) -> None:
        while self.peek().kind != "EOF":
            token = self.peek()
            if token.kind == "PREFIX_DIRECTIVE":
                self._parse_directive()
            else:
                self._parse_triples()
                token = self.peek()
                if token.kind == "PUNCT" and token.value == ".":
                    self.next()
                else:
                    raise self.error("expected '.' at end of statement")

    def _parse_directive(self) -> None:
        directive = self.next()
        keyword = directive.value.lstrip("@").lower()
        if keyword == "prefix":
            pname = self.next()
            if ":" not in pname.value:
                raise TurtleParseError(f"Line {pname.line}: malformed prefix declaration")
            prefix = pname.value.split(":", 1)[0]
            iri_token = self.next()
            if iri_token.kind != "IRIREF":
                raise TurtleParseError(f"Line {iri_token.line}: prefix IRI expected")
            self.graph.bind(prefix, iri_token.value[1:-1])
        elif keyword == "base":
            iri_token = self.next()
            if iri_token.kind != "IRIREF":
                raise TurtleParseError(f"Line {iri_token.line}: base IRI expected")
            self.base = iri_token.value[1:-1]
        else:  # pragma: no cover - the tokenizer only emits prefix/base
            raise TurtleParseError(f"Unknown directive {directive.value!r}")
        if directive.value.startswith("@"):
            self.expect_punct(".")
        elif self.peek().kind == "PUNCT" and self.peek().value == ".":
            self.next()

    def _parse_triples(self) -> None:
        subject = self._parse_subject()
        self._parse_predicate_object_list(subject)

    def _parse_subject(self) -> Node:
        token = self.peek()
        if token.kind == "PUNCT" and token.value == "[":
            return self._parse_blank_node_property_list()
        if token.kind == "PUNCT" and token.value == "(":
            return self._parse_collection()
        return self._parse_resource()

    def _parse_predicate_object_list(self, subject: Node) -> None:
        while True:
            predicate = self._parse_predicate()
            self._parse_object_list(subject, predicate)
            token = self.peek()
            if token.kind == "PUNCT" and token.value == ";":
                self.next()
                nxt = self.peek()
                # Allow trailing ';' before '.' or ']'
                if nxt.kind == "PUNCT" and nxt.value in (".", "]"):
                    return
                continue
            return

    def _parse_predicate(self) -> IRI:
        token = self.peek()
        if token.kind == "A" or (token.kind == "PNAME" and token.value == "a"):
            self.next()
            return RDF_TYPE
        term = self._parse_resource()
        if not isinstance(term, IRI):
            raise self.error("predicate must be an IRI")
        return term

    def _parse_object_list(self, subject: Node, predicate: IRI) -> None:
        while True:
            obj = self._parse_object()
            self.graph.add((subject, predicate, obj))
            token = self.peek()
            if token.kind == "PUNCT" and token.value == ",":
                self.next()
                continue
            return

    def _parse_object(self) -> Node:
        token = self.peek()
        if token.kind == "PUNCT" and token.value == "[":
            return self._parse_blank_node_property_list()
        if token.kind == "PUNCT" and token.value == "(":
            return self._parse_collection()
        if token.kind in ("STRING", "SQ_STRING", "TRIPLE_STRING"):
            return self._parse_literal()
        if token.kind in ("INTEGER", "DECIMAL", "DOUBLE", "BOOLEAN"):
            return self._parse_numeric_or_boolean()
        return self._parse_resource()

    def _parse_blank_node_property_list(self) -> BNode:
        self.expect_punct("[")
        node = BNode()
        token = self.peek()
        if token.kind == "PUNCT" and token.value == "]":
            self.next()
            return node
        self._parse_predicate_object_list(node)
        self.expect_punct("]")
        return node

    def _parse_collection(self) -> Node:
        self.expect_punct("(")
        items: List[Node] = []
        while not (self.peek().kind == "PUNCT" and self.peek().value == ")"):
            items.append(self._parse_object())
        self.expect_punct(")")
        if not items:
            return RDF_NIL
        head = BNode()
        current = head
        for i, item in enumerate(items):
            self.graph.add((current, RDF_FIRST, item))
            if i == len(items) - 1:
                self.graph.add((current, RDF_REST, RDF_NIL))
            else:
                nxt = BNode()
                self.graph.add((current, RDF_REST, nxt))
                current = nxt
        return head

    def _parse_literal(self) -> Literal:
        token = self.next()
        raw = token.value
        if token.kind == "TRIPLE_STRING":
            value = _unescape_string(raw[3:-3])
        else:
            value = _unescape_string(raw[1:-1])
        nxt = self.peek()
        if nxt.kind == "LANGTAG":
            self.next()
            return Literal(value, language=nxt.value[1:])
        if nxt.kind == "DTYPE":
            self.next()
            datatype = self._parse_resource()
            if not isinstance(datatype, IRI):
                raise self.error("datatype must be an IRI")
            return Literal(value, datatype=datatype)
        return Literal(value)

    def _parse_numeric_or_boolean(self) -> Literal:
        token = self.next()
        if token.kind == "INTEGER":
            return Literal(token.value, datatype=XSD_INTEGER)
        if token.kind == "DECIMAL":
            return Literal(token.value, datatype=XSD_DECIMAL)
        if token.kind == "DOUBLE":
            return Literal(token.value, datatype=XSD_DOUBLE)
        return Literal(token.value, datatype=XSD_BOOLEAN)

    def _parse_resource(self) -> Node:
        token = self.next()
        if token.kind == "IRIREF":
            iri = token.value[1:-1]
            if self.base and not re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", iri):
                iri = self.base + iri
            return IRI(iri)
        if token.kind == "BLANK":
            return BNode(token.value[2:])
        if token.kind == "PNAME" or ":" in token.value:
            try:
                return self.graph.namespace_manager.expand(token.value)
            except KeyError as exc:
                raise TurtleParseError(f"Line {token.line}: {exc}") from exc
        raise TurtleParseError(
            f"Line {token.line}: expected a resource, found {token.value!r}"
        )


def parse(data: str, graph: Optional[Graph] = None) -> Graph:
    """Parse Turtle ``data`` into ``graph`` (creating one if needed)."""
    if graph is None:
        graph = Graph()
    parser = _Parser(_tokenize(data), graph)
    parser.parse()
    return graph


def _format_term(graph: Graph, term: Node) -> str:
    if isinstance(term, IRI):
        compact = graph.namespace_manager.qname(term)
        return compact if compact is not None else term.n3()
    return term.n3()


def serialize(graph: Graph) -> str:
    """Serialise ``graph`` to Turtle, grouping triples by subject."""
    lines: List[str] = []
    used_prefixes = set()
    by_subject: dict = {}
    for s, p, o in graph:
        by_subject.setdefault(s, []).append((p, o))
        for term in (s, p, o):
            if isinstance(term, IRI):
                compact = graph.namespace_manager.qname(term)
                if compact:
                    used_prefixes.add(compact.split(":", 1)[0])

    for prefix, namespace in graph.namespaces():
        if prefix in used_prefixes:
            lines.append(f"@prefix {prefix}: <{namespace}> .")
    if lines:
        lines.append("")

    def sort_key(node: Node) -> Tuple[int, str]:
        return (0 if isinstance(node, IRI) else 1, str(node))

    for subject in sorted(by_subject, key=sort_key):
        pairs = sorted(by_subject[subject], key=lambda po: (str(po[0]), str(po[1])))
        subject_text = _format_term(graph, subject)
        predicate_lines = []
        for predicate, obj in pairs:
            if predicate == RDF_TYPE:
                pred_text = "a"
            else:
                pred_text = _format_term(graph, predicate)
            predicate_lines.append(f"    {pred_text} {_format_term(graph, obj)}")
        lines.append(subject_text + "\n" + " ;\n".join(predicate_lines) + " .")
    return "\n".join(lines) + ("\n" if lines else "")
