"""Dictionary encoding of RDF terms: the storage engine's interning layer.

Every :class:`~repro.rdf.graph.Graph` stores its triples as ``(int, int,
int)`` tuples; the :class:`TermDictionary` is the bidirectional mapping
between those integer IDs and the :class:`~repro.rdf.terms.Term` objects
the public API speaks.  Interning happens once, at the graph boundary —
the SPO/POS/OSP indexes, the reasoner's rule joins and the SPARQL
planner's hash joins all operate on compact integer tuples and only
decode when a term has to leave the store (iteration, projection,
serialisation).

One dictionary is shared by a whole *graph family*:
:meth:`Graph.copy` hands the clone the same dictionary, so scenario
copies, cached closures and incremental extensions never re-encode the
base graph, and encoded triples can flow between family members without
translation.  That sharing is safe because the dictionary is strictly
append-only — an ID, once assigned, never changes meaning.

Term equality drives interning: two equal terms (e.g. ``Literal(1)`` and
``Literal("1", datatype=XSD_INTEGER)``) share one ID, so decoding yields
the canonical first-interned object.  Alongside each term the dictionary
records its *kind* (IRI / blank node / literal) — giving the hot paths
O(1) ``isinstance``-free literal checks — and its content hash, from
which graphs derive their order-independent fingerprints without
re-hashing terms on every mutation.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from .terms import BNode, IRI, Literal, Term

__all__ = ["TermDictionary", "KIND_IRI", "KIND_BNODE", "KIND_LITERAL"]

#: Term-kind codes stored per ID (see :attr:`TermDictionary.kinds`).
KIND_IRI = 0
KIND_BNODE = 1
KIND_LITERAL = 2


class TermDictionary:
    """An append-only, bidirectional term ↔ integer-ID interning table.

    The forward map (:attr:`ids`) is keyed by the terms themselves, so
    lookups follow term equality/hashing exactly like the previous
    term-keyed indexes did.  The reverse direction is three parallel
    lists indexed by ID: the canonical term (:attr:`terms`), its kind
    code (:attr:`kinds`) and its content hash (:attr:`hashes`).  The
    lists are exposed directly because the reasoner and planner bind
    them as locals inside their hottest loops.
    """

    __slots__ = ("ids", "terms", "kinds", "hashes", "_kind_counts", "_lock")

    def __init__(self) -> None:
        self.ids: Dict[Term, int] = {}
        self.terms: List[Term] = []
        self.kinds: List[int] = []
        self.hashes: List[int] = []
        self._kind_counts = [0, 0, 0]
        # Guards ID assignment only: one dictionary is shared by a whole
        # graph family, and a threaded service can reason two scenario
        # graphs of the same family concurrently.  Lookups stay lock-free
        # (an ID is published into ``ids`` only after the reverse lists
        # hold its row).
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def intern(self, term: Term) -> int:
        """Return the ID for ``term``, assigning the next ID on first sight.

        Raises :class:`TypeError` for objects that are not graph-storable
        terms (anything but IRI / BNode / Literal).  Validation and the
        assignment lock only apply to genuinely new terms; re-interning an
        already-known term is a single lock-free dictionary probe.
        """
        tid = self.ids.get(term)
        if tid is not None:
            return tid
        if isinstance(term, Literal):
            kind = KIND_LITERAL
        elif isinstance(term, IRI):
            kind = KIND_IRI
        elif isinstance(term, BNode):
            kind = KIND_BNODE
        else:
            raise TypeError(
                f"Cannot intern {term!r} (type {type(term).__name__}): "
                "not an IRI, BNode or Literal"
            )
        with self._lock:
            tid = self.ids.get(term)
            if tid is not None:
                return tid
            tid = len(self.terms)
            self.terms.append(term)
            self.kinds.append(kind)
            self.hashes.append(hash(term))
            self._kind_counts[kind] += 1
            self.ids[term] = tid
        return tid

    def lookup(self, term: object) -> Optional[int]:
        """The ID of ``term`` if it has ever been interned, else ``None``.

        Never interns; used for pattern matching, where an unknown term
        simply means "no triple can match".
        """
        return self.ids.get(term)

    def decode(self, tid: int) -> Term:
        """The canonical term for an ID (the first-interned equal object)."""
        return self.terms[tid]

    def kind(self, tid: int) -> int:
        """Kind code for an ID: ``KIND_IRI`` / ``KIND_BNODE`` / ``KIND_LITERAL``."""
        return self.kinds[tid]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.terms)

    def __contains__(self, term: object) -> bool:
        return term in self.ids

    def stats(self) -> Dict[str, int]:
        """Interning counters: total terms and the per-kind breakdown."""
        return {
            "interned_terms": len(self.terms),
            "iris": self._kind_counts[KIND_IRI],
            "bnodes": self._kind_counts[KIND_BNODE],
            "literals": self._kind_counts[KIND_LITERAL],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TermDictionary terms={len(self.terms)}>"
