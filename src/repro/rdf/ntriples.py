"""N-Triples parsing and serialisation.

N-Triples is the line-oriented subset of Turtle: one triple per line, no
prefixes, no abbreviations.  It is used as the canonical interchange
format for graph diffing and for golden-file tests.
"""

from __future__ import annotations

import re
from typing import Optional

from .graph import Graph
from .terms import BNode, IRI, Literal

__all__ = ["parse", "serialize", "NTriplesParseError"]


class NTriplesParseError(ValueError):
    """Raised when a line cannot be parsed as an N-Triples statement."""


_IRI_RE = r"<([^<>\"{}|^`\\\x00-\x20]*)>"
_BNODE_RE = r"_:([A-Za-z][A-Za-z0-9_.-]*)"
_LITERAL_RE = r'"((?:[^"\\]|\\.)*)"(?:@([a-zA-Z]+(?:-[a-zA-Z0-9]+)*)|\^\^<([^<>]*)>)?'

_TRIPLE_RE = re.compile(
    rf"^\s*(?:{_IRI_RE}|{_BNODE_RE})\s+{_IRI_RE}\s+"
    rf"(?:{_IRI_RE}|{_BNODE_RE}|{_LITERAL_RE})\s*\.\s*$"
)

_UNESCAPE_RE = re.compile(r"\\(.)|\\u([0-9A-Fa-f]{4})|\\U([0-9A-Fa-f]{8})")

_UNESCAPE_MAP = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
    "b": "\b",
    "f": "\f",
    "'": "'",
}


def _unescape(text: str) -> str:
    def replace(match: re.Match) -> str:
        simple, u4, u8 = match.groups()
        if simple is not None:
            return _UNESCAPE_MAP.get(simple, simple)
        if u4 is not None:
            return chr(int(u4, 16))
        return chr(int(u8, 16))

    # Handle \uXXXX and \UXXXXXXXX before simple escapes to avoid clashes.
    text = re.sub(r"\\u([0-9A-Fa-f]{4})", lambda m: chr(int(m.group(1), 16)), text)
    text = re.sub(r"\\U([0-9A-Fa-f]{8})", lambda m: chr(int(m.group(1), 16)), text)
    return re.sub(r"\\(.)", lambda m: _UNESCAPE_MAP.get(m.group(1), m.group(1)), text)


def parse(data: str, graph: Optional[Graph] = None) -> Graph:
    """Parse N-Triples ``data`` into ``graph`` (creating one if needed)."""
    if graph is None:
        graph = Graph()
    for lineno, raw_line in enumerate(data.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        match = _TRIPLE_RE.match(line)
        if not match:
            raise NTriplesParseError(f"Line {lineno}: cannot parse {raw_line!r}")
        (
            subj_iri,
            subj_bnode,
            pred_iri,
            obj_iri,
            obj_bnode,
            lit_value,
            lit_lang,
            lit_dtype,
        ) = match.groups()

        subject = IRI(_unescape(subj_iri)) if subj_iri is not None else BNode(subj_bnode)
        predicate = IRI(_unescape(pred_iri))
        if obj_iri is not None:
            obj = IRI(_unescape(obj_iri))
        elif obj_bnode is not None:
            obj = BNode(obj_bnode)
        else:
            value = _unescape(lit_value or "")
            if lit_lang:
                obj = Literal(value, language=lit_lang)
            elif lit_dtype:
                obj = Literal(value, datatype=IRI(lit_dtype))
            else:
                obj = Literal(value)
        graph.add((subject, predicate, obj))
    return graph


def serialize(graph: Graph) -> str:
    """Serialise ``graph`` to sorted N-Triples text."""
    lines = []
    for s, p, o in graph:
        lines.append(f"{s.n3()} {p.n3()} {o.n3()} .")
    return "\n".join(sorted(lines)) + ("\n" if lines else "")
