"""RDF term model: IRIs, blank nodes, literals and variables.

This module provides the building blocks of the RDF data model used
throughout the reproduction.  The design deliberately mirrors the small
surface of rdflib that the paper's tooling relies on (``URIRef``,
``BNode``, ``Literal``, ``Namespace``) so that code written against this
package reads like ordinary semantic-web Python.

All terms are immutable and hashable so they can be used as dictionary
keys inside the indexed triple store.
"""

from __future__ import annotations

import itertools
import re
from decimal import Decimal, InvalidOperation
from typing import Any, Optional, Union

__all__ = [
    "Term",
    "Identifier",
    "IRI",
    "URIRef",
    "BNode",
    "Literal",
    "Variable",
    "XSD_STRING",
    "XSD_BOOLEAN",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_FLOAT",
    "XSD_DATE",
    "XSD_DATETIME",
    "RDF_LANGSTRING",
]

_XSD = "http://www.w3.org/2001/XMLSchema#"
_RDF = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"


class Term:
    """Abstract base class for every RDF term."""

    __slots__ = ()

    def n3(self) -> str:
        """Return the N3/Turtle surface form of this term."""
        raise NotImplementedError


class Identifier(Term, str):
    """A term that is identified by a string value (IRI or blank node)."""

    __slots__ = ()

    def __new__(cls, value: str):
        return str.__new__(cls, value)

    @property
    def value(self) -> str:
        return str(self)


class IRI(Identifier):
    """An IRI reference (``URIRef`` in rdflib terminology)."""

    __slots__ = ()

    def __new__(cls, value: str):
        if not isinstance(value, str):
            raise TypeError(f"IRI value must be a string, got {type(value)!r}")
        return Identifier.__new__(cls, value)

    def n3(self) -> str:
        return f"<{self}>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IRI({str.__repr__(self)})"

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, IRI):
            return str.__eq__(self, other)
        if isinstance(other, (BNode, Literal, Variable)):
            return False
        if isinstance(other, str):
            return str.__eq__(self, other)
        return NotImplemented

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return str.__hash__(self)

    def defrag(self) -> "IRI":
        """Return the IRI with any fragment removed."""
        if "#" in self:
            return IRI(self.split("#", 1)[0])
        return self

    def local_name(self) -> str:
        """Return the part after the last ``#`` or ``/``."""
        for sep in ("#", "/"):
            if sep in self:
                candidate = self.rsplit(sep, 1)[1]
                if candidate:
                    return candidate
        return str(self)


# Alias matching rdflib naming for familiarity.
URIRef = IRI


_bnode_counter = itertools.count()


class BNode(Identifier):
    """A blank node with an internal label."""

    __slots__ = ()

    def __new__(cls, label: Optional[str] = None):
        if label is None:
            label = f"b{next(_bnode_counter)}"
        if not isinstance(label, str):
            raise TypeError("BNode label must be a string")
        return Identifier.__new__(cls, label)

    def n3(self) -> str:
        return f"_:{self}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"BNode({str.__repr__(self)})"

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, BNode):
            return str.__eq__(self, other)
        if isinstance(other, Term):
            return False
        return NotImplemented

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return str.__hash__(self) ^ 0x5F5F

    @classmethod
    def reset_counter(cls) -> None:
        """Reset the automatic label counter (useful for deterministic tests)."""
        global _bnode_counter
        _bnode_counter = itertools.count()


XSD_STRING = IRI(_XSD + "string")
XSD_BOOLEAN = IRI(_XSD + "boolean")
XSD_INTEGER = IRI(_XSD + "integer")
XSD_DECIMAL = IRI(_XSD + "decimal")
XSD_DOUBLE = IRI(_XSD + "double")
XSD_FLOAT = IRI(_XSD + "float")
XSD_DATE = IRI(_XSD + "date")
XSD_DATETIME = IRI(_XSD + "dateTime")
RDF_LANGSTRING = IRI(_RDF + "langString")

_NUMERIC_DATATYPES = {XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT}

_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def _escape_literal(value: str) -> str:
    out = []
    for char in value:
        escaped = _ESCAPES.get(char)
        if escaped is not None:
            out.append(escaped)
        elif ord(char) < 0x20 or char in ("\x85", "\u2028", "\u2029"):
            # Control characters and unicode line separators (which
            # str.splitlines treats as line breaks) must be \u-escaped so the
            # line-oriented serialisations stay one-statement-per-line.
            out.append(f"\\u{ord(char):04X}")
        else:
            out.append(char)
    return "".join(out)


class Literal(Term):
    """An RDF literal with optional language tag or datatype.

    The constructor accepts native Python values (``int``, ``float``,
    ``bool``, ``Decimal``) and infers the corresponding XSD datatype, the
    same convenience rdflib users rely on.
    """

    __slots__ = ("_lexical", "_language", "_datatype", "_value", "_hash")

    def __init__(
        self,
        lexical: Union[str, int, float, bool, Decimal],
        language: Optional[str] = None,
        datatype: Optional[IRI] = None,
    ) -> None:
        if language is not None and datatype is not None:
            raise ValueError("A literal cannot carry both a language tag and a datatype")

        inferred_datatype = datatype
        if isinstance(lexical, bool):
            lexical_str = "true" if lexical else "false"
            inferred_datatype = inferred_datatype or XSD_BOOLEAN
        elif isinstance(lexical, int):
            lexical_str = str(lexical)
            inferred_datatype = inferred_datatype or XSD_INTEGER
        elif isinstance(lexical, float):
            lexical_str = repr(lexical)
            inferred_datatype = inferred_datatype or XSD_DOUBLE
        elif isinstance(lexical, Decimal):
            lexical_str = str(lexical)
            inferred_datatype = inferred_datatype or XSD_DECIMAL
        else:
            lexical_str = str(lexical)

        if language is not None:
            language = language.lower()

        self._lexical = lexical_str
        self._language = language
        self._datatype = inferred_datatype
        self._value = self._parse_value()
        self._hash = None

    # -- value space ---------------------------------------------------
    def _parse_value(self) -> Any:
        dt = self._datatype
        text = self._lexical
        if dt is None or dt == XSD_STRING or dt == RDF_LANGSTRING:
            return text
        try:
            if dt == XSD_BOOLEAN:
                if text in ("true", "1"):
                    return True
                if text in ("false", "0"):
                    return False
                return text
            if dt == XSD_INTEGER:
                return int(text)
            if dt in (XSD_DOUBLE, XSD_FLOAT):
                return float(text)
            if dt == XSD_DECIMAL:
                return Decimal(text)
        except (ValueError, InvalidOperation):
            return text
        return text

    # -- accessors ------------------------------------------------------
    @property
    def lexical(self) -> str:
        return self._lexical

    @property
    def language(self) -> Optional[str]:
        return self._language

    @property
    def datatype(self) -> Optional[IRI]:
        return self._datatype

    @property
    def value(self) -> Any:
        """The Python value of the literal (falls back to the lexical form)."""
        return self._value

    def is_numeric(self) -> bool:
        return self._datatype in _NUMERIC_DATATYPES

    def to_python(self) -> Any:
        return self._value

    # -- serialisation ---------------------------------------------------
    def n3(self) -> str:
        quoted = f'"{_escape_literal(self._lexical)}"'
        if self._language:
            return f"{quoted}@{self._language}"
        if self._datatype and self._datatype != XSD_STRING:
            return f"{quoted}^^{self._datatype.n3()}"
        return quoted

    # -- dunder ----------------------------------------------------------
    def __str__(self) -> str:
        return self._lexical

    def __repr__(self) -> str:  # pragma: no cover
        parts = [repr(self._lexical)]
        if self._language:
            parts.append(f"lang={self._language!r}")
        if self._datatype:
            parts.append(f"datatype={str(self._datatype)!r}")
        return f"Literal({', '.join(parts)})"

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Literal):
            return (
                self._lexical == other._lexical
                and self._language == other._language
                and self._normalised_datatype() == other._normalised_datatype()
            )
        if isinstance(other, Term):
            return False
        if isinstance(other, bool):
            return self._datatype == XSD_BOOLEAN and self._value is other
        if isinstance(other, (int, float, Decimal)):
            return self.is_numeric() and self._value == other
        if isinstance(other, str):
            return self._language is None and self._normalised_datatype() == XSD_STRING and self._lexical == other
        return NotImplemented

    def _normalised_datatype(self) -> IRI:
        if self._language is not None:
            return RDF_LANGSTRING
        return self._datatype or XSD_STRING

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        # Literals are immutable and hashed constantly (dictionary
        # interning, triple-set membership, index keys), so the hash is
        # computed once and cached.
        cached = self._hash
        if cached is None:
            cached = hash((self._lexical, self._language, self._normalised_datatype()))
            self._hash = cached
        return cached

    def __lt__(self, other: "Literal") -> bool:
        if isinstance(other, Literal):
            if self.is_numeric() and other.is_numeric():
                return float(self._value) < float(other._value)
            return self._lexical < other._lexical
        return NotImplemented


_VARNAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class Variable(Term, str):
    """A SPARQL query variable (``?name``)."""

    __slots__ = ()

    def __new__(cls, name: str):
        name = name.lstrip("?$")
        if not _VARNAME_RE.match(name):
            raise ValueError(f"Invalid variable name: {name!r}")
        return str.__new__(cls, name)

    def n3(self) -> str:
        return f"?{self}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"Variable({str.__repr__(self)})"

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Variable):
            return str.__eq__(self, other)
        if isinstance(other, Term):
            return False
        if isinstance(other, str):
            return str.__eq__(self, other)
        return NotImplemented

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return str.__hash__(self) ^ 0x7A7A
