"""Helpers for reading and writing RDF collections (``rdf:List``)."""

from __future__ import annotations

from typing import Iterable, List, Optional

from .graph import Graph, Node
from .namespace import RDF
from .terms import BNode, IRI

__all__ = ["make_collection", "read_collection"]

RDF_FIRST = IRI(RDF.first)
RDF_REST = IRI(RDF.rest)
RDF_NIL = IRI(RDF.nil)


def make_collection(graph: Graph, items: Iterable[Node]) -> Node:
    """Write ``items`` into ``graph`` as an RDF collection and return its head."""
    items = list(items)
    if not items:
        return RDF_NIL
    head = BNode()
    current = head
    for index, item in enumerate(items):
        graph.add((current, RDF_FIRST, item))
        if index == len(items) - 1:
            graph.add((current, RDF_REST, RDF_NIL))
        else:
            nxt = BNode()
            graph.add((current, RDF_REST, nxt))
            current = nxt
    return head


def read_collection(graph, head: Node, max_length: int = 10_000) -> List[Node]:
    """Read the RDF collection starting at ``head`` into a Python list.

    ``max_length`` guards against cyclic ``rdf:rest`` chains in malformed data.
    """
    items: List[Node] = []
    current: Optional[Node] = head
    steps = 0
    while current is not None and current != RDF_NIL:
        steps += 1
        if steps > max_length:
            raise ValueError("RDF collection is longer than max_length (cycle?)")
        first = None
        rest = None
        for _, _, o in graph.triples((current, RDF_FIRST, None)):
            first = o
            break
        for _, _, o in graph.triples((current, RDF_REST, None)):
            rest = o
            break
        if first is not None:
            items.append(first)
        current = rest
    return items
