"""A 'What To Make'-style food ontology (http://purl.org/heals/food).

The paper chooses the What-To-Make ontology over the much larger FoodOn
because it is concise and already contains the classes typical food
recommendation scenarios need (User, Recipe, Ingredient...).  This module
recreates that core: foods, recipes, ingredients, users, diets, meal
types, cuisines, allergens and nutrients, plus the recipe→ingredient and
nutrition properties.  Seasonal and regional availability — the expansion
the paper says FEO had to add — live in :mod:`repro.ontology.feo`.
"""

from __future__ import annotations

from ..rdf.graph import Graph
from ..rdf.namespace import FOOD, XSD
from ..rdf.terms import IRI
from .builder import OntologyBuilder

__all__ = [
    "build_food_graph",
    "Food",
    "Recipe",
    "Ingredient",
    "User",
    "Diet",
    "MealType",
    "Cuisine",
    "Allergen",
    "Nutrient",
    "hasIngredient",
    "hasNutrient",
    "hasMealType",
    "hasCuisine",
    "suitableForDiet",
    "hasCalories",
    "hasProtein",
    "hasCarbohydrates",
    "hasFat",
    "hasSodium",
    "hasFiber",
    "hasCookTime",
    "serves",
]

# -- classes -----------------------------------------------------------------
Food = IRI(FOOD.Food)
Recipe = IRI(FOOD.Recipe)
Ingredient = IRI(FOOD.Ingredient)
User = IRI(FOOD.User)
Diet = IRI(FOOD.Diet)
MealType = IRI(FOOD.MealType)
Cuisine = IRI(FOOD.Cuisine)
Allergen = IRI(FOOD.Allergen)
Nutrient = IRI(FOOD.Nutrient)

# -- object properties --------------------------------------------------------
hasIngredient = IRI(FOOD.hasIngredient)
hasNutrient = IRI(FOOD.hasNutrient)
hasMealType = IRI(FOOD.hasMealType)
hasCuisine = IRI(FOOD.hasCuisine)
suitableForDiet = IRI(FOOD.suitableForDiet)

# -- datatype properties -------------------------------------------------------
hasCalories = IRI(FOOD.hasCalories)
hasProtein = IRI(FOOD.hasProtein)
hasCarbohydrates = IRI(FOOD.hasCarbohydrates)
hasFat = IRI(FOOD.hasFat)
hasSodium = IRI(FOOD.hasSodium)
hasFiber = IRI(FOOD.hasFiber)
hasCookTime = IRI(FOOD.hasCookTime)
serves = IRI(FOOD.serves)

_XSD_DOUBLE = IRI(XSD.double)
_XSD_INTEGER = IRI(XSD.integer)


def build_food_graph(graph: Graph = None) -> Graph:
    """Build the What-To-Make-style food ontology as an RDF graph."""
    builder = OntologyBuilder(IRI(str(FOOD).rstrip("/")), graph=graph)
    b = builder

    b.declare_class(Food, "Food", "Anything edible: a recipe, dish or ingredient.")
    b.declare_class(Recipe, "Recipe", "A prepared dish composed of ingredients.",
                    subclass_of=[Food])
    b.declare_class(Ingredient, "Ingredient", "A component food used in recipes.",
                    subclass_of=[Food])
    b.declare_class(User, "User", "A person receiving food recommendations.")
    b.declare_class(Diet, "Diet", "A named dietary pattern (vegetarian, vegan, keto...).")
    b.declare_class(MealType, "Meal Type", "Breakfast, lunch, dinner, snack or dessert.")
    b.declare_class(Cuisine, "Cuisine", "A regional or cultural cooking tradition.")
    b.declare_class(Allergen, "Allergen", "A substance that can trigger an allergic reaction.")
    b.declare_class(Nutrient, "Nutrient", "A nutritional component (protein, folate, sodium...).")

    b.declare_object_property(hasIngredient, "has ingredient", domain=Recipe, range=Ingredient)
    b.declare_object_property(hasNutrient, "has nutrient", domain=Food, range=Nutrient)
    b.declare_object_property(hasMealType, "has meal type", domain=Recipe, range=MealType)
    b.declare_object_property(hasCuisine, "has cuisine", domain=Recipe, range=Cuisine)
    b.declare_object_property(suitableForDiet, "suitable for diet", domain=Food, range=Diet)

    b.declare_data_property(hasCalories, "calories (kcal per serving)", domain=Food, range=_XSD_DOUBLE)
    b.declare_data_property(hasProtein, "protein (g per serving)", domain=Food, range=_XSD_DOUBLE)
    b.declare_data_property(hasCarbohydrates, "carbohydrates (g per serving)", domain=Food, range=_XSD_DOUBLE)
    b.declare_data_property(hasFat, "fat (g per serving)", domain=Food, range=_XSD_DOUBLE)
    b.declare_data_property(hasSodium, "sodium (mg per serving)", domain=Food, range=_XSD_DOUBLE)
    b.declare_data_property(hasFiber, "fiber (g per serving)", domain=Food, range=_XSD_DOUBLE)
    b.declare_data_property(hasCookTime, "cook time (minutes)", domain=Recipe, range=_XSD_INTEGER)
    b.declare_data_property(serves, "servings", domain=Recipe, range=_XSD_INTEGER)

    return builder.graph
