"""A small DSL for constructing OWL ontologies as RDF graphs.

The three ontologies in this project (the Explanation Ontology subset, the
What-To-Make-style food ontology and FEO itself) are authored in Python
with this builder rather than shipped as Turtle files, so that tests can
introspect them and the axioms stay close to the code that depends on
them.  The builder writes standard OWL 2 RDF encodings, which the Turtle
serialiser can export for users who want the ontology as a file.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from ..rdf.collection import make_collection
from ..rdf.graph import Graph
from ..rdf.namespace import OWL, RDF, RDFS, XSD
from ..rdf.terms import BNode, IRI, Literal

__all__ = ["OntologyBuilder", "Restriction", "some_values_from", "all_values_from", "has_value", "intersection_of", "union_of"]

RDF_TYPE = IRI(RDF.type)
RDFS_SUBCLASSOF = IRI(RDFS.subClassOf)
RDFS_SUBPROPERTYOF = IRI(RDFS.subPropertyOf)
RDFS_LABEL = IRI(RDFS.label)
RDFS_COMMENT = IRI(RDFS.comment)
RDFS_DOMAIN = IRI(RDFS.domain)
RDFS_RANGE = IRI(RDFS.range)

OWL_CLASS = IRI(OWL.Class)
OWL_OBJECT_PROPERTY = IRI(OWL.ObjectProperty)
OWL_DATATYPE_PROPERTY = IRI(OWL.DatatypeProperty)
OWL_NAMED_INDIVIDUAL = IRI(OWL.NamedIndividual)
OWL_EQUIVALENT_CLASS = IRI(OWL.equivalentClass)
OWL_INVERSE_OF = IRI(OWL.inverseOf)
OWL_TRANSITIVE = IRI(OWL.TransitiveProperty)
OWL_SYMMETRIC = IRI(OWL.SymmetricProperty)
OWL_FUNCTIONAL = IRI(OWL.FunctionalProperty)
OWL_RESTRICTION = IRI(OWL.Restriction)
OWL_ON_PROPERTY = IRI(OWL.onProperty)
OWL_SOME_VALUES_FROM = IRI(OWL.someValuesFrom)
OWL_ALL_VALUES_FROM = IRI(OWL.allValuesFrom)
OWL_HAS_VALUE = IRI(OWL.hasValue)
OWL_INTERSECTION_OF = IRI(OWL.intersectionOf)
OWL_UNION_OF = IRI(OWL.unionOf)
OWL_PROPERTY_CHAIN = IRI(OWL.propertyChainAxiom)
OWL_ONTOLOGY = IRI(OWL.Ontology)
OWL_DISJOINT_WITH = IRI(OWL.disjointWith)


class Restriction:
    """A deferred class-expression: knows how to write itself into a graph."""

    def __init__(self, kind: str, payload) -> None:
        self.kind = kind
        self.payload = payload

    def to_node(self, graph: Graph):
        node = BNode()
        if self.kind in ("some", "only", "value"):
            prop, filler = self.payload
            graph.add((node, RDF_TYPE, OWL_RESTRICTION))
            graph.add((node, OWL_ON_PROPERTY, prop))
            if self.kind == "some":
                graph.add((node, OWL_SOME_VALUES_FROM, _resolve(graph, filler)))
            elif self.kind == "only":
                graph.add((node, OWL_ALL_VALUES_FROM, _resolve(graph, filler)))
            else:
                graph.add((node, OWL_HAS_VALUE, filler))
        elif self.kind in ("intersection", "union"):
            graph.add((node, RDF_TYPE, OWL_CLASS))
            members = [_resolve(graph, member) for member in self.payload]
            head = make_collection(graph, members)
            predicate = OWL_INTERSECTION_OF if self.kind == "intersection" else OWL_UNION_OF
            graph.add((node, predicate, head))
        else:  # pragma: no cover - guarded by the factory functions below
            raise ValueError(f"Unknown restriction kind {self.kind!r}")
        return node


def _resolve(graph: Graph, value):
    if isinstance(value, Restriction):
        return value.to_node(graph)
    return value


def some_values_from(prop: IRI, filler) -> Restriction:
    """``prop some filler``."""
    return Restriction("some", (prop, filler))


def all_values_from(prop: IRI, filler) -> Restriction:
    """``prop only filler``."""
    return Restriction("only", (prop, filler))


def has_value(prop: IRI, value) -> Restriction:
    """``prop value value``."""
    return Restriction("value", (prop, value))


def intersection_of(*members) -> Restriction:
    """``members[0] and members[1] and ...``."""
    return Restriction("intersection", list(members))


def union_of(*members) -> Restriction:
    """``members[0] or members[1] or ...``."""
    return Restriction("union", list(members))


class OntologyBuilder:
    """Accumulates OWL declarations into a graph."""

    def __init__(self, ontology_iri: Optional[IRI] = None, graph: Optional[Graph] = None) -> None:
        self.graph = graph if graph is not None else Graph()
        if ontology_iri is not None:
            self.graph.add((ontology_iri, RDF_TYPE, OWL_ONTOLOGY))
            self.ontology_iri = ontology_iri
        else:
            self.ontology_iri = None

    # ------------------------------------------------------------------
    def declare_class(
        self,
        iri: IRI,
        label: Optional[str] = None,
        comment: Optional[str] = None,
        subclass_of: Sequence = (),
        equivalent_to: Sequence = (),
        disjoint_with: Sequence[IRI] = (),
    ) -> IRI:
        """Declare an ``owl:Class`` with optional axioms."""
        g = self.graph
        g.add((iri, RDF_TYPE, OWL_CLASS))
        if label:
            g.add((iri, RDFS_LABEL, Literal(label, language="en")))
        if comment:
            g.add((iri, RDFS_COMMENT, Literal(comment, language="en")))
        for parent in subclass_of:
            g.add((iri, RDFS_SUBCLASSOF, _resolve(g, parent)))
        for other in equivalent_to:
            g.add((iri, OWL_EQUIVALENT_CLASS, _resolve(g, other)))
        for other in disjoint_with:
            g.add((iri, OWL_DISJOINT_WITH, other))
        return iri

    def declare_object_property(
        self,
        iri: IRI,
        label: Optional[str] = None,
        comment: Optional[str] = None,
        subproperty_of: Sequence[IRI] = (),
        inverse_of: Optional[IRI] = None,
        domain: Optional[IRI] = None,
        range: Optional[IRI] = None,
        transitive: bool = False,
        symmetric: bool = False,
        functional: bool = False,
        property_chain: Optional[Sequence[IRI]] = None,
    ) -> IRI:
        """Declare an ``owl:ObjectProperty`` with optional characteristics."""
        g = self.graph
        g.add((iri, RDF_TYPE, OWL_OBJECT_PROPERTY))
        if label:
            g.add((iri, RDFS_LABEL, Literal(label, language="en")))
        if comment:
            g.add((iri, RDFS_COMMENT, Literal(comment, language="en")))
        for parent in subproperty_of:
            g.add((iri, RDFS_SUBPROPERTYOF, parent))
        if inverse_of is not None:
            g.add((iri, OWL_INVERSE_OF, inverse_of))
        if domain is not None:
            g.add((iri, RDFS_DOMAIN, domain))
        if range is not None:
            g.add((iri, RDFS_RANGE, range))
        if transitive:
            g.add((iri, RDF_TYPE, OWL_TRANSITIVE))
        if symmetric:
            g.add((iri, RDF_TYPE, OWL_SYMMETRIC))
        if functional:
            g.add((iri, RDF_TYPE, OWL_FUNCTIONAL))
        if property_chain:
            head = make_collection(g, list(property_chain))
            g.add((iri, OWL_PROPERTY_CHAIN, head))
        return iri

    def declare_data_property(
        self,
        iri: IRI,
        label: Optional[str] = None,
        comment: Optional[str] = None,
        domain: Optional[IRI] = None,
        range: Optional[IRI] = None,
        functional: bool = False,
    ) -> IRI:
        """Declare an ``owl:DatatypeProperty``."""
        g = self.graph
        g.add((iri, RDF_TYPE, OWL_DATATYPE_PROPERTY))
        if label:
            g.add((iri, RDFS_LABEL, Literal(label, language="en")))
        if comment:
            g.add((iri, RDFS_COMMENT, Literal(comment, language="en")))
        if domain is not None:
            g.add((iri, RDFS_DOMAIN, domain))
        if range is not None:
            g.add((iri, RDFS_RANGE, range))
        if functional:
            g.add((iri, RDF_TYPE, OWL_FUNCTIONAL))
        return iri

    def add_individual(
        self,
        iri: IRI,
        types: Sequence[IRI] = (),
        label: Optional[str] = None,
        properties: Optional[dict] = None,
    ) -> IRI:
        """Assert an individual with types and property values."""
        g = self.graph
        g.add((iri, RDF_TYPE, OWL_NAMED_INDIVIDUAL))
        for type_iri in types:
            g.add((iri, RDF_TYPE, type_iri))
        if label:
            g.add((iri, RDFS_LABEL, Literal(label, language="en")))
        if properties:
            for predicate, values in properties.items():
                if not isinstance(values, (list, tuple, set)):
                    values = [values]
                for value in values:
                    g.add((iri, predicate, value))
        return iri

    def subclass_axiom(self, sub, sup) -> None:
        """Assert ``sub ⊑ sup`` where either side may be a :class:`Restriction`."""
        self.graph.add((_resolve(self.graph, sub), RDFS_SUBCLASSOF, _resolve(self.graph, sup)))
