"""The three ontologies of the reproduction: EO, the food ontology and FEO."""

from . import eo, feo, food
from .builder import (
    OntologyBuilder,
    Restriction,
    all_values_from,
    has_value,
    intersection_of,
    some_values_from,
    union_of,
)
from .eo import build_eo_graph
from .feo import build_combined_ontology, build_feo_graph
from .food import build_food_graph

__all__ = [
    "OntologyBuilder",
    "Restriction",
    "all_values_from",
    "build_combined_ontology",
    "build_eo_graph",
    "build_feo_graph",
    "build_food_graph",
    "eo",
    "feo",
    "food",
    "has_value",
    "intersection_of",
    "some_values_from",
    "union_of",
]
