"""The Food Explanation Ontology (FEO) — the paper's primary contribution.

FEO extends the Explanation Ontology (:mod:`repro.ontology.eo`) and the
What-To-Make food ontology (:mod:`repro.ontology.food`) with:

* the ``feo:Characteristic`` hierarchy of Figure 1 — ``feo:Parameter``,
  ``feo:UserCharacteristic`` and ``feo:SystemCharacteristic`` with their
  food-specific subclasses (liked / disliked / allergic foods, diet,
  health-condition and goal characteristics, season, location, budget,
  meal-time characteristics);
* the property lattice of Figure 2 — the transitive
  ``feo:hasCharacteristic`` / ``feo:isCharacteristicOf`` pair, the opposing
  pair ``feo:isOpposedBy`` / ``feo:opposes``, and sub-properties such as
  ``feo:forbids`` (a sub-property of *both* ``feo:isOpposedBy`` and
  ``feo:isCharacteristicOf``, exactly as the paper describes) and
  ``feo:recommends``;
* the ``feo:isInternal`` flag that partitions characteristics into
  food/health-internal vs. external (season, location, budget) — the
  distinction contextual explanations rely on;
* OWL definitions that let the reasoner classify individuals into
  ``eo:Fact`` and ``eo:Foil`` (Figure 3), into ``feo:LikedFoodCharacteristic``
  / ``feo:AllergicFoodCharacteristic`` etc., and propagate user/system
  characteristics to the ``feo:Ecosystem`` individual via property chains;
* question modelling (``feo:Question`` with primary/secondary parameters)
  used by the competency questions;
* a small set of shared individuals (seasons, budgets, meal times, health
  conditions, nutritional goals) that both the knowledge graph and the
  scenario builder reference.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..rdf.graph import Graph
from ..rdf.namespace import FEO, XSD
from ..rdf.terms import IRI, Literal
from . import eo, food
from .builder import OntologyBuilder, has_value, intersection_of, some_values_from, union_of

__all__ = [
    "build_feo_graph",
    "build_combined_ontology",
    "SEASONS",
    "BUDGET_LEVELS",
    "MEAL_TIMES",
    "HEALTH_CONDITIONS",
    "NUTRITIONAL_GOALS",
    "INTERNAL_CHARACTERISTIC_CLASSES",
    "EXTERNAL_CHARACTERISTIC_CLASSES",
]

# ---------------------------------------------------------------------------
# Classes (Figure 1)
# ---------------------------------------------------------------------------
Characteristic = IRI(FEO.Characteristic)
Parameter = IRI(FEO.Parameter)
PrimaryParameter = IRI(FEO.PrimaryParameter)
SecondaryParameter = IRI(FEO.SecondaryParameter)
UserCharacteristic = IRI(FEO.UserCharacteristic)
SystemCharacteristic = IRI(FEO.SystemCharacteristic)
EcosystemCharacteristic = IRI(FEO.EcosystemCharacteristic)

LikedFoodCharacteristic = IRI(FEO.LikedFoodCharacteristic)
DislikedFoodCharacteristic = IRI(FEO.DislikedFoodCharacteristic)
AllergicFoodCharacteristic = IRI(FEO.AllergicFoodCharacteristic)
DietCharacteristic = IRI(FEO.DietCharacteristic)
HealthConditionCharacteristic = IRI(FEO.HealthConditionCharacteristic)
NutritionalGoalCharacteristic = IRI(FEO.NutritionalGoalCharacteristic)
BudgetCharacteristic = IRI(FEO.BudgetCharacteristic)

SeasonCharacteristic = IRI(FEO.SeasonCharacteristic)
LocationCharacteristic = IRI(FEO.LocationCharacteristic)
TimeCharacteristic = IRI(FEO.TimeCharacteristic)

IngredientCharacteristic = IRI(FEO.IngredientCharacteristic)
NutrientCharacteristic = IRI(FEO.NutrientCharacteristic)
FoodCharacteristic = IRI(FEO.FoodCharacteristic)

Ecosystem = IRI(FEO.Ecosystem)
RecommenderSystem = IRI(FEO.RecommenderSystem)

Question = IRI(FEO.Question)
WhyQuestion = IRI(FEO.WhyQuestion)
ContrastiveQuestion = IRI(FEO.ContrastiveQuestion)
WhatIfQuestion = IRI(FEO.WhatIfQuestion)

# ---------------------------------------------------------------------------
# Properties (Figure 2)
# ---------------------------------------------------------------------------
hasCharacteristic = IRI(FEO.hasCharacteristic)
isCharacteristicOf = IRI(FEO.isCharacteristicOf)
isOpposedBy = IRI(FEO.isOpposedBy)
opposes = IRI(FEO.opposes)

likes = IRI(FEO.likes)
likedBy = IRI(FEO.likedBy)
dislikes = IRI(FEO.dislikes)
dislikedBy = IRI(FEO.dislikedBy)
allergicTo = IRI(FEO.allergicTo)
allergenOf = IRI(FEO.allergenOf)
followsDiet = IRI(FEO.followsDiet)
dietOf = IRI(FEO.dietOf)
hasCondition = IRI(FEO.hasCondition)
conditionOf = IRI(FEO.conditionOf)
hasGoal = IRI(FEO.hasGoal)
goalOf = IRI(FEO.goalOf)
hasBudget = IRI(FEO.hasBudget)
budgetOf = IRI(FEO.budgetOf)

currentSeason = IRI(FEO.currentSeason)
seasonOfSystem = IRI(FEO.seasonOfSystem)
locatedIn = IRI(FEO.locatedIn)
locationOf = IRI(FEO.locationOf)
currentMealTime = IRI(FEO.currentMealTime)

isIngredientOf = IRI(FEO.isIngredientOf)
availableInSeason = IRI(FEO.availableInSeason)
seasonOf = IRI(FEO.seasonOf)
availableInRegion = IRI(FEO.availableInRegion)
regionOf = IRI(FEO.regionOf)
containsAllergen = IRI(FEO.containsAllergen)
allergenIn = IRI(FEO.allergenIn)
nutrientOf = IRI(FEO.nutrientOf)
dietSuitableFor = IRI(FEO.dietSuitableFor)
requiresBudget = IRI(FEO.requiresBudget)
budgetRequiredBy = IRI(FEO.budgetRequiredBy)

recommends = IRI(FEO.recommends)
forbids = IRI(FEO.forbids)

hasUser = IRI(FEO.hasUser)
hasSystem = IRI(FEO.hasSystem)
hasEcosystemCharacteristic = IRI(FEO.hasEcosystemCharacteristic)
ecosystemCharacteristicOf = IRI(FEO.ecosystemCharacteristicOf)

hasParameter = IRI(FEO.hasParameter)
hasPrimaryParameter = IRI(FEO.hasPrimaryParameter)
hasSecondaryParameter = IRI(FEO.hasSecondaryParameter)
askedBy = IRI(FEO.askedBy)
aboutRecommendation = IRI(FEO.aboutRecommendation)
hasExplanation = IRI(FEO.hasExplanation)
hasHypothetical = IRI(FEO.hasHypothetical)

isInternal = IRI(FEO.isInternal)

# ---------------------------------------------------------------------------
# Shared individuals
# ---------------------------------------------------------------------------
SEASONS: Dict[str, IRI] = {
    "spring": IRI(FEO.Spring),
    "summer": IRI(FEO.Summer),
    "autumn": IRI(FEO.Autumn),
    "winter": IRI(FEO.Winter),
}

BUDGET_LEVELS: Dict[str, IRI] = {
    "low": IRI(FEO.LowBudget),
    "medium": IRI(FEO.MediumBudget),
    "high": IRI(FEO.HighBudget),
}

MEAL_TIMES: Dict[str, IRI] = {
    "breakfast": IRI(FEO.BreakfastTime),
    "lunch": IRI(FEO.LunchTime),
    "dinner": IRI(FEO.DinnerTime),
    "snack": IRI(FEO.SnackTime),
}

HEALTH_CONDITIONS: Dict[str, IRI] = {
    "pregnancy": IRI(FEO.Pregnancy),
    "diabetes": IRI(FEO.Diabetes),
    "hypertension": IRI(FEO.Hypertension),
    "lactose_intolerance": IRI(FEO.LactoseIntolerance),
    "celiac_disease": IRI(FEO.CeliacDisease),
    "high_cholesterol": IRI(FEO.HighCholesterol),
}

NUTRITIONAL_GOALS: Dict[str, IRI] = {
    "high_folate": IRI(FEO.HighFolateGoal),
    "low_sodium": IRI(FEO.LowSodiumGoal),
    "high_protein": IRI(FEO.HighProteinGoal),
    "low_carb": IRI(FEO.LowCarbGoal),
    "high_fiber": IRI(FEO.HighFiberGoal),
    "weight_loss": IRI(FEO.WeightLossGoal),
}

#: Characteristic classes flagged ``feo:isInternal true`` (food/health domain).
INTERNAL_CHARACTERISTIC_CLASSES = [
    IngredientCharacteristic,
    NutrientCharacteristic,
    FoodCharacteristic,
    DietCharacteristic,
    LikedFoodCharacteristic,
    DislikedFoodCharacteristic,
    AllergicFoodCharacteristic,
    HealthConditionCharacteristic,
    NutritionalGoalCharacteristic,
]

#: Characteristic classes flagged ``feo:isInternal false`` (external context).
EXTERNAL_CHARACTERISTIC_CLASSES = [
    SeasonCharacteristic,
    LocationCharacteristic,
    BudgetCharacteristic,
    TimeCharacteristic,
]


def build_feo_graph(graph: Optional[Graph] = None) -> Graph:
    """Build the FEO schema (classes, properties, definitions, shared individuals)."""
    builder = OntologyBuilder(IRI("https://purl.org/heals/food-explanation-ontology"), graph=graph)
    b = builder
    g = builder.graph

    # -- Figure 1: the Characteristic hierarchy -----------------------------
    b.declare_class(Characteristic, "Characteristic",
                    "Anything that can describe a question parameter, the user or the system.")
    b.declare_class(Parameter, "Parameter",
                    "An entity of interest in a user's question.",
                    subclass_of=[Characteristic])
    b.declare_class(PrimaryParameter, "Primary Parameter", subclass_of=[Parameter])
    b.declare_class(SecondaryParameter, "Secondary Parameter", subclass_of=[Parameter])
    b.declare_class(UserCharacteristic, "User Characteristic",
                    "A characteristic describing the user of the recommender.",
                    subclass_of=[Characteristic])
    b.declare_class(SystemCharacteristic, "System Characteristic",
                    "A characteristic describing the environment of the recommender system.",
                    subclass_of=[Characteristic])
    b.declare_class(EcosystemCharacteristic, "Ecosystem Characteristic",
                    "A user or system characteristic (the 'ecosystem' of the question).",
                    equivalent_to=[union_of(UserCharacteristic, SystemCharacteristic)])

    # User-side subclasses.
    b.declare_class(LikedFoodCharacteristic, "Liked Food Characteristic",
                    "Foods liked by some user.",
                    subclass_of=[UserCharacteristic],
                    equivalent_to=[some_values_from(likedBy, food.User)])
    b.declare_class(DislikedFoodCharacteristic, "Disliked Food Characteristic",
                    "Foods disliked by some user.",
                    subclass_of=[UserCharacteristic],
                    equivalent_to=[some_values_from(dislikedBy, food.User)])
    b.declare_class(AllergicFoodCharacteristic, "Allergic Food Characteristic",
                    "Foods or ingredients some user is allergic to.",
                    subclass_of=[UserCharacteristic],
                    equivalent_to=[some_values_from(allergenOf, food.User)])
    b.declare_class(DietCharacteristic, "Diet Characteristic",
                    "Diets followed by some user.",
                    subclass_of=[UserCharacteristic],
                    equivalent_to=[some_values_from(dietOf, food.User)])
    b.declare_class(HealthConditionCharacteristic, "Health Condition Characteristic",
                    "Health conditions (pregnancy, diabetes...) of the user.",
                    subclass_of=[UserCharacteristic])
    b.declare_class(NutritionalGoalCharacteristic, "Nutritional Goal Characteristic",
                    "Nutritional goals (low sodium, high folate...) of the user.",
                    subclass_of=[UserCharacteristic])
    b.declare_class(BudgetCharacteristic, "Budget Characteristic",
                    "Budget levels constraining the user or required by a recipe.",
                    subclass_of=[UserCharacteristic])

    # System-side subclasses.
    b.declare_class(SeasonCharacteristic, "Season Characteristic",
                    "Seasons of the year; the system's current season is one of these.",
                    subclass_of=[SystemCharacteristic])
    b.declare_class(LocationCharacteristic, "Location Characteristic",
                    "Geographic regions the system (or an ingredient) is located/available in.",
                    subclass_of=[SystemCharacteristic])
    b.declare_class(TimeCharacteristic, "Time Characteristic",
                    "Meal times (breakfast, lunch, dinner).",
                    subclass_of=[SystemCharacteristic])

    # Food-internal characteristic classes — also eo:knowledge so that the
    # SPARQL templates can exclude them from user-facing explanations.
    b.declare_class(IngredientCharacteristic, "Ingredient Characteristic",
                    "Ingredients, viewed as characteristics of the recipes containing them.",
                    subclass_of=[Characteristic, eo.Knowledge],
                    equivalent_to=[some_values_from(isIngredientOf, food.Food)])
    b.declare_class(NutrientCharacteristic, "Nutrient Characteristic",
                    "Nutrients, viewed as characteristics of the foods providing them.",
                    subclass_of=[Characteristic, eo.Knowledge],
                    equivalent_to=[some_values_from(nutrientOf, food.Food)])
    b.declare_class(FoodCharacteristic, "Food Characteristic",
                    "Foods used as characteristics (e.g. a liked recipe).",
                    subclass_of=[Characteristic, eo.Knowledge])

    # Scenario scaffolding classes.
    b.declare_class(Ecosystem, "Ecosystem",
                    "The combination of the user profile and the system context "
                    "against which facts and foils are judged.")
    b.declare_class(RecommenderSystem, "Recommender System",
                    subclass_of=[eo.AISystem])

    # Question classes.
    b.declare_class(Question, "Question", subclass_of=[eo.UserQuestion])
    b.declare_class(WhyQuestion, "Why Question", subclass_of=[Question])
    b.declare_class(ContrastiveQuestion, "Contrastive Question", subclass_of=[Question])
    b.declare_class(WhatIfQuestion, "What-If Question", subclass_of=[Question])

    # -- Figure 2: the property lattice --------------------------------------
    b.declare_object_property(hasCharacteristic, "has characteristic",
                              "Transitive positive association between an entity and a characteristic.",
                              inverse_of=isCharacteristicOf, transitive=True,
                              range=Characteristic)
    b.declare_object_property(isCharacteristicOf, "is characteristic of",
                              inverse_of=hasCharacteristic)
    b.declare_object_property(isOpposedBy, "is opposed by",
                              "Negative association: the subject is opposed by the object.",
                              inverse_of=opposes)
    b.declare_object_property(opposes, "opposes", inverse_of=isOpposedBy)

    # User profile properties.
    b.declare_object_property(likes, "likes", subproperty_of=[hasCharacteristic],
                              inverse_of=likedBy, domain=food.User)
    b.declare_object_property(likedBy, "liked by", inverse_of=likes)
    b.declare_object_property(dislikes, "dislikes", subproperty_of=[isOpposedBy],
                              inverse_of=dislikedBy, domain=food.User)
    b.declare_object_property(dislikedBy, "disliked by", inverse_of=dislikes)
    b.declare_object_property(allergicTo, "allergic to", subproperty_of=[isOpposedBy],
                              inverse_of=allergenOf, domain=food.User)
    b.declare_object_property(allergenOf, "allergen of", inverse_of=allergicTo)
    b.declare_object_property(followsDiet, "follows diet", subproperty_of=[hasCharacteristic],
                              inverse_of=dietOf, domain=food.User, range=food.Diet)
    b.declare_object_property(dietOf, "diet of", inverse_of=followsDiet)
    b.declare_object_property(hasCondition, "has health condition",
                              subproperty_of=[hasCharacteristic], inverse_of=conditionOf,
                              domain=food.User, range=HealthConditionCharacteristic)
    b.declare_object_property(conditionOf, "condition of", inverse_of=hasCondition)
    b.declare_object_property(hasGoal, "has nutritional goal",
                              subproperty_of=[hasCharacteristic], inverse_of=goalOf,
                              domain=food.User, range=NutritionalGoalCharacteristic)
    b.declare_object_property(goalOf, "goal of", inverse_of=hasGoal)
    b.declare_object_property(hasBudget, "has budget", subproperty_of=[hasCharacteristic],
                              inverse_of=budgetOf, range=BudgetCharacteristic)
    b.declare_object_property(budgetOf, "budget of", inverse_of=hasBudget)

    # System context properties.
    b.declare_object_property(currentSeason, "current season",
                              subproperty_of=[hasCharacteristic], inverse_of=seasonOfSystem,
                              range=SeasonCharacteristic)
    b.declare_object_property(seasonOfSystem, "season of system", inverse_of=currentSeason)
    b.declare_object_property(locatedIn, "located in", subproperty_of=[hasCharacteristic],
                              inverse_of=locationOf, range=LocationCharacteristic)
    b.declare_object_property(locationOf, "location of", inverse_of=locatedIn)
    b.declare_object_property(currentMealTime, "current meal time",
                              subproperty_of=[hasCharacteristic], range=TimeCharacteristic)

    # Food / knowledge-graph properties (FEO's expansion of What-To-Make).
    b.declare_object_property(isIngredientOf, "is ingredient of",
                              inverse_of=food.hasIngredient, domain=food.Ingredient,
                              range=food.Food)
    g.add((food.hasIngredient, IRI("http://www.w3.org/2000/01/rdf-schema#subPropertyOf"),
           hasCharacteristic))
    b.declare_object_property(availableInSeason, "available in season",
                              subproperty_of=[hasCharacteristic], inverse_of=seasonOf,
                              domain=food.Food, range=SeasonCharacteristic)
    b.declare_object_property(seasonOf, "season of", inverse_of=availableInSeason)
    b.declare_object_property(availableInRegion, "available in region",
                              subproperty_of=[hasCharacteristic], inverse_of=regionOf,
                              domain=food.Food, range=LocationCharacteristic)
    b.declare_object_property(regionOf, "region of", inverse_of=availableInRegion)
    b.declare_object_property(containsAllergen, "contains allergen",
                              subproperty_of=[hasCharacteristic], inverse_of=allergenIn,
                              domain=food.Food, range=food.Allergen)
    b.declare_object_property(allergenIn, "allergen in", inverse_of=containsAllergen)
    b.declare_object_property(nutrientOf, "nutrient of", inverse_of=food.hasNutrient)
    g.add((food.hasNutrient, IRI("http://www.w3.org/2000/01/rdf-schema#subPropertyOf"),
           hasCharacteristic))
    b.declare_object_property(dietSuitableFor, "diet suitable for",
                              inverse_of=food.suitableForDiet)
    g.add((food.suitableForDiet, IRI("http://www.w3.org/2000/01/rdf-schema#subPropertyOf"),
           hasCharacteristic))
    b.declare_object_property(requiresBudget, "requires budget",
                              subproperty_of=[hasCharacteristic], inverse_of=budgetRequiredBy,
                              domain=food.Food, range=BudgetCharacteristic)
    b.declare_object_property(budgetRequiredBy, "budget required by", inverse_of=requiresBudget)

    # Health-knowledge properties: the interplay the paper highlights —
    # forbids is a sub-property of BOTH isOpposedBy and isCharacteristicOf.
    b.declare_object_property(recommends, "recommends",
                              "A condition or goal recommends a food.",
                              subproperty_of=[isCharacteristicOf])
    b.declare_object_property(forbids, "forbids",
                              "A condition or goal forbids a food.",
                              subproperty_of=[isOpposedBy, isCharacteristicOf])
    # Forbidding or recommending an ingredient extends to the dishes made from
    # it (the Listing 3 example: pregnancy forbids raw fish, hence sushi).
    b.declare_object_property(forbids, property_chain=[forbids, isIngredientOf])
    b.declare_object_property(recommends, property_chain=[recommends, isIngredientOf])

    # Ecosystem scaffolding: the profile and context assertions of the user and
    # of the system become (non-transitive) ecosystem characteristics via
    # property chains, and the user's oppositions (allergies, dislikes,
    # condition-forbidden foods) become oppositions of the ecosystem.  Using a
    # dedicated non-transitive property keeps "present in the ecosystem"
    # (Figure 3) limited to what the profile and context directly assert,
    # rather than everything reachable through the transitive
    # hasCharacteristic closure of a liked recipe.
    b.declare_object_property(hasUser, "has user", domain=Ecosystem, range=food.User)
    b.declare_object_property(hasSystem, "has system", domain=Ecosystem, range=RecommenderSystem)
    b.declare_object_property(hasEcosystemCharacteristic, "has ecosystem characteristic",
                              inverse_of=ecosystemCharacteristicOf, range=Characteristic)
    b.declare_object_property(ecosystemCharacteristicOf, "ecosystem characteristic of",
                              inverse_of=hasEcosystemCharacteristic)
    for user_property in (likes, followsDiet, hasCondition, hasGoal, hasBudget):
        b.declare_object_property(hasEcosystemCharacteristic,
                                  property_chain=[hasUser, user_property])
    for system_property in (currentSeason, locatedIn, currentMealTime, hasBudget):
        b.declare_object_property(hasEcosystemCharacteristic,
                                  property_chain=[hasSystem, system_property])
    b.declare_object_property(isOpposedBy, property_chain=[hasUser, isOpposedBy])
    b.declare_object_property(isOpposedBy, property_chain=[hasSystem, isOpposedBy])
    # A condition or goal the user has transfers its forbidden foods to the
    # user (and hence, via the chain above, to the ecosystem).
    b.declare_object_property(isOpposedBy, property_chain=[hasCondition, forbids])
    b.declare_object_property(isOpposedBy, property_chain=[hasGoal, forbids])

    # Question properties.
    b.declare_object_property(hasParameter, "has parameter", domain=Question, range=Parameter)
    b.declare_object_property(hasPrimaryParameter, "has primary parameter",
                              subproperty_of=[hasParameter], range=PrimaryParameter)
    b.declare_object_property(hasSecondaryParameter, "has secondary parameter",
                              subproperty_of=[hasParameter], range=SecondaryParameter)
    b.declare_object_property(askedBy, "asked by", domain=Question, range=food.User)
    b.declare_object_property(aboutRecommendation, "about recommendation",
                              domain=Question, range=eo.SystemRecommendation)
    b.declare_object_property(hasExplanation, "has explanation",
                              domain=Question, range=eo.Explanation)
    b.declare_object_property(hasHypothetical, "has hypothetical",
                              "Links a what-if question to the hypothesised characteristic.",
                              subproperty_of=[hasParameter], domain=WhatIfQuestion)

    # The internal/external flag.
    b.declare_data_property(isInternal, "is internal",
                            "True for characteristics from the food and health domain, "
                            "false for external context such as season, location and budget.",
                            range=IRI(XSD.boolean))
    for cls in INTERNAL_CHARACTERISTIC_CLASSES:
        b.subclass_axiom(cls, has_value(isInternal, Literal(True)))
    for cls in EXTERNAL_CHARACTERISTIC_CLASSES:
        b.subclass_axiom(cls, has_value(isInternal, Literal(False)))

    # -- Figure 3: fact and foil definitions ----------------------------------
    # A fact supports a question parameter and is present in the ecosystem; a
    # foil (in its OWL-expressible reading) supports a parameter while opposing
    # the ecosystem.  The absent-from-ecosystem foil case is closed-world and
    # is added by repro.core.facts_foils.
    b.declare_class(eo.Fact, equivalent_to=[
        intersection_of(
            some_values_from(isCharacteristicOf, Parameter),
            some_values_from(ecosystemCharacteristicOf, Ecosystem),
        )
    ])
    b.declare_class(eo.Foil, equivalent_to=[
        intersection_of(
            some_values_from(isCharacteristicOf, Parameter),
            some_values_from(opposes, Ecosystem),
        )
    ])

    # -- Shared individuals ----------------------------------------------------
    for name, iri in SEASONS.items():
        b.add_individual(iri, [SeasonCharacteristic], label=name.title())
    for name, iri in BUDGET_LEVELS.items():
        b.add_individual(iri, [BudgetCharacteristic], label=f"{name.title()} Budget")
    for name, iri in MEAL_TIMES.items():
        b.add_individual(iri, [TimeCharacteristic], label=name.title())
    for name, iri in HEALTH_CONDITIONS.items():
        b.add_individual(iri, [HealthConditionCharacteristic],
                         label=name.replace("_", " ").title())
    for name, iri in NUTRITIONAL_GOALS.items():
        b.add_individual(iri, [NutritionalGoalCharacteristic],
                         label=name.replace("_", " ").title())

    return g


def build_combined_ontology(graph: Optional[Graph] = None) -> Graph:
    """Build EO + food ontology + FEO into a single graph (FEO's import closure)."""
    graph = graph if graph is not None else Graph()
    eo.build_eo_graph(graph)
    food.build_food_graph(graph)
    build_feo_graph(graph)
    return graph
