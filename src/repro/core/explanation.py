"""Explanation data model.

An :class:`Explanation` is what the engine hands back to an application:
the explanation type (one of the nine Table I types), the question it
addresses, the structured items extracted from the knowledge graph (each
an :class:`ExplanationItem`), the SPARQL query that produced them (when a
query was involved) and a natural-language rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .questions import Question

__all__ = ["ExplanationItem", "Explanation"]


@dataclass(frozen=True)
class ExplanationItem:
    """One piece of evidence inside an explanation."""

    subject: str                  # human-readable subject (e.g. "Autumn")
    role: str                     # "fact", "foil", "context", "forbidden", "recommended", ...
    characteristic_type: str = "" # e.g. "SeasonCharacteristic"
    detail: str = ""              # free-text elaboration
    value: Optional[str] = None   # optional associated value (e.g. the inherited food)

    def describe(self) -> str:
        parts = [self.subject]
        if self.characteristic_type:
            parts.append(f"({self.characteristic_type})")
        if self.detail:
            parts.append(f"- {self.detail}")
        return " ".join(parts)


@dataclass
class Explanation:
    """A complete explanation for one user question."""

    explanation_type: str
    question: Question
    items: List[ExplanationItem] = field(default_factory=list)
    text: str = ""
    query: Optional[str] = None
    bindings: List[Dict[str, Any]] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when no supporting evidence was found."""
        return not self.items

    def items_with_role(self, role: str) -> List[ExplanationItem]:
        return [item for item in self.items if item.role == role]

    def subjects(self) -> List[str]:
        return [item.subject for item in self.items]

    def summary(self) -> Dict[str, Any]:
        """A dictionary view used by reports and the evaluation harness."""
        return {
            "type": self.explanation_type,
            "question": self.question.text,
            "items": [item.describe() for item in self.items],
            "text": self.text,
            "empty": self.is_empty,
        }
