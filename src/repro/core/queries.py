"""Canonical SPARQL templates for the paper's competency questions.

These reproduce Listings 1-3 of the paper, parameterised by the question
IRI (the paper hard-codes the IRI; we substitute it).  The prefix
declarations match the graph's namespace bindings, so the queries also run
verbatim against an exported Turtle file loaded into another SPARQL
engine.

Two forms of each listing are provided:

* ``*_query(question_iri)`` — the display form with the IRI substituted
  into the text, exactly as the paper prints it.  This is what explanation
  objects carry in their ``query`` field and what ``--show-query`` prints.
* ``*_template()`` + ``evaluate_*`` — the served form: a constant template
  with a free ``?question`` variable that is parsed **once** via
  :func:`repro.sparql.prepare_cached` and evaluated many times with the
  question IRI supplied as an initial binding.  Every generator routes its
  evaluation through these, so an explanation service never re-parses a
  competency query.
"""

from __future__ import annotations

from ..rdf.terms import IRI
from ..sparql import Result, prepare_cached

__all__ = [
    "PREFIXES",
    "contextual_query",
    "contextual_template",
    "contrastive_query",
    "contrastive_template",
    "counterfactual_query",
    "counterfactual_template",
    "evaluate_contextual",
    "evaluate_contrastive",
    "evaluate_counterfactual",
    "characteristic_hierarchy_query",
    "property_lattice_query",
    "fact_query",
    "foil_query",
]

PREFIXES = """\
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX owl: <http://www.w3.org/2002/07/owl#>
PREFIX eo: <https://purl.org/heals/eo#>
PREFIX feo: <https://purl.org/heals/feo#>
PREFIX food: <http://purl.org/heals/food/>
PREFIX foodkg: <http://idea.rpi.edu/heals/kb/>
"""


def _contextual_body(subject: str, match_ecosystem: bool) -> str:
    ecosystem_clause = ""
    if match_ecosystem:
        ecosystem_clause = (
            "  ?ecosystem a feo:Ecosystem .\n"
            "  ?ecosystem feo:hasEcosystemCharacteristic ?characteristic .\n"
        )
    return f"""{PREFIXES}
SELECT DISTINCT ?characteristic ?classes
WHERE {{
  {subject} feo:hasParameter ?parameter .
  ?parameter feo:hasCharacteristic ?characteristic .
  ?characteristic feo:isInternal false .
{ecosystem_clause}  ?systemChar a feo:SystemCharacteristic .
  ?userChar a feo:UserCharacteristic .
  FILTER ( ?characteristic = ?systemChar || ?characteristic = ?userChar ) .
  ?characteristic a ?classes .
  ?classes rdfs:subClassOf feo:Characteristic .
  FILTER NOT EXISTS {{ ?classes rdfs:subClassOf eo:knowledge }} .
}}
"""


def contextual_query(question_iri: IRI, match_ecosystem: bool = False) -> str:
    """Listing 1: external characteristics supporting a 'Why should I eat X?' question.

    With ``match_ecosystem`` the query additionally requires the characteristic
    to be present in the ecosystem (the paper's prose — "check if they matched
    any of our environment characteristics" — which the published listing
    leaves implicit because its ontology only materialises the current
    season/region as individuals).
    """
    return _contextual_body(f"<{question_iri}>", match_ecosystem)


def contextual_template(match_ecosystem: bool = False) -> str:
    """The Listing 1 template with a free ``?question`` variable (prepared form)."""
    return _contextual_body("?question", match_ecosystem)


def evaluate_contextual(graph, question_iri: IRI, match_ecosystem: bool = False) -> Result:
    """Run Listing 1 for ``question_iri`` via the prepared-query cache."""
    prepared = prepare_cached(contextual_template(match_ecosystem))
    return prepared.evaluate(graph, {"question": question_iri})


_CONTRASTIVE_WHERE = """\
  ?question feo:hasPrimaryParameter ?parameterA .
  ?question feo:hasSecondaryParameter ?parameterB .
  ?parameterA feo:hasCharacteristic ?factA .
  ?factA a eo:Fact .
  ?factA a ?factType .
  ?factType rdfs:subClassOf+ feo:Characteristic .
  FILTER NOT EXISTS { ?factType rdfs:subClassOf eo:knowledge } .
  FILTER NOT EXISTS { ?s rdfs:subClassOf ?factType } .
  ?parameterB feo:hasCharacteristic ?foilB .
  ?foilB a eo:Foil .
  ?foilB a ?foilType .
  ?foilType rdfs:subClassOf+ feo:Characteristic .
  FILTER NOT EXISTS { ?foilType rdfs:subClassOf eo:knowledge } .
  FILTER NOT EXISTS { ?t rdfs:subClassOf ?foilType } .
}
"""


def contrastive_query(question_iri: IRI) -> str:
    """Listing 2: facts for the primary parameter and foils for the secondary one."""
    return (f"{PREFIXES}\nSELECT DISTINCT ?factType ?factA ?foilType ?foilB\nWHERE {{\n"
            f"  BIND (<{question_iri}> AS ?question) .\n{_CONTRASTIVE_WHERE}")


def contrastive_template() -> str:
    """The Listing 2 template with a free ``?question`` variable (prepared form).

    The display form binds the question IRI with ``BIND``; the prepared form
    leaves ``?question`` free so it can be supplied as an initial binding
    (``BIND`` would raise on an already-bound variable).
    """
    return (f"{PREFIXES}\nSELECT DISTINCT ?factType ?factA ?foilType ?foilB\nWHERE {{\n"
            f"{_CONTRASTIVE_WHERE}")


def evaluate_contrastive(graph, question_iri: IRI) -> Result:
    """Run Listing 2 for ``question_iri`` via the prepared-query cache."""
    prepared = prepare_cached(contrastive_template())
    return prepared.evaluate(graph, {"question": question_iri})


def _counterfactual_body(subject: str) -> str:
    return f"""{PREFIXES}
SELECT DISTINCT ?property ?baseFood ?inheritedFood
WHERE {{
  {subject} feo:hasParameter ?parameter .
  ?parameter ?property ?baseFood .
  ?property rdfs:subPropertyOf feo:isCharacteristicOf .
  ?baseFood a food:Food .
  OPTIONAL {{ ?baseFood feo:isIngredientOf ?inheritedFood . }}
}}
"""


def counterfactual_query(question_iri: IRI) -> str:
    """Listing 3: foods forbidden or recommended under a hypothetical characteristic."""
    return _counterfactual_body(f"<{question_iri}>")


def counterfactual_template() -> str:
    """The Listing 3 template with a free ``?question`` variable (prepared form)."""
    return _counterfactual_body("?question")


def evaluate_counterfactual(graph, question_iri: IRI) -> Result:
    """Run Listing 3 for ``question_iri`` via the prepared-query cache."""
    prepared = prepare_cached(counterfactual_template())
    return prepared.evaluate(graph, {"question": question_iri})


def characteristic_hierarchy_query() -> str:
    """Figure 1: every (sub)class below feo:Characteristic with its parent."""
    return f"""{PREFIXES}
SELECT DISTINCT ?cls ?parent
WHERE {{
  ?cls rdfs:subClassOf ?parent .
  ?parent rdfs:subClassOf* feo:Characteristic .
  ?cls a owl:Class .
  ?parent a owl:Class .
}}
ORDER BY ?parent ?cls
"""


def property_lattice_query() -> str:
    """Figure 2: the sub-property lattice around isCharacteristicOf / isOpposedBy."""
    return f"""{PREFIXES}
SELECT DISTINCT ?property ?superProperty
WHERE {{
  ?property rdfs:subPropertyOf ?superProperty .
  FILTER ( ?superProperty = feo:isCharacteristicOf || ?superProperty = feo:isOpposedBy
           || ?superProperty = feo:hasCharacteristic ) .
}}
ORDER BY ?superProperty ?property
"""


def fact_query() -> str:
    """All individuals the reasoner classified as eo:Fact."""
    return f"""{PREFIXES}
SELECT DISTINCT ?fact WHERE {{ ?fact a eo:Fact . }} ORDER BY ?fact
"""


def foil_query() -> str:
    """All individuals classified as eo:Foil."""
    return f"""{PREFIXES}
SELECT DISTINCT ?foil WHERE {{ ?foil a eo:Foil . }} ORDER BY ?foil
"""
