"""Competency-question evaluation (Section V of the paper).

The paper evaluates FEO with a task-based methodology: three competency
questions, one per explanation type (contextual, contrastive,
counterfactual), each judged by whether the SPARQL query over the reasoned
ontology returns the expected characteristics.  :data:`PAPER_COMPETENCY_QUESTIONS`
encodes those three questions together with the expectations the paper's
result tables show; :class:`CompetencySuite` runs them (plus any extended
questions) against an :class:`~repro.core.engine.ExplanationEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..users.context import SystemContext
from ..users.personas import paper_context, paper_user
from ..users.profile import UserProfile
from .engine import ExplanationEngine
from .explanation import Explanation
from .questions import (
    ContrastiveQuestion,
    Question,
    WhatIfConditionQuestion,
    WhyQuestion,
)

__all__ = [
    "ExpectedBinding",
    "CompetencyQuestion",
    "CompetencyResult",
    "CompetencySuite",
    "PAPER_COMPETENCY_QUESTIONS",
    "EXTENDED_COMPETENCY_QUESTIONS",
]


@dataclass(frozen=True)
class ExpectedBinding:
    """One (subject, role/type) pair that must appear in the explanation."""

    subject: str
    role: Optional[str] = None
    characteristic_type: Optional[str] = None

    def satisfied_by(self, explanation: Explanation) -> bool:
        for item in explanation.items:
            if item.subject != self.subject:
                continue
            if self.role is not None and item.role != self.role:
                continue
            if (self.characteristic_type is not None
                    and item.characteristic_type != self.characteristic_type):
                continue
            return True
        return False


@dataclass(frozen=True)
class CompetencyQuestion:
    """One competency question with its expected evidence."""

    identifier: str
    question: Question
    explanation_type: str
    expected: Tuple[ExpectedBinding, ...] = ()
    description: str = ""


@dataclass
class CompetencyResult:
    """The outcome of running one competency question."""

    question: CompetencyQuestion
    explanation: Explanation
    missing: List[ExpectedBinding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.missing and not self.explanation.is_empty

    def summary(self) -> Dict[str, object]:
        return {
            "id": self.question.identifier,
            "explanation_type": self.question.explanation_type,
            "question": self.question.question.text,
            "passed": self.passed,
            "items": len(self.explanation.items),
            "missing": [binding.subject for binding in self.missing],
        }


#: The three competency questions of the paper, with the evidence the paper's
#: result tables show (Listings 1-3).
PAPER_COMPETENCY_QUESTIONS: Tuple[CompetencyQuestion, ...] = (
    CompetencyQuestion(
        identifier="CQ1",
        question=WhyQuestion(text="Why should I eat Cauliflower Potato Curry?",
                             recipe="Cauliflower Potato Curry"),
        explanation_type="contextual",
        expected=(ExpectedBinding("Autumn", role="context",
                                  characteristic_type="SeasonCharacteristic"),),
        description="Listing 1: the current season (autumn) explains the recommendation.",
    ),
    CompetencyQuestion(
        identifier="CQ2",
        question=ContrastiveQuestion(
            text="Why should I eat Butternut Squash Soup over a Broccoli Cheddar Soup?",
            primary="Butternut Squash Soup", secondary="Broccoli Cheddar Soup"),
        explanation_type="contrastive",
        expected=(
            ExpectedBinding("Autumn", role="fact", characteristic_type="SeasonCharacteristic"),
            ExpectedBinding("Broccoli", role="foil",
                            characteristic_type="AllergicFoodCharacteristic"),
        ),
        description="Listing 2: butternut squash is in season (fact); the user is allergic to "
                    "broccoli (foil).",
    ),
    CompetencyQuestion(
        identifier="CQ3",
        question=WhatIfConditionQuestion(text="What if I was pregnant?", condition="pregnancy"),
        explanation_type="counterfactual",
        expected=(
            ExpectedBinding("Sushi", role="forbidden"),
            ExpectedBinding("Spinach", role="recommended"),
        ),
        description="Listing 3: pregnancy forbids sushi and recommends folate-rich spinach "
                    "(e.g. in a spinach frittata).",
    ),
)

#: Additional competency questions exercising the remaining Table I types.
EXTENDED_COMPETENCY_QUESTIONS: Tuple[CompetencyQuestion, ...] = (
    CompetencyQuestion(
        identifier="CQ4-scientific",
        question=WhyQuestion(text="What literature recommends Spinach Frittata?",
                             recipe="Spinach Frittata"),
        explanation_type="scientific",
        expected=(ExpectedBinding("high_folate", role="evidence"),),
        description="Scientific: guideline rationale behind folate-rich recommendations.",
    ),
    CompetencyQuestion(
        identifier="CQ5-statistical",
        question=WhyQuestion(text="What evidence from data suggests I follow a vegetarian diet?",
                             recipe="Lentil Soup"),
        explanation_type="statistical",
        expected=(ExpectedBinding("vegetarian", role="statistic"),),
        description="Statistical: share of catalogue recipes compatible with the user's diet.",
    ),
    CompetencyQuestion(
        identifier="CQ6-everyday",
        question=WhyQuestion(text="What foods go together with Sushi?", recipe="Sushi"),
        explanation_type="everyday",
        expected=(),
        description="Everyday: ingredient pairings from recipe co-occurrence.",
    ),
    CompetencyQuestion(
        identifier="CQ7-simulation",
        question=WhyQuestion(text="What if I ate Broccoli Cheddar Soup every day?",
                             recipe="Broccoli Cheddar Soup"),
        explanation_type="simulation_based",
        expected=(),
        description="Simulation: nutritional impact of eating the dish daily.",
    ),
    CompetencyQuestion(
        identifier="CQ8-case-based",
        question=WhyQuestion(text="What results from other users recommend Spinach Frittata?",
                             recipe="Spinach Frittata"),
        explanation_type="case_based",
        expected=(ExpectedBinding("Priya", role="case"),),
        description="Case-based: comparable users who also received the recipe.",
    ),
    CompetencyQuestion(
        identifier="CQ9-trace",
        question=WhyQuestion(text="What steps led to this recommendation?",
                             recipe="Lentil Soup"),
        explanation_type="trace_based",
        expected=(ExpectedBinding("constraint-filter", role="trace_step"),),
        description="Trace-based: replay of the Health Coach pipeline steps.",
    ),
)


class CompetencySuite:
    """Runs competency questions against an explanation engine."""

    def __init__(
        self,
        engine: Optional[ExplanationEngine] = None,
        user: Optional[UserProfile] = None,
        context: Optional[SystemContext] = None,
    ) -> None:
        self.engine = engine if engine is not None else ExplanationEngine()
        self.user = user if user is not None else paper_user()
        self.context = context if context is not None else paper_context()

    def run_question(self, competency_question: CompetencyQuestion) -> CompetencyResult:
        """Run a single competency question and check its expectations."""
        recommendation = None
        if competency_question.explanation_type == "trace_based":
            recipe = getattr(competency_question.question, "recipe", "")
            recommendation = self.engine.recommender.recommend_one(self.user, self.context)
            if recommendation is not None and recipe:
                recommendation.recipe = recipe
        explanation = self.engine.explain(
            competency_question.question,
            self.user,
            self.context,
            explanation_type=competency_question.explanation_type,
            recommendation=recommendation,
        )
        missing = [binding for binding in competency_question.expected
                   if not binding.satisfied_by(explanation)]
        return CompetencyResult(question=competency_question, explanation=explanation,
                                missing=missing)

    def run(
        self,
        questions: Sequence[CompetencyQuestion] = PAPER_COMPETENCY_QUESTIONS,
    ) -> List[CompetencyResult]:
        """Run a sequence of competency questions (the paper's three by default)."""
        return [self.run_question(question) for question in questions]

    def run_all(self) -> List[CompetencyResult]:
        """Run the paper's questions plus the extended Table I coverage."""
        return self.run(tuple(PAPER_COMPETENCY_QUESTIONS) + tuple(EXTENDED_COMPETENCY_QUESTIONS))
