"""Scenario assembly: ontology + knowledge graph + user + system + question.

The paper's pipeline materialises a single RDF graph containing the FEO
schema, the food knowledge graph, the user's profile, the system's
context, and the question being asked — then runs the reasoner and queries
the inferred graph.  :class:`ScenarioBuilder` performs that assembly.

The ontology and the food knowledge graph are loaded once and shared
between scenarios; each :meth:`ScenarioBuilder.build` call copies them and
adds the scenario-specific individuals before reasoning.

Reasoning itself goes through a per-builder
:class:`~repro.owl.closure.MaterializationCache`: an identical request
(same user, context, question and recommendation) assembles a
triple-identical graph, whose fingerprint hits the cache and skips the
reasoner entirely.  This is what makes repeated and batched requests
served by :class:`repro.service.ExplanationService` cheap.

Live scenarios can also be **mutated incrementally**:
:meth:`ScenarioBuilder.update_scenario` adds restrictions, preferences or a
recommendation to an existing scenario, captures the delta with a
:class:`~repro.rdf.graph.ChangeJournal`, and grows the cached closure via
the cache's incremental :meth:`~repro.owl.closure.MaterializationCache.extend`
path instead of re-materialising the whole graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import UnknownEntityError
from ..foodkg.loader import FoodKGLoader
from ..foodkg.schema import FoodCatalog, slugify
from ..ontology import eo, feo, food
from ..owl import AxiomIndex, MaterializationCache, Reasoner
from ..rdf.graph import Graph, Triple
from ..rdf.namespace import FEO, FOODKG, RDFS
from ..rdf.terms import IRI, Literal
from ..recommender.health_coach import Recommendation
from ..users.context import SystemContext
from ..users.profile import UserProfile
from .facts_foils import annotate_facts_and_foils
from .questions import (
    ContrastiveQuestion,
    Question,
    WhatIfConditionQuestion,
    WhatIfIngredientQuestion,
    WhyQuestion,
)

__all__ = ["Scenario", "ScenarioBuilder"]

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
_RDFS_LABEL = IRI(RDFS.label)


@dataclass
class Scenario:
    """A fully assembled and reasoned explanation scenario."""

    question: Question
    question_iri: IRI
    user_iri: IRI
    system_iri: IRI
    ecosystem_iri: IRI
    asserted: Graph
    inferred: Graph
    user: UserProfile
    context: SystemContext
    recommendation: Optional[Recommendation] = None
    parameter_iris: List[IRI] = field(default_factory=list)
    #: Custom data triples accumulated via update_scenario(extra_triples=...);
    #: carried so a later rebuild (e.g. a recommendation swap) can re-apply
    #: them instead of silently dropping facts the builder cannot re-derive.
    extra_triples: Tuple[Triple, ...] = ()

    def query(self, sparql_text: str):
        """Run SPARQL over the inferred (post-reasoning) graph."""
        return self.inferred.query(sparql_text)

    def snapshot(self) -> "Scenario":
        """An isolated read view: the same scenario over COW graph copies.

        :meth:`~repro.rdf.graph.Graph.copy` is cheap (the triple set plus
        the outer index keys; inner entries stay shared copy-on-write), and
        the copies are fully independent of the originals — a reader holding
        a snapshot can never observe a later mutation of the source graphs,
        which is what lets the service answer against a session's scenario
        while an update lands behind it.
        """
        return replace(self, asserted=self.asserted.copy(),
                       inferred=self.inferred.copy())


class ScenarioBuilder:
    """Builds reasoned scenario graphs for questions."""

    def __init__(
        self,
        catalog: FoodCatalog,
        base_graph: Optional[Graph] = None,
        closure_cache: Optional[MaterializationCache] = None,
        use_closure_cache: bool = True,
    ) -> None:
        self.catalog = catalog
        self.loader = FoodKGLoader()
        if base_graph is not None:
            self._base = base_graph
        else:
            self._base = feo.build_combined_ontology()
            self.loader.graph = self._base
            self.loader.load(catalog)
        # Scenario individuals never add schema triples, so one AxiomIndex
        # extracted from the shared base serves every scenario graph —
        # reasoner construction skips the per-build axiom extraction.
        self._axioms = AxiomIndex.from_graph(self._base)
        if closure_cache is not None:
            self.closure_cache: Optional[MaterializationCache] = closure_cache
        else:
            self.closure_cache = MaterializationCache() if use_closure_cache else None

    def _reasoner(self, graph: Graph) -> Reasoner:
        """A reasoner over ``graph`` sharing the base graph's axiom index."""
        return Reasoner(graph, axioms=self._axioms)

    def store_stats(self) -> Dict[str, int]:
        """Storage-engine counters for the shared base graph family.

        Every scenario graph is a :meth:`Graph.copy` of the base, so the
        base dictionary's interning counters describe the whole family:
        cached closures and incremental extensions reuse these IDs instead
        of re-encoding the ontology + knowledge graph per scenario.
        """
        return self._base.store_stats()

    # ------------------------------------------------------------------
    # IRI minting
    # ------------------------------------------------------------------
    def user_iri(self, user: UserProfile) -> IRI:
        return IRI(FOODKG["user/" + slugify(user.identifier)])

    def system_iri(self, context: SystemContext) -> IRI:
        return IRI(FOODKG["system/" + slugify(context.system_name)])

    def ecosystem_iri(self, user: UserProfile, context: SystemContext) -> IRI:
        return IRI(FOODKG["ecosystem/" + slugify(user.identifier)])

    def question_iri(self, question: Question) -> IRI:
        return IRI(FEO[question.local_name()])

    def food_iri(self, name: str) -> IRI:
        """IRI of a recipe or ingredient named in a profile or question."""
        return self.loader.food_iri(self.catalog, name)

    def _food_or_label_iri(self, name: str) -> IRI:
        try:
            return self.food_iri(name)
        except KeyError:
            # Unknown foods (e.g. free-text likes) still get an IRI so the
            # profile is fully represented; they simply carry no KG structure.
            return IRI(FOODKG[slugify(name)])

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def build(
        self,
        question: Question,
        user: UserProfile,
        context: SystemContext,
        recommendation: Optional[Recommendation] = None,
        run_reasoner: bool = True,
    ) -> Scenario:
        """Assemble, reason over and annotate the scenario for ``question``."""
        graph, user_iri, system_iri, ecosystem_iri, question_iri, parameters = \
            self._assemble(question, user, context, recommendation)

        if run_reasoner:
            if self.closure_cache is not None:
                # Identical requests assemble triple-identical graphs, so the
                # fingerprint-keyed cache skips re-materialisation.  The
                # fact/foil annotation runs as the cache's post-process: it
                # lands in the closure before the entry is published, so
                # cache hits share a fully-annotated, read-only graph.
                inferred = self.closure_cache.materialize(
                    graph,
                    reasoner_factory=self._reasoner,
                    post_process=lambda closure: annotate_facts_and_foils(
                        closure, ecosystem_iri),
                )
            else:
                inferred = self._reasoner(graph).run()
                annotate_facts_and_foils(inferred, ecosystem_iri)
        else:
            inferred = graph

        return Scenario(
            question=question,
            question_iri=question_iri,
            user_iri=user_iri,
            system_iri=system_iri,
            ecosystem_iri=ecosystem_iri,
            asserted=graph,
            inferred=inferred,
            user=user,
            context=context,
            recommendation=recommendation,
            parameter_iris=parameters,
        )

    def _assemble(
        self,
        question: Question,
        user: UserProfile,
        context: SystemContext,
        recommendation: Optional[Recommendation],
    ) -> Tuple[Graph, IRI, IRI, IRI, IRI, Dict[str, IRI]]:
        """Assemble the asserted scenario graph (no reasoning).

        Shared by :meth:`build` and :meth:`build_many`: returns the graph
        plus the minted IRIs and question parameters the caller needs to
        construct the :class:`Scenario`.
        """
        graph = self._base.copy()
        user_iri = self.user_iri(user)
        system_iri = self.system_iri(context)
        ecosystem_iri = self.ecosystem_iri(user, context)

        self._assert_user(graph, user_iri, user)
        self._assert_system(graph, system_iri, context)
        self._assert_ecosystem(graph, ecosystem_iri, user_iri, system_iri)
        question_iri, parameters = self._assert_question(graph, question, user_iri)
        if recommendation is not None:
            self._assert_recommendation(graph, recommendation, system_iri, question_iri)
        return graph, user_iri, system_iri, ecosystem_iri, question_iri, parameters

    def build_many(
        self,
        requests: Sequence[Tuple],
        workers: int = 1,
        run_reasoner: bool = True,
    ) -> List[Scenario]:
        """Build many scenarios in one pass, pooling the closures.

        ``requests`` holds ``(question, user, context)`` or ``(question,
        user, context, recommendation)`` tuples.  All scenario graphs are
        assembled up front, then closed together through the cache's
        :meth:`~repro.owl.closure.MaterializationCache.materialise_many`
        — with ``workers > 1`` the misses are reasoned in a process pool
        (see :mod:`repro.owl.parallel`), which is how fleet warm-up closes
        every seeded tenant's scenario in one pool pass.  Results are
        identical to calling :meth:`build` per request, including the
        per-scenario fact/foil annotation and the cache entries left
        behind.
        """
        assembled = []
        for request in requests:
            question, user, context = request[0], request[1], request[2]
            recommendation = request[3] if len(request) > 3 else None
            assembled.append(
                (question, user, context, recommendation)
                + self._assemble(question, user, context, recommendation))
        if run_reasoner:
            graphs = [entry[4] for entry in assembled]
            posts = [
                (lambda closure, iri=entry[7]:
                 annotate_facts_and_foils(closure, iri))
                for entry in assembled
            ]
            cache = self.closure_cache
            if cache is None:
                # No-cache builders still batch through a transient cache:
                # the closures (and annotations) are identical, the entries
                # are simply discarded with it.
                cache = MaterializationCache(max_size=max(1, len(graphs)))
            closures = cache.materialise_many(
                graphs, reasoner_factory=self._reasoner, workers=workers,
                post_process=posts)
        else:
            closures = [entry[4] for entry in assembled]
        scenarios: List[Scenario] = []
        for entry, inferred in zip(assembled, closures):
            question, user, context, recommendation, graph, user_iri, \
                system_iri, ecosystem_iri, question_iri, parameters = entry
            scenarios.append(Scenario(
                question=question,
                question_iri=question_iri,
                user_iri=user_iri,
                system_iri=system_iri,
                ecosystem_iri=ecosystem_iri,
                asserted=graph,
                inferred=inferred,
                user=user,
                context=context,
                recommendation=recommendation,
                parameter_iris=parameters,
            ))
        return scenarios

    # ------------------------------------------------------------------
    # Incremental mutation
    # ------------------------------------------------------------------
    def update_scenario(
        self,
        scenario: Scenario,
        *,
        likes: Sequence[str] = (),
        dislikes: Sequence[str] = (),
        allergies: Sequence[str] = (),
        diets: Sequence[str] = (),
        conditions: Sequence[str] = (),
        goals: Sequence[str] = (),
        recommendation: Optional[Recommendation] = None,
        extra_triples: Iterable[Triple] = (),
    ) -> Scenario:
        """Return a new scenario with the additions applied incrementally.

        The input ``scenario`` (its graphs included) is left untouched: the
        asserted graph is copied, the new facts are asserted under a
        :class:`~repro.rdf.graph.ChangeJournal`, and the captured delta is
        folded into the existing closure through the cache's incremental
        :meth:`~repro.owl.closure.MaterializationCache.extend` path — the
        result is triple-identical to a from-scratch rebuild with the grown
        profile, at a cost proportional to the delta's consequences.

        ``extra_triples`` admits arbitrary additional *data* triples; schema
        axioms are rejected because they would invalidate the builder's
        shared axiom index for every later scenario (rebuild instead).
        """
        user = self._grow_profile(
            scenario.user, likes=likes, dislikes=dislikes, allergies=allergies,
            diets=diets, conditions=conditions, goals=goals)
        if recommendation is not None and scenario.recommendation is not None \
                and recommendation != scenario.recommendation:
            # Replacing a recommendation is a retraction, which the
            # monotone incremental path cannot express: rebuild instead so
            # the old recommendation's triples actually disappear, then fold
            # the scenario's accumulated extra triples (plus any new ones)
            # back in incrementally.
            rebuilt = self.build(scenario.question, user, scenario.context,
                                 recommendation=recommendation)
            carried = scenario.extra_triples + tuple(extra_triples)
            if carried:
                return self.update_scenario(rebuilt, extra_triples=carried)
            return rebuilt
        base_fingerprint = scenario.asserted.fingerprint()
        graph = scenario.asserted.copy()
        with graph.start_journal() as journal:
            self._assert_profile_facts(
                graph, scenario.user_iri, likes=likes, dislikes=dislikes,
                allergies=allergies, diets=diets, conditions=conditions,
                goals=goals)
            if recommendation is not None:
                self._assert_recommendation(
                    graph, recommendation, scenario.system_iri, scenario.question_iri)
            graph.addN(extra_triples)
            added = journal.added()
        schema = [triple for triple in added if Reasoner._is_schema_triple(triple)]
        if schema:
            raise ValueError(
                f"update_scenario only accepts data triples; {schema[0]} is a "
                "schema axiom — build a new scenario (and builder) instead"
            )

        ecosystem_iri = scenario.ecosystem_iri
        if self.closure_cache is not None:
            inferred = self.closure_cache.extend(
                graph, base_fingerprint, added,
                reasoner_factory=self._reasoner,
                post_process=lambda closure: annotate_facts_and_foils(
                    closure, ecosystem_iri),
            )
        else:
            # Without a cache there is no record of which closure triples are
            # closed-world annotations, so rebuild from scratch.
            inferred = self._reasoner(graph).run()
            annotate_facts_and_foils(inferred, ecosystem_iri)

        return Scenario(
            question=scenario.question,
            question_iri=scenario.question_iri,
            user_iri=scenario.user_iri,
            system_iri=scenario.system_iri,
            ecosystem_iri=ecosystem_iri,
            asserted=graph,
            inferred=inferred,
            user=user,
            context=scenario.context,
            recommendation=recommendation if recommendation is not None else scenario.recommendation,
            parameter_iris=list(scenario.parameter_iris),
            extra_triples=scenario.extra_triples + tuple(extra_triples),
        )

    @staticmethod
    def _grow_profile(
        user: UserProfile,
        *,
        likes: Sequence[str],
        dislikes: Sequence[str],
        allergies: Sequence[str],
        diets: Sequence[str],
        conditions: Sequence[str],
        goals: Sequence[str],
    ) -> UserProfile:
        """The profile after the additions (validated by UserProfile itself)."""

        def merge(existing: Tuple[str, ...], new: Sequence[str]) -> Tuple[str, ...]:
            return existing + tuple(n for n in new if n not in existing)

        return replace(
            user,
            likes=merge(user.likes, likes),
            dislikes=merge(user.dislikes, dislikes),
            allergies=merge(user.allergies, allergies),
            diets=merge(user.diets, diets),
            conditions=merge(user.conditions, conditions),
            goals=merge(user.goals, goals),
        )

    # ------------------------------------------------------------------
    def _assert_user(self, graph: Graph, user_iri: IRI, user: UserProfile) -> None:
        graph.add((user_iri, _RDF_TYPE, food.User))
        graph.add((user_iri, _RDFS_LABEL, Literal(user.name or user.identifier, language="en")))
        self._assert_profile_facts(
            graph, user_iri, likes=user.likes, dislikes=user.dislikes,
            allergies=user.allergies, diets=user.diets,
            conditions=user.conditions, goals=user.goals)
        if user.budget:
            graph.add((user_iri, feo.hasBudget, feo.BUDGET_LEVELS[user.budget]))

    def _assert_profile_facts(
        self,
        graph: Graph,
        user_iri: IRI,
        *,
        likes: Sequence[str] = (),
        dislikes: Sequence[str] = (),
        allergies: Sequence[str] = (),
        diets: Sequence[str] = (),
        conditions: Sequence[str] = (),
        goals: Sequence[str] = (),
    ) -> None:
        """Assert one slice of profile facts (shared by build and update)."""
        for name in likes:
            graph.add((user_iri, feo.likes, self._food_or_label_iri(name)))
        for name in dislikes:
            graph.add((user_iri, feo.dislikes, self._food_or_label_iri(name)))
        for name in allergies:
            graph.add((user_iri, feo.allergicTo, self._food_or_label_iri(name)))
        for diet in diets:
            graph.add((user_iri, feo.followsDiet, self.loader.diet_iri(diet)))
        for condition in conditions:
            condition_iri = feo.HEALTH_CONDITIONS.get(condition)
            if condition_iri is not None:
                graph.add((user_iri, feo.hasCondition, condition_iri))
        for goal in goals:
            goal_iri = feo.NUTRITIONAL_GOALS.get(goal)
            if goal_iri is not None:
                graph.add((user_iri, feo.hasGoal, goal_iri))

    def _assert_system(self, graph: Graph, system_iri: IRI, context: SystemContext) -> None:
        graph.add((system_iri, _RDF_TYPE, feo.RecommenderSystem))
        graph.add((system_iri, _RDFS_LABEL, Literal(context.system_name, language="en")))
        graph.add((system_iri, feo.currentSeason, feo.SEASONS[context.season]))
        region_iri = self.loader.region_iri(context.region)
        graph.add((region_iri, _RDF_TYPE, feo.LocationCharacteristic))
        graph.add((system_iri, feo.locatedIn, region_iri))
        if context.meal_time:
            graph.add((system_iri, feo.currentMealTime, feo.MEAL_TIMES[context.meal_time]))
        if context.budget:
            graph.add((system_iri, feo.hasBudget, feo.BUDGET_LEVELS[context.budget]))

    def _assert_ecosystem(self, graph: Graph, ecosystem_iri: IRI, user_iri: IRI, system_iri: IRI) -> None:
        graph.add((ecosystem_iri, _RDF_TYPE, feo.Ecosystem))
        graph.add((ecosystem_iri, feo.hasUser, user_iri))
        graph.add((ecosystem_iri, feo.hasSystem, system_iri))

    def _assert_question(self, graph: Graph, question: Question, user_iri: IRI):
        question_iri = self.question_iri(question)
        graph.add((question_iri, _RDFS_LABEL, Literal(question.text, language="en")))
        graph.add((question_iri, feo.askedBy, user_iri))
        parameters: List[IRI] = []

        if isinstance(question, WhyQuestion):
            graph.add((question_iri, _RDF_TYPE, feo.WhyQuestion))
            parameter = self.food_iri(question.recipe)
            graph.add((question_iri, feo.hasParameter, parameter))
            parameters.append(parameter)
        elif isinstance(question, ContrastiveQuestion):
            graph.add((question_iri, _RDF_TYPE, feo.ContrastiveQuestion))
            primary = self.food_iri(question.primary)
            secondary = self.food_iri(question.secondary)
            graph.add((question_iri, feo.hasPrimaryParameter, primary))
            graph.add((question_iri, feo.hasSecondaryParameter, secondary))
            parameters.extend([primary, secondary])
        elif isinstance(question, WhatIfConditionQuestion):
            graph.add((question_iri, _RDF_TYPE, feo.WhatIfQuestion))
            condition_iri = feo.HEALTH_CONDITIONS.get(question.condition)
            if condition_iri is None:
                raise UnknownEntityError(f"Unknown health condition {question.condition!r}")
            graph.add((question_iri, feo.hasHypothetical, condition_iri))
            parameters.append(condition_iri)
        elif isinstance(question, WhatIfIngredientQuestion):
            graph.add((question_iri, _RDF_TYPE, feo.WhatIfQuestion))
            ingredient_iri = self.food_iri(question.ingredient)
            graph.add((question_iri, feo.hasHypothetical, ingredient_iri))
            parameters.append(ingredient_iri)
            if question.recipe:
                recipe_iri = self.food_iri(question.recipe)
                graph.add((question_iri, feo.hasParameter, recipe_iri))
                parameters.append(recipe_iri)
        else:  # pragma: no cover - all Question subclasses handled above
            raise TypeError(f"Unsupported question type: {type(question).__name__}")
        return question_iri, parameters

    def _assert_recommendation(
        self,
        graph: Graph,
        recommendation: Recommendation,
        system_iri: IRI,
        question_iri: IRI,
    ) -> None:
        rec_iri = IRI(FOODKG["recommendation/" + slugify(recommendation.recipe)])
        graph.add((rec_iri, _RDF_TYPE, eo.SystemRecommendation))
        graph.add((rec_iri, eo.generatedBy, system_iri))
        graph.add((rec_iri, eo.inRelationTo, self.food_iri(recommendation.recipe)))
        graph.add((question_iri, feo.aboutRecommendation, rec_iri))
