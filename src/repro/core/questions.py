"""User questions about food recommendations.

Table I of the paper pairs each explanation type with an example question
("Why should I eat Food A?", "Why was Food A recommended over Food B?",
"What if I was pregnant?"...).  This module models those questions as data
objects and provides a small natural-language parser for the phrasings the
paper uses, so examples can go from a question string to an explanation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from ..errors import RequestError
from ..foodkg.schema import slugify

__all__ = [
    "QuestionType",
    "Question",
    "WhyQuestion",
    "ContrastiveQuestion",
    "WhatIfConditionQuestion",
    "WhatIfIngredientQuestion",
    "QuestionParseError",
    "parse_question",
]


class QuestionType(Enum):
    """The kinds of user questions FEO models."""

    WHY = "why"
    CONTRASTIVE = "contrastive"
    WHAT_IF_CONDITION = "what_if_condition"
    WHAT_IF_INGREDIENT = "what_if_ingredient"


@dataclass(frozen=True)
class Question:
    """Base class: a user question with its original text."""

    text: str

    @property
    def question_type(self) -> QuestionType:
        raise NotImplementedError

    def local_name(self) -> str:
        """The CamelCase local name used for the question's IRI."""
        raise NotImplementedError


@dataclass(frozen=True)
class WhyQuestion(Question):
    """'Why should I eat Food A?' — answered with a contextual explanation."""

    recipe: str = ""

    @property
    def question_type(self) -> QuestionType:
        return QuestionType.WHY

    def local_name(self) -> str:
        return f"WhyEat{slugify(self.recipe)}"


@dataclass(frozen=True)
class ContrastiveQuestion(Question):
    """'Why was Food A recommended over Food B?'"""

    primary: str = ""
    secondary: str = ""

    @property
    def question_type(self) -> QuestionType:
        return QuestionType.CONTRASTIVE

    def local_name(self) -> str:
        return f"WhyEat{slugify(self.primary)}Over{slugify(self.secondary)}"


@dataclass(frozen=True)
class WhatIfConditionQuestion(Question):
    """'What if I was pregnant?' — a hypothetical change to the user profile."""

    condition: str = ""

    @property
    def question_type(self) -> QuestionType:
        return QuestionType.WHAT_IF_CONDITION

    def local_name(self) -> str:
        return f"WhatIfIWas{slugify(self.condition.replace('_', ' '))}"


@dataclass(frozen=True)
class WhatIfIngredientQuestion(Question):
    """'What if we changed ingredient C?' — a hypothetical change to a recipe."""

    recipe: str = ""
    ingredient: str = ""
    replacement: Optional[str] = None

    @property
    def question_type(self) -> QuestionType:
        return QuestionType.WHAT_IF_INGREDIENT

    def local_name(self) -> str:
        return f"WhatIfWeChanged{slugify(self.ingredient)}In{slugify(self.recipe)}"


class QuestionParseError(RequestError):
    """Raised when a question string does not match a supported phrasing.

    A :class:`~repro.errors.RequestError` (and therefore ``ValueError``):
    the question text came from the caller, so transports answer it with
    a client error, not a 500.
    """


_CONDITION_ALIASES = {
    "pregnant": "pregnancy",
    "pregnancy": "pregnancy",
    "diabetic": "diabetes",
    "diabetes": "diabetes",
    "hypertensive": "hypertension",
    "hypertension": "hypertension",
    "lactose intolerant": "lactose_intolerance",
    "lactose intolerance": "lactose_intolerance",
    "celiac": "celiac_disease",
    "celiac disease": "celiac_disease",
    "high cholesterol": "high_cholesterol",
}

_WHY_OVER_RE = re.compile(
    r"^\s*why\s+(?:should\s+i\s+eat|was|is|were)\s+(?P<a>.+?)\s+"
    r"(?:recommended\s+)?(?:over|instead\s+of|rather\s+than)\s+(?:a\s+|an\s+)?(?P<b>.+?)\s*\??\s*$",
    re.IGNORECASE,
)
_WHY_RE = re.compile(
    r"^\s*why\s+(?:should\s+i\s+eat|was|is)\s+(?P<a>.+?)(?:\s+recommended)?\s*\??\s*$",
    re.IGNORECASE,
)
_WHAT_IF_CONDITION_RE = re.compile(
    r"^\s*what\s+if\s+i\s+(?:was|were|am|become|became|had|have)\s+(?P<cond>.+?)\s*\??\s*$",
    re.IGNORECASE,
)
_WHAT_IF_INGREDIENT_RE = re.compile(
    r"^\s*what\s+if\s+(?:we|i)\s+(?:changed|replaced|swapped|removed)\s+"
    r"(?:ingredient\s+)?(?P<ing>.+?)"
    r"(?:\s+(?:with|for)\s+(?P<repl>.+?))?"
    r"(?:\s+in\s+(?P<recipe>.+?))?\s*\??\s*$",
    re.IGNORECASE,
)


def _clean(text: str) -> str:
    return re.sub(r"\s+", " ", text).strip().strip(".?")


def parse_question(text: str) -> Question:
    """Parse ``text`` into a :class:`Question` subclass.

    Supported phrasings mirror Table I of the paper:

    * ``Why should I eat Cauliflower Potato Curry?``
    * ``Why should I eat Butternut Squash Soup over Broccoli Cheddar Soup?``
    * ``What if I was pregnant?``
    * ``What if we changed cheddar cheese in Broccoli Cheddar Soup?``
    """
    match = _WHY_OVER_RE.match(text)
    if match:
        return ContrastiveQuestion(text=text, primary=_clean(match.group("a")),
                                   secondary=_clean(match.group("b")))
    match = _WHAT_IF_INGREDIENT_RE.match(text)
    if match and match.group("ing") and not _WHAT_IF_CONDITION_RE.match(text):
        return WhatIfIngredientQuestion(
            text=text,
            recipe=_clean(match.group("recipe") or ""),
            ingredient=_clean(match.group("ing")),
            replacement=_clean(match.group("repl")) if match.group("repl") else None,
        )
    match = _WHAT_IF_CONDITION_RE.match(text)
    if match:
        raw = _clean(match.group("cond")).lower()
        condition = _CONDITION_ALIASES.get(raw, raw.replace(" ", "_"))
        return WhatIfConditionQuestion(text=text, condition=condition)
    match = _WHY_RE.match(text)
    if match:
        return WhyQuestion(text=text, recipe=_clean(match.group("a")))
    raise QuestionParseError(f"Could not parse question: {text!r}")
