"""Serialising generated explanations back into RDF.

The paper models explanations *in* the ontology: an explanation individual
is typed with its EO explanation-type class, addresses the user question,
and is based on the facts / foils / knowledge that support it.  This module
closes that loop for the reproduction — an :class:`~repro.core.explanation.Explanation`
produced by a generator can be written into an RDF graph (typically the
scenario's inferred graph, or a fresh one for export), so downstream
semantic applications can consume explanations the same way they consume
the rest of FEO.
"""

from __future__ import annotations

from typing import Optional

from ..foodkg.schema import slugify
from ..ontology import eo, feo
from ..rdf.graph import Graph
from ..rdf.namespace import FEO, RDFS
from ..rdf.terms import BNode, IRI, Literal
from .explanation import Explanation, ExplanationItem
from .scenario import Scenario

__all__ = ["explanation_to_rdf", "explanation_iri"]

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
_RDFS_LABEL = IRI(RDFS.label)
_RDFS_COMMENT = IRI(RDFS.comment)

#: Mapping from item roles to the EO/FEO property linking the explanation to
#: the evidence individual.
_ROLE_PREDICATES = {
    "fact": eo.isSupportedBy,
    "context": eo.isSupportedBy,
    "recommended": eo.isSupportedBy,
    "foil": eo.inRelationTo,
    "forbidden": eo.inRelationTo,
}


def explanation_iri(explanation: Explanation) -> IRI:
    """Mint a stable IRI for an explanation (type + question local name)."""
    question_part = explanation.question.local_name()
    type_part = slugify(explanation.explanation_type.replace("_", " "))
    return IRI(FEO[f"explanation/{type_part}{question_part}"])


def _evidence_iri(scenario: Optional[Scenario], item: ExplanationItem) -> IRI:
    """Resolve an evidence item back to a knowledge-graph IRI when possible.

    Evidence subjects are local names of KG individuals (e.g. ``Autumn``,
    ``Broccoli``) or plain profile keys (e.g. ``pregnancy``).  FEO shared
    individuals win, then FoodKG individuals present in the scenario graph;
    anything else gets a fresh evidence IRI so nothing is lost.
    """
    for registry in (feo.SEASONS, feo.BUDGET_LEVELS, feo.MEAL_TIMES,
                     feo.HEALTH_CONDITIONS, feo.NUTRITIONAL_GOALS):
        for key, iri in registry.items():
            if item.subject in (key, iri.local_name()):
                return iri
    if scenario is not None:
        from ..rdf.namespace import FOODKG

        candidate = IRI(FOODKG[slugify(item.subject)])
        if (candidate, None, None) in scenario.inferred or (None, None, candidate) in scenario.inferred:
            return candidate
    return IRI(FEO[f"evidence/{slugify(item.subject)}"])


def explanation_to_rdf(
    explanation: Explanation,
    graph: Optional[Graph] = None,
    scenario: Optional[Scenario] = None,
    question_iri: Optional[IRI] = None,
) -> Graph:
    """Write ``explanation`` into ``graph`` (new graph if omitted) and return it.

    The encoding follows EO: the explanation individual is typed with the
    explanation-type class, ``eo:addresses`` the question, is
    ``eo:isSupportedBy`` its supporting evidence and ``eo:inRelationTo`` the
    opposing evidence, and carries the rendered sentence as ``rdfs:comment``.
    """
    graph = graph if graph is not None else Graph()
    subject = explanation_iri(explanation)

    type_class = eo.EXPLANATION_TYPES.get(explanation.explanation_type, eo.Explanation)
    graph.add((subject, _RDF_TYPE, type_class))
    graph.add((subject, _RDF_TYPE, eo.Explanation))
    graph.add((subject, _RDFS_LABEL,
               Literal(f"{explanation.explanation_type} explanation for "
                       f"'{explanation.question.text}'", language="en")))
    if explanation.text:
        graph.add((subject, _RDFS_COMMENT, Literal(explanation.text, language="en")))

    target_question = question_iri
    if target_question is None and scenario is not None:
        target_question = scenario.question_iri
    if target_question is None:
        target_question = IRI(FEO[explanation.question.local_name()])
    graph.add((subject, eo.addresses, target_question))
    graph.add((target_question, feo.hasExplanation, subject))

    for item in explanation.items:
        predicate = _ROLE_PREDICATES.get(item.role, eo.usesKnowledge)
        evidence = _evidence_iri(scenario, item)
        graph.add((subject, predicate, evidence))
        if item.detail:
            record = BNode()
            graph.add((subject, eo.usesKnowledge, record))
            graph.add((record, _RDF_TYPE, eo.KnowledgeRecord))
            graph.add((record, _RDFS_COMMENT, Literal(item.detail, language="en")))
            graph.add((record, eo.inRelationTo, evidence))
    return graph
