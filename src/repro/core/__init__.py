"""FEO's explanation core: questions, scenarios, fact/foil semantics, generators, engine."""

from .competency import (
    CompetencyQuestion,
    CompetencyResult,
    CompetencySuite,
    EXTENDED_COMPETENCY_QUESTIONS,
    ExpectedBinding,
    PAPER_COMPETENCY_QUESTIONS,
)
from .engine import ExplanationEngine
from .explanation import Explanation, ExplanationItem
from .facts_foils import annotate_facts_and_foils, classify_characteristic, fact_foil_matrix
from .questions import (
    ContrastiveQuestion,
    Question,
    QuestionParseError,
    QuestionType,
    WhatIfConditionQuestion,
    WhatIfIngredientQuestion,
    WhyQuestion,
    parse_question,
)
from .rdf_export import explanation_iri, explanation_to_rdf
from .scenario import Scenario, ScenarioBuilder
from . import queries, templates

__all__ = [
    "CompetencyQuestion",
    "CompetencyResult",
    "CompetencySuite",
    "ContrastiveQuestion",
    "EXTENDED_COMPETENCY_QUESTIONS",
    "ExpectedBinding",
    "Explanation",
    "ExplanationEngine",
    "ExplanationItem",
    "PAPER_COMPETENCY_QUESTIONS",
    "Question",
    "QuestionParseError",
    "QuestionType",
    "Scenario",
    "ScenarioBuilder",
    "WhatIfConditionQuestion",
    "WhatIfIngredientQuestion",
    "WhyQuestion",
    "annotate_facts_and_foils",
    "classify_characteristic",
    "explanation_iri",
    "explanation_to_rdf",
    "fact_foil_matrix",
    "parse_question",
    "queries",
    "templates",
]
