"""Fact and foil semantics (Figure 3 of the paper).

Figure 3 classifies the characteristics at the intersection of a question
parameter and the ecosystem (user + system):

===================  =======================  =========
relation to parameter ecosystem presence        verdict
===================  =======================  =========
supports              present (supported)       **fact**
supports              absent                    **foil**
opposes               present (supported)       **foil**
opposes               absent                    neither
===================  =======================  =========

Two of the four cells are monotonic and are already captured by OWL
equivalent-class axioms in :mod:`repro.ontology.feo` (a characteristic of a
parameter that the ecosystem also has → ``eo:Fact``; one the ecosystem is
opposed by → ``eo:Foil``).  The *absent* column is closed-world — OWL cannot
express "not present in the ecosystem" — so :func:`annotate_facts_and_foils`
adds those ``eo:Foil`` types after reasoning.  The pure function
:func:`classify_characteristic` reproduces the full matrix for the Figure 3
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..ontology import eo, feo
from ..rdf.graph import Graph
from ..rdf.terms import IRI, Literal

__all__ = [
    "classify_characteristic",
    "fact_foil_matrix",
    "annotate_facts_and_foils",
    "EcosystemView",
]

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")

#: Characteristic classes too generic to anchor an "absent from the ecosystem"
#: judgement — a foil needs a specific class the ecosystem actually has an
#: expectation about (e.g. the ecosystem names a season, so a *different*
#: season on the parameter is a foil; a health condition the user does not
#: have is simply irrelevant, not a foil).
_GENERIC_CLASSES = frozenset({
    feo.Characteristic,
    feo.Parameter,
    feo.PrimaryParameter,
    feo.SecondaryParameter,
    feo.UserCharacteristic,
    feo.SystemCharacteristic,
    feo.EcosystemCharacteristic,
    feo.FoodCharacteristic,
    eo.Fact,
    eo.Foil,
})


def classify_characteristic(
    supports_parameter: bool,
    present_in_ecosystem: bool,
    opposes_parameter: bool = False,
    opposed_by_ecosystem: bool = False,
) -> str:
    """Classify one characteristic per Figure 3.

    Returns ``"fact"``, ``"foil"`` or ``"neither"``.  ``opposed_by_ecosystem``
    captures the allergy-style case (the ecosystem actively opposes the
    characteristic), which is also a foil whenever the characteristic touches
    the parameter at all.
    """
    touches_parameter = supports_parameter or opposes_parameter
    if not touches_parameter:
        return "neither"
    if supports_parameter and opposed_by_ecosystem:
        return "foil"
    if supports_parameter and present_in_ecosystem:
        return "fact"
    if supports_parameter and not present_in_ecosystem:
        return "foil"
    if opposes_parameter and present_in_ecosystem:
        return "foil"
    return "neither"


def fact_foil_matrix() -> List[Dict[str, object]]:
    """The full Figure 3 decision matrix as a list of rows (for the benchmark)."""
    rows = []
    for supports in (True, False):
        for opposes in (True, False):
            if not supports and not opposes:
                continue
            for present in (True, False):
                for opposed_by in (True, False):
                    rows.append({
                        "supports_parameter": supports,
                        "opposes_parameter": opposes,
                        "present_in_ecosystem": present,
                        "opposed_by_ecosystem": opposed_by,
                        "verdict": classify_characteristic(supports, present, opposes, opposed_by),
                    })
    return rows


@dataclass
class EcosystemView:
    """The ecosystem's positive and opposing characteristics, read from a graph."""

    supported: Set[IRI]
    opposed: Set[IRI]

    @classmethod
    def from_graph(cls, graph: Graph, ecosystem_iri: IRI) -> "EcosystemView":
        supported = {
            o for o in graph.objects(ecosystem_iri, feo.hasEcosystemCharacteristic)
            if isinstance(o, IRI)
        }
        opposed = {
            o for o in graph.objects(ecosystem_iri, feo.isOpposedBy)
            if isinstance(o, IRI)
        }
        return cls(supported=supported, opposed=opposed)

    def presence(self, characteristic: IRI) -> Tuple[bool, bool]:
        """Return ``(present, opposed)`` for one characteristic."""
        return characteristic in self.supported, characteristic in self.opposed


def annotate_facts_and_foils(graph: Graph, ecosystem_iri: IRI) -> Dict[str, int]:
    """Add the closed-world ``eo:Fact`` / ``eo:Foil`` types to ``graph``.

    The OWL reasoner has already typed the monotonic cases; this pass walks
    every characteristic of every question parameter and applies the full
    Figure 3 matrix, adding any missing types.  Returns counts of the types
    added (used by tests and the coverage report).
    """
    ecosystem = EcosystemView.from_graph(graph, ecosystem_iri)
    parameters = {
        s for s in graph.subjects(_RDF_TYPE, feo.Parameter) if isinstance(s, IRI)
    }

    subclassof = IRI("http://www.w3.org/2000/01/rdf-schema#subClassOf")

    def specific_classes(node: IRI) -> Set[IRI]:
        return {
            cls for cls in graph.objects(node, _RDF_TYPE)
            if isinstance(cls, IRI)
            and cls not in _GENERIC_CLASSES
            and (cls, subclassof, feo.Characteristic) in graph
        }

    # Classes the ecosystem has an expectation about (see _GENERIC_CLASSES).
    ecosystem_classes: Set[IRI] = set()
    for supported in ecosystem.supported:
        ecosystem_classes |= specific_classes(supported)

    added = {"facts": 0, "foils": 0}
    for parameter in parameters:
        characteristics = {
            o for o in graph.objects(parameter, feo.hasCharacteristic)
            if isinstance(o, IRI)
        }
        opposing = {
            o for o in graph.objects(parameter, feo.isOpposedBy)
            if isinstance(o, IRI)
        }
        for characteristic in characteristics | opposing:
            present, opposed_by = ecosystem.presence(characteristic)
            supports = characteristic in characteristics
            # The closed-world "absent from the ecosystem" foil only applies
            # when the ecosystem names a characteristic of the same class
            # (e.g. it has a current season, so a different season is a foil).
            if supports and not present and not opposed_by:
                if not (specific_classes(characteristic) & ecosystem_classes):
                    continue
            verdict = classify_characteristic(
                supports_parameter=supports,
                present_in_ecosystem=present,
                opposes_parameter=characteristic in opposing,
                opposed_by_ecosystem=opposed_by,
            )
            if verdict == "fact":
                triple = (characteristic, _RDF_TYPE, eo.Fact)
                if triple not in graph:
                    graph.add(triple)
                    added["facts"] += 1
            elif verdict == "foil":
                triple = (characteristic, _RDF_TYPE, eo.Foil)
                if triple not in graph:
                    graph.add(triple)
                    added["foils"] += 1
    return added
