"""Natural-language rendering of explanations.

The paper presents each competency question with a 'Possible Answer' in
plain English; these templates produce answers of the same shape from the
structured query results, so every explanation object carries both the
machine-readable items and a sentence a consumer-facing application could
show directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .explanation import ExplanationItem

__all__ = [
    "humanize",
    "join_phrases",
    "render_contextual",
    "render_contrastive",
    "render_counterfactual",
    "render_scientific",
    "render_statistical",
    "render_case_based",
    "render_trace_based",
    "render_everyday",
    "render_simulation",
]


def humanize(term: str) -> str:
    """Turn an IRI local name or snake_case key into readable text.

    >>> humanize("CauliflowerPotatoCurry")
    'Cauliflower Potato Curry'
    >>> humanize("high_folate")
    'high folate'
    """
    if "_" in term:
        return term.replace("_", " ")
    out = []
    for index, char in enumerate(term):
        previous = term[index - 1] if index > 0 else ""
        if char.isupper() and index > 0 and previous != " " and not previous.isupper():
            out.append(" ")
        out.append(char)
    return "".join(out)


def join_phrases(phrases: Sequence[str]) -> str:
    """Join phrases with commas and a final 'and'."""
    phrases = [p for p in phrases if p]
    if not phrases:
        return ""
    if len(phrases) == 1:
        return phrases[0]
    return ", ".join(phrases[:-1]) + " and " + phrases[-1]


_CHARACTERISTIC_PHRASES: Dict[str, str] = {
    "SeasonCharacteristic": "{value} is the current season",
    "LocationCharacteristic": "{value} is the region the system is operating in",
    "BudgetCharacteristic": "it fits the {value} budget",
    "TimeCharacteristic": "it suits the current meal time ({value})",
    "DietCharacteristic": "it matches your {value} diet",
    "LikedFoodCharacteristic": "you like {value}",
    "DislikedFoodCharacteristic": "you dislike {value}",
    "AllergicFoodCharacteristic": "you are allergic to {value}",
    "HealthConditionCharacteristic": "it relates to your {value}",
    "NutritionalGoalCharacteristic": "it supports your {value} goal",
}


_FOIL_PHRASES: Dict[str, str] = {
    "SeasonCharacteristic": "it relies on {value}, which is not the current season",
    "LocationCharacteristic": "it relies on {value}, which is not your region",
    "BudgetCharacteristic": "it requires a {value}, which does not match yours",
    "TimeCharacteristic": "it suits {value}, not the current meal time",
    "DietCharacteristic": "it targets the {value} diet, which you do not follow",
    "LikedFoodCharacteristic": "it involves {value}",
    "DislikedFoodCharacteristic": "you dislike {value}",
    "AllergicFoodCharacteristic": "you are allergic to {value}",
    "HealthConditionCharacteristic": "it is discouraged for {value}",
    "NutritionalGoalCharacteristic": "it serves the {value}, which is not your goal",
}


def _phrase_for(item: ExplanationItem) -> str:
    value = humanize(item.subject)
    if item.role == "foil":
        template = _FOIL_PHRASES.get(item.characteristic_type)
        if template:
            return template.format(value=value)
    template = _CHARACTERISTIC_PHRASES.get(item.characteristic_type)
    if template:
        return template.format(value=value)
    return f"{value} applies"


def render_contextual(recipe: str, items: List[ExplanationItem]) -> str:
    """'Cauliflower Potato Curry uses an ingredient that is in season...'"""
    recipe_name = humanize(recipe)
    if not items:
        return (f"No external context was found to explain recommending {recipe_name}; "
                f"its support comes from food-internal factors.")
    phrases = [_phrase_for(item) for item in items]
    return f"{recipe_name} is recommended because {join_phrases(phrases)}."


def render_contrastive(primary: str, secondary: str,
                       facts: List[ExplanationItem], foils: List[ExplanationItem]) -> str:
    """'Butternut Squash Soup is better than Broccoli Cheddar Soup because...'"""
    primary_name, secondary_name = humanize(primary), humanize(secondary)
    fact_phrases = [_phrase_for(item) for item in facts]
    foil_phrases = [_phrase_for(item).replace("you are", "you are") for item in foils]
    parts = []
    if fact_phrases:
        parts.append(f"for {primary_name}, {join_phrases(fact_phrases)}")
    if foil_phrases:
        parts.append(f"against {secondary_name}, {join_phrases(foil_phrases)}")
    if not parts:
        return (f"{primary_name} and {secondary_name} could not be distinguished by the "
                f"available facts and foils.")
    return f"{primary_name} is preferred over {secondary_name} because " + "; ".join(parts) + "."


def render_counterfactual(hypothetical: str, forbidden: List[ExplanationItem],
                          recommended: List[ExplanationItem]) -> str:
    """'If you were pregnant, you would be forbidden from eating sushi...'"""
    condition = humanize(hypothetical).lower()
    sentences = []
    if forbidden:
        foods = join_phrases(sorted({humanize(i.subject) for i in forbidden}))
        sentences.append(f"If you were affected by {condition}, you would be advised against eating {foods}.")
    if recommended:
        base = sorted({humanize(i.subject) for i in recommended})
        dishes = sorted({humanize(i.value) for i in recommended if i.value})
        sentence = f"You would be encouraged to eat {join_phrases(base)}"
        if dishes:
            sentence += f", for example in {join_phrases(dishes)}"
        sentences.append(sentence + ".")
    if not sentences:
        return f"Changing to {condition} would not alter the current recommendations."
    return " ".join(sentences)


def render_scientific(subject: str, items: List[ExplanationItem]) -> str:
    if not items:
        return f"No guideline evidence in the knowledge base applies to {humanize(subject)}."
    evidence = join_phrases([item.detail or humanize(item.subject) for item in items])
    return f"Guideline evidence supports this: {evidence}"


def render_statistical(subject: str, items: List[ExplanationItem]) -> str:
    if not items:
        return f"No population statistics are available for {humanize(subject)}."
    phrases = [item.detail for item in items if item.detail]
    return " ".join(phrases)


def render_case_based(recipe: str, items: List[ExplanationItem]) -> str:
    if not items:
        return f"No comparable users of the system were recommended {humanize(recipe)}."
    users = join_phrases([humanize(item.subject) for item in items])
    return (f"Users similar to you ({users}) also received {humanize(recipe)} "
            f"among their top recommendations.")


def render_trace_based(recipe: str, items: List[ExplanationItem]) -> str:
    if not items:
        return f"No system trace is available for the recommendation of {humanize(recipe)}."
    steps = "; then ".join(item.detail for item in items if item.detail)
    return f"The system arrived at {humanize(recipe)} as follows: {steps}."


def render_everyday(subject: str, items: List[ExplanationItem]) -> str:
    if not items:
        return f"No common pairings were found for {humanize(subject)}."
    pairings = join_phrases([humanize(item.subject) for item in items])
    return f"{humanize(subject)} commonly goes together with {pairings}."


def render_simulation(recipe: str, items: List[ExplanationItem]) -> str:
    if not items:
        return f"Eating {humanize(recipe)} every day would have no notable nutritional effect."
    effects = join_phrases([item.detail for item in items if item.detail])
    return f"If you ate {humanize(recipe)} every day for a week, {effects}."
